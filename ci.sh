#!/usr/bin/env bash
# Offline CI gate for the nemscmos workspace.
#
# Everything runs with --offline: the workspace has no external
# dependencies (see DESIGN.md, "Offline / no-external-deps policy"),
# so a network-less container must be able to build, test, lint, and
# regenerate the paper's figures end to end.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (-D warnings, perf lints) =="
cargo clippy --offline --workspace --all-targets -- -D warnings -W clippy::perf

# Golden-reference verification (DESIGN.md §11): oracle/differential/
# snapshot suites, then an explicit snapshot drift check — a solver
# change that moves committed waveforms must re-bless them (--bless)
# and justify the move in review, never slip through.
echo "== verify suites (oracles, differential, goldens) =="
cargo test -q --offline -p nemscmos-verify

echo "== golden snapshot drift check =="
cargo run --release --offline -q -p nemscmos-verify --bin golden

# Sparse-solver fast-path smoke (DESIGN.md §12): the incremental
# linear-algebra machinery must demonstrably engage (symbolic LU
# reuses, slot-cache hits, bypass solves observed; fallback count
# sane) and legacy runs must stay clean of fast-path counters. The
# goldens check above already proved the fast path is bitwise
# identical to the committed waveforms.
echo "== perfbase fast-path smoke =="
cargo run --release --offline -q -p nemscmos-bench --bin perfbase -- --smoke

# Fill-reducing ordering smoke (DESIGN.md §15): on generated SRAM /
# domino decks the minimum-degree ordering must never worsen fill,
# both factorization paths must solve to small residual, and a
# transient above the ordering threshold must record the fill and
# ordering attribution counters. The ordered_vs_natural differential
# (run in the verify suites above) proves solution equivalence on the
# golden fleet.
echo "== perfbase ordering scaling smoke =="
cargo run --release --offline -q -p nemscmos-bench --bin perfbase -- --scaling --smoke

# SPICE netlist frontend smoke: a textual deck (with a .MODEL alias
# resolved through the standard factory) must run end to end through
# the spicerun binary and print the exact divider operating point.
echo "== spicerun netlist smoke =="
deck=$(mktemp /tmp/nemscmos-smoke-XXXXXX.cir)
cat > "$deck" <<'EOF'
* resistive divider observed by a .MODEL-aliased NMOS
V1 in 0 DC 2.0
R1 in out 1k
R2 out 0 1k
.model pulldown nmos90 W=1u
M1 d out 0 pulldown
R3 in d 10k
.op
EOF
spice_out=$(cargo run --release --offline -q -p nemscmos-bench --bin spicerun -- "$deck")
rm -f "$deck"
echo "$spice_out" | head -n 5
if ! echo "$spice_out" | grep -q 'v(out) = 1.000000 V'; then
    echo "FAIL: spicerun divider operating point wrong" >&2
    exit 1
fi

# Paper-claims conformance: re-measure every claim in
# crates/verify/claims.toml and fail on any regression against the
# paper's accepted bands (scoreboard printed either way).
echo "== paper-claims conformance scoreboard =="
cargo run --release --offline -q -p nemscmos-bench --bin conformance

# Smoke-run the full figure regeneration through the harness cache:
# the first pass populates target/harness-cache, the second pass must
# be served almost entirely from it (ISSUE acceptance: >= 90% hits).
echo "== bench smoke run 1 (cold cache) =="
rm -rf target/harness-cache
cargo run --release --offline -q -p nemscmos-bench --bin all > /dev/null

echo "== bench smoke run 2 (warm cache) =="
out=$(cargo run --release --offline -q -p nemscmos-bench --bin all)
total=$(echo "$out" | grep -oE 'total: [0-9]+ jobs' | grep -oE '[0-9]+' | awk '{s+=$1} END {print s+0}')
cached=$(echo "$out" | grep -oE '\([0-9]+ cached' | grep -oE '[0-9]+' | awk '{s+=$1} END {print s+0}')
echo "cache: $cached/$total jobs served from target/harness-cache"
if [ "$total" -eq 0 ] || [ $((cached * 10)) -lt $((total * 9)) ]; then
    echo "FAIL: warm-cache hit rate below 90%" >&2
    exit 1
fi

# Seeded fault-injection soak: every injected fault must be rescued by
# the retry ladder or surfaced as a typed diagnostic (never a panic,
# never a silently-wrong number), unfaulted jobs must stay bitwise
# identical to the clean baseline, and the failure taxonomy must be
# exercised. Small plan count + fixed seed keeps it a smoke test.
echo "== fault-injection soak (smoke) =="
soak_out=$(cargo run --release --offline -q -p nemscmos-bench --bin soak -- --plans 3 --seed 3405691582)
echo "$soak_out" | tail -n 3
if ! echo "$soak_out" | grep -q "soak OK"; then
    echo "FAIL: fault-injection soak did not pass" >&2
    exit 1
fi
if ! echo "$soak_out" | grep -qE "surfaced typed \[.+\]"; then
    echo "FAIL: soak failure taxonomy is empty" >&2
    exit 1
fi

# Kill/resume smoke: a journaled batch under a tight per-job deadline
# loses its wedged jobs as typed DeadlineExceeded failures (never a
# panic); resuming the same run id must recover every journaled job
# without re-execution and finish bitwise identical to an uninterrupted
# baseline.
echo "== kill/resume smoke =="
resume_out=$(cargo run --release --offline -q -p nemscmos-bench --bin soak -- --resume-smoke)
echo "$resume_out" | tail -n 3
if ! echo "$resume_out" | grep -q "resume smoke OK"; then
    echo "FAIL: kill/resume smoke did not pass" >&2
    exit 1
fi

# Job-server chaos smoke: spawn the real nemscmos-server binary,
# SIGKILL it mid-batch, restart on the same run id, and demand zero
# panics, zero lost acks, bitwise-identical merged results, plus typed
# rejections / watermark degradation / priority shedding / per-client
# quota kills visible both in-band and in the health counters.
echo "== job-server chaos drill (smoke) =="
chaos_out=$(cargo run --release --offline -q -p nemscmos-bench --bin chaos -- --smoke)
echo "$chaos_out" | tail -n 3
if ! echo "$chaos_out" | grep -q "chaos OK"; then
    echo "FAIL: job-server chaos drill did not pass" >&2
    exit 1
fi

echo "== ci OK =="
