//! Electromechanical switching dynamics of a NEMFET: the full beam
//! equation of motion co-simulated with the circuit (the paper's Fig. 6(b)
//! model solved directly), plus the standalone pull-in study from the
//! `nemscmos-mems` substrate.
//!
//! ```sh
//! cargo run --release --example nems_switch_dynamics
//! ```

use nemscmos::devices::mosfet::Polarity;
use nemscmos::devices::nemfet::{DynamicNemfet, MechanicalParams, NemsModel};
use nemscmos::mems::dynamics::ActuatorDynamics;
use nemscmos::mems::electrostatics::Actuator;
use nemscmos::spice::analysis::tran::{transient, TranOptions};
use nemscmos::spice::circuit::Circuit;
use nemscmos::spice::waveform::Waveform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A lumped NEMS switch: k = 1 N/m, 0.2 µm² electrode, 20 nm air gap,
    // 5 nm dielectric.
    let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 5e-9, 7.5);
    let dynamics = ActuatorDynamics::new(act, 4e-14, 2e-7);
    let vpi = dynamics.actuator().pull_in_voltage();
    let vpo = dynamics.actuator().pull_out_voltage();
    println!("pull-in voltage : {vpi:.3} V");
    println!(
        "pull-out voltage: {vpo:.3} V (hysteresis window {:.3} V)",
        vpi - vpo
    );

    println!("\n-- standalone beam: switching time vs overdrive --");
    for factor in [1.1, 1.5, 2.0, 3.0] {
        match dynamics.switching_time(factor * vpi, 5e-6, 1e-10) {
            Some(t) => println!(
                "  V = {:.2} V ({factor:.1}x V_pi): t_switch = {:.1} ns",
                factor * vpi,
                t * 1e9
            ),
            None => println!("  V = {:.2} V: no pull-in within 5 µs", factor * vpi),
        }
    }

    println!("\n-- co-simulated NEMFET: gate step, beam flight, channel turn-on --");
    let mech = MechanicalParams::from_dynamics(&dynamics);
    let mut ckt = Circuit::new();
    let vddn = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    ckt.vsource(vddn, Circuit::GROUND, Waveform::dc(1.2));
    ckt.vsource(
        g,
        Circuit::GROUND,
        Waveform::step(0.0, 2.0 * vpi, 10e-9, 1e-9),
    );
    ckt.resistor(vddn, d, 100e3);
    let dev = DynamicNemfet::new(
        "x1",
        NemsModel::nems_90nm(Polarity::Nmos),
        mech,
        d,
        g,
        Circuit::GROUND,
        1.0,
    );
    ckt.add_device(dev);
    let opts = TranOptions {
        dt_max: Some(2e-9),
        ..Default::default()
    };
    let res = transient(&mut ckt, 2e-6, &opts)?;
    // Displacement is the first internal unknown after 2 node-voltage
    // unknowns... the result exposes it by raw index: nodes-1 (3) + branches (2).
    let x_trace = res.raw_unknown(5)?;
    let vd = res.voltage(d);
    let landed = x_trace
        .crossing_rising(0.9 * mech.gap, 0.0)
        .map(|t| t - 10e-9);
    match landed {
        Some(t) => println!("  beam lands {:.1} ns after the gate step", t * 1e9),
        None => println!("  beam did not land"),
    }
    let on = vd.crossing_falling(0.6, 0.0).map(|t| t - 10e-9);
    match on {
        Some(t) => println!("  drain pulled low {:.1} ns after the gate step", t * 1e9),
        None => println!("  channel never turned on"),
    }
    println!(
        "  final state: x = {:.1} nm of {:.1} nm gap, v(d) = {:.2} V",
        x_trace.last_value() * 1e9,
        mech.gap * 1e9,
        vd.last_value()
    );
    Ok(())
}
