//! NEMS resonator via the paper's electrical-analogy model.
//!
//! Section 2.4 (and refs [22]–[23]) model the suspended gate as an
//! electrical R-L-C: mass ↦ inductance, damping ↦ resistance, compliance
//! ↦ capacitance, coupled through the electromechanical transduction
//! factor `η = ε0·A·V_bias / g²`. This example builds that motional
//! branch from *beam physics* (the `nemscmos-mems` substrate), runs an AC
//! sweep with our own simulator, and checks the electrical resonance
//! against the mechanical prediction.
//!
//! ```sh
//! cargo run --release --example nems_resonator
//! ```

use nemscmos::mems::beam::{Anchor, Beam};
use nemscmos::mems::damping::SqueezeFilm;
use nemscmos::mems::materials::Material;
use nemscmos::mems::EPSILON_0;
use nemscmos::spice::analysis::ac::{ac, log_sweep};
use nemscmos::spice::circuit::Circuit;
use nemscmos::spice::waveform::Waveform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A poly-Si fixed-fixed beam resonator (RSG-MOSFET style, ref [22]).
    let beam = Beam::new(Material::poly_si(), Anchor::FixedFixed, 8e-6, 1e-6, 200e-9);
    let gap = 150e-9;
    let film = SqueezeFilm::new(&beam, gap);
    let (k, m, c) = (beam.stiffness(), beam.effective_mass(), film.coefficient());
    let f0_mech = beam.resonant_frequency();
    let q_mech = (k * m).sqrt() / c;
    println!("beam: k = {k:.3} N/m, m_eff = {m:.3e} kg, c = {c:.3e} N·s/m");
    println!(
        "mechanical prediction: f0 = {:.3} MHz, Q = {q_mech:.1}",
        f0_mech / 1e6
    );

    // Electromechanical transduction at a DC bias.
    let v_bias = 5.0;
    let eta = EPSILON_0 * beam.plate_area() * v_bias / (gap * gap);
    let lm = m / (eta * eta);
    let cm = eta * eta / k;
    let rm = c / (eta * eta);
    println!(
        "motional branch: L = {:.3} H, C = {:.3e} F, R = {:.3e} Ω (η = {eta:.3e})",
        lm, cm, rm
    );

    // The paper's Fig. 6(b) series branch, driven by an AC source; the
    // current through the branch peaks at resonance, i.e. the voltage
    // across R is the band-pass output.
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let n1 = ckt.node("n1");
    let n2 = ckt.node("n2");
    let src = ckt.vsource(a, Circuit::GROUND, Waveform::dc(0.0));
    ckt.inductor(a, n1, lm);
    ckt.capacitor(n1, n2, cm);
    ckt.resistor(n2, Circuit::GROUND, rm);

    let freqs = log_sweep(f0_mech / 10.0, 10.0 * f0_mech, 400);
    let res = ac(&mut ckt, src, &freqs, &Default::default())?;
    let f_peak = res.peak_frequency(n2);
    println!("electrical resonance:  f0 = {:.3} MHz", f_peak / 1e6);

    // −3 dB bandwidth → quality factor.
    let mags: Vec<(f64, f64)> = freqs
        .iter()
        .zip(res.voltage(n2))
        .map(|(&f, z)| (f, z.abs()))
        .collect();
    let peak = mags.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let half = peak / 2f64.sqrt();
    let lo = mags
        .iter()
        .find(|&&(_, v)| v >= half)
        .map(|&(f, _)| f)
        .unwrap_or(f_peak);
    let hi = mags
        .iter()
        .rev()
        .find(|&&(_, v)| v >= half)
        .map(|&(f, _)| f)
        .unwrap_or(f_peak);
    let q_elec = f_peak / (hi - lo);
    println!("electrical Q ≈ {q_elec:.1} (mechanical {q_mech:.1})");

    let err = (f_peak / f0_mech - 1.0).abs();
    println!(
        "\nresonance agreement: {:.2}% {}",
        err * 100.0,
        if err < 0.02 {
            "— electrical analogy confirmed"
        } else {
            "— MISMATCH"
        }
    );
    Ok(())
}
