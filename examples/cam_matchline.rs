//! CAM match-line study — the wide dynamic OR in its natural habitat.
//!
//! A content-addressable-memory row discharges its match line when *any*
//! bit mismatches: electrically it is exactly the paper's wide fan-in
//! dynamic OR (match-line pull-downs = mismatch signals). This example
//! sizes rows from 8 to 64 bits and shows why conventional CMOS rows are
//! segmented while hybrid NEMS-CMOS rows can keep growing: the CMOS
//! keeper must scale with row width until contention wrecks search delay
//! and energy.
//!
//! ```sh
//! cargo run --release --example cam_matchline
//! ```

use nemscmos::gates::{keeper_width_for, DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n90();
    println!("CAM match line = wide dynamic OR; search with exactly 1 mismatching bit");
    println!(
        "{:>6} {:>12} {:>13} {:>13} {:>12} {:>12}",
        "bits", "CMOS keeper", "CMOS search", "hyb search", "CMOS energy", "hyb energy"
    );
    for bits in [8usize, 16, 32, 64] {
        let wk = keeper_width_for(&tech, PdnStyle::Cmos, bits, 2.0, 3.0, 0.10);
        let row = |style| -> Result<(f64, f64), Box<dyn std::error::Error>> {
            let params = DynamicOrParams::new(bits, 1, style);
            let f = DynamicOrGate::build(&tech, &params).characterize(&tech)?;
            Ok((f.delay, f.switching_power * params.period))
        };
        // An infinite result marks a dead row (keeper wins outright).
        let (d_cmos, e_cmos) = row(PdnStyle::Cmos).unwrap_or((f64::INFINITY, f64::INFINITY));
        let (d_hyb, e_hyb) = row(PdnStyle::HybridNems)?;
        let fmt_t = |d: f64| {
            if d.is_finite() {
                format!("{:.1} ps", d * 1e12)
            } else {
                "FAILS".to_string()
            }
        };
        let fmt_e = |e: f64| {
            if e.is_finite() {
                format!("{:.2} pJ", e * 1e12)
            } else {
                "-".to_string()
            }
        };
        println!(
            "{:>6} {:>9.2} µm {:>13} {:>13} {:>12} {:>12}",
            bits,
            wk,
            fmt_t(d_cmos),
            fmt_t(d_hyb),
            fmt_e(e_cmos),
            fmt_e(e_hyb),
        );
    }
    println!("\nmatch-state retention: a matching row must HOLD the line high all cycle —");
    println!("the hybrid row's pull-down leakage is the NEMS beam-up floor:");
    for bits in [16usize, 64] {
        let leak_cmos: f64 = {
            let (i, ..) = tech.nmos.ids(0.0, tech.vdd, 0.0, 2.0);
            bits as f64 * i
        };
        let leak_hyb = bits as f64 * 3.0 * tech.nems_n.g_off_per_um * tech.vdd;
        println!(
            "  {bits:>2}-bit row: CMOS {:.1} nA vs hybrid {:.3} nA ({:.0}x)",
            leak_cmos * 1e9,
            leak_hyb * 1e9,
            leak_cmos / leak_hyb
        );
    }
    Ok(())
}
