//! Quickstart: build a hybrid NEMS-CMOS dynamic OR gate, compare it with
//! its all-CMOS counterpart, and print the paper's three figures of merit.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 90 nm technology with Table-1-calibrated devices:
    // CMOS 1110 µA/µm / 50 nA/µm, NEMS 330 µA/µm / 110 pA/µm.
    let tech = Technology::n90();

    println!("8-input dynamic OR gate, fan-out 1, V_dd = {} V", tech.vdd);
    println!(
        "{:<12} {:>12} {:>16} {:>14}",
        "style", "delay", "switching power", "leakage"
    );

    let mut results = Vec::new();
    for style in [PdnStyle::Cmos, PdnStyle::HybridNems] {
        let params = DynamicOrParams::new(8, 1, style);
        let figures = DynamicOrGate::build(&tech, &params).characterize(&tech)?;
        println!(
            "{:<12} {:>9.1} ps {:>13.1} µW {:>11.2} nW",
            format!("{style:?}"),
            figures.delay * 1e12,
            figures.switching_power * 1e6,
            figures.leakage_power * 1e9,
        );
        results.push(figures);
    }

    let (cmos, hybrid) = (results[0], results[1]);
    println!();
    println!(
        "hybrid vs CMOS: {:.0}% lower switching power, {:+.0}% delay, {:.0}x lower leakage",
        (1.0 - hybrid.switching_power / cmos.switching_power) * 100.0,
        (hybrid.delay / cmos.delay - 1.0) * 100.0,
        cmos.leakage_power / hybrid.leakage_power,
    );
    Ok(())
}
