//! SRAM standby study: compare the four cell architectures of the paper's
//! Figure 13 on standby leakage, read SNM, and read latency — then project
//! the leakage of a 32 kB cache bank built from each.
//!
//! ```sh
//! cargo run --release --example sram_standby
//! ```

use nemscmos::sram::{
    butterfly_curves, read_latency, standby_leakage, ReadMode, SramKind, SramParams, ZeroSide,
};
use nemscmos::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n90();
    // 32 kB of cells.
    let cells = 32 * 1024 * 8;

    println!(
        "{:<9} {:>12} {:>11} {:>12} {:>16}",
        "cell", "leak/cell", "read SNM", "read delay", "32kB standby"
    );
    for kind in SramKind::all() {
        let params = SramParams::new(kind);
        let leak_a = standby_leakage(&tech, &params, ZeroSide::Left)?;
        let leak_b = standby_leakage(&tech, &params, ZeroSide::Right)?;
        let leak = 0.5 * (leak_a + leak_b);
        let snm = butterfly_curves(&tech, &params, ReadMode::Read)?.snm.snm();
        let lat_a = read_latency(&tech, &params, ZeroSide::Left)?;
        let lat_b = read_latency(&tech, &params, ZeroSide::Right)?;
        let latency = 0.5 * (lat_a + lat_b);
        println!(
            "{:<9} {:>9.2} nA {:>8.0} mV {:>9.1} ps {:>13.2} mW",
            kind.label(),
            leak * 1e9,
            snm * 1e3,
            latency * 1e12,
            leak * cells as f64 * tech.vdd * 1e3,
        );
    }
    println!("\n(leakage averaged over both stored states; SNM in read configuration)");
    Ok(())
}
