//! Power-gating study: gate a logic block with CMOS and NEMS sleep
//! transistors (Figure 16 styles) and report the paper's Figure 17
//! trade-off — a sized-up NEMS switch matches CMOS ON resistance while
//! leaking orders of magnitude less.
//!
//! ```sh
//! cargo run --release --example power_gating
//! ```

use nemscmos::sleep::{
    characterize_block, sleep_device_figures, GatedBlock, GrainStyle, SleepStyle,
};
use nemscmos::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n90();

    println!("-- device level (Figure 17) --");
    println!(
        "{:<13} {:>9} {:>12} {:>12}",
        "switch", "W (µm)", "R_on", "I_off"
    );
    for (style, w) in [
        (SleepStyle::CmosFooter, 1.0),
        (SleepStyle::NemsFooter, 1.0),
        (SleepStyle::NemsFooter, 4.0),
    ] {
        let f = sleep_device_figures(&tech, style, w);
        println!(
            "{:<13} {:>9.1} {:>9.0} Ω {:>9.2} nA",
            style.label(),
            w,
            f.r_on_ohms,
            f.i_off * 1e9
        );
    }

    println!("\n-- circuit level: 4-stage gated inverter chain --");
    println!(
        "{:<26} {:>14} {:>13} {:>15}",
        "configuration", "delay penalty", "sleep leak", "leak reduction"
    );
    for (label, block) in [
        (
            "CMOS coarse footer",
            GatedBlock::coarse_footer(4, false, 2.0),
        ),
        (
            "NEMS coarse footer",
            GatedBlock::coarse_footer(4, true, 2.0),
        ),
        (
            "NEMS coarse footer, 4x W",
            GatedBlock::coarse_footer(4, true, 8.0),
        ),
        (
            "NEMS fine-grain footer",
            GatedBlock::coarse_footer(4, true, 8.0).with_grain(GrainStyle::Fine),
        ),
    ] {
        let f = characterize_block(&tech, &block)?;
        println!(
            "{:<26} {:>13.1}% {:>10.2} nW {:>14.0}x",
            label,
            f.delay_penalty() * 100.0,
            f.sleep_leakage * 1e9,
            f.leakage_reduction()
        );
    }
    Ok(())
}
