//! A wide-OR datapath study: sweep the fan-in of a match-line-style
//! dynamic OR (the paper's motivating workload — wide fan-in OR gates in
//! comparators, TLBs, and match lines) and locate the crossover where the
//! hybrid gate beats CMOS on *both* delay and power.
//!
//! ```sh
//! cargo run --release --example wide_or_datapath
//! ```

use nemscmos::analysis::pdp::GateFigures;
use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::tech::Technology;

fn measure(
    tech: &Technology,
    fan_in: usize,
    style: PdnStyle,
) -> Result<GateFigures, Box<dyn std::error::Error>> {
    let params = DynamicOrParams::new(fan_in, 3, style);
    Ok(DynamicOrGate::build(tech, &params).characterize(tech)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n90();
    println!("wide dynamic OR, fan-out 3 (match-line workload)");
    println!(
        "{:>7} {:>12} {:>12} {:>11} {:>11}  winner",
        "fan-in", "CMOS delay", "hyb delay", "CMOS power", "hyb power"
    );
    let mut crossover = None;
    for fan_in in [2usize, 4, 6, 8, 10, 12, 16, 20] {
        let cmos = measure(&tech, fan_in, PdnStyle::Cmos)?;
        let hybrid = measure(&tech, fan_in, PdnStyle::HybridNems)?;
        let hybrid_wins_both =
            hybrid.delay < cmos.delay && hybrid.switching_power < cmos.switching_power;
        if hybrid_wins_both && crossover.is_none() {
            crossover = Some(fan_in);
        }
        println!(
            "{:>7} {:>9.1} ps {:>9.1} ps {:>8.0} µW {:>8.0} µW  {}",
            fan_in,
            cmos.delay * 1e12,
            hybrid.delay * 1e12,
            cmos.switching_power * 1e6,
            hybrid.switching_power * 1e6,
            if hybrid_wins_both {
                "hybrid (both)"
            } else {
                "split"
            },
        );
    }
    match crossover {
        Some(n) => println!("\nhybrid wins both metrics from fan-in {n} on (paper: beyond ~12)"),
        None => println!("\nno crossover found in the swept range"),
    }
    Ok(())
}
