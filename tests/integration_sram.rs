//! End-to-end SRAM experiments across crates (Section 5).

use nemscmos::spice::analysis::tran::{transient, TranOptions};
use nemscmos::spice::waveform::Waveform;
use nemscmos::sram::{
    butterfly_curves, read_latency, standby_leakage, ReadMode, SramCell, SramKind, SramParams,
    ZeroSide,
};
use nemscmos::tech::Technology;

#[test]
fn write_operation_flips_every_cell_kind() {
    // Drive the bit lines differentially with the word line pulsed: the
    // cell must flip from the 1-state to the 0-state.
    let tech = Technology::n90();
    for kind in SramKind::all() {
        let params = SramParams::new(kind);
        let mut cell = SramCell::build(
            &tech,
            &params,
            Waveform::pulse(0.0, tech.vdd, 1e-9, 50e-12, 50e-12, 3e-9, 20e-9),
            Waveform::dc(0.0),      // BL low: write 0 into QL
            Waveform::dc(tech.vdd), // BLB high
        );
        cell.set_state_ics(&tech, ZeroSide::Right); // starts with QL = 1
        let opts = TranOptions {
            dt_max: Some(20e-12),
            ..Default::default()
        };
        let res =
            transient(&mut cell.circuit, 6e-9, &opts).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(
            res.voltage(cell.ql).last_value() < 0.15,
            "{kind:?}: write failed, v(ql) = {}",
            res.voltage(cell.ql).last_value()
        );
        assert!(
            res.voltage(cell.qr).last_value() > 1.0,
            "{kind:?}: qr did not rise"
        );
    }
}

#[test]
fn hold_snm_exceeds_read_snm_for_all_kinds() {
    let tech = Technology::n90();
    for kind in SramKind::all() {
        let params = SramParams::new(kind);
        let hold = butterfly_curves(&tech, &params, ReadMode::Hold)
            .unwrap()
            .snm
            .snm();
        let read = butterfly_curves(&tech, &params, ReadMode::Read)
            .unwrap()
            .snm
            .snm();
        assert!(
            read < hold,
            "{kind:?}: read SNM {read:.3} should be below hold SNM {hold:.3}"
        );
        assert!(read > 0.1, "{kind:?}: read SNM {read:.3} unusably small");
    }
}

#[test]
fn leakage_ordering_and_magnitudes() {
    let tech = Technology::n90();
    let leak = |kind| {
        let params = SramParams::new(kind);
        let a = standby_leakage(&tech, &params, ZeroSide::Left).unwrap();
        let b = standby_leakage(&tech, &params, ZeroSide::Right).unwrap();
        0.5 * (a + b)
    };
    let conv = leak(SramKind::Conventional);
    let dual = leak(SramKind::DualVt);
    let asym = leak(SramKind::Asymmetric);
    let hybrid = leak(SramKind::Hybrid);
    assert!(
        hybrid < dual && hybrid < asym && hybrid < conv,
        "hybrid must leak least"
    );
    assert!(
        dual < conv && asym < conv,
        "both baselines beat conventional"
    );
    // Conventional cell leaks ~100s of nA; hybrid tens of nA
    // (access-transistor limited).
    assert!(conv > 50e-9 && conv < 1e-6, "conv = {conv:.3e}");
    assert!(hybrid > 1e-9, "access transistors still leak: {hybrid:.3e}");
}

#[test]
fn read_does_not_destroy_the_stored_value() {
    let tech = Technology::n90();
    for kind in SramKind::all() {
        let params = SramParams::new(kind);
        let mut cell = SramCell::build_read_column(&tech, &params, 1.0e-9, 1.3e-9);
        cell.set_state_ics(&tech, ZeroSide::Right);
        let opts = TranOptions {
            dt_max: Some(10e-12),
            ..Default::default()
        };
        let res = transient(&mut cell.circuit, 6e-9, &opts).unwrap();
        // After the read the cell still holds QR = 0.
        assert!(
            res.voltage(cell.qr).last_value() < 0.45,
            "{kind:?}: read upset the cell (v(qr) = {:.3})",
            res.voltage(cell.qr).last_value()
        );
    }
}

#[test]
fn column_leakage_slows_the_read() {
    // The paper's §5.1 point: OFF access transistors of unaccessed cells
    // leak onto the bit line and erode the sensing margin.
    let tech = Technology::n90();
    let small = SramParams {
        column_cells: 16,
        ..SramParams::new(SramKind::Conventional)
    };
    let large = SramParams {
        column_cells: 1024,
        ..SramParams::new(SramKind::Conventional)
    };
    let t_small = read_latency(&tech, &small, ZeroSide::Right).unwrap();
    let t_large = read_latency(&tech, &large, ZeroSide::Right).unwrap();
    assert!(
        t_large > t_small,
        "1024-cell column ({t_large:.3e}) should read slower than 16-cell ({t_small:.3e})"
    );
}
