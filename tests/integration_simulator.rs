//! Cross-crate integration: calibrated devices running inside the MNA
//! engine, checked against closed-form circuit theory.

use nemscmos::analysis::measure::{propagation_delay, Edge};
use nemscmos::devices::mosfet::{MosModel, Mosfet};
use nemscmos::spice::analysis::op::op;
use nemscmos::spice::analysis::tran::{transient, IntegrationMethod, TranOptions};
use nemscmos::spice::circuit::Circuit;
use nemscmos::spice::waveform::Waveform;
use nemscmos::tech::Technology;

// Re-export shim: the device type lives in nemscmos-devices.
use nemscmos::devices as devices_crate;

#[test]
fn inverter_transfer_curve_has_full_swing_and_gain() {
    let tech = Technology::n90();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
    let vsrc = ckt.vsource(vin, Circuit::GROUND, Waveform::dc(0.0));
    tech.add_inverter(&mut ckt, "inv", vdd, vin, out, 2.0, 1.0);
    let values: Vec<f64> = (0..=60).map(|k| tech.vdd * k as f64 / 60.0).collect();
    let results =
        nemscmos::spice::analysis::dc_sweep::dc_sweep(&mut ckt, vsrc, &values, &Default::default())
            .expect("sweep");
    let outs: Vec<f64> = results.iter().map(|r| r.voltage(out)).collect();
    // Full swing at the rails.
    assert!(outs[0] > 1.15);
    assert!(outs[60] < 0.05);
    // Monotone decreasing.
    for w in outs.windows(2) {
        assert!(w[1] <= w[0] + 1e-6);
    }
    // Maximum gain well above 1 (regenerative).
    let max_gain = outs
        .windows(2)
        .map(|w| (w[0] - w[1]) / (tech.vdd / 60.0))
        .fold(0.0f64, f64::max);
    assert!(max_gain > 4.0, "peak inverter gain = {max_gain:.2}");
}

#[test]
fn ring_oscillator_oscillates_at_plausible_frequency() {
    let tech = Technology::n90();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
    // 5-stage ring.
    let stages = 5;
    let nodes: Vec<_> = (0..stages).map(|k| ckt.node(&format!("n{k}"))).collect();
    for k in 0..stages {
        let input = nodes[k];
        let output = nodes[(k + 1) % stages];
        tech.add_inverter(&mut ckt, &format!("inv{k}"), vdd, input, output, 2.0, 1.0);
    }
    // Kick the ring out of its metastable point.
    ckt.set_ic(nodes[0], tech.vdd);
    ckt.set_ic(nodes[1], 0.0);
    let opts = TranOptions {
        dt_max: Some(5e-12),
        ..Default::default()
    };
    let res = transient(&mut ckt, 3e-9, &opts).expect("ring transient");
    let v0 = res.voltage(nodes[0]);
    // Count rising crossings of vdd/2 in the back half (settled region).
    let mut crossings = 0;
    let mut t = 1.0e-9;
    while let Some(tc) = v0.crossing_rising(tech.vdd / 2.0, t) {
        crossings += 1;
        t = tc + 1e-12;
        if crossings > 1000 {
            break;
        }
    }
    assert!(
        crossings >= 2,
        "ring should oscillate, saw {crossings} rising edges"
    );
    // Period sanity: 2·N·t_inv with t_inv ~ 5-30 ps → 50-300 ps period →
    // at least 6 periods in 2 ns.
    assert!(
        crossings >= 6,
        "frequency too low: {crossings} edges in 2 ns"
    );
}

#[test]
fn mosfet_in_circuit_matches_model_card_current() {
    // A grounded-source NMOS fed by an ideal drain supply must draw
    // exactly the model current through that supply.
    let model = MosModel::nmos_90nm();
    let mut ckt = Circuit::new();
    let d = ckt.node("d");
    let g = ckt.node("g");
    let vd = ckt.vsource(d, Circuit::GROUND, Waveform::dc(1.2));
    ckt.vsource(g, Circuit::GROUND, Waveform::dc(1.2));
    ckt.add_device(Mosfet::new("m1", model.clone(), d, g, Circuit::GROUND, 3.0));
    let res = op(&mut ckt).expect("op");
    let (expect, ..) = model.ids(1.2, 1.2, 0.0, 3.0);
    let got = -res.source_current(vd);
    assert!(
        (got - expect).abs() / expect < 1e-6,
        "circuit current {got:.6e} vs model {expect:.6e}"
    );
}

#[test]
fn trapezoidal_and_backward_euler_agree_on_smooth_rc() {
    let build = || {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-9));
        ckt.resistor(a, b, 1e3);
        ckt.capacitor(b, Circuit::GROUND, 1e-9);
        (ckt, b)
    };
    let run = |method| {
        let (mut ckt, b) = build();
        let opts = TranOptions {
            method,
            dt_max: Some(20e-9),
            ..Default::default()
        };
        let res = transient(&mut ckt, 5e-6, &opts).expect("tran");
        res.voltage(b).eval(2e-6)
    };
    let tr = run(IntegrationMethod::Trapezoidal);
    let be = run(IntegrationMethod::BackwardEuler);
    let analytic = 1.0 - (-2.0f64).exp();
    assert!(
        (tr - analytic).abs() < 5e-3,
        "TR {tr} vs analytic {analytic}"
    );
    assert!(
        (be - analytic).abs() < 2e-2,
        "BE {be} vs analytic {analytic}"
    );
}

#[test]
fn large_circuit_exercises_sparse_path() {
    // 80 inverter stages → ~84 unknowns: beyond the dense threshold.
    let tech = Technology::n90();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
    ckt.vsource(
        vin,
        Circuit::GROUND,
        Waveform::step(0.0, tech.vdd, 0.1e-9, 30e-12),
    );
    let mut prev = vin;
    let mut last = vin;
    for k in 0..80 {
        let out = ckt.node(&format!("n{k}"));
        tech.add_inverter(&mut ckt, &format!("i{k}"), vdd, prev, out, 2.0, 1.0);
        prev = out;
        last = out;
    }
    assert!(ckt.num_unknowns() > 64, "should use the sparse backend");
    let opts = TranOptions {
        dt_max: Some(20e-12),
        ..Default::default()
    };
    let res = transient(&mut ckt, 6e-9, &opts).expect("chain transient");
    let vin_t = res.voltage(vin);
    let vout_t = res.voltage(last);
    // Even stage count: output follows input polarity.
    let d = propagation_delay(
        &vin_t,
        Edge::Rising,
        &vout_t,
        Edge::Rising,
        tech.vdd / 2.0,
        0.0,
    )
    .expect("edge propagates");
    assert!(d > 100e-12 && d < 5e-9, "80-stage delay = {d:.3e}");
    let _ = devices_crate::VT_300K; // cross-crate re-export sanity
}

#[test]
fn ac_gain_of_common_source_stage_matches_gm() {
    // Low-frequency gain of a resistor-loaded common-source NMOS is
    // −gm·(R_L ∥ r_o); the AC analysis must linearize the device to the
    // same small-signal parameters the model card reports.
    use nemscmos::devices::mosfet::Mosfet;
    use nemscmos::spice::analysis::ac::{ac, log_sweep};

    let model = MosModel::nmos_90nm();
    let r_load = 2e3;
    let v_bias = 0.5;

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
    let vin = ckt.vsource(g, Circuit::GROUND, Waveform::dc(v_bias));
    ckt.resistor(vdd, d, r_load);
    ckt.capacitor(d, Circuit::GROUND, 200e-15);
    ckt.add_device(Mosfet::new("m1", model.clone(), d, g, Circuit::GROUND, 1.0));

    // Find the actual drain bias, then the model's gm/gds there.
    let op_res = op(&mut ckt).expect("bias point");
    let vd = op_res.voltage(d);
    let (_, gm, gds, _) = model.ids(v_bias, vd, 0.0, 1.0);
    let expected_gain = gm * (1.0 / (1.0 / r_load + gds));

    let freqs = log_sweep(1e3, 1e9, 10);
    let res = ac(&mut ckt, vin, &freqs, &Default::default()).expect("ac");
    let gain_lf = res.voltage(d)[0].abs();
    assert!(
        (gain_lf - expected_gain).abs() / expected_gain < 0.02,
        "AC gain {gain_lf:.3} vs gm-based {expected_gain:.3}"
    );
    // The 200 fF load pole (~0.6 GHz) rolls the gain off in-band.
    let gain_hf = res.voltage(d).last().unwrap().abs();
    assert!(gain_hf < 0.7 * gain_lf, "load pole should bite by 1 GHz");
}
