//! The paper's headline quantitative claims, asserted with generous bands
//! (the substrate is our simulator, not the authors' HSPICE testbed, so
//! we require the *shape* — who wins, by roughly what factor, where the
//! crossovers fall). EXPERIMENTS.md records exact paper-vs-measured.

use nemscmos::devices::characterize::{ioff, ion};
use nemscmos::devices::mosfet::{MosModel, Polarity};
use nemscmos::devices::nemfet::NemsModel;
use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::sram::{
    butterfly_curves, read_latency, standby_leakage, ReadMode, SramKind, SramParams, ZeroSide,
};
use nemscmos::tech::Technology;

/// Abstract/Table 1: device calibration is exact.
#[test]
fn claim_table1_calibration() {
    let vdd = 1.2;
    let nmos = MosModel::nmos_90nm();
    assert!((ion(&nmos, vdd) - 1110e-6).abs() / 1110e-6 < 0.01);
    assert!((ioff(&nmos, vdd) - 50e-9).abs() / 50e-9 < 0.01);
    let nems = NemsModel::nems_90nm(Polarity::Nmos);
    let (nems_ion, ..) = nems.contact.ids(vdd, vdd, 0.0, 1.0);
    assert!((nems_ion - 330e-6).abs() / 330e-6 < 0.01);
    assert!((nems.g_off_per_um * vdd - 110e-12).abs() / 110e-12 < 0.01);
}

/// Abstract: "60-80% lower switching power ... with minor delay penalty".
/// Our contention model lands at the aggressive end; require ≥ 50%.
#[test]
fn claim_hybrid_or_power_and_delay() {
    let tech = Technology::n90();
    let cmos = DynamicOrGate::build(&tech, &DynamicOrParams::new(8, 1, PdnStyle::Cmos))
        .characterize(&tech)
        .expect("cmos");
    let hybrid = DynamicOrGate::build(&tech, &DynamicOrParams::new(8, 1, PdnStyle::HybridNems))
        .characterize(&tech)
        .expect("hybrid");
    let saving = 1.0 - hybrid.switching_power / cmos.switching_power;
    assert!(saving > 0.5, "switching-power saving {saving:.2}");
    let delay_penalty = hybrid.delay / cmos.delay - 1.0;
    assert!(
        (-0.05..0.35).contains(&delay_penalty),
        "delay penalty {delay_penalty:.2} should be minor"
    );
    // "almost zero leakage power"
    assert!(hybrid.leakage_power < cmos.leakage_power / 50.0);
}

/// Abstract: "the hybrid gate outperforms its CMOS counterpart both in
/// terms of delay and switching power with increase in fan-in beyond 12".
#[test]
fn claim_fan_in_crossover() {
    let tech = Technology::n90();
    let measure = |fan_in, style| {
        DynamicOrGate::build(&tech, &DynamicOrParams::new(fan_in, 3, style))
            .characterize(&tech)
            .expect("gate")
    };
    // At fan-in 12 and 16 the hybrid wins both metrics.
    for fan_in in [12usize, 16] {
        let c = measure(fan_in, PdnStyle::Cmos);
        let h = measure(fan_in, PdnStyle::HybridNems);
        assert!(h.delay < c.delay, "fan-in {fan_in}: delay");
        assert!(
            h.switching_power < c.switching_power,
            "fan-in {fan_in}: power"
        );
    }
    // At fan-in 4 the CMOS gate is still faster (no premature crossover).
    let c4 = measure(4, PdnStyle::Cmos);
    let h4 = measure(4, PdnStyle::HybridNems);
    assert!(h4.delay > c4.delay, "fan-in 4: CMOS should be faster");
}

/// Abstract: "hybrid SRAM cell can achieve almost 8X lower standby leakage
/// power consumption with only minor noise margin and latency cost"
/// (7.7x, 14% SNM, 23% latency in §1).
#[test]
fn claim_hybrid_sram() {
    let tech = Technology::n90();
    let avg = |kind, f: &dyn Fn(&SramParams, ZeroSide) -> f64| {
        let p = SramParams::new(kind);
        0.5 * (f(&p, ZeroSide::Left) + f(&p, ZeroSide::Right))
    };
    let leak = |p: &SramParams, z| standby_leakage(&tech, p, z).expect("leak");
    let lat = |p: &SramParams, z| read_latency(&tech, p, z).expect("lat");

    let leak_ratio = avg(SramKind::Conventional, &leak) / avg(SramKind::Hybrid, &leak);
    assert!(
        (4.0..16.0).contains(&leak_ratio),
        "leakage reduction {leak_ratio:.1}x (paper 7.7x)"
    );

    let snm_conv = butterfly_curves(
        &tech,
        &SramParams::new(SramKind::Conventional),
        ReadMode::Read,
    )
    .expect("conv")
    .snm
    .snm();
    let snm_hybrid = butterfly_curves(&tech, &SramParams::new(SramKind::Hybrid), ReadMode::Read)
        .expect("hybrid")
        .snm
        .snm();
    let snm_loss = 1.0 - snm_hybrid / snm_conv;
    assert!(
        (0.02..0.30).contains(&snm_loss),
        "SNM loss {snm_loss:.2} (paper 0.14)"
    );

    let lat_penalty = avg(SramKind::Hybrid, &lat) / avg(SramKind::Conventional, &lat) - 1.0;
    assert!(
        (0.0..0.5).contains(&lat_penalty),
        "latency penalty {lat_penalty:.2} (paper 0.23)"
    );
}

/// Abstract: "upto three orders of magnitude lower OFF current" for NEMS
/// sleep transistors "with negligible performance degradation".
#[test]
fn claim_sleep_transistors() {
    use nemscmos::sleep::{characterize_block, sleep_device_figures, GatedBlock, SleepStyle};
    let tech = Technology::n90();
    let cmos = sleep_device_figures(&tech, SleepStyle::CmosFooter, 2.0);
    let nems = sleep_device_figures(&tech, SleepStyle::NemsFooter, 2.0);
    let decades = (cmos.i_off / nems.i_off).log10();
    assert!(
        (2.0..3.5).contains(&decades),
        "{decades:.2} decades of I_off reduction"
    );
    let fig = characterize_block(&tech, &GatedBlock::coarse_footer(4, true, 8.0)).expect("block");
    assert!(
        fig.delay_penalty() < 0.12,
        "negligible degradation, got {:.3}",
        fig.delay_penalty()
    );
}

/// Figure 2: the NEMS effective swing sits far below the 60 mV/dec CMOS
/// limit (the paper cites a 2 mV/dec measurement).
#[test]
fn claim_subthreshold_swing_ordering() {
    use nemscmos::devices::characterize::{measured_swing, nems_effective_swing};
    let bulk = measured_swing(&MosModel::nmos_90nm(), 1.2).expect("bulk swing");
    let nems = nems_effective_swing(&NemsModel::nems_90nm(Polarity::Nmos), 1.2);
    assert!(bulk > 60e-3, "bulk CMOS above the thermal limit");
    assert!(nems < 2e-3, "NEMS below 2 mV/dec, got {nems:.4}");
}
