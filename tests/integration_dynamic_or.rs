//! End-to-end dynamic OR gate experiments across crates (Section 4).

use nemscmos::gates::{
    input_noise_margin, keeper_width_for, DynamicOrGate, DynamicOrParams, KeeperStyle, PdnStyle,
};
use nemscmos::tech::Technology;

#[test]
fn both_styles_evaluate_at_every_figure_fan_in() {
    let tech = Technology::n90();
    for fan_in in [4usize, 8, 12, 16] {
        for style in [PdnStyle::Cmos, PdnStyle::HybridNems] {
            let params = DynamicOrParams::new(fan_in, 3, style);
            let fig = DynamicOrGate::build(&tech, &params)
                .characterize(&tech)
                .unwrap_or_else(|e| panic!("{style:?} fan-in {fan_in}: {e}"));
            assert!(fig.delay > 1e-12 && fig.delay < 1e-9);
            assert!(fig.switching_power > 0.0);
        }
    }
}

#[test]
fn keeper_contention_is_the_cmos_power_story() {
    // With a feedback (conditional) keeper the CMOS gate's switching power
    // collapses — demonstrating that contention, not load charging,
    // dominates the conventional gate (the paper's §4.2 argument).
    let tech = Technology::n90();
    let always_on = DynamicOrParams::new(8, 1, PdnStyle::Cmos);
    let feedback = DynamicOrParams {
        keeper_style: KeeperStyle::Feedback,
        ..DynamicOrParams::new(8, 1, PdnStyle::Cmos)
    };
    let p_on = DynamicOrGate::build(&tech, &always_on)
        .characterize(&tech)
        .expect("always-on")
        .switching_power;
    let p_fb = DynamicOrGate::build(&tech, &feedback)
        .characterize(&tech)
        .expect("feedback")
        .switching_power;
    assert!(
        p_on > 3.0 * p_fb,
        "contention should dominate: always-on {p_on:.3e} vs feedback {p_fb:.3e}"
    );
}

#[test]
fn hybrid_gate_keeps_minimum_keeper_at_any_fan_in() {
    let tech = Technology::n90();
    for fan_in in [2usize, 8, 32, 128] {
        let wk = keeper_width_for(&tech, PdnStyle::HybridNems, fan_in, 2.0, 3.0, 0.15);
        assert_eq!(wk, tech.w_min, "fan-in {fan_in}");
    }
}

#[test]
fn noise_margin_tracks_pull_in_voltage_for_hybrid() {
    let tech = Technology::n90();
    let params = DynamicOrParams::new(4, 1, PdnStyle::HybridNems);
    let nm = input_noise_margin(&tech, &params).expect("hybrid NM");
    // The hybrid PDN cannot conduct until the NEMS actuates: the noise
    // margin sits at or above the pull-in voltage.
    assert!(
        nm >= tech.nems_n.v_pull_in - 0.05,
        "NM {nm:.3} should be near v_pull_in {:.3}",
        tech.nems_n.v_pull_in
    );
}

#[test]
fn per_branch_vth_shifts_change_only_the_shifted_gate() {
    let tech = Technology::n90();
    let nominal = DynamicOrParams::new(4, 1, PdnStyle::Cmos);
    // Shift only non-switching branches: the worst-case delay through
    // branch 0 must stay (nearly) unchanged.
    let shifted = DynamicOrParams {
        pdn_vth_shifts: vec![0.0, 0.1, 0.1, 0.1],
        ..nominal.clone()
    };
    let d_nom = DynamicOrGate::build(&tech, &nominal)
        .characterize(&tech)
        .unwrap()
        .delay;
    let d_sh = DynamicOrGate::build(&tech, &shifted)
        .characterize(&tech)
        .unwrap()
        .delay;
    assert!(
        (d_sh - d_nom).abs() / d_nom < 0.05,
        "off-path shifts changed delay: {d_nom:.3e} vs {d_sh:.3e}"
    );
}

#[test]
fn domino_cascade_propagates_monotonically() {
    // Two hand-built hybrid domino stages sharing one clock: stage 2's
    // input is stage 1's buffered output, so it may only evaluate after
    // stage 1 does — the monotonicity property domino logic relies on.
    use nemscmos::analysis::measure::{crossing_time, Edge};
    use nemscmos::spice::analysis::tran::{transient, TranOptions};
    use nemscmos::spice::circuit::Circuit;
    use nemscmos::spice::waveform::Waveform;

    let tech = Technology::n90();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let clk = ckt.node("clk");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
    ckt.vsource(
        clk,
        Circuit::GROUND,
        Waveform::pulse(0.0, tech.vdd, 1e-9, 30e-12, 30e-12, 2.5e-9, 40e-9),
    );
    let a = ckt.node("a");
    ckt.vsource(
        a,
        Circuit::GROUND,
        Waveform::step(0.0, tech.vdd, 1.1e-9, 30e-12),
    );

    // One domino stage: precharge + keeper + (NMOS, NEMS) branch + buffer.
    let stage = |ckt: &mut Circuit, tag: &str, input| {
        let dyn_node = ckt.node(&format!("{tag}.dyn"));
        let mid = ckt.node(&format!("{tag}.mid"));
        let foot = ckt.node(&format!("{tag}.foot"));
        let out = ckt.node(&format!("{tag}.out"));
        tech.add_pmos(ckt, &format!("{tag}.prech"), dyn_node, clk, vdd, 3.0);
        tech.add_pmos(
            ckt,
            &format!("{tag}.keep"),
            dyn_node,
            Circuit::GROUND,
            vdd,
            0.2,
        );
        tech.add_nmos(ckt, &format!("{tag}.in"), dyn_node, input, mid, 2.0);
        tech.add_nems_n(ckt, &format!("{tag}.nems"), mid, input, foot, 3.0);
        tech.add_nmos(ckt, &format!("{tag}.foot"), foot, clk, Circuit::GROUND, 4.0);
        tech.add_inverter(ckt, &format!("{tag}.buf"), vdd, dyn_node, out, 2.0, 1.0);
        out
    };
    let out1 = stage(&mut ckt, "s1", a);
    let out2 = stage(&mut ckt, "s2", out1);

    let opts = TranOptions {
        dt_max: Some(10e-12),
        ..Default::default()
    };
    let res = transient(&mut ckt, 3.4e-9, &opts).expect("cascade transient");
    let t1 = crossing_time(&res.voltage(out1), tech.vdd / 2.0, Edge::Rising, 0.0)
        .expect("stage 1 evaluates");
    let t2 = crossing_time(&res.voltage(out2), tech.vdd / 2.0, Edge::Rising, 0.0)
        .expect("stage 2 evaluates");
    assert!(t2 > t1, "stage 2 ({t2:.3e}) must follow stage 1 ({t1:.3e})");
    let stage_delay = t2 - t1;
    assert!(
        stage_delay > 5e-12 && stage_delay < 500e-12,
        "stage delay {stage_delay:.3e}"
    );
    // Before the clock rises nothing evaluates.
    assert!(res.voltage(out2).eval(0.9e-9) < 0.1);
}

#[test]
fn evaluation_is_clock_gated() {
    // Without any high input the output must stay low for the whole cycle.
    let tech = Technology::n90();
    let mut params = DynamicOrParams::new(8, 1, PdnStyle::Cmos);
    params.pdn_vth_shifts = vec![0.0; 8];
    let mut gate = DynamicOrGate::build_noise_probe(&tech, &params, 0.0);
    assert!(gate.holds_output_low(&tech).expect("probe"));
}
