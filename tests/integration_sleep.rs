//! End-to-end sleep-transistor experiments across crates (Section 6).

use nemscmos::sleep::{
    characterize_block, sleep_device_figures, GatedBlock, GrainStyle, RailStyle, SleepStyle,
};
use nemscmos::tech::Technology;

#[test]
fn device_level_figure17_claims() {
    let tech = Technology::n90();
    // Equal area: NEMS leaks ~455x less (the Table 1 ratio) but has
    // ~3.4x the on-resistance (1110/330).
    let cmos = sleep_device_figures(&tech, SleepStyle::CmosFooter, 2.0);
    let nems = sleep_device_figures(&tech, SleepStyle::NemsFooter, 2.0);
    let leak_ratio = cmos.i_off / nems.i_off;
    assert!(
        (300.0..700.0).contains(&leak_ratio),
        "leak ratio {leak_ratio:.0}"
    );
    let ron_ratio = nems.r_on_ohms / cmos.r_on_ohms;
    assert!((2.0..5.0).contains(&ron_ratio), "R_on ratio {ron_ratio:.2}");
    // Sized-up NEMS: matches CMOS R_on while still leaking >100x less.
    let nems_big = sleep_device_figures(&tech, SleepStyle::NemsFooter, 2.0 * ron_ratio);
    assert!(nems_big.r_on_ohms <= cmos.r_on_ohms * 1.05);
    assert!(cmos.i_off / nems_big.i_off > 100.0);
}

#[test]
fn all_four_rail_styles_gate_leakage() {
    let tech = Technology::n90();
    for (rail, nems, width) in [
        (RailStyle::Footer, false, 2.0),
        (RailStyle::Footer, true, 2.0),
        (RailStyle::Header, false, 3.0),
        (RailStyle::Header, true, 3.0),
    ] {
        let block = GatedBlock {
            stages: 4,
            rail,
            grain: GrainStyle::Coarse,
            nems,
            sleep_width: width,
        };
        let fig = characterize_block(&tech, &block)
            .unwrap_or_else(|e| panic!("{rail:?}/nems={nems}: {e}"));
        assert!(
            fig.leakage_reduction() > 1.5,
            "{rail:?}/nems={nems}: reduction {:.2}",
            fig.leakage_reduction()
        );
        assert!(
            fig.delay_penalty() < 1.0,
            "{rail:?}/nems={nems}: penalty {:.2}",
            fig.delay_penalty()
        );
    }
}

#[test]
fn nems_footer_beats_cmos_footer_on_gated_leakage() {
    let tech = Technology::n90();
    let cmos = characterize_block(&tech, &GatedBlock::coarse_footer(4, false, 2.0)).unwrap();
    let nems = characterize_block(&tech, &GatedBlock::coarse_footer(4, true, 2.0)).unwrap();
    assert!(nems.sleep_leakage < cmos.sleep_leakage / 50.0);
    // Both see the same ungated reference.
    assert!((nems.ungated_leakage - cmos.ungated_leakage).abs() / cmos.ungated_leakage < 0.05);
}

#[test]
fn sizing_up_nems_trades_leakage_for_speed() {
    let tech = Technology::n90();
    let small = characterize_block(&tech, &GatedBlock::coarse_footer(4, true, 2.0)).unwrap();
    let big = characterize_block(&tech, &GatedBlock::coarse_footer(4, true, 8.0)).unwrap();
    assert!(big.delay_penalty() < small.delay_penalty());
    assert!(big.sleep_leakage > small.sleep_leakage);
    // The paper's conclusion: sized-up NEMS has negligible performance
    // cost with orders-of-magnitude leakage savings.
    assert!(
        big.delay_penalty() < 0.12,
        "sized-up penalty {:.3}",
        big.delay_penalty()
    );
    assert!(big.leakage_reduction() > 100.0);
}
