//! Property tests of the batched SoA device-evaluation path, running on
//! the vendored `nemscmos_numeric::check` runner.
//!
//! Two layers:
//!
//! * a stamp-level property that rebuilds the engine's batch plan by hand
//!   over random mixed device lists (several MOSFET cards, NEMFETs in
//!   both hysteresis states, a `DynamicNemfet` with internal unknowns)
//!   and asserts the gather → eval → scatter pipeline reproduces the
//!   scalar `load` loop's Jacobian/residual push sequence bit for bit;
//! * an end-to-end property that runs random NEMS+MOS stage chains
//!   through op → transient → `reset_device_state` → op under the default
//!   profile and under the `scalar_device_eval` pin, comparing every
//!   sampled voltage bitwise — including decks whose gate drives cross
//!   `v_pull_in`, exercising the discrete pull-in re-solve and the
//!   commit/reset state machine.

use std::collections::HashMap;

use nemscmos_devices::mosfet::{MosModel, Mosfet, Polarity, HIGH_VT_SHIFT};
use nemscmos_devices::nemfet::{DynamicNemfet, MechanicalParams, Nemfet, NemsModel};
use nemscmos_mems::dynamics::ActuatorDynamics;
use nemscmos_mems::electrostatics::Actuator;
use nemscmos_numeric::check::{check, Config, Draws};
use nemscmos_numeric::prop_check;
use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::device::{Device, EvalBatch, LoadContext, Solution};
use nemscmos_spice::element::NodeId;
use nemscmos_spice::profile::{self, MatrixBackend, SolveProfile};
use nemscmos_spice::stamp::{StampSection, Stamper};
use nemscmos_spice::waveform::Waveform;

/// Non-ground nodes available to the random device lists.
const NODES: usize = 5;

fn mech() -> MechanicalParams {
    let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 5e-9, 7.5);
    let dynamics = ActuatorDynamics::new(act, 4e-14, 2e-7);
    MechanicalParams::from_dynamics(&dynamics)
}

/// Mints `NODES` non-ground node ids (node ids are plain indices, so a
/// throwaway circuit is the supported way to obtain them).
fn node_ids() -> Vec<NodeId> {
    let mut ckt = Circuit::new();
    let mut ids = vec![NodeId::GROUND];
    for k in 0..NODES {
        ids.push(ckt.node(&format!("n{k}")));
    }
    ids
}

/// One random device in a stamp-level case.
#[derive(Debug, Clone)]
enum DevSpec {
    /// EKV MOSFET drawn from one of four model cards.
    Mos {
        card: usize,
        w: f64,
        d: usize,
        g: usize,
        s: usize,
    },
    /// Quasi-static NEMFET, optionally committed into contact.
    Nems {
        nmos: bool,
        w: f64,
        d: usize,
        g: usize,
        s: usize,
        pulled_in: bool,
    },
    /// Dynamic NEMFET: two internal unknowns, no batch key.
    Dyn {
        w: f64,
        d: usize,
        g: usize,
        s: usize,
    },
}

fn mos_card(card: usize) -> MosModel {
    match card {
        0 => MosModel::nmos_90nm(),
        1 => MosModel::pmos_90nm(),
        2 => MosModel::nmos_90nm().with_vth_shift(HIGH_VT_SHIFT),
        _ => MosModel::pmos_90nm().with_vth_shift(HIGH_VT_SHIFT),
    }
}

fn dev_spec(d: &mut Draws) -> DevSpec {
    let w = d.f64_in(0.2, 6.0);
    let dn = d.usize_in(0, NODES);
    // Keep the gate off ground (and distinct from the source) so a
    // `pulled_in` NEMFET can actually be committed into contact.
    let g = d.usize_in(1, NODES);
    let mut s = d.usize_in(0, NODES);
    if s == g {
        s = 0;
    }
    match d.usize_in(0, 7) {
        0..=3 => DevSpec::Mos {
            card: d.usize_in(0, 3),
            w,
            d: dn,
            g,
            s,
        },
        4..=6 => DevSpec::Nems {
            nmos: d.bool(),
            w,
            d: dn,
            g,
            s,
            pulled_in: d.bool(),
        },
        _ => DevSpec::Dyn { w, d: dn, g, s },
    }
}

/// Builds the boxed device list, assigning internal-unknown bases past the
/// node block exactly as circuit freeze would, and committing `pulled_in`
/// NEMFETs into contact through the public `commit` path.
fn build_devices(specs: &[DevSpec], ids: &[NodeId]) -> (Vec<Box<dyn Device>>, usize) {
    let ctx = LoadContext::dc(0.0);
    let mut devices: Vec<Box<dyn Device>> = Vec::new();
    let mut base = NODES;
    for (k, spec) in specs.iter().enumerate() {
        match *spec {
            DevSpec::Mos { card, w, d, g, s } => devices.push(Box::new(Mosfet::new(
                format!("m{k}"),
                mos_card(card),
                ids[d],
                ids[g],
                ids[s],
                w,
            ))),
            DevSpec::Nems {
                nmos,
                w,
                d,
                g,
                s,
                pulled_in,
            } => {
                let pol = if nmos { Polarity::Nmos } else { Polarity::Pmos };
                let mut dev = Nemfet::new(
                    format!("x{k}"),
                    NemsModel::nems_90nm(pol),
                    ids[d],
                    ids[g],
                    ids[s],
                    w,
                );
                if pulled_in {
                    // Drive the gate past v_pull_in (sign-corrected for
                    // P-type) and commit a DC point: contact is immediate.
                    let mut x = vec![0.0; NODES];
                    x[g - 1] = if nmos { 2.0 } else { -2.0 };
                    assert!(dev.commit(&Solution::new(&x), &ctx));
                    assert!(dev.is_pulled_in());
                }
                devices.push(Box::new(dev));
            }
            DevSpec::Dyn { w, d, g, s } => {
                let mut dev = DynamicNemfet::new(
                    format!("xd{k}"),
                    NemsModel::nems_90nm(Polarity::Nmos),
                    mech(),
                    ids[d],
                    ids[g],
                    ids[s],
                    w,
                );
                dev.set_internal_base(base);
                base += 2;
                devices.push(Box::new(dev));
            }
        }
    }
    (devices, base)
}

/// Random unknown vector: volt-scale node voltages, then per dynamic
/// device a displacement inside the gap and a modest velocity (keeping
/// every electrostatic force evaluation finite).
fn unknown_vector(specs: &[DevSpec], n: usize, d: &mut Draws) -> Vec<f64> {
    let gap = mech().gap;
    let mut x = vec![0.0; n];
    for v in x.iter_mut().take(NODES) {
        *v = d.f64_in(-1.2, 1.2);
    }
    let mut at = NODES;
    for spec in specs {
        if let DevSpec::Dyn { .. } = spec {
            x[at] = d.f64_in(0.0, 0.8 * gap);
            x[at + 1] = d.f64_in(-0.5, 0.5);
            at += 2;
        }
    }
    x
}

/// Stamps every device through the scalar `load` loop, returning the raw
/// push-ordered Jacobian triplets (bit-patterns) and the residual.
fn scalar_stamps(
    devices: &[Box<dyn Device>],
    x: &[f64],
    n: usize,
) -> (Vec<(usize, usize, u64)>, Vec<u64>) {
    let ctx = LoadContext::dc(0.0);
    let sol = Solution::new(x);
    let mut st = Stamper::new(n);
    for (i, dev) in devices.iter().enumerate() {
        st.set_section(StampSection::Device(i));
        dev.load(&sol, &ctx, &mut st);
    }
    collect(&st)
}

/// Rebuilds the engine's batch plan by hand (first-seen key order, lane =
/// arrival order within a batch) and stamps through gather → shared eval →
/// per-device scatter, falling back to `load` for keyless devices.
fn batched_stamps(
    devices: &[Box<dyn Device>],
    x: &[f64],
    n: usize,
) -> (Vec<(usize, usize, u64)>, Vec<u64>) {
    let ctx = LoadContext::dc(0.0);
    let sol = Solution::new(x);
    let mut batches: Vec<Vec<usize>> = Vec::new();
    let mut membership: Vec<Option<(usize, usize)>> = vec![None; devices.len()];
    let mut index: HashMap<u64, usize> = HashMap::new();
    for (i, dev) in devices.iter().enumerate() {
        if let Some(key) = dev.batch_key() {
            let b = *index.entry(key).or_insert_with(|| {
                batches.push(Vec::new());
                batches.len() - 1
            });
            membership[i] = Some((b, batches[b].len()));
            batches[b].push(i);
        }
    }
    let mut scratch: Vec<EvalBatch> = Vec::new();
    scratch.resize_with(batches.len(), EvalBatch::new);
    for (b, members) in batches.iter().enumerate() {
        let batch = &mut scratch[b];
        batch.clear();
        for &i in members {
            devices[i].batch_gather(&sol, batch);
        }
        devices[members[0]].batch_eval(&ctx, batch);
    }
    let mut st = Stamper::new(n);
    for (i, dev) in devices.iter().enumerate() {
        st.set_section(StampSection::Device(i));
        match membership[i] {
            Some((b, lane)) => dev.batch_scatter(lane, &scratch[b], &sol, &ctx, &mut st),
            None => dev.load(&sol, &ctx, &mut st),
        }
    }
    collect(&st)
}

fn collect(st: &Stamper) -> (Vec<(usize, usize, u64)>, Vec<u64>) {
    let jac = st
        .jacobian_entries()
        .into_iter()
        .map(|(r, c, v)| (r, c, v.to_bits()))
        .collect();
    let res = st.residual().iter().map(|v| v.to_bits()).collect();
    (jac, res)
}

/// Batch partitioning preserves each instance's stamp push order: over
/// random mixed device lists the manually orchestrated batched pipeline
/// reproduces the scalar loop's raw triplet stream bit for bit.
#[test]
fn batched_pipeline_matches_scalar_push_order() {
    let ids = node_ids();
    // Pin the sparse backend: its triplet store keeps duplicate entries
    // unsummed in push order, so equality of `jacobian_entries` is
    // equality of the entire stamp-call sequence, not just of the sums.
    let pin = SolveProfile {
        matrix_backend: Some(MatrixBackend::Sparse),
        ..Default::default()
    };
    check(
        "batched pipeline matches scalar push order",
        &Config::with_cases(48),
        |d| {
            let specs = d.vec_of(1, 12, dev_spec);
            let n = NODES
                + 2 * specs
                    .iter()
                    .filter(|s| matches!(s, DevSpec::Dyn { .. }))
                    .count();
            let x = unknown_vector(&specs, n, d);
            (specs, x)
        },
        |(specs, x)| {
            let (devices, n) = build_devices(specs, &ids);
            let (scalar_jac, scalar_res) = profile::with(pin, || scalar_stamps(&devices, x, n));
            let (batch_jac, batch_res) = profile::with(pin, || batched_stamps(&devices, x, n));
            prop_check!(
                scalar_jac.len() == batch_jac.len(),
                "triplet streams diverge in length: {} scalar vs {} batched",
                scalar_jac.len(),
                batch_jac.len()
            );
            for (k, (a, b)) in scalar_jac.iter().zip(&batch_jac).enumerate() {
                prop_check!(
                    a == b,
                    "triplet {k} differs: scalar ({}, {}, {:#018x}) vs batched ({}, {}, {:#018x})",
                    a.0,
                    a.1,
                    a.2,
                    b.0,
                    b.1,
                    b.2
                );
            }
            prop_check!(scalar_res == batch_res, "residual vectors differ bitwise");
            Ok(())
        },
    );
}

/// The batch plan itself is well-formed: keyed devices group by exact key
/// in first-seen order, keys never straddle batches, and internal-unknown
/// devices (no key) always fall through to scalar `load`.
#[test]
fn batch_partition_groups_by_key_and_leaves_dynamics_scalar() {
    let ids = node_ids();
    check(
        "batch partition groups by key",
        &Config::with_cases(48),
        |d| d.vec_of(1, 12, dev_spec),
        |specs| {
            let (devices, _) = build_devices(specs, &ids);
            let mut first_batch: HashMap<u64, usize> = HashMap::new();
            let mut batch_count = 0usize;
            for (i, dev) in devices.iter().enumerate() {
                let key = dev.batch_key();
                match (&specs[i], key) {
                    (DevSpec::Dyn { .. }, None) => {}
                    (DevSpec::Dyn { .. }, Some(_)) => {
                        return Err(format!("dynamic NEMFET {i} unexpectedly batchable"))
                    }
                    (_, None) => return Err(format!("device {i} lost its batch key")),
                    (_, Some(k)) => {
                        first_batch.entry(k).or_insert_with(|| {
                            batch_count += 1;
                            batch_count - 1
                        });
                    }
                }
            }
            // Same card + same device kind ⇒ same key; different kind over
            // the same card (NEMFET contact vs plain MOSFET) ⇒ different
            // key, thanks to the type tag folded into the hash.
            for (i, a) in specs.iter().enumerate() {
                for (j, b) in specs.iter().enumerate().skip(i + 1) {
                    let (ka, kb) = (devices[i].batch_key(), devices[j].batch_key());
                    match (a, b) {
                        (DevSpec::Mos { card: ca, .. }, DevSpec::Mos { card: cb, .. }) => {
                            prop_check!(
                                (ca == cb) == (ka == kb),
                                "MOSFETs {i}/{j} with cards {ca}/{cb} got keys {ka:?}/{kb:?}"
                            );
                        }
                        (DevSpec::Mos { .. }, DevSpec::Nems { .. })
                        | (DevSpec::Nems { .. }, DevSpec::Mos { .. }) => {
                            prop_check!(
                                ka != kb,
                                "MOSFET and NEMFET share batch key {ka:?} at {i}/{j}"
                            );
                        }
                        (DevSpec::Nems { nmos: na, .. }, DevSpec::Nems { nmos: nb, .. }) => {
                            // Pull-in state is per-lane (`bin`), never in
                            // the key: same polarity ⇒ same batch.
                            prop_check!(
                                (na == nb) == (ka == kb),
                                "NEMFETs {i}/{j} (nmos {na}/{nb}) got keys {ka:?}/{kb:?}"
                            );
                        }
                        _ => {}
                    }
                }
            }
            Ok(())
        },
    );
}

/// One random stage of the end-to-end chain.
#[derive(Debug, Clone)]
struct StageSpec {
    /// NEMFET pull-down (true) or MOSFET pull-down (false).
    nems: bool,
    /// High-V_t card variant for the MOSFET stages.
    high_vt: bool,
    w: f64,
    r_load: f64,
}

/// A random resistor-loaded pull-down chain plus its drive shape.
#[derive(Debug, Clone)]
struct CktSpec {
    stages: Vec<StageSpec>,
    /// Drive level; spans `v_pull_in` = 0.5 V in both directions.
    v_hi: f64,
    /// DC drive (exercises the pull-in re-solve inside `op`) vs a step
    /// (exercises the dwell-gated transient transition).
    step: bool,
}

fn ckt_spec(d: &mut Draws) -> CktSpec {
    CktSpec {
        stages: d.vec_of(1, 3, |d| StageSpec {
            nems: d.bool(),
            high_vt: d.bool(),
            w: d.f64_in(0.5, 4.0),
            r_load: d.f64_in(5e3, 100e3),
        }),
        v_hi: d.f64_in(0.1, 1.2),
        step: d.bool(),
    }
}

fn build_chain(spec: &CktSpec) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let drive = ckt.node("in");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
    let wave = if spec.step {
        Waveform::step(0.0, spec.v_hi, 2e-9, 0.2e-9)
    } else {
        Waveform::dc(spec.v_hi)
    };
    ckt.vsource(drive, Circuit::GROUND, wave);
    let mut gate = drive;
    let mut outs = vec![drive];
    for (k, stage) in spec.stages.iter().enumerate() {
        let out = ckt.node(&format!("out{k}"));
        ckt.resistor(vdd, out, stage.r_load);
        if stage.nems {
            ckt.add_device(Nemfet::new(
                format!("x{k}"),
                NemsModel::nems_90nm(Polarity::Nmos),
                out,
                gate,
                Circuit::GROUND,
                stage.w,
            ));
        } else {
            let card = if stage.high_vt {
                MosModel::nmos_90nm().with_vth_shift(HIGH_VT_SHIFT)
            } else {
                MosModel::nmos_90nm()
            };
            ckt.add_device(Mosfet::new(
                format!("m{k}"),
                card,
                out,
                gate,
                Circuit::GROUND,
                stage.w,
            ));
        }
        outs.push(out);
        gate = out;
    }
    (ckt, outs)
}

/// Runs op → transient → `reset_device_state` → op on a fresh chain and
/// flattens every sampled voltage to its bit pattern. Solver errors are
/// folded into the output so both eval paths must fail identically too.
fn run_chain(spec: &CktSpec) -> Result<Vec<u64>, String> {
    let (mut ckt, outs) = build_chain(spec);
    let mut bits = Vec::new();
    let first = op(&mut ckt).map_err(|e| format!("first op: {e:?}"))?;
    for &n in &outs {
        bits.push(first.voltage(n).to_bits());
    }
    let opts = TranOptions {
        dt_init: Some(0.2e-9),
        dt_max: Some(0.5e-9),
        ..Default::default()
    };
    let tr = transient(&mut ckt, 8e-9, &opts).map_err(|e| format!("transient: {e:?}"))?;
    for &n in &outs {
        for v in tr.voltage(n).values() {
            bits.push(v.to_bits());
        }
    }
    // Reset releases every beam; the closing op must re-run the discrete
    // pull-in fixpoint from scratch in both eval paths.
    ckt.reset_device_state();
    let last = op(&mut ckt).map_err(|e| format!("final op: {e:?}"))?;
    for &n in &outs {
        bits.push(last.voltage(n).to_bits());
    }
    Ok(bits)
}

/// End to end, the default (batched) profile and the `scalar_device_eval`
/// pin produce bitwise-identical trajectories across op, transient, and
/// post-reset re-solve — including drives that cross `v_pull_in` and flip
/// the discrete NEMFET state mid-analysis.
#[test]
fn batched_and_scalar_trajectories_are_bitwise_identical() {
    check(
        "batched and scalar trajectories are bitwise identical",
        &Config::with_cases(24),
        ckt_spec,
        |spec| {
            let fast = run_chain(spec);
            let slow = profile::with(
                SolveProfile {
                    scalar_device_eval: true,
                    ..Default::default()
                },
                || run_chain(spec),
            );
            prop_check!(
                fast == slow,
                "trajectories diverge between eval paths: fast {:?}… vs slow {:?}…",
                fast.as_ref().map(|b| b.len()),
                slow.as_ref().map(|b| b.len())
            );
            Ok(())
        },
    );
}
