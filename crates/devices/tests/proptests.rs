//! Property-based tests of the compact models: derivative consistency,
//! physical sign/monotonicity invariants, and calibration round-trips.

#![cfg(feature = "proptest")]
// Gated out of the default (offline) build: the external `proptest`
// crate cannot be fetched without registry access. Vendor it and
// enable the `proptest` feature to run these.

use proptest::prelude::*;

use nemscmos_devices::calibrate::{calibrate_mos, MosTargets};
use nemscmos_devices::characterize::{ioff, ion};
use nemscmos_devices::mosfet::{MosModel, Polarity};
use nemscmos_devices::nemfet::NemsModel;

fn nmos() -> MosModel {
    MosModel::nmos_90nm()
}

fn pmos() -> MosModel {
    MosModel::pmos_90nm()
}

proptest! {
    /// The analytic partial derivatives agree with central finite
    /// differences at arbitrary bias points, in all operating regions and
    /// for both polarities.
    #[test]
    fn partials_match_finite_differences(
        vg in -0.5f64..1.7,
        vd in -0.5f64..1.7,
        vs in -0.5f64..1.7,
        w in 0.2f64..8.0,
        p_is_nmos in any::<bool>()
    ) {
        let m = if p_is_nmos { nmos() } else { pmos() };
        let h = 1e-7;
        let (_, dg, dd, ds) = m.ids(vg, vd, vs, w);
        let ng = (m.ids(vg + h, vd, vs, w).0 - m.ids(vg - h, vd, vs, w).0) / (2.0 * h);
        let nd = (m.ids(vg, vd + h, vs, w).0 - m.ids(vg, vd - h, vs, w).0) / (2.0 * h);
        let ns = (m.ids(vg, vd, vs + h, w).0 - m.ids(vg, vd, vs - h, w).0) / (2.0 * h);
        let scale = ng.abs().max(nd.abs()).max(ns.abs()).max(1e-9);
        prop_assert!((dg - ng).abs() / scale < 5e-3, "dg {dg} vs {ng}");
        prop_assert!((dd - nd).abs() / scale < 5e-3, "dd {dd} vs {nd}");
        prop_assert!((ds - ns).abs() / scale < 5e-3, "ds {ds} vs {ns}");
    }

    /// Charge conservation: the three terminal partials of the channel
    /// current sum to zero.
    #[test]
    fn partials_sum_to_zero(
        vg in -0.5f64..1.7,
        vd in -0.5f64..1.7,
        vs in -0.5f64..1.7
    ) {
        let m = nmos();
        let (_, dg, dd, ds) = m.ids(vg, vd, vs, 1.0);
        let scale = dg.abs().max(dd.abs()).max(ds.abs()).max(1e-12);
        prop_assert!((dg + dd + ds).abs() / scale < 1e-9);
    }

    /// NMOS current carries the sign of v_ds for any gate bias.
    #[test]
    fn current_sign_follows_vds(vg in -0.5f64..1.7, vd in 0.0f64..1.7, vs in 0.0f64..1.7) {
        let m = nmos();
        let (i, ..) = m.ids(vg, vd, vs, 1.0);
        if vd > vs {
            prop_assert!(i >= 0.0);
        } else if vd < vs {
            prop_assert!(i <= 0.0);
        } else {
            prop_assert_eq!(i, 0.0);
        }
    }

    /// At fixed positive v_ds the current is strictly increasing in v_gs.
    #[test]
    fn monotone_in_gate(vg1 in 0.0f64..1.2, dv in 0.01f64..0.5, vd in 0.2f64..1.2) {
        let m = nmos();
        let (i1, ..) = m.ids(vg1, vd, 0.0, 1.0);
        let (i2, ..) = m.ids(vg1 + dv, vd, 0.0, 1.0);
        prop_assert!(i2 > i1);
    }

    /// Width scaling is exactly linear.
    #[test]
    fn width_scales_linearly(w in 0.1f64..20.0, vg in 0.0f64..1.2) {
        let m = nmos();
        let (i1, ..) = m.ids(vg, 1.2, 0.0, 1.0);
        let (iw, ..) = m.ids(vg, 1.2, 0.0, w);
        prop_assert!((iw - w * i1).abs() <= 1e-12 * iw.abs().max(1e-18));
    }

    /// Calibration round-trip: for any physical target set the calibrated
    /// card reproduces I_ON and I_OFF.
    #[test]
    fn calibration_roundtrip(
        ion_t in 1e-4f64..2e-3,
        ratio in 2e3f64..1e5,
        swing_mv in 70.0f64..120.0
    ) {
        let targets = MosTargets {
            ion: ion_t,
            ioff: ion_t / ratio,
            swing: swing_mv * 1e-3,
            vdd: 1.2,
        };
        // The swing bounds the achievable ratio range: too many decades
        // exceed the gate range, too few fall below the quadratic-region
        // floor. Skip unreachable combinations.
        let decades_available = 1.2 / (swing_mv * 1e-3);
        prop_assume!(ratio.log10() < decades_available - 0.5);
        prop_assume!(ratio.log10() > 3.4);
        let card = calibrate_mos("prop", Polarity::Nmos, &targets);
        prop_assert!((ion(&card, 1.2) - targets.ion).abs() / targets.ion < 1e-4);
        prop_assert!((ioff(&card, 1.2) - targets.ioff).abs() / targets.ioff < 1e-4);
    }

    /// Raising V_th always reduces both on and off current (off current
    /// exponentially faster).
    #[test]
    fn vth_shift_reduces_currents(shift in 0.01f64..0.3) {
        let base = nmos();
        let hv = base.with_vth_shift(shift);
        prop_assert!(ion(&hv, 1.2) < ion(&base, 1.2));
        let off_ratio = ioff(&base, 1.2) / ioff(&hv, 1.2);
        let on_ratio = ion(&base, 1.2) / ion(&hv, 1.2);
        prop_assert!(off_ratio > on_ratio, "off current must fall faster");
    }

    /// NEMS actuation is antisymmetric under polarity.
    #[test]
    fn nems_actuation_antisymmetric(vg in -2.0f64..2.0, vs in -2.0f64..2.0) {
        let n = NemsModel::nems_90nm(Polarity::Nmos);
        let p = NemsModel::nems_90nm(Polarity::Pmos);
        prop_assert!((n.actuation(vg, vs) + p.actuation(vg, vs)).abs() < 1e-12);
    }
}
