//! Property-based tests of the compact models: derivative consistency,
//! physical sign/monotonicity invariants, and calibration round-trips.
//! Runs on the vendored `nemscmos_numeric::check` runner.

use nemscmos_devices::calibrate::{calibrate_mos, MosTargets};
use nemscmos_devices::characterize::{ioff, ion};
use nemscmos_devices::mosfet::{MosModel, Polarity};
use nemscmos_devices::nemfet::NemsModel;
use nemscmos_numeric::check::{check, check_cases, Config, Draws};
use nemscmos_numeric::prop_check;

fn nmos() -> MosModel {
    MosModel::nmos_90nm()
}

fn pmos() -> MosModel {
    MosModel::pmos_90nm()
}

fn bias(d: &mut Draws) -> f64 {
    d.f64_in(-0.5, 1.7)
}

/// The analytic partial derivatives agree with central finite
/// differences at arbitrary bias points, in all operating regions and
/// for both polarities.
#[test]
fn partials_match_finite_differences() {
    check(
        "partials match finite differences",
        &Config::default(),
        |d| (bias(d), bias(d), bias(d), d.f64_in(0.2, 8.0), d.bool()),
        |&(vg, vd, vs, w, p_is_nmos)| {
            let m = if p_is_nmos { nmos() } else { pmos() };
            let h = 1e-7;
            let (_, dg, dd, ds) = m.ids(vg, vd, vs, w);
            let ng = (m.ids(vg + h, vd, vs, w).0 - m.ids(vg - h, vd, vs, w).0) / (2.0 * h);
            let nd = (m.ids(vg, vd + h, vs, w).0 - m.ids(vg, vd - h, vs, w).0) / (2.0 * h);
            let ns = (m.ids(vg, vd, vs + h, w).0 - m.ids(vg, vd, vs - h, w).0) / (2.0 * h);
            let scale = ng.abs().max(nd.abs()).max(ns.abs()).max(1e-9);
            prop_check!((dg - ng).abs() / scale < 5e-3, "dg {dg} vs {ng}");
            prop_check!((dd - nd).abs() / scale < 5e-3, "dd {dd} vs {nd}");
            prop_check!((ds - ns).abs() / scale < 5e-3, "ds {ds} vs {ns}");
            Ok(())
        },
    );
}

/// Charge conservation: the three terminal partials of the channel
/// current sum to zero.
#[test]
fn partials_sum_to_zero() {
    check(
        "partials sum to zero",
        &Config::default(),
        |d| (bias(d), bias(d), bias(d)),
        |&(vg, vd, vs)| {
            let m = nmos();
            let (_, dg, dd, ds) = m.ids(vg, vd, vs, 1.0);
            let scale = dg.abs().max(dd.abs()).max(ds.abs()).max(1e-12);
            prop_check!(
                (dg + dd + ds).abs() / scale < 1e-9,
                "partials sum to {:.3e}",
                dg + dd + ds
            );
            Ok(())
        },
    );
}

/// NMOS current carries the sign of v_ds for any gate bias.
#[test]
fn current_sign_follows_vds() {
    check(
        "current sign follows vds",
        &Config::default(),
        |d| (d.f64_in(-0.5, 1.7), d.f64_in(0.0, 1.7), d.f64_in(0.0, 1.7)),
        |&(vg, vd, vs)| {
            let m = nmos();
            let (i, ..) = m.ids(vg, vd, vs, 1.0);
            if vd > vs {
                prop_check!(i >= 0.0, "i = {i:.3e} for vd > vs");
            } else if vd < vs {
                prop_check!(i <= 0.0, "i = {i:.3e} for vd < vs");
            } else {
                prop_check!(i == 0.0, "i = {i:.3e} for vd == vs");
            }
            Ok(())
        },
    );
}

/// At fixed positive v_ds the current is strictly increasing in v_gs.
#[test]
fn monotone_in_gate() {
    check(
        "monotone in gate",
        &Config::default(),
        |d| (d.f64_in(0.0, 1.2), d.f64_in(0.01, 0.5), d.f64_in(0.2, 1.2)),
        |&(vg1, dv, vd)| {
            let m = nmos();
            let (i1, ..) = m.ids(vg1, vd, 0.0, 1.0);
            let (i2, ..) = m.ids(vg1 + dv, vd, 0.0, 1.0);
            prop_check!(i2 > i1, "i({}) = {i2:.3e} <= i({vg1}) = {i1:.3e}", vg1 + dv);
            Ok(())
        },
    );
}

/// Width scaling is exactly linear.
#[test]
fn width_scales_linearly() {
    check(
        "width scales linearly",
        &Config::default(),
        |d| (d.f64_in(0.1, 20.0), d.f64_in(0.0, 1.2)),
        |&(w, vg)| {
            let m = nmos();
            let (i1, ..) = m.ids(vg, 1.2, 0.0, 1.0);
            let (iw, ..) = m.ids(vg, 1.2, 0.0, w);
            prop_check!(
                (iw - w * i1).abs() <= 1e-12 * iw.abs().max(1e-18),
                "i({w}·W) = {iw:.6e} vs {w}·i(W) = {:.6e}",
                w * i1
            );
            Ok(())
        },
    );
}

/// Calibration round-trip: for any physical target set the calibrated
/// card reproduces I_ON and I_OFF.
#[test]
fn calibration_roundtrip() {
    let prop = |&(ion_t, ratio, swing_mv): &(f64, f64, f64)| {
        let targets = MosTargets {
            ion: ion_t,
            ioff: ion_t / ratio,
            swing: swing_mv * 1e-3,
            vdd: 1.2,
        };
        // The swing bounds the achievable ratio range: too many decades
        // exceed the gate range, too few fall below the quadratic-region
        // floor. Skip unreachable combinations.
        let decades_available = 1.2 / (swing_mv * 1e-3);
        if ratio.log10() >= decades_available - 0.5 || ratio.log10() <= 3.4 {
            return Ok(());
        }
        let card = calibrate_mos("prop", Polarity::Nmos, &targets);
        prop_check!(
            (ion(&card, 1.2) - targets.ion).abs() / targets.ion < 1e-4,
            "I_ON {:.6e} vs target {:.6e}",
            ion(&card, 1.2),
            targets.ion
        );
        prop_check!(
            (ioff(&card, 1.2) - targets.ioff).abs() / targets.ioff < 1e-4,
            "I_OFF {:.6e} vs target {:.6e}",
            ioff(&card, 1.2),
            targets.ioff
        );
        Ok(())
    };
    // Failure seed recorded by the retired external-proptest suite
    // (proptests.proptest-regressions, cc 64ccee5f…): the lower ratio
    // boundary, which must fall into the skip path rather than produce a
    // bad calibration.
    check_cases(
        "calibration roundtrip (pinned)",
        &[(0.0001, 100.0, 70.0)],
        prop,
    );
    check(
        "calibration roundtrip",
        &Config::default(),
        |d| {
            (
                d.f64_in(1e-4, 2e-3),
                d.f64_in(2e3, 1e5),
                d.f64_in(70.0, 120.0),
            )
        },
        prop,
    );
}

/// Raising V_th always reduces both on and off current (off current
/// exponentially faster).
#[test]
fn vth_shift_reduces_currents() {
    check(
        "vth shift reduces currents",
        &Config::default(),
        |d| d.f64_in(0.01, 0.3),
        |&shift| {
            let base = nmos();
            let hv = base.with_vth_shift(shift);
            prop_check!(ion(&hv, 1.2) < ion(&base, 1.2), "I_ON did not fall");
            let off_ratio = ioff(&base, 1.2) / ioff(&hv, 1.2);
            let on_ratio = ion(&base, 1.2) / ion(&hv, 1.2);
            prop_check!(off_ratio > on_ratio, "off current must fall faster");
            Ok(())
        },
    );
}

/// NEMS actuation is antisymmetric under polarity.
#[test]
fn nems_actuation_antisymmetric() {
    check(
        "nems actuation antisymmetric",
        &Config::default(),
        |d| (d.f64_in(-2.0, 2.0), d.f64_in(-2.0, 2.0)),
        |&(vg, vs)| {
            let n = NemsModel::nems_90nm(Polarity::Nmos);
            let p = NemsModel::nems_90nm(Polarity::Pmos);
            prop_check!(
                (n.actuation(vg, vs) + p.actuation(vg, vs)).abs() < 1e-12,
                "actuation not antisymmetric at ({vg}, {vs})"
            );
            Ok(())
        },
    );
}
