//! Pelgrom-law device mismatch: `σ(V_th) = A_vt / √(W·L)`.
//!
//! The paper parameterizes variation as `σ_Vth/µ_Vth` percentages; the
//! Pelgrom law grounds those percentages in device area, so Monte Carlo
//! draws can scale correctly when an experiment resizes its transistors.

/// Pelgrom area coefficient for the 90 nm node (V·µm): gives
/// `σ(V_th) ≈ 14 mV` for a minimum-length, 1 µm-wide device.
pub const A_VT_90NM: f64 = 4.5e-3;

/// Drawn channel length at the 90 nm node (µm).
pub const L_90NM_UM: f64 = 0.1;

/// Threshold-voltage mismatch standard deviation (V) of a device with the
/// given gate area, per the Pelgrom law.
///
/// # Panics
///
/// Panics if width or length is not strictly positive.
pub fn sigma_vth(a_vt: f64, width_um: f64, length_um: f64) -> f64 {
    assert!(
        width_um > 0.0 && length_um > 0.0,
        "device area must be positive"
    );
    a_vt / (width_um * length_um).sqrt()
}

/// [`sigma_vth`] with the 90 nm defaults.
pub fn sigma_vth_90nm(width_um: f64) -> f64 {
    sigma_vth(A_VT_90NM, width_um, L_90NM_UM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_devices_match_better() {
        assert!(sigma_vth_90nm(4.0) < sigma_vth_90nm(1.0));
        let ratio = sigma_vth_90nm(1.0) / sigma_vth_90nm(4.0);
        assert!((ratio - 2.0).abs() < 1e-12, "σ scales as 1/√W");
    }

    #[test]
    fn magnitudes_are_plausible_for_90nm() {
        // Minimum-ish SRAM access device: ~20 mV of mismatch.
        let s = sigma_vth_90nm(0.5);
        assert!((0.010..0.035).contains(&s), "σ = {s:.4}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_rejected() {
        let _ = sigma_vth(A_VT_90NM, 0.0, 0.1);
    }
}
