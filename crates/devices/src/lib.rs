//! Compact device models for hybrid NEMS-CMOS circuit simulation.
//!
//! Two device families, both stamping into the `nemscmos-spice` MNA engine:
//!
//! * [`mosfet`] — a smooth EKV-style MOSFET model (unified subthreshold /
//!   strong inversion), with 90 nm NMOS/PMOS cards *numerically calibrated*
//!   to the paper's Table 1 (I_ON = 1110 µA/µm, I_OFF = 50 nA/µm) plus
//!   high-V_t variants for the dual-V_t and asymmetric SRAM baselines.
//! * [`nemfet`] — the suspended-gate NEMFET: a hysteretic
//!   electromechanical switch (pull-in / pull-out) whose contact-state
//!   channel uses the same EKV core, calibrated to I_ON = 330 µA/µm and
//!   I_OFF = 110 pA/µm. A quasi-static model serves circuit analyses; a
//!   dynamic variant co-simulates the beam equation of motion inside the
//!   MNA system.
//!
//! Supporting modules: [`calibrate`] solves model parameters from
//! (I_ON, I_OFF, swing) targets; [`characterize`] extracts those metrics
//! back out of any model (used to regenerate Table 1 and Figure 2);
//! [`scaling`] provides the ITRS-style leakage-scaling trend of Figure 1.
//!
//! # Example
//!
//! ```
//! use nemscmos_devices::mosfet::MosModel;
//! use nemscmos_devices::characterize::{ion, ioff};
//!
//! let nmos = MosModel::nmos_90nm();
//! let vdd = 1.2;
//! // Calibrated to the paper's Table 1 within 1%.
//! assert!((ion(&nmos, vdd) - 1110e-6).abs() / 1110e-6 < 0.01);
//! assert!((ioff(&nmos, vdd) - 50e-9).abs() / 50e-9 < 0.01);
//! ```

pub mod calibrate;
pub mod characterize;
pub mod corners;
pub mod mismatch;
pub mod mosfet;
pub mod nemfet;
pub mod scaling;

/// Thermal voltage kT/q at 300 K (volts).
pub const VT_300K: f64 = 0.025852;
