//! Process corners: systematic fast/slow device variants for corner
//! analysis (the global component of the variation that Figure 9 treats
//! statistically).

use crate::mosfet::MosModel;

/// A classic five-corner set. The letters give the NMOS then PMOS speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Typical-typical (nominal cards).
    Tt,
    /// Fast-fast: both thresholds low, drive high.
    Ff,
    /// Slow-slow: both thresholds high, drive low.
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

/// Threshold shift applied per fast/slow letter (V) — a 3σ global shift
/// at the paper's 10 % σ_Vth on a ~0.17 V threshold.
pub const CORNER_VTH_SHIFT: f64 = 0.05;

/// Drive-current (specific-current) scale per fast/slow letter.
pub const CORNER_DRIVE_SCALE: f64 = 0.08;

impl Corner {
    /// All five corners, typical first.
    pub fn all() -> [Corner; 5] {
        [Corner::Tt, Corner::Ff, Corner::Ss, Corner::Fs, Corner::Sf]
    }

    /// Standard two-letter label.
    pub fn label(self) -> &'static str {
        match self {
            Corner::Tt => "TT",
            Corner::Ff => "FF",
            Corner::Ss => "SS",
            Corner::Fs => "FS",
            Corner::Sf => "SF",
        }
    }

    /// `(nmos speed, pmos speed)` as `+1` fast / `0` typical / `−1` slow.
    fn signs(self) -> (f64, f64) {
        match self {
            Corner::Tt => (0.0, 0.0),
            Corner::Ff => (1.0, 1.0),
            Corner::Ss => (-1.0, -1.0),
            Corner::Fs => (1.0, -1.0),
            Corner::Sf => (-1.0, 1.0),
        }
    }

    /// Applies this corner to an NMOS card.
    pub fn apply_nmos(self, card: &MosModel) -> MosModel {
        let (sn, _) = self.signs();
        shift_card(card, sn)
    }

    /// Applies this corner to a PMOS card.
    pub fn apply_pmos(self, card: &MosModel) -> MosModel {
        let (_, sp) = self.signs();
        shift_card(card, sp)
    }
}

fn shift_card(card: &MosModel, speed: f64) -> MosModel {
    let mut c = card.with_vth_shift(-speed * CORNER_VTH_SHIFT);
    c.is_spec *= 1.0 + speed * CORNER_DRIVE_SCALE;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{ioff, ion};

    #[test]
    fn fast_corner_is_faster_and_leakier() {
        let tt = MosModel::nmos_90nm();
        let ff = Corner::Ff.apply_nmos(&tt);
        let ss = Corner::Ss.apply_nmos(&tt);
        assert!(ion(&ff, 1.2) > ion(&tt, 1.2));
        assert!(ion(&ss, 1.2) < ion(&tt, 1.2));
        assert!(
            ioff(&ff, 1.2) > 3.0 * ioff(&tt, 1.2),
            "FF leakage should jump"
        );
        assert!(ioff(&ss, 1.2) < ioff(&tt, 1.2) / 3.0);
    }

    #[test]
    fn typical_corner_is_identity() {
        let tt = MosModel::nmos_90nm();
        let same = Corner::Tt.apply_nmos(&tt);
        assert!((ion(&same, 1.2) - ion(&tt, 1.2)).abs() < 1e-18);
    }

    #[test]
    fn skewed_corners_move_devices_oppositely() {
        let n = MosModel::nmos_90nm();
        let p = MosModel::pmos_90nm();
        let n_fs = Corner::Fs.apply_nmos(&n);
        let p_fs = Corner::Fs.apply_pmos(&p);
        assert!(ion(&n_fs, 1.2) > ion(&n, 1.2));
        assert!(ion(&p_fs, 1.2) < ion(&p, 1.2));
    }

    #[test]
    fn labels_and_count() {
        assert_eq!(Corner::all().len(), 5);
        assert_eq!(Corner::Fs.label(), "FS");
    }
}
