//! Device characterization: extracting I_ON, I_OFF, subthreshold swing,
//! and I–V curves back out of the models (regenerates Table 1 and the
//! Figure 2 swing survey).

use nemscmos_numeric::roots::bisect;

use crate::mosfet::{MosModel, Polarity};
use crate::nemfet::NemsModel;

/// On current of a card at `v_gs = v_ds = v_dd` (A, per µm since width 1).
pub fn ion(model: &MosModel, vdd: f64) -> f64 {
    let (i, ..) = match model.polarity {
        Polarity::Nmos => model.ids(vdd, vdd, 0.0, 1.0),
        Polarity::Pmos => model.ids(0.0, 0.0, vdd, 1.0),
    };
    i.abs()
}

/// Off current of a card at `v_gs = 0, v_ds = v_dd` (A/µm).
pub fn ioff(model: &MosModel, vdd: f64) -> f64 {
    let (i, ..) = match model.polarity {
        Polarity::Nmos => model.ids(0.0, vdd, 0.0, 1.0),
        Polarity::Pmos => model.ids(vdd, 0.0, vdd, 1.0),
    };
    i.abs()
}

/// Transfer curve `(v_gs, |i_d|)` of a card at `v_ds = v_dd`,
/// sampled at `points` evenly spaced gate voltages in `[0, v_dd]`.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn id_vg_curve(model: &MosModel, vdd: f64, points: usize) -> Vec<(f64, f64)> {
    assert!(points >= 2, "need at least two curve points");
    (0..points)
        .map(|k| {
            let vg = vdd * k as f64 / (points - 1) as f64;
            let (i, ..) = match model.polarity {
                Polarity::Nmos => model.ids(vg, vdd, 0.0, 1.0),
                Polarity::Pmos => model.ids(vdd - vg, 0.0, vdd, 1.0),
            };
            (vg, i.abs())
        })
        .collect()
}

/// Subthreshold swing (V/decade) extracted *numerically* from a card:
/// the gate-voltage distance between `|i_d| = 0.3 × I_OFF` and
/// `|i_d| = 3 × I_OFF` (one decade, centred on the off-state operating
/// point so the window stays deep in the subthreshold region).
///
/// Returns `None` if the targets cannot be bracketed (degenerate model).
pub fn measured_swing(model: &MosModel, vdd: f64) -> Option<f64> {
    let i_off = ioff(model, vdd);
    let current_at = |vg: f64| {
        let (i, ..) = match model.polarity {
            Polarity::Nmos => model.ids(vg, vdd, 0.0, 1.0),
            Polarity::Pmos => model.ids(vdd - vg, 0.0, vdd, 1.0),
        };
        i.abs()
    };
    let vg_at = |target: f64| -> Option<f64> {
        if current_at(vdd) < target || current_at(-0.5) > target {
            return None;
        }
        bisect(|vg| current_at(vg).ln() - target.ln(), -0.5, vdd, 1e-9, 200).ok()
    };
    let v1 = vg_at(0.3 * i_off)?;
    let v2 = vg_at(3.0 * i_off)?;
    Some(v2 - v1)
}

/// Effective switching steepness of a NEMS card (V/decade): the abrupt
/// mechanical pull-in transition divided by the decades of current it
/// spans. With an ideal hysteretic switch the transition width is zero;
/// we report the width implied by one Newton voltage resolution step
/// (1 mV), matching the "≤ 2 mV/dec measured" claim of the paper's
/// Figure 2 source (\[12\]).
pub fn nems_effective_swing(card: &NemsModel, vdd: f64) -> f64 {
    let i_on = {
        let (i, ..) = card.contact.ids(vdd, vdd, 0.0, 1.0);
        i.abs()
    };
    let i_off = card.g_off_per_um * vdd;
    let decades = (i_on / i_off).log10().max(1.0);
    1e-3 / decades
}

/// One row of the Figure 2 subthreshold-swing survey.
#[derive(Debug, Clone, PartialEq)]
pub struct SwingRow {
    /// Device label as used in the paper.
    pub device: &'static str,
    /// Swing in mV/decade.
    pub swing_mv_per_dec: f64,
    /// Whether the value was computed from our models (`true`) or taken
    /// from the literature constants the paper cites (`false`).
    pub measured_here: bool,
}

/// Regenerates the Figure 2 survey: our calibrated CMOS and NEMS models
/// measured in place, plus the literature values for the other device
/// families (\[7\]–\[12\] in the paper).
pub fn figure2_survey() -> Vec<SwingRow> {
    let vdd = 1.2;
    let bulk = measured_swing(&MosModel::nmos_90nm(), vdd).expect("bulk swing") * 1e3;
    let nems = nems_effective_swing(&NemsModel::nems_90nm(Polarity::Nmos), vdd) * 1e3;
    vec![
        SwingRow {
            device: "Bulk CMOS (ours)",
            swing_mv_per_dec: bulk,
            measured_here: true,
        },
        SwingRow {
            device: "FDSOI",
            swing_mv_per_dec: 67.0,
            measured_here: false,
        },
        SwingRow {
            device: "FinFET",
            swing_mv_per_dec: 63.0,
            measured_here: false,
        },
        SwingRow {
            device: "T-CNFET",
            swing_mv_per_dec: 40.0,
            measured_here: false,
        },
        SwingRow {
            device: "NW-FET",
            swing_mv_per_dec: 35.0,
            measured_here: false,
        },
        SwingRow {
            device: "IMOS",
            swing_mv_per_dec: 8.9,
            measured_here: false,
        },
        SwingRow {
            device: "NEMS (ours)",
            swing_mv_per_dec: nems,
            measured_here: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_cmos() {
        let m = MosModel::nmos_90nm();
        assert!((ion(&m, 1.2) - 1110e-6).abs() / 1110e-6 < 1e-3);
        assert!((ioff(&m, 1.2) - 50e-9).abs() / 50e-9 < 1e-3);
    }

    #[test]
    fn table1_row_nems() {
        let card = NemsModel::nems_90nm(Polarity::Nmos);
        let (i_on, ..) = card.contact.ids(1.2, 1.2, 0.0, 1.0);
        assert!((i_on - 330e-6).abs() / 330e-6 < 1e-3);
        assert!((card.g_off_per_um * 1.2 - 110e-12).abs() / 110e-12 < 1e-6);
    }

    #[test]
    fn measured_swing_matches_card_formula() {
        let m = MosModel::nmos_90nm();
        let s = measured_swing(&m, 1.2).unwrap();
        // The numeric extraction must agree with n·v_t·ln10 within a few %.
        assert!(
            (s - m.swing()).abs() / m.swing() < 0.05,
            "S = {s}, card {}",
            m.swing()
        );
    }

    #[test]
    fn pmos_swing_matches_nmos() {
        let sp = measured_swing(&MosModel::pmos_90nm(), 1.2).unwrap();
        let sn = measured_swing(&MosModel::nmos_90nm(), 1.2).unwrap();
        assert!((sp - sn).abs() / sn < 0.05);
    }

    #[test]
    fn nems_swing_is_far_below_thermal_limit() {
        let s = nems_effective_swing(&NemsModel::nems_90nm(Polarity::Nmos), 1.2);
        assert!(s < 2e-3, "NEMS swing {s} should be below 2 mV/dec");
        assert!(s > 0.0);
    }

    #[test]
    fn figure2_ordering_matches_paper() {
        let rows = figure2_survey();
        // CMOS above 60 mV/dec; NEMS lowest of all.
        let bulk = rows.iter().find(|r| r.device.starts_with("Bulk")).unwrap();
        let nems = rows.iter().find(|r| r.device.starts_with("NEMS")).unwrap();
        assert!(bulk.swing_mv_per_dec > 60.0);
        for r in &rows {
            if r.device != nems.device {
                assert!(nems.swing_mv_per_dec < r.swing_mv_per_dec);
            }
        }
    }

    #[test]
    fn id_vg_curve_is_monotone() {
        let pts = id_vg_curve(&MosModel::nmos_90nm(), 1.2, 25);
        assert_eq!(pts.len(), 25);
        for w in pts.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn id_vg_curve_for_pmos_uses_overdrive_axis() {
        let pts = id_vg_curve(&MosModel::pmos_90nm(), 1.2, 10);
        assert!(pts.last().unwrap().1 > pts[0].1);
    }
}
