//! Dynamic NEMFET: the beam equation of motion co-simulated inside MNA.
//!
//! This is the full electromechanical analogue of the paper's Fig. 6(b)
//! model — where the paper maps mass to an inductance and damping to a
//! resistance and solves the analogy in HSPICE, we append the mechanical
//! unknowns (displacement `x`, velocity `v`) to the MNA system directly
//! and integrate `m ẍ + c ẋ + k x = F_e(v_act, x)` with backward Euler,
//! coupled both ways: the gate-source voltage drives the beam, and the
//! beam position modulates the channel current.

use nemscmos_mems::dynamics::ActuatorDynamics;
use nemscmos_mems::EPSILON_0;
use nemscmos_spice::device::{Device, LoadContext, Mode, Solution};
use nemscmos_spice::element::NodeId;
use nemscmos_spice::stamp::Stamper;

use super::NemsModel;

/// Exponent of the gap-coupling conduction blend: the channel conducts in
/// proportion to `(g_c / g_el(x))^m`.
const COUPLING_EXPONENT: i32 = 4;

/// Contact penalty stiffness multiple (mirrors `nemscmos-mems`).
const CONTACT_PENALTY_FACTOR: f64 = 1e4;

/// Contact damping ratio (mirrors `nemscmos-mems`).
const CONTACT_DAMPING_RATIO: f64 = 0.7;

/// Lumped mechanical parameters of the suspended gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanicalParams {
    /// Spring constant (N/m).
    pub stiffness: f64,
    /// Modal mass (kg).
    pub mass: f64,
    /// Damping coefficient (N·s/m).
    pub damping: f64,
    /// Rest air gap (m).
    pub gap: f64,
    /// Air-equivalent dielectric thickness at contact (m).
    pub contact_gap: f64,
    /// Electrode area (m²).
    pub area: f64,
}

impl MechanicalParams {
    /// Extracts the lumped parameters from a `nemscmos-mems` dynamics
    /// model.
    pub fn from_dynamics(d: &ActuatorDynamics) -> MechanicalParams {
        let a = d.actuator();
        MechanicalParams {
            stiffness: a.stiffness(),
            mass: d.mass(),
            damping: d.damping(),
            gap: a.gap(),
            contact_gap: a.contact_gap(),
            area: a.area(),
        }
    }

    /// Electrical gap at displacement `x` (m).
    fn electrical_gap(&self, x: f64) -> f64 {
        (self.gap - x).max(0.0) + self.contact_gap
    }

    /// Electrostatic force and its partials `(F, ∂F/∂v, ∂F/∂x)`.
    fn force(&self, v: f64, x: f64) -> (f64, f64, f64) {
        let ge = self.electrical_gap(x);
        let k = EPSILON_0 * self.area / (2.0 * ge * ge);
        let f = k * v * v;
        let df_dv = 2.0 * k * v;
        // dge/dx = −1 while the air gap remains, 0 once closed.
        let df_dx = if x < self.gap { 2.0 * f / ge } else { 0.0 };
        (f, df_dv, df_dx)
    }

    /// Conduction blend `(g_c/g_el)^m` and its x-derivative.
    fn coupling(&self, x: f64) -> (f64, f64) {
        let ge = self.electrical_gap(x);
        let ratio = self.contact_gap / ge;
        let c = ratio.powi(COUPLING_EXPONENT);
        let dc_dx = if x < self.gap {
            COUPLING_EXPONENT as f64 * c / ge
        } else {
            0.0
        };
        (c, dc_dx)
    }
}

/// A NEMFET whose beam dynamics are solved self-consistently with the
/// circuit (two extra MNA unknowns: displacement and velocity).
///
/// Use [`Nemfet`](super::Nemfet) (quasi-static) for circuit-level studies;
/// this device is for switching-transient physics — pull-in time, the
/// voltage/displacement trajectory, and loading interaction.
#[derive(Debug, Clone)]
pub struct DynamicNemfet {
    name: String,
    model: NemsModel,
    mech: MechanicalParams,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    width_um: f64,
    /// Global index of the displacement unknown (velocity is `base + 1`).
    base: usize,
    /// Accepted (x, v) from the previous step.
    prev: (f64, f64),
}

impl DynamicNemfet {
    /// Creates a dynamic NEMFET.
    ///
    /// # Panics
    ///
    /// Panics if the width or any mechanical parameter is non-positive
    /// (damping may be zero).
    pub fn new(
        name: impl Into<String>,
        model: NemsModel,
        mech: MechanicalParams,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        width_um: f64,
    ) -> DynamicNemfet {
        assert!(
            width_um.is_finite() && width_um > 0.0,
            "width must be positive"
        );
        assert!(
            mech.stiffness > 0.0 && mech.mass > 0.0,
            "stiffness and mass must be positive"
        );
        assert!(mech.damping >= 0.0, "damping must be non-negative");
        assert!(
            mech.gap > 0.0 && mech.contact_gap > 0.0 && mech.area > 0.0,
            "geometry must be positive"
        );
        DynamicNemfet {
            name: name.into(),
            model,
            mech,
            d,
            g,
            s,
            width_um,
            base: usize::MAX,
            prev: (0.0, 0.0),
        }
    }

    /// Global MNA index of the displacement unknown (available after the
    /// first analysis finalizes the layout).
    pub fn displacement_index(&self) -> usize {
        self.base
    }

    /// Global MNA index of the velocity unknown.
    pub fn velocity_index(&self) -> usize {
        self.base + 1
    }

    /// The mechanical parameters.
    pub fn mechanical(&self) -> &MechanicalParams {
        &self.mech
    }
}

impl Device for DynamicNemfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_internal(&self) -> usize {
        2
    }

    fn set_internal_base(&mut self, base: usize) {
        self.base = base;
    }

    fn load(&self, sol: &Solution<'_>, ctx: &LoadContext, st: &mut Stamper) {
        assert!(self.base != usize::MAX, "device layout not finalized");
        let (rx, rv) = (self.base, self.base + 1);
        let x = sol.raw(rx);
        let vel = sol.raw(rv);
        let m = &self.mech;
        let sgn = self.model.polarity.sign();
        let vact = sgn * (sol.v(self.g) - sol.v(self.s));
        let (fe, dfe_dv, dfe_dx) = m.force(vact, x);

        // Mechanical rows.
        match ctx.mode {
            Mode::Dc => {
                // Equilibrium: vel = 0 and k·x − F_e (+ contact) = 0.
                st.f(rx, vel);
                st.j(rx, rv, 1.0);
                let mut res = m.stiffness * x - fe;
                let mut dres_dx = m.stiffness - dfe_dx;
                if x > m.gap {
                    let k_pen = CONTACT_PENALTY_FACTOR * m.stiffness;
                    res += k_pen * (x - m.gap);
                    dres_dx += k_pen;
                }
                st.f(rv, res);
                st.j(rv, rx, dres_dx);
                // ∂/∂v_act via the gate/source columns.
                if let Some(c) = st.node_row(self.g) {
                    st.j(rv, c, -dfe_dv * sgn);
                }
                if let Some(c) = st.node_row(self.s) {
                    st.j(rv, c, dfe_dv * sgn);
                }
            }
            Mode::Transient { dt, .. } => {
                // Backward Euler regardless of the engine method: the
                // contact nonlinearity favours heavy damping.
                let (x_prev, v_prev) = self.prev;
                st.f(rx, (x - x_prev) / dt - vel);
                st.j(rx, rx, 1.0 / dt);
                st.j(rx, rv, -1.0);
                let mut res = m.mass * (vel - v_prev) / dt + m.damping * vel + m.stiffness * x - fe;
                let mut dres_dx = m.stiffness - dfe_dx;
                let mut dres_dvel = m.mass / dt + m.damping;
                if x > m.gap {
                    let k_pen = CONTACT_PENALTY_FACTOR * m.stiffness;
                    let c_pen = 2.0 * CONTACT_DAMPING_RATIO * (k_pen * m.mass).sqrt();
                    res += k_pen * (x - m.gap) + c_pen * vel;
                    dres_dx += k_pen;
                    dres_dvel += c_pen;
                }
                st.f(rv, res);
                st.j(rv, rx, dres_dx);
                st.j(rv, rv, dres_dvel);
                if let Some(c) = st.node_row(self.g) {
                    st.j(rv, c, -dfe_dv * sgn);
                }
                if let Some(c) = st.node_row(self.s) {
                    st.j(rv, c, dfe_dv * sgn);
                }
            }
        }

        // Channel current: off-leakage plus coupling-blended contact model.
        let g_off = self.model.g_off_per_um * self.width_um;
        st.conductance(self.d, self.s, g_off, sol.v(self.d), sol.v(self.s));
        let (cpl, dcpl_dx) = m.coupling(x.clamp(0.0, m.gap));
        let (ic, dg, dd, ds) =
            self.model
                .contact
                .ids(sol.v(self.g), sol.v(self.d), sol.v(self.s), self.width_um);
        let i = cpl * ic;
        st.nonlinear_current(
            self.d,
            self.s,
            i,
            &[(self.g, cpl * dg), (self.d, cpl * dd), (self.s, cpl * ds)],
        );
        // Coupling of the channel current to the displacement unknown.
        let di_dx = dcpl_dx * ic;
        if di_dx != 0.0 {
            if let Some(r) = st.node_row(self.d) {
                st.j(r, rx, di_dx);
            }
            if let Some(r) = st.node_row(self.s) {
                st.j(r, rx, -di_dx);
            }
        }
    }

    fn commit(&mut self, sol: &Solution<'_>, _ctx: &LoadContext) -> bool {
        self.prev = (sol.raw(self.base), sol.raw(self.base + 1));
        false
    }

    fn reset_state(&mut self) {
        self.prev = (0.0, 0.0);
    }

    fn initial_guess(&self, x: &mut [f64]) {
        if self.base != usize::MAX && self.base + 1 < x.len() {
            x[self.base] = self.prev.0;
            x[self.base + 1] = self.prev.1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Polarity;
    use nemscmos_mems::electrostatics::Actuator;
    use nemscmos_spice::analysis::tran::{transient, TranOptions};
    use nemscmos_spice::circuit::Circuit;
    use nemscmos_spice::waveform::Waveform;

    fn mech() -> MechanicalParams {
        let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 5e-9, 7.5);
        let dyn_model = ActuatorDynamics::new(act, 4e-14, 2e-7);
        MechanicalParams::from_dynamics(&dyn_model)
    }

    fn pull_in_voltage(m: &MechanicalParams) -> f64 {
        let g = m.gap + m.contact_gap;
        (8.0 * m.stiffness * g.powi(3) / (27.0 * EPSILON_0 * m.area)).sqrt()
    }

    /// Step the gate well above pull-in: the beam must close and the
    /// channel must start conducting (drain pulled low through a load).
    #[test]
    fn step_drive_closes_switch_and_conducts() {
        let m = mech();
        let vpi = pull_in_voltage(&m);
        let drive = 2.0 * vpi;
        let mut ckt = Circuit::new();
        let vddn = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource(vddn, Circuit::GROUND, Waveform::dc(1.2));
        ckt.vsource(g, Circuit::GROUND, Waveform::step(0.0, drive, 1e-9, 0.1e-9));
        ckt.resistor(vddn, d, 100e3);
        let dev = DynamicNemfet::new(
            "x1",
            NemsModel::nems_90nm(Polarity::Nmos),
            m,
            d,
            g,
            Circuit::GROUND,
            1.0,
        );
        ckt.add_device(dev);
        let opts = TranOptions {
            dt_max: Some(2e-9),
            dt_init: Some(1e-11),
            ..Default::default()
        };
        let res = transient(&mut ckt, 3e-6, &opts).unwrap();
        let vd = res.voltage(d);
        // Before the step: leakage only, drain near vdd.
        assert!(vd.eval(0.5e-9) > 1.19);
        // Long after: beam closed, channel conducting, drain pulled low.
        assert!(vd.last_value() < 0.3, "v(d) settles at {}", vd.last_value());
        // The transition happens *after* the electrical step (mechanical
        // flight time): at 2 ns the beam has barely moved.
        assert!(
            vd.eval(2e-9) > 1.0,
            "beam should not have landed within 1 ns of the step"
        );
    }

    #[test]
    fn below_pull_in_stays_open() {
        let m = mech();
        let vpi = pull_in_voltage(&m);
        let mut ckt = Circuit::new();
        let vddn = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource(vddn, Circuit::GROUND, Waveform::dc(1.2));
        ckt.vsource(
            g,
            Circuit::GROUND,
            Waveform::step(0.0, 0.7 * vpi, 1e-9, 0.1e-9),
        );
        ckt.resistor(vddn, d, 100e3);
        ckt.add_device(DynamicNemfet::new(
            "x1",
            NemsModel::nems_90nm(Polarity::Nmos),
            m,
            d,
            g,
            Circuit::GROUND,
            1.0,
        ));
        let opts = TranOptions {
            dt_max: Some(2e-9),
            ..Default::default()
        };
        let res = transient(&mut ckt, 2e-6, &opts).unwrap();
        assert!(res.voltage(d).last_value() > 1.1);
    }

    #[test]
    fn displacement_trace_is_observable() {
        let m = mech();
        let vpi = pull_in_voltage(&m);
        let mut ckt = Circuit::new();
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource(
            g,
            Circuit::GROUND,
            Waveform::step(0.0, 2.0 * vpi, 0.0, 0.1e-9),
        );
        ckt.resistor(d, Circuit::GROUND, 1e6);
        let dev = DynamicNemfet::new(
            "x1",
            NemsModel::nems_90nm(Polarity::Nmos),
            m,
            d,
            g,
            Circuit::GROUND,
            1.0,
        );
        ckt.add_device(dev);
        let opts = TranOptions {
            dt_max: Some(2e-9),
            ..Default::default()
        };
        let res = transient(&mut ckt, 2e-6, &opts).unwrap();
        // Displacement is the first internal unknown: nodes (2) + branches
        // (1) = index 3.
        let x_trace = res.raw_unknown(3).unwrap();
        assert!(x_trace.values()[0].abs() < 1e-12);
        // Settles at the gap (in contact).
        assert!((x_trace.last_value() - m.gap).abs() < 0.15 * m.gap);
    }
}
