//! The NEMFET model card.

use std::sync::OnceLock;

use nemscmos_mems::electrostatics::Actuator;

use crate::mosfet::{MosModel, Polarity};

/// Model card of a suspended-gate NEMFET (per-µm quantities).
///
/// Electrically the device is a hysteretic switch: below the release
/// voltage the beam is up and only a pA-scale leakage conductance remains;
/// above the pull-in voltage the beam contacts the gate dielectric and the
/// channel conducts like a (weaker) MOSFET. The contact-state channel
/// reuses the EKV core of [`MosModel`], calibrated to the paper's Table 1
/// NEMS row (I_ON = 330 µA/µm, I_OFF = 110 pA/µm).
///
/// The abrupt mechanical transition is what gives the NEMFET its
/// measured < 2 mV/dec switching steepness (Fig. 2 of the paper) — the
/// steepness is *not* an electrostatic channel property.
///
/// # Example
///
/// ```
/// use nemscmos_devices::nemfet::NemsModel;
/// use nemscmos_devices::mosfet::Polarity;
///
/// let card = NemsModel::nems_90nm(Polarity::Nmos);
/// assert!(card.v_pull_out < card.v_pull_in); // hysteresis window
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NemsModel {
    /// Card name for diagnostics.
    pub name: &'static str,
    /// Actuation polarity (N: pulls in when gate is high vs source).
    pub polarity: Polarity,
    /// Contact-state channel model (EKV core, per µm).
    pub contact: MosModel,
    /// Off-state (beam-up) leakage conductance per µm of width (S/µm):
    /// Brownian-motion displacement plus vacuum tunneling currents.
    pub g_off_per_um: f64,
    /// Pull-in voltage (V): actuation level that closes the switch.
    pub v_pull_in: f64,
    /// Pull-out (release) voltage (V): level below which the beam lets go.
    pub v_pull_out: f64,
    /// Mechanical switching delay (s). `0` reproduces the paper's
    /// quasi-instantaneous electrical-equivalent model; positive values
    /// gate state transitions on dwell time (our extension).
    pub t_switch: f64,
    /// Gate capacitance per µm width (F/µm), for circuit builders.
    pub c_gate_per_um: f64,
}

/// The paper's NEMS operating targets (Table 1 plus the quoted pull-in
/// behaviour "equivalent to the threshold voltage of standard CMOS").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NemsTargets {
    /// Contact-state on current at full drive (A/µm).
    pub ion: f64,
    /// Beam-up leakage at `v_ds = v_dd` (A/µm).
    pub ioff: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Pull-in voltage (V).
    pub v_pull_in: f64,
    /// Release voltage (V).
    pub v_pull_out: f64,
}

impl NemsTargets {
    /// Table 1 NEMS row at 90 nm / 1.2 V.
    pub fn nems_90nm() -> NemsTargets {
        NemsTargets {
            ion: 330e-6,
            ioff: 110e-12,
            vdd: 1.2,
            v_pull_in: 0.5,
            v_pull_out: 0.3,
        }
    }
}

fn calibrated_contact(targets: &NemsTargets) -> MosModel {
    // The contact-state channel: MOS-like with a low effective threshold
    // (the beam already touches) but reduced drive — the paper attributes
    // the lower I_ON to the f(V_g) voltage drop across the transducer.
    let mut card = MosModel {
        name: "nems-contact",
        polarity: Polarity::Nmos,
        is_spec: 1.0,
        vth: 0.15,
        n: 1.5,
        lambda: 0.1,
        c_gate_per_um: 1.5e-15,
        c_junction_per_um: 1.0e-15,
        temp_k: 300.0,
    };
    let (raw_ion, ..) = card.ids(targets.vdd, targets.vdd, 0.0, 1.0);
    card.is_spec = targets.ion / raw_ion;
    card
}

impl NemsModel {
    /// Builds a card from explicit targets.
    ///
    /// # Panics
    ///
    /// Panics on non-physical targets (`ion <= 0`, `ioff <= 0`,
    /// `v_pull_out >= v_pull_in`, non-positive `vdd`).
    pub fn from_targets(name: &'static str, polarity: Polarity, t: &NemsTargets) -> NemsModel {
        assert!(t.ion > 0.0 && t.ioff > 0.0, "currents must be positive");
        assert!(t.vdd > 0.0, "vdd must be positive");
        assert!(
            t.v_pull_out < t.v_pull_in && t.v_pull_out > 0.0,
            "need 0 < v_pull_out < v_pull_in for a hysteretic switch"
        );
        let mut contact = calibrated_contact(t);
        contact.polarity = polarity;
        NemsModel {
            name,
            polarity,
            contact,
            g_off_per_um: t.ioff / t.vdd,
            v_pull_in: t.v_pull_in,
            v_pull_out: t.v_pull_out,
            t_switch: 0.0,
            c_gate_per_um: 1.5e-15,
        }
    }

    /// The memoized 90 nm NEMS card calibrated to Table 1.
    pub fn nems_90nm(polarity: Polarity) -> NemsModel {
        static N: OnceLock<NemsModel> = OnceLock::new();
        static P: OnceLock<NemsModel> = OnceLock::new();
        match polarity {
            Polarity::Nmos => N
                .get_or_init(|| {
                    NemsModel::from_targets(
                        "nems-90nm-n",
                        Polarity::Nmos,
                        &NemsTargets::nems_90nm(),
                    )
                })
                .clone(),
            Polarity::Pmos => P
                .get_or_init(|| {
                    NemsModel::from_targets(
                        "nems-90nm-p",
                        Polarity::Pmos,
                        &NemsTargets::nems_90nm(),
                    )
                })
                .clone(),
        }
    }

    /// Derives the pull-in / pull-out voltages from beam physics, keeping
    /// the Table 1 electrical calibration. Links the compact model to the
    /// `nemscmos-mems` substrate.
    ///
    /// # Panics
    ///
    /// Panics if the actuator's hysteresis window is degenerate
    /// (`v_po >= v_pi`), which happens for a zero-thickness dielectric.
    pub fn with_actuator(&self, act: &Actuator) -> NemsModel {
        let v_pi = act.pull_in_voltage();
        let v_po = act.pull_out_voltage();
        assert!(
            v_po < v_pi && v_po > 0.0,
            "actuator hysteresis window is degenerate (v_po = {v_po}, v_pi = {v_pi})"
        );
        NemsModel {
            v_pull_in: v_pi,
            v_pull_out: v_po,
            ..self.clone()
        }
    }

    /// Sets the mechanical switching delay (our dwell-time extension).
    ///
    /// # Panics
    ///
    /// Panics if `t_switch` is negative or non-finite.
    pub fn with_switching_delay(&self, t_switch: f64) -> NemsModel {
        assert!(
            t_switch.is_finite() && t_switch >= 0.0,
            "switching delay must be non-negative"
        );
        NemsModel {
            t_switch,
            ..self.clone()
        }
    }

    /// Actuation voltage from terminal voltages: `v_gs` for N-type,
    /// `v_sg` for P-type.
    pub fn actuation(&self, vg: f64, vs: f64) -> f64 {
        self.polarity.sign() * (vg - vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_mems::beam::{Anchor, Beam};
    use nemscmos_mems::materials::Material;

    #[test]
    fn contact_channel_hits_ion_target() {
        let card = NemsModel::nems_90nm(Polarity::Nmos);
        let (ion, ..) = card.contact.ids(1.2, 1.2, 0.0, 1.0);
        assert!((ion - 330e-6).abs() / 330e-6 < 1e-6, "ion = {ion:.4e}");
    }

    #[test]
    fn off_conductance_matches_ioff_target() {
        let card = NemsModel::nems_90nm(Polarity::Nmos);
        let ioff = card.g_off_per_um * 1.2;
        assert!((ioff - 110e-12).abs() / 110e-12 < 1e-12);
    }

    #[test]
    fn on_off_ratio_spans_six_decades() {
        let card = NemsModel::nems_90nm(Polarity::Nmos);
        let (ion, ..) = card.contact.ids(1.2, 1.2, 0.0, 1.0);
        let ioff = card.g_off_per_um * 1.2;
        assert!(ion / ioff > 1e6);
    }

    #[test]
    fn actuation_polarity() {
        let n = NemsModel::nems_90nm(Polarity::Nmos);
        let p = NemsModel::nems_90nm(Polarity::Pmos);
        assert_eq!(n.actuation(1.2, 0.0), 1.2);
        assert_eq!(p.actuation(0.0, 1.2), 1.2);
        assert_eq!(p.actuation(1.2, 1.2), 0.0);
    }

    #[test]
    fn actuator_coupling_overrides_voltages() {
        let beam = Beam::new(Material::alsi(), Anchor::FixedFixed, 1.5e-6, 300e-9, 30e-9);
        let act = Actuator::new(&beam, 10e-9, 4e-9, 7.5);
        let card = NemsModel::nems_90nm(Polarity::Nmos).with_actuator(&act);
        assert!((card.v_pull_in - act.pull_in_voltage()).abs() < 1e-15);
        assert!(card.v_pull_out < card.v_pull_in);
    }

    #[test]
    #[should_panic(expected = "hysteretic switch")]
    fn degenerate_window_rejected() {
        let t = NemsTargets {
            v_pull_out: 0.6,
            ..NemsTargets::nems_90nm()
        };
        let _ = NemsModel::from_targets("bad", Polarity::Nmos, &t);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_rejected() {
        let _ = NemsModel::nems_90nm(Polarity::Nmos).with_switching_delay(-1.0);
    }
}
