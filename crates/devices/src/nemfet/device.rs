//! Quasi-static (hysteretic switch) NEMFET device.

use nemscmos_spice::device::{batch_key_word, Device, EvalBatch, LoadContext, Mode, Solution};
use nemscmos_spice::element::NodeId;
use nemscmos_spice::stamp::Stamper;

use super::NemsModel;

/// Discrete mechanical state tracked between solves.
#[derive(Debug, Clone, Copy, PartialEq)]
struct NemsState {
    /// True when the beam is in contact (switch closed).
    pulled_in: bool,
    /// Transient only: when the actuation first crossed the opposite
    /// threshold (for dwell-gated transitions with `t_switch > 0`).
    pending_since: Option<f64>,
}

impl NemsState {
    fn released() -> NemsState {
        NemsState {
            pulled_in: false,
            pending_since: None,
        }
    }
}

/// A three-terminal suspended-gate NEMFET (drain, gate, source), modelled
/// as a hysteretic electromechanical switch.
///
/// During a Newton solve the mechanical state is frozen, so the stamped
/// current is a smooth function of the terminal voltages; the state
/// updates only when an analysis commits a converged point:
///
/// * actuation ≥ `v_pull_in` ⇒ beam contacts, the channel conducts with
///   the calibrated contact-state EKV model;
/// * actuation ≤ `v_pull_out` ⇒ beam releases, only `g_off` leakage
///   remains;
/// * in between the previous state persists (hysteresis).
///
/// In DC analyses transitions are immediate; in transient analyses they
/// are gated on the model's `t_switch` dwell time (instant when zero).
#[derive(Debug, Clone)]
pub struct Nemfet {
    name: String,
    model: NemsModel,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    width_um: f64,
    state: NemsState,
}

impl Nemfet {
    /// Creates a NEMFET of `width_um` µm between `d`, `g`, `s`, with the
    /// beam initially released.
    ///
    /// # Panics
    ///
    /// Panics if the width is not strictly positive and finite.
    pub fn new(
        name: impl Into<String>,
        model: NemsModel,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        width_um: f64,
    ) -> Nemfet {
        assert!(
            width_um.is_finite() && width_um > 0.0,
            "width must be positive"
        );
        Nemfet {
            name: name.into(),
            model,
            d,
            g,
            s,
            width_um,
            state: NemsState::released(),
        }
    }

    /// The model card.
    pub fn model(&self) -> &NemsModel {
        &self.model
    }

    /// Device width in µm.
    pub fn width_um(&self) -> f64 {
        self.width_um
    }

    /// Whether the beam is currently in contact (switch closed).
    pub fn is_pulled_in(&self) -> bool {
        self.state.pulled_in
    }

    fn target_state(&self, vact: f64) -> bool {
        if vact >= self.model.v_pull_in {
            true
        } else if vact <= self.model.v_pull_out {
            false
        } else {
            self.state.pulled_in
        }
    }
}

impl Device for Nemfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(&self, x: &Solution<'_>, _ctx: &LoadContext, st: &mut Stamper) {
        let g_off = self.model.g_off_per_um * self.width_um;
        st.conductance(self.d, self.s, g_off, x.v(self.d), x.v(self.s));
        if self.state.pulled_in {
            let (i, dg, dd, ds) =
                self.model
                    .contact
                    .ids(x.v(self.g), x.v(self.d), x.v(self.s), self.width_um);
            st.nonlinear_current(
                self.d,
                self.s,
                i,
                &[(self.g, dg), (self.d, dd), (self.s, ds)],
            );
        }
    }

    fn commit(&mut self, x: &Solution<'_>, ctx: &LoadContext) -> bool {
        let vact = self.model.actuation(x.v(self.g), x.v(self.s));
        let target = self.target_state(vact);
        if target == self.state.pulled_in {
            self.state.pending_since = None;
            return false;
        }
        match ctx.mode {
            Mode::Dc => {
                self.state.pulled_in = target;
                self.state.pending_since = None;
                true
            }
            Mode::Transient { time, .. } => {
                if self.model.t_switch == 0.0 {
                    self.state.pulled_in = target;
                    return true;
                }
                let since = *self.state.pending_since.get_or_insert(time);
                if time - since >= self.model.t_switch {
                    self.state.pulled_in = target;
                    self.state.pending_since = None;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn reset_state(&mut self) {
        self.state = NemsState::released();
    }

    fn batch_key(&self) -> Option<u64> {
        // Type tag 2 (vs. the Mosfet's 1). Only the contact-state EKV
        // card enters `batch_eval`; the leakage conductance, hysteresis
        // thresholds, and mechanical state are all per-instance and read
        // from `self` during scatter/commit, so they stay out of the key
        // — beams in different pull-in states share a batch via `bin`.
        Some(batch_key_word(self.model.contact.eval_fingerprint(), 2))
    }

    fn batch_gather(&self, x: &Solution<'_>, batch: &mut EvalBatch) {
        batch.vin[0].push(x.v(self.g));
        batch.vin[1].push(x.v(self.d));
        batch.vin[2].push(x.v(self.s));
        batch.vin[3].push(self.width_um);
        batch.bin.push(self.state.pulled_in);
    }

    fn batch_eval(&self, _ctx: &LoadContext, batch: &mut EvalBatch) {
        let [vg, vd, vs, w] = &batch.vin;
        let lanes = vg.iter().zip(vd).zip(vs).zip(w).zip(&batch.bin);
        for ((((&vg, &vd), &vs), &w), &closed) in lanes {
            // Released lanes stamp no channel current; push zeros to keep
            // the output columns lane-aligned.
            let (i, dg, dd, ds) = if closed {
                self.model.contact.ids(vg, vd, vs, w)
            } else {
                (0.0, 0.0, 0.0, 0.0)
            };
            batch.out[0].push(i);
            batch.out[1].push(dg);
            batch.out[2].push(dd);
            batch.out[3].push(ds);
        }
    }

    fn batch_scatter(
        &self,
        lane: usize,
        batch: &EvalBatch,
        x: &Solution<'_>,
        _ctx: &LoadContext,
        st: &mut Stamper,
    ) {
        let g_off = self.model.g_off_per_um * self.width_um;
        st.conductance(self.d, self.s, g_off, x.v(self.d), x.v(self.s));
        if self.state.pulled_in {
            st.nonlinear_current(
                self.d,
                self.s,
                batch.out[0][lane],
                &[
                    (self.g, batch.out[1][lane]),
                    (self.d, batch.out[2][lane]),
                    (self.s, batch.out[3][lane]),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Polarity;
    use nemscmos_spice::analysis::dc_sweep::dc_sweep;
    use nemscmos_spice::analysis::op::{op, OpOptions};
    use nemscmos_spice::circuit::Circuit;
    use nemscmos_spice::waveform::Waveform;

    /// Resistor-loaded N-type NEMS stage.
    fn stage(vg: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
        ckt.vsource(g, Circuit::GROUND, Waveform::dc(vg));
        ckt.resistor(vdd, d, 10e3);
        ckt.add_device(Nemfet::new(
            "x1",
            NemsModel::nems_90nm(Polarity::Nmos),
            d,
            g,
            Circuit::GROUND,
            1.0,
        ));
        (ckt, d)
    }

    #[test]
    fn high_gate_pulls_in_and_conducts() {
        let (mut ckt, d) = stage(1.2);
        let res = op(&mut ckt).unwrap();
        assert!(res.voltage(d) < 0.2, "v(d) = {}", res.voltage(d));
    }

    #[test]
    fn grounded_gate_is_nearly_open() {
        let (mut ckt, d) = stage(0.0);
        let res = op(&mut ckt).unwrap();
        // 110 pA across 10 kΩ is ~1 µV of droop.
        assert!(res.voltage(d) > 1.199, "v(d) = {}", res.voltage(d));
    }

    #[test]
    fn dc_sweep_shows_hysteresis() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        let supply = ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
        let vg = ckt.vsource(g, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor(vdd, d, 10e3);
        ckt.add_device(Nemfet::new(
            "x1",
            NemsModel::nems_90nm(Polarity::Nmos),
            d,
            g,
            Circuit::GROUND,
            1.0,
        ));
        let opts = OpOptions::default();
        // Sweep up: the switch closes only above v_pull_in = 0.5.
        let up = dc_sweep(&mut ckt, vg, &[0.0, 0.2, 0.4, 0.45, 0.6, 1.2], &opts).unwrap();
        let i_up_045 = up[3].source_current(supply).abs();
        assert!(up[3].voltage(d) > 1.1, "still open at 0.45 V on the way up");
        assert!(up[5].voltage(d) < 0.2, "fully closed at 1.2 V");
        // Sweep back down: stays closed until v_pull_out = 0.3, so the
        // supply current at 0.45 V is orders of magnitude higher than on
        // the way up (hysteresis).
        let down = dc_sweep(&mut ckt, vg, &[1.2, 0.6, 0.45, 0.35, 0.25], &opts).unwrap();
        let i_down_045 = down[2].source_current(supply).abs();
        assert!(
            i_down_045 > 100.0 * i_up_045,
            "hysteresis: {i_down_045:.3e} vs {i_up_045:.3e}"
        );
        assert!(down[4].voltage(d) > 1.1, "released below v_pull_out");
    }

    #[test]
    fn ptype_nems_acts_as_pull_up() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
        ckt.vsource(g, Circuit::GROUND, Waveform::dc(0.0)); // v_sg = 1.2 → pulled in
        ckt.resistor(d, Circuit::GROUND, 10e3);
        ckt.add_device(Nemfet::new(
            "xp",
            NemsModel::nems_90nm(Polarity::Pmos),
            d,
            g,
            vdd,
            1.0,
        ));
        let res = op(&mut ckt).unwrap();
        assert!(res.voltage(d) > 1.0, "v(d) = {}", res.voltage(d));
    }

    #[test]
    fn reset_releases_the_beam() {
        let (mut ckt, _) = stage(1.2);
        let _ = op(&mut ckt).unwrap();
        ckt.reset_device_state();
        // Devices are boxed inside the circuit; verify behaviourally: after
        // reset and a 0.4 V gate (inside the hysteresis window), the beam
        // must be *released* (fresh state), not stuck closed.
        // (A pulled-in beam would stay pulled in at 0.4 V.)
        // Rebuild with gate at 0.4 V to avoid mutating frozen topology.
        let mut ckt2 = Circuit::new();
        let vdd = ckt2.node("vdd");
        let g = ckt2.node("g");
        let d = ckt2.node("d");
        ckt2.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
        ckt2.vsource(g, Circuit::GROUND, Waveform::dc(0.4));
        ckt2.resistor(vdd, d, 10e3);
        ckt2.add_device(Nemfet::new(
            "x1",
            NemsModel::nems_90nm(Polarity::Nmos),
            d,
            g,
            Circuit::GROUND,
            1.0,
        ));
        let res = op(&mut ckt2).unwrap();
        assert!(res.voltage(d) > 1.1);
    }
}
