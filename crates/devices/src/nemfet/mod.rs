//! Suspended-gate NEMFET models: quasi-static (hysteretic switch) and
//! dynamic (beam equation co-simulated in the MNA system).

mod device;
mod dynamic;
mod model;
mod transducer;

pub use device::Nemfet;
pub use dynamic::{DynamicNemfet, MechanicalParams};
pub use model::{NemsModel, NemsTargets};
pub use transducer::{fit_transducer_polynomial, TransducerFit};
