//! The paper's `f(V_g)` polynomial (Section 2.4).
//!
//! In the Fig. 6(b) HSPICE model the electromechanical transducer appears
//! as a voltage-controlled source `f(V_g)` whose "complicated analytical
//! function" is replaced by "a polynomial approximation … through curve
//! fitting" \[23\]. We have the analytical function (beam physics in
//! `nemscmos-mems`), so this module performs exactly that fit and
//! quantifies its accuracy — reproducing the modelling step the paper
//! describes.

use nemscmos_mems::dynamics::ActuatorDynamics;
use nemscmos_numeric::poly::Polynomial;
use nemscmos_numeric::NumericError;

/// A fitted `f(V_g)` polynomial with its fit diagnostics.
#[derive(Debug, Clone)]
pub struct TransducerFit {
    /// The polynomial approximation of the transducer drop (V → V).
    pub poly: Polynomial,
    /// The sampled gate voltages used for the fit.
    pub samples_v: Vec<f64>,
    /// The exact (physics) transducer drops at those samples.
    pub samples_f: Vec<f64>,
    /// Maximum absolute fit error over the samples (V).
    pub max_error: f64,
}

/// Fits a polynomial of the given degree to the transducer drop of a beam
/// over the stable actuation range `[0, fraction·V_pull-in]`.
///
/// # Errors
///
/// Propagates [`NumericError`] from the least-squares fit (e.g. an
/// underdetermined degree).
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1)` or `samples < 2`.
pub fn fit_transducer_polynomial(
    dynamics: &ActuatorDynamics,
    degree: usize,
    fraction: f64,
    samples: usize,
) -> Result<TransducerFit, NumericError> {
    assert!(
        (0.0..1.0).contains(&fraction) && fraction > 0.0,
        "fraction must be in (0, 1)"
    );
    assert!(samples >= 2, "need at least two samples");
    let v_max = fraction * dynamics.actuator().pull_in_voltage();
    let samples_v: Vec<f64> = (0..samples)
        .map(|k| v_max * k as f64 / (samples - 1) as f64)
        .collect();
    let samples_f: Vec<f64> = samples_v
        .iter()
        .map(|&v| dynamics.transducer_drop(v))
        .collect();
    let poly = Polynomial::fit(&samples_v, &samples_f, degree)?;
    let max_error = samples_v
        .iter()
        .zip(samples_f.iter())
        .map(|(&v, &f)| (poly.eval(v) - f).abs())
        .fold(0.0f64, f64::max);
    Ok(TransducerFit {
        poly,
        samples_v,
        samples_f,
        max_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_mems::electrostatics::Actuator;

    fn dynamics() -> ActuatorDynamics {
        let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 5e-9, 7.5);
        ActuatorDynamics::new(act, 4e-14, 5e-8)
    }

    #[test]
    fn quartic_fit_tracks_the_physics() {
        let d = dynamics();
        let fit = fit_transducer_polynomial(&d, 4, 0.9, 40).unwrap();
        let span = fit.samples_f.iter().cloned().fold(0.0f64, f64::max);
        assert!(span > 0.0, "transducer drop must be nonzero below pull-in");
        assert!(
            fit.max_error < 0.05 * span,
            "fit error {:.3e} vs span {:.3e}",
            fit.max_error,
            span
        );
    }

    #[test]
    fn higher_degree_fits_at_least_as_well() {
        let d = dynamics();
        let lo = fit_transducer_polynomial(&d, 2, 0.9, 40).unwrap();
        let hi = fit_transducer_polynomial(&d, 6, 0.9, 40).unwrap();
        assert!(hi.max_error <= lo.max_error * 1.001);
    }

    #[test]
    fn drop_vanishes_at_zero_bias() {
        let d = dynamics();
        let fit = fit_transducer_polynomial(&d, 4, 0.9, 40).unwrap();
        assert!(fit.samples_f[0].abs() < 1e-12);
        // The fitted polynomial respects it approximately.
        assert!(fit.poly.eval(0.0).abs() < 2.0 * fit.max_error + 1e-12);
    }

    #[test]
    fn drop_grows_toward_pull_in() {
        let d = dynamics();
        let fit = fit_transducer_polynomial(&d, 4, 0.95, 60).unwrap();
        let n = fit.samples_f.len();
        assert!(fit.samples_f[n - 1] > fit.samples_f[n / 2]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let _ = fit_transducer_polynomial(&dynamics(), 3, 1.5, 10);
    }
}
