//! The ITRS-style technology-scaling trend of Figure 1: supply and
//! threshold voltages scale together across nodes, and subthreshold
//! leakage grows exponentially as `V_th` drops.

use crate::VT_300K;

/// One technology node of the scaling trend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Feature size (nm).
    pub node_nm: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Threshold voltage (V).
    pub vth: f64,
    /// Subthreshold leakage (A/µm).
    pub ioff: f64,
    /// On current (A/µm).
    pub ion: f64,
}

/// ITRS-flavoured high-performance logic roadmap (250 nm → 45 nm), the
/// qualitative source of the paper's Figure 1.
const ROADMAP: [(f64, f64, f64); 6] = [
    // (node_nm, vdd, vth)
    (250.0, 2.5, 0.50),
    (180.0, 1.8, 0.45),
    (130.0, 1.5, 0.40),
    (90.0, 1.2, 0.33),
    (65.0, 1.1, 0.28),
    (45.0, 1.0, 0.22),
];

/// Subthreshold slope factor assumed across nodes (S ≈ 95 mV/dec).
const SLOPE_FACTOR: f64 = 1.6;

/// Velocity-saturated drive exponent (alpha-power law).
const ALPHA: f64 = 1.3;

/// Generates the Figure 1 trend. The 90 nm point is anchored to the
/// paper's Table 1 (I_OFF = 50 nA/µm, I_ON = 1110 µA/µm); other nodes
/// follow `I_OFF ∝ 10^(−V_th/S)` and `I_ON ∝ (V_dd − V_th)^α`.
pub fn itrs_trend() -> Vec<ScalingPoint> {
    let s = SLOPE_FACTOR * VT_300K * std::f64::consts::LN_10;
    let (_, vdd90, vth90) = ROADMAP[3];
    let ioff90 = 50e-9;
    let ion90 = 1110e-6;
    ROADMAP
        .iter()
        .map(|&(node_nm, vdd, vth)| ScalingPoint {
            node_nm,
            vdd,
            vth,
            ioff: ioff90 * 10f64.powf((vth90 - vth) / s),
            ion: ion90 * ((vdd - vth) / (vdd90 - vth90)).powf(ALPHA),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_grows_monotonically_with_scaling() {
        let trend = itrs_trend();
        for w in trend.windows(2) {
            assert!(w[1].node_nm < w[0].node_nm);
            assert!(w[1].ioff > w[0].ioff, "leakage must grow as nodes shrink");
        }
    }

    #[test]
    fn ninety_nm_matches_table1_anchor() {
        let p90 = itrs_trend()
            .into_iter()
            .find(|p| p.node_nm == 90.0)
            .unwrap();
        assert!((p90.ioff - 50e-9).abs() < 1e-15);
        assert!((p90.ion - 1110e-6).abs() < 1e-12);
        assert_eq!(p90.vdd, 1.2);
    }

    #[test]
    fn leakage_spans_orders_of_magnitude() {
        let trend = itrs_trend();
        let ratio = trend.last().unwrap().ioff / trend[0].ioff;
        assert!(
            ratio > 100.0,
            "250 nm → 45 nm leakage should grow >100×, got {ratio}"
        );
    }

    #[test]
    fn voltages_scale_down_together() {
        let trend = itrs_trend();
        for w in trend.windows(2) {
            assert!(w[1].vdd <= w[0].vdd);
            assert!(w[1].vth <= w[0].vth);
        }
    }
}
