//! Named 90 nm model-card variants used by the SRAM baselines.

use super::MosModel;

/// Threshold shift of the "high-V_t" flavour used by the dual-V_t and
/// asymmetric SRAM cells (V).
pub const HIGH_VT_SHIFT: f64 = 0.15;

impl MosModel {
    /// High-V_t 90 nm NMOS (dual-V_t / asymmetric SRAM baselines):
    /// `V_th` raised by [`HIGH_VT_SHIFT`], roughly 40× lower leakage.
    pub fn nmos_90nm_hvt() -> MosModel {
        MosModel {
            name: "nmos-90nm-hvt",
            ..MosModel::nmos_90nm().with_vth_shift(HIGH_VT_SHIFT)
        }
    }

    /// High-V_t 90 nm PMOS.
    pub fn pmos_90nm_hvt() -> MosModel {
        MosModel {
            name: "pmos-90nm-hvt",
            ..MosModel::pmos_90nm().with_vth_shift(HIGH_VT_SHIFT)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hvt_cards_leak_much_less() {
        let lv = MosModel::nmos_90nm();
        let hv = MosModel::nmos_90nm_hvt();
        let (i_lv, ..) = lv.ids(0.0, 1.2, 0.0, 1.0);
        let (i_hv, ..) = hv.ids(0.0, 1.2, 0.0, 1.0);
        assert!(i_hv < i_lv / 10.0, "hvt leak {i_hv:.2e} vs lvt {i_lv:.2e}");
    }

    #[test]
    fn hvt_cards_lose_some_drive() {
        let lv = MosModel::nmos_90nm();
        let hv = MosModel::nmos_90nm_hvt();
        let (i_lv, ..) = lv.ids(1.2, 1.2, 0.0, 1.0);
        let (i_hv, ..) = hv.ids(1.2, 1.2, 0.0, 1.0);
        assert!(i_hv < i_lv);
        assert!(i_hv > 0.5 * i_lv, "drive loss should be moderate");
    }

    #[test]
    fn hvt_pmos_mirrors() {
        let hv = MosModel::pmos_90nm_hvt();
        let (ioff, ..) = hv.ids(1.2, 0.0, 1.2, 1.0);
        assert!(ioff.abs() < 5e-9);
    }
}
