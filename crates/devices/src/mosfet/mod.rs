//! EKV-style MOSFET compact model and its MNA device wrapper.

mod cards;
mod device;
mod model;

pub use cards::HIGH_VT_SHIFT;
pub use device::Mosfet;
pub use model::{MosModel, Polarity};
