//! The EKV-interpolation MOSFET current model.

/// Channel polarity of a MOSFET or NEMS switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel: conducts when the gate is high relative to the source.
    Nmos,
    /// P-channel: conducts when the gate is low relative to the source.
    Pmos,
}

impl Polarity {
    /// `+1.0` for NMOS, `−1.0` for PMOS.
    pub fn sign(self) -> f64 {
        match self {
            Polarity::Nmos => 1.0,
            Polarity::Pmos => -1.0,
        }
    }
}

/// An EKV-style MOSFET model card (per-µm quantities).
///
/// The drain current interpolates smoothly between exponential
/// subthreshold conduction and square-law strong inversion:
///
/// ```text
/// I_d = W · I_s · (1 + λ·v_ds) · [ L²( (v_p)/2v_t ) − L²( (v_p − v_ds)/2v_t ) ]
/// v_p = (v_gs − V_th) / n,   L(u) = ln(1 + e^u)
/// ```
///
/// with drain/source swap symmetry for `v_ds < 0` and a polarity mirror for
/// PMOS. The three electrical parameters (`is_spec`, `vth`, `n`) are
/// normally produced by [`crate::calibrate`] from (I_ON, I_OFF, swing)
/// targets.
///
/// # Example
///
/// ```
/// use nemscmos_devices::mosfet::MosModel;
///
/// let m = MosModel::nmos_90nm();
/// let (i, _, _, _) = m.ids(1.2, 1.2, 0.0, 1.0);
/// assert!(i > 1e-3); // ~1.1 mA/µm on current
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MosModel {
    /// Card name for diagnostics.
    pub name: &'static str,
    /// Polarity.
    pub polarity: Polarity,
    /// Specific current prefactor (A per µm of width).
    pub is_spec: f64,
    /// Threshold voltage magnitude (V, positive for both polarities).
    pub vth: f64,
    /// Subthreshold slope factor (dimensionless, ≥ 1).
    pub n: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Gate capacitance per µm width (F/µm), used by circuit builders.
    pub c_gate_per_um: f64,
    /// Drain/source junction capacitance per µm width (F/µm).
    pub c_junction_per_um: f64,
    /// Operating temperature (K). Sets the thermal voltage and shifts the
    /// threshold by [`MosModel::VTH_TEMP_COEFF`] per kelvin — the coupling
    /// that makes CMOS subthreshold leakage grow exponentially with
    /// temperature (\[5\] in the paper).
    pub temp_k: f64,
}

/// `ln(1 + e^u)` computed without overflow.
#[inline]
pub(crate) fn softplus(u: f64) -> f64 {
    if u > 40.0 {
        u
    } else if u < -40.0 {
        0.0
    } else {
        u.exp().ln_1p()
    }
}

/// Logistic `σ(u) = 1/(1+e^{−u})`, the derivative of [`softplus`].
#[inline]
pub(crate) fn logistic(u: f64) -> f64 {
    if u > 40.0 {
        1.0
    } else if u < -40.0 {
        0.0
    } else {
        1.0 / (1.0 + (-u).exp())
    }
}

impl MosModel {
    /// Threshold-voltage temperature coefficient (V/K): V_th drops by
    /// this much per kelvin above 300 K.
    pub const VTH_TEMP_COEFF: f64 = 1.0e-3;

    /// Boltzmann constant over electron charge (V/K).
    pub const KB_OVER_Q: f64 = 8.617_333e-5;

    /// Returns a copy of this card evaluated at `kelvin`.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is not strictly positive and finite.
    pub fn at_temperature(&self, kelvin: f64) -> MosModel {
        assert!(
            kelvin.is_finite() && kelvin > 0.0,
            "temperature must be positive"
        );
        MosModel {
            temp_k: kelvin,
            ..self.clone()
        }
    }

    /// The thermal voltage `kT/q` at this card's temperature (V).
    pub fn thermal_voltage(&self) -> f64 {
        Self::KB_OVER_Q * self.temp_k
    }

    /// The temperature-corrected threshold voltage (V).
    pub fn vth_effective(&self) -> f64 {
        self.vth - Self::VTH_TEMP_COEFF * (self.temp_k - 300.0)
    }

    /// The calibrated 90 nm NMOS card (Table 1: 1110 µA/µm, 50 nA/µm at
    /// V_dd = 1.2 V, S ≈ 95 mV/dec).
    pub fn nmos_90nm() -> MosModel {
        // Constants produced by `calibrate::calibrate_mos` (see the
        // calibration regression test in that module).
        crate::calibrate::nmos_90nm_card()
    }

    /// The calibrated 90 nm PMOS card (mobility-limited: 550 µA/µm on,
    /// 50 nA/µm off).
    pub fn pmos_90nm() -> MosModel {
        crate::calibrate::pmos_90nm_card()
    }

    /// A high-V_t variant of this card: `V_th` raised by `dv` volts, with
    /// the on/off currents following from the model equations. Used for
    /// the dual-V_t and asymmetric SRAM baselines.
    ///
    /// # Panics
    ///
    /// Panics if `dv` is not finite.
    pub fn with_vth_shift(&self, dv: f64) -> MosModel {
        assert!(dv.is_finite(), "vth shift must be finite");
        MosModel {
            vth: self.vth + dv,
            name: "shifted",
            ..self.clone()
        }
    }

    /// Drain-source current and its partial derivatives.
    ///
    /// Arguments are the terminal voltages (V) and the device width in µm.
    /// Returns `(i_ds, ∂i/∂v_g, ∂i/∂v_d, ∂i/∂v_s)` where `i_ds` is the
    /// current flowing from the drain terminal to the source terminal
    /// (negative for a conducting PMOS, matching SPICE conventions).
    pub fn ids(&self, vg: f64, vd: f64, vs: f64, width_um: f64) -> (f64, f64, f64, f64) {
        debug_assert!(width_um > 0.0, "device width must be positive");
        let s = self.polarity.sign();
        // Mirror PMOS into the NMOS frame.
        let (mvg, mvd, mvs) = (s * vg, s * vd, s * vs);
        // Drain/source swap for reverse operation.
        let (xd, xs, swapped) = if mvd >= mvs {
            (mvd, mvs, false)
        } else {
            (mvs, mvd, true)
        };
        let vgs = mvg - xs;
        let vds = xd - xs;
        let vt = self.thermal_voltage();
        let vp = (vgs - self.vth_effective()) / self.n;
        let uf = vp / (2.0 * vt);
        let ur = (vp - vds) / (2.0 * vt);
        let lf = softplus(uf);
        let lr = softplus(ur);
        let sf = logistic(uf);
        let sr = logistic(ur);
        let clm = 1.0 + self.lambda * vds;
        let k = self.is_spec * width_um;
        let i = k * (lf * lf - lr * lr) * clm;
        // Partials in the swapped, mirrored frame.
        let dgm = k * clm * (lf * sf - lr * sr) / (self.n * vt);
        let dgds = k * (clm * lr * sr / vt + (lf * lf - lr * lr) * self.lambda);
        // dI/dxs = −(gm + gds) by charge conservation.
        let (di_g, di_d, di_s) = if swapped {
            // Current actually flows xs→xd in device terms: i_ds = −i, and
            // the "drain" partial applies to the source terminal.
            (-dgm, dgm + dgds, -dgds)
        } else {
            (dgm, dgds, -(dgm + dgds))
        };
        let i_signed = if swapped { -i } else { i };
        // Undo the polarity mirror: I(v) = s·I_core(s·v) ⇒ ∂I/∂v = ∂I_core/∂v_core.
        (s * i_signed, di_g, di_d, di_s)
    }

    /// Gate capacitance of a `width_um`-wide device (F).
    pub fn gate_cap(&self, width_um: f64) -> f64 {
        self.c_gate_per_um * width_um
    }

    /// Junction (drain or source) capacitance of a `width_um`-wide device (F).
    pub fn junction_cap(&self, width_um: f64) -> f64 {
        self.c_junction_per_um * width_um
    }

    /// Subthreshold swing implied by the slope factor at this card's
    /// temperature: `S = n·(kT/q)·ln 10` (V/decade).
    pub fn swing(&self) -> f64 {
        self.n * self.thermal_voltage() * std::f64::consts::LN_10
    }

    /// Hash of exactly the parameter bits [`MosModel::ids`] reads
    /// (polarity, `is_spec`, `vth`, `n`, `lambda`, `temp_k`), used to
    /// build batch-evaluation keys: cards with equal fingerprints produce
    /// bitwise-identical currents for identical terminal inputs. The
    /// capacitance parameters and diagnostic name are deliberately
    /// excluded — they never enter the current evaluation.
    pub fn eval_fingerprint(&self) -> u64 {
        use nemscmos_spice::device::{batch_key_word, BATCH_KEY_SEED};
        let tag = match self.polarity {
            Polarity::Nmos => 1,
            Polarity::Pmos => 2,
        };
        let mut h = batch_key_word(BATCH_KEY_SEED, tag);
        for v in [self.is_spec, self.vth, self.n, self.lambda, self.temp_k] {
            h = batch_key_word(h, v.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosModel {
        MosModel {
            name: "test-n",
            polarity: Polarity::Nmos,
            is_spec: 6e-6,
            vth: 0.2,
            n: 1.5,
            lambda: 0.1,
            c_gate_per_um: 1.5e-15,
            c_junction_per_um: 1.0e-15,
            temp_k: 300.0,
        }
    }

    fn pmos() -> MosModel {
        MosModel {
            name: "test-p",
            polarity: Polarity::Pmos,
            ..nmos()
        }
    }

    #[test]
    fn nmos_on_current_positive_off_current_small() {
        let m = nmos();
        let (ion, ..) = m.ids(1.2, 1.2, 0.0, 1.0);
        let (ioff, ..) = m.ids(0.0, 1.2, 0.0, 1.0);
        assert!(ion > 1e-4);
        assert!(ioff > 0.0 && ioff < 1e-6);
        assert!(ion / ioff > 1e3);
    }

    #[test]
    fn current_scales_linearly_with_width() {
        let m = nmos();
        let (i1, ..) = m.ids(1.0, 1.0, 0.0, 1.0);
        let (i3, ..) = m.ids(1.0, 1.0, 0.0, 3.0);
        assert!((i3 / i1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn drain_source_symmetry() {
        // Swapping drain and source negates the current.
        let m = nmos();
        let (fwd, ..) = m.ids(1.0, 0.8, 0.2, 1.0);
        let (rev, ..) = m.ids(1.0, 0.2, 0.8, 1.0);
        assert!((fwd + rev).abs() < 1e-15 * fwd.abs().max(1.0));
    }

    #[test]
    fn zero_vds_gives_zero_current() {
        let m = nmos();
        let (i, ..) = m.ids(1.2, 0.6, 0.6, 1.0);
        assert_eq!(i, 0.0);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = nmos();
        let p = pmos();
        let (i_n, ..) = n.ids(1.2, 1.2, 0.0, 1.0);
        // PMOS with source at 1.2, gate at 0, drain at 0: fully on,
        // current flows source→drain so i_ds < 0.
        let (i_p, ..) = p.ids(0.0, 0.0, 1.2, 1.0);
        assert!((i_p + i_n).abs() < 1e-15 * i_n);
    }

    #[test]
    fn partials_match_finite_differences() {
        let m = nmos();
        let cases = [
            (0.9, 1.1, 0.0),
            (0.3, 0.05, 0.0),
            (1.2, 0.4, 0.2),
            (0.0, 1.2, 0.0),
            (0.7, 0.1, 0.6), // reverse-ish
            (0.5, 0.0, 0.9), // swapped
        ];
        let h = 1e-7;
        for &(vg, vd, vs) in &cases {
            let (_, dg, dd, ds) = m.ids(vg, vd, vs, 2.0);
            let num_g = (m.ids(vg + h, vd, vs, 2.0).0 - m.ids(vg - h, vd, vs, 2.0).0) / (2.0 * h);
            let num_d = (m.ids(vg, vd + h, vs, 2.0).0 - m.ids(vg, vd - h, vs, 2.0).0) / (2.0 * h);
            let num_s = (m.ids(vg, vd, vs + h, 2.0).0 - m.ids(vg, vd, vs - h, 2.0).0) / (2.0 * h);
            let scale = num_g.abs().max(num_d.abs()).max(num_s.abs()).max(1e-9);
            assert!(
                (dg - num_g).abs() / scale < 1e-4,
                "dg at {vg},{vd},{vs}: {dg} vs {num_g}"
            );
            assert!(
                (dd - num_d).abs() / scale < 1e-4,
                "dd at {vg},{vd},{vs}: {dd} vs {num_d}"
            );
            assert!(
                (ds - num_s).abs() / scale < 1e-4,
                "ds at {vg},{vd},{vs}: {ds} vs {num_s}"
            );
        }
    }

    #[test]
    fn pmos_partials_match_finite_differences() {
        let m = pmos();
        let h = 1e-7;
        for &(vg, vd, vs) in &[
            (0.0, 0.2, 1.2),
            (0.6, 0.0, 1.2),
            (1.2, 1.0, 1.2),
            (0.3, 1.2, 0.1),
        ] {
            let (_, dg, dd, ds) = m.ids(vg, vd, vs, 1.0);
            let num_g = (m.ids(vg + h, vd, vs, 1.0).0 - m.ids(vg - h, vd, vs, 1.0).0) / (2.0 * h);
            let num_d = (m.ids(vg, vd + h, vs, 1.0).0 - m.ids(vg, vd - h, vs, 1.0).0) / (2.0 * h);
            let num_s = (m.ids(vg, vd, vs + h, 1.0).0 - m.ids(vg, vd, vs - h, 1.0).0) / (2.0 * h);
            let scale = num_g.abs().max(num_d.abs()).max(num_s.abs()).max(1e-9);
            assert!((dg - num_g).abs() / scale < 1e-4, "dg at {vg},{vd},{vs}");
            assert!((dd - num_d).abs() / scale < 1e-4, "dd at {vg},{vd},{vs}");
            assert!((ds - num_s).abs() / scale < 1e-4, "ds at {vg},{vd},{vs}");
        }
    }

    #[test]
    fn higher_vth_means_less_leakage() {
        let m = nmos();
        let hv = m.with_vth_shift(0.15);
        let (i_lo, ..) = m.ids(0.0, 1.2, 0.0, 1.0);
        let (i_hi, ..) = hv.ids(0.0, 1.2, 0.0, 1.0);
        assert!(i_hi < i_lo / 10.0);
    }

    #[test]
    fn swing_formula() {
        let m = nmos();
        let expect = 1.5 * m.thermal_voltage() * std::f64::consts::LN_10;
        assert!((m.swing() - expect).abs() < 1e-15);
        // Hotter devices have worse (larger) swing.
        assert!(m.at_temperature(400.0).swing() > m.swing());
    }

    #[test]
    fn softplus_and_logistic_limits() {
        assert_eq!(softplus(100.0), 100.0);
        assert_eq!(softplus(-100.0), 0.0);
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(logistic(100.0), 1.0);
        assert_eq!(logistic(-100.0), 0.0);
        assert!((logistic(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn monotone_in_gate_voltage() {
        let m = nmos();
        let mut prev = -1.0;
        for k in 0..=24 {
            let vg = k as f64 * 0.05;
            let (i, ..) = m.ids(vg, 1.2, 0.0, 1.0);
            assert!(i > prev, "I_d must increase with V_g");
            prev = i;
        }
    }
}
