//! MNA device wrapper for the EKV MOSFET.

use nemscmos_spice::device::{batch_key_word, Device, EvalBatch, LoadContext, Solution};
use nemscmos_spice::element::NodeId;
use nemscmos_spice::stamp::Stamper;

use super::MosModel;

/// A three-terminal MOSFET instance (drain, gate, source).
///
/// Body effect is neglected (the model is source-referenced); this is a
/// documented simplification — the paper's comparisons hinge on I_ON /
/// I_OFF ratios, which are unaffected.
///
/// Gate and junction capacitances are *not* stamped by the device; circuit
/// builders add them as explicit linear capacitors (see
/// `nemscmos::tech`). This keeps the device purely resistive and the
/// transient integration entirely in the engine.
#[derive(Debug, Clone)]
pub struct Mosfet {
    name: String,
    model: MosModel,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    width_um: f64,
}

impl Mosfet {
    /// Creates a MOSFET of `width_um` µm between `d`, `g`, `s`.
    ///
    /// # Panics
    ///
    /// Panics if the width is not strictly positive and finite.
    pub fn new(
        name: impl Into<String>,
        model: MosModel,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        width_um: f64,
    ) -> Mosfet {
        assert!(
            width_um.is_finite() && width_um > 0.0,
            "width must be positive"
        );
        Mosfet {
            name: name.into(),
            model,
            d,
            g,
            s,
            width_um,
        }
    }

    /// The model card.
    pub fn model(&self) -> &MosModel {
        &self.model
    }

    /// Device width in µm.
    pub fn width_um(&self) -> f64 {
        self.width_um
    }
}

impl Device for Mosfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(&self, x: &Solution<'_>, _ctx: &LoadContext, st: &mut Stamper) {
        let (i, dg, dd, ds) = self
            .model
            .ids(x.v(self.g), x.v(self.d), x.v(self.s), self.width_um);
        st.nonlinear_current(
            self.d,
            self.s,
            i,
            &[(self.g, dg), (self.d, dd), (self.s, ds)],
        );
    }

    fn commit(&mut self, _x: &Solution<'_>, _ctx: &LoadContext) -> bool {
        false // stateless
    }

    fn reset_state(&mut self) {}

    fn batch_key(&self) -> Option<u64> {
        // Type tag 1: a Mosfet never shares a batch with another device
        // kind, even on a fingerprint collision of the underlying card.
        Some(batch_key_word(self.model.eval_fingerprint(), 1))
    }

    fn batch_gather(&self, x: &Solution<'_>, batch: &mut EvalBatch) {
        batch.vin[0].push(x.v(self.g));
        batch.vin[1].push(x.v(self.d));
        batch.vin[2].push(x.v(self.s));
        batch.vin[3].push(self.width_um);
    }

    fn batch_eval(&self, _ctx: &LoadContext, batch: &mut EvalBatch) {
        let [vg, vd, vs, w] = &batch.vin;
        for (((&vg, &vd), &vs), &w) in vg.iter().zip(vd).zip(vs).zip(w) {
            let (i, dg, dd, ds) = self.model.ids(vg, vd, vs, w);
            batch.out[0].push(i);
            batch.out[1].push(dg);
            batch.out[2].push(dd);
            batch.out[3].push(ds);
        }
    }

    fn batch_scatter(
        &self,
        lane: usize,
        batch: &EvalBatch,
        _x: &Solution<'_>,
        _ctx: &LoadContext,
        st: &mut Stamper,
    ) {
        st.nonlinear_current(
            self.d,
            self.s,
            batch.out[0][lane],
            &[
                (self.g, batch.out[1][lane]),
                (self.d, batch.out[2][lane]),
                (self.s, batch.out[3][lane]),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_spice::analysis::op::op;
    use nemscmos_spice::circuit::Circuit;
    use nemscmos_spice::waveform::Waveform;

    /// A resistor-loaded NMOS common-source stage must pull its drain low
    /// when the gate is driven high.
    #[test]
    fn nmos_inverting_stage() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
        ckt.vsource(g, Circuit::GROUND, Waveform::dc(1.2));
        ckt.resistor(vdd, d, 10e3);
        ckt.add_device(Mosfet::new(
            "m1",
            MosModel::nmos_90nm(),
            d,
            g,
            Circuit::GROUND,
            1.0,
        ));
        let res = op(&mut ckt).unwrap();
        // 1.1 mA through 10 kΩ would want an 11 V drop: drain saturates
        // near ground.
        assert!(res.voltage(d) < 0.1, "v(d) = {}", res.voltage(d));
    }

    #[test]
    fn nmos_off_leaks_weakly() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
        ckt.resistor(vdd, d, 10e3);
        ckt.add_device(Mosfet::new(
            "m1",
            MosModel::nmos_90nm(),
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            1.0,
        ));
        let res = op(&mut ckt).unwrap();
        // 50 nA leak across 10 kΩ drops only 0.5 mV.
        assert!(res.voltage(d) > 1.19, "v(d) = {}", res.voltage(d));
    }

    #[test]
    fn cmos_inverter_switches() {
        use crate::mosfet::Polarity;
        let _ = Polarity::Nmos; // silence unused import lint paths
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
        let vsrc_in = ckt.vsource(vin, Circuit::GROUND, Waveform::dc(0.0));
        ckt.add_device(Mosfet::new("mp", MosModel::pmos_90nm(), out, vin, vdd, 2.0));
        ckt.add_device(Mosfet::new(
            "mn",
            MosModel::nmos_90nm(),
            out,
            vin,
            Circuit::GROUND,
            1.0,
        ));
        let res = op(&mut ckt).unwrap();
        assert!(
            res.voltage(out) > 1.15,
            "low in → high out, got {}",
            res.voltage(out)
        );
        ckt.set_vsource_dc(vsrc_in, 1.2).unwrap();
        let res = op(&mut ckt).unwrap();
        assert!(
            res.voltage(out) < 0.05,
            "high in → low out, got {}",
            res.voltage(out)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_is_rejected() {
        let _ = Mosfet::new(
            "m",
            MosModel::nmos_90nm(),
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
            0.0,
        );
    }
}
