//! Numeric calibration of model cards to (I_ON, I_OFF, swing) targets.
//!
//! The paper uses BSIM cards for CMOS and a fitted HSPICE model for the
//! NEMFET, both characterized by the Table 1 currents. We instead solve
//! our compact-model parameters so the *model* reproduces those exact
//! targets: the slope factor comes from the swing, then the threshold
//! voltage is found by root bracketing on the on/off current ratio, and
//! the specific current follows from the on-current.

use std::sync::OnceLock;

use nemscmos_numeric::roots::bisect;

use crate::mosfet::{MosModel, Polarity};
use crate::VT_300K;

/// Calibration targets for a MOSFET-like conduction model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosTargets {
    /// On current at `v_gs = v_ds = v_dd` (A/µm).
    pub ion: f64,
    /// Off current at `v_gs = 0, v_ds = v_dd` (A/µm).
    pub ioff: f64,
    /// Subthreshold swing (V/decade).
    pub swing: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl MosTargets {
    /// The paper's Table 1 CMOS row (NMOS): 1110 µA/µm, 50 nA/µm at
    /// 90 nm / 1.2 V with S ≈ 95 mV/dec.
    pub fn cmos_90nm_nmos() -> MosTargets {
        MosTargets {
            ion: 1110e-6,
            ioff: 50e-9,
            swing: 95e-3,
            vdd: 1.2,
        }
    }

    /// The 90 nm PMOS counterpart (hole mobility ≈ half): 550 µA/µm,
    /// 50 nA/µm.
    pub fn cmos_90nm_pmos() -> MosTargets {
        MosTargets {
            ion: 550e-6,
            ioff: 50e-9,
            swing: 95e-3,
            vdd: 1.2,
        }
    }
}

/// Calibrates an EKV card of the given polarity to the targets.
///
/// # Panics
///
/// Panics if the targets are non-physical (non-positive currents,
/// `ion <= ioff`, swing below the 60 mV/dec thermal limit) — these are
/// programmer errors in experiment setup, not runtime conditions.
pub fn calibrate_mos(name: &'static str, polarity: Polarity, t: &MosTargets) -> MosModel {
    assert!(
        t.ion > 0.0 && t.ioff > 0.0 && t.ion > t.ioff,
        "need ion > ioff > 0"
    );
    assert!(
        t.swing >= 59.5e-3,
        "swing below the 60 mV/dec thermal limit is unphysical for a MOSFET"
    );
    assert!(t.vdd > 0.0, "vdd must be positive");
    let n = t.swing / (VT_300K * std::f64::consts::LN_10);
    // Template card evaluated in the NMOS frame; is_spec = 1 for ratios.
    let proto = |vth: f64| MosModel {
        name,
        polarity: Polarity::Nmos,
        is_spec: 1.0,
        vth,
        n,
        lambda: 0.1,
        c_gate_per_um: 1.5e-15,
        c_junction_per_um: 1.0e-15,
        temp_k: 300.0,
    };
    // Find vth so that the model's on/off ratio matches the target ratio.
    let target_ratio = (t.ion / t.ioff).ln();
    let ratio_err = |vth: f64| {
        let m = proto(vth);
        let (ion, ..) = m.ids(t.vdd, t.vdd, 0.0, 1.0);
        let (ioff, ..) = m.ids(0.0, t.vdd, 0.0, 1.0);
        (ion / ioff).ln() - target_ratio
    };
    let vth = bisect(ratio_err, 0.01, t.vdd, 1e-12, 200)
        .expect("on/off ratio target outside the achievable range for this swing");
    // Scale the specific current to hit the on-current exactly.
    let mut card = proto(vth);
    let (raw_ion, ..) = card.ids(t.vdd, t.vdd, 0.0, 1.0);
    card.is_spec = t.ion / raw_ion;
    card.polarity = polarity;
    card
}

/// The memoized 90 nm NMOS card.
pub(crate) fn nmos_90nm_card() -> MosModel {
    static CARD: OnceLock<MosModel> = OnceLock::new();
    CARD.get_or_init(|| calibrate_mos("nmos-90nm", Polarity::Nmos, &MosTargets::cmos_90nm_nmos()))
        .clone()
}

/// The memoized 90 nm PMOS card.
pub(crate) fn pmos_90nm_card() -> MosModel {
    static CARD: OnceLock<MosModel> = OnceLock::new();
    CARD.get_or_init(|| calibrate_mos("pmos-90nm", Polarity::Pmos, &MosTargets::cmos_90nm_pmos()))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmos_card_hits_table1_targets() {
        let t = MosTargets::cmos_90nm_nmos();
        let m = calibrate_mos("t", Polarity::Nmos, &t);
        let (ion, ..) = m.ids(t.vdd, t.vdd, 0.0, 1.0);
        let (ioff, ..) = m.ids(0.0, t.vdd, 0.0, 1.0);
        assert!((ion - t.ion).abs() / t.ion < 1e-6, "ion = {ion:.4e}");
        assert!((ioff - t.ioff).abs() / t.ioff < 1e-6, "ioff = {ioff:.4e}");
    }

    #[test]
    fn pmos_card_hits_targets_in_mirrored_frame() {
        let t = MosTargets::cmos_90nm_pmos();
        let m = calibrate_mos("t", Polarity::Pmos, &t);
        // PMOS on: source at vdd, gate and drain at 0.
        let (ion, ..) = m.ids(0.0, 0.0, t.vdd, 1.0);
        let (ioff, ..) = m.ids(t.vdd, 0.0, t.vdd, 1.0);
        assert!((ion.abs() - t.ion).abs() / t.ion < 1e-6);
        assert!((ioff.abs() - t.ioff).abs() / t.ioff < 1e-6);
    }

    #[test]
    fn calibrated_vth_is_plausible_for_90nm() {
        let m = nmos_90nm_card();
        assert!(m.vth > 0.1 && m.vth < 0.5, "vth = {}", m.vth);
        assert!(m.n > 1.0 && m.n < 2.5, "n = {}", m.n);
    }

    #[test]
    fn memoized_cards_are_stable() {
        assert_eq!(nmos_90nm_card(), nmos_90nm_card());
        assert_eq!(pmos_90nm_card(), pmos_90nm_card());
    }

    #[test]
    #[should_panic(expected = "thermal limit")]
    fn sub_thermal_swing_is_rejected() {
        let t = MosTargets {
            swing: 40e-3,
            ..MosTargets::cmos_90nm_nmos()
        };
        let _ = calibrate_mos("bad", Polarity::Nmos, &t);
    }

    #[test]
    #[should_panic(expected = "ion > ioff")]
    fn inverted_currents_are_rejected() {
        let t = MosTargets {
            ion: 1e-9,
            ioff: 1e-6,
            swing: 95e-3,
            vdd: 1.2,
        };
        let _ = calibrate_mos("bad", Polarity::Nmos, &t);
    }
}
