//! Property-based tests of the electromechanical physics.

#![cfg(feature = "proptest")]
// Gated out of the default (offline) build: the external `proptest`
// crate cannot be fetched without registry access. Vendor it and
// enable the `proptest` feature to run these.

use proptest::prelude::*;

use nemscmos_mems::beam::{Anchor, Beam};
use nemscmos_mems::dynamics::ActuatorDynamics;
use nemscmos_mems::electrostatics::Actuator;
use nemscmos_mems::materials::Material;

fn actuator_strategy() -> impl Strategy<Value = Actuator> {
    (0.1f64..50.0, 0.01f64..2.0, 5.0f64..100.0, 1.0f64..10.0).prop_map(|(k, a_um2, g_nm, td_nm)| {
        Actuator::from_parameters(k, a_um2 * 1e-12, g_nm * 1e-9, td_nm * 1e-9, 7.5)
    })
}

proptest! {
    /// Below pull-in a stable equilibrium exists and sits below g0/3;
    /// above pull-in it does not.
    #[test]
    fn pull_in_separates_stable_from_unstable(act in actuator_strategy(), frac in 0.05f64..2.0) {
        let vpi = act.pull_in_voltage();
        let v = frac * vpi;
        match act.stable_displacement(v) {
            Some(x) => {
                prop_assert!(frac < 1.0, "stable equilibrium above pull-in at {frac}");
                prop_assert!(x <= act.pull_in_displacement() * 1.001);
                prop_assert!(x >= 0.0);
            }
            None => prop_assert!(frac >= 0.999, "no equilibrium below pull-in at {frac}"),
        }
    }

    /// Equilibrium displacement grows monotonically with bias.
    #[test]
    fn displacement_monotone_in_bias(act in actuator_strategy(), f1 in 0.05f64..0.9, df in 0.01f64..0.09) {
        let vpi = act.pull_in_voltage();
        let x1 = act.stable_displacement(f1 * vpi).unwrap();
        let x2 = act.stable_displacement((f1 + df) * vpi).unwrap();
        prop_assert!(x2 >= x1 - 1e-15);
    }

    /// V_pi scaling laws: √k and g^{3/2} and 1/√A.
    #[test]
    fn pull_in_scaling_laws(k in 0.1f64..50.0, a in 0.01f64..2.0, g in 5.0f64..100.0) {
        let base = Actuator::from_parameters(k, a * 1e-12, g * 1e-9, 0.0, 7.5);
        let k4 = Actuator::from_parameters(4.0 * k, a * 1e-12, g * 1e-9, 0.0, 7.5);
        prop_assert!((k4.pull_in_voltage() / base.pull_in_voltage() - 2.0).abs() < 1e-9);
        let a4 = Actuator::from_parameters(k, 4.0 * a * 1e-12, g * 1e-9, 0.0, 7.5);
        prop_assert!((a4.pull_in_voltage() / base.pull_in_voltage() - 0.5).abs() < 1e-9);
    }

    /// Beam stiffness is linear in E and w, cubic in t and 1/L.
    #[test]
    fn beam_stiffness_scaling(
        l_um in 1.0f64..20.0,
        w_nm in 100.0f64..2000.0,
        t_nm in 20.0f64..500.0
    ) {
        let m = Material::poly_si();
        let b = Beam::new(m.clone(), Anchor::FixedFixed, l_um * 1e-6, w_nm * 1e-9, t_nm * 1e-9);
        let b2 = Beam::new(m.clone(), Anchor::FixedFixed, l_um * 1e-6, 2.0 * w_nm * 1e-9, t_nm * 1e-9);
        prop_assert!((b2.stiffness() / b.stiffness() - 2.0).abs() < 1e-9);
        let b3 = Beam::new(m, Anchor::FixedFixed, 2.0 * l_um * 1e-6, w_nm * 1e-9, t_nm * 1e-9);
        prop_assert!((b.stiffness() / b3.stiffness() - 8.0).abs() < 1e-9);
    }

    /// The integrated trajectory never penetrates far past the gap and
    /// never flies below the rest position by more than numerical jitter,
    /// for any step drive up to 3 V_pi.
    #[test]
    fn trajectory_stays_physical(frac in 0.2f64..3.0) {
        let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 5e-9, 7.5);
        let d = ActuatorDynamics::new(act, 4e-14, 5e-8);
        let vpi = d.actuator().pull_in_voltage();
        let result = d.integrate(|_| frac * vpi, 1e-6, 2e-10);
        let g0 = d.actuator().gap();
        for p in &result.trajectory {
            prop_assert!(p.x < 1.2 * g0, "penetration x = {:.3e}", p.x);
            prop_assert!(p.x > -0.5 * g0, "negative excursion x = {:.3e}", p.x);
        }
        // Contact iff overdriven.
        if frac >= 1.1 {
            prop_assert!(result.contact_time.is_some(), "should pull in at {frac} V_pi");
        }
        if frac <= 0.9 {
            prop_assert!(result.contact_time.is_none(), "should stay open at {frac} V_pi");
        }
    }
}
