//! Property-based tests of the electromechanical physics, running on the
//! vendored `nemscmos_numeric::check` runner.

use nemscmos_mems::beam::{Anchor, Beam};
use nemscmos_mems::dynamics::ActuatorDynamics;
use nemscmos_mems::electrostatics::Actuator;
use nemscmos_mems::materials::Material;
use nemscmos_numeric::check::{check, check_cases, Config, Draws};
use nemscmos_numeric::prop_check;

fn actuator(d: &mut Draws) -> Actuator {
    let k = d.f64_in(0.1, 50.0);
    let a_um2 = d.f64_in(0.01, 2.0);
    let g_nm = d.f64_in(5.0, 100.0);
    let td_nm = d.f64_in(1.0, 10.0);
    Actuator::from_parameters(k, a_um2 * 1e-12, g_nm * 1e-9, td_nm * 1e-9, 7.5)
}

/// Below pull-in a stable equilibrium exists and sits below g0/3; above
/// pull-in it does not.
#[test]
fn pull_in_separates_stable_from_unstable() {
    let prop = |(act, frac): &(Actuator, f64)| {
        let vpi = act.pull_in_voltage();
        let v = frac * vpi;
        match act.stable_displacement(v) {
            Some(x) => {
                prop_check!(*frac < 1.0, "stable equilibrium above pull-in at {frac}");
                prop_check!(
                    x <= act.pull_in_displacement() * 1.001,
                    "x = {x:.3e} beyond pull-in displacement"
                );
                prop_check!(x >= 0.0, "negative displacement {x:.3e}");
            }
            None => prop_check!(*frac >= 0.999, "no equilibrium below pull-in at {frac}"),
        }
        Ok(())
    };
    // Failure seed recorded by the retired external-proptest suite
    // (proptests.proptest-regressions, cc aaeded9f…): an actuator with a
    // thick high-k dielectric driven to 99.2 % of V_pi, right at the
    // stable/unstable boundary.
    check_cases(
        "pull-in separates stable from unstable (pinned)",
        &[(
            Actuator::from_parameters(0.1, 1e-14, 5e-9, 9.424_888_498_271_09e-9, 7.5),
            0.991_992_359_527_150_5,
        )],
        prop,
    );
    check(
        "pull-in separates stable from unstable",
        &Config::default(),
        |d| (actuator(d), d.f64_in(0.05, 2.0)),
        prop,
    );
}

/// Equilibrium displacement grows monotonically with bias.
#[test]
fn displacement_monotone_in_bias() {
    check(
        "displacement monotone in bias",
        &Config::default(),
        |d| (actuator(d), d.f64_in(0.05, 0.9), d.f64_in(0.01, 0.09)),
        |(act, f1, df)| {
            let vpi = act.pull_in_voltage();
            let x1 = act.stable_displacement(f1 * vpi).unwrap();
            let x2 = act.stable_displacement((f1 + df) * vpi).unwrap();
            prop_check!(
                x2 >= x1 - 1e-15,
                "x({}) = {x2:.3e} < x({f1}) = {x1:.3e}",
                f1 + df
            );
            Ok(())
        },
    );
}

/// V_pi scaling laws: √k and g^{3/2} and 1/√A.
#[test]
fn pull_in_scaling_laws() {
    check(
        "pull-in scaling laws",
        &Config::default(),
        |d| {
            (
                d.f64_in(0.1, 50.0),
                d.f64_in(0.01, 2.0),
                d.f64_in(5.0, 100.0),
            )
        },
        |&(k, a, g)| {
            let base = Actuator::from_parameters(k, a * 1e-12, g * 1e-9, 0.0, 7.5);
            let k4 = Actuator::from_parameters(4.0 * k, a * 1e-12, g * 1e-9, 0.0, 7.5);
            prop_check!(
                (k4.pull_in_voltage() / base.pull_in_voltage() - 2.0).abs() < 1e-9,
                "4k must double V_pi"
            );
            let a4 = Actuator::from_parameters(k, 4.0 * a * 1e-12, g * 1e-9, 0.0, 7.5);
            prop_check!(
                (a4.pull_in_voltage() / base.pull_in_voltage() - 0.5).abs() < 1e-9,
                "4A must halve V_pi"
            );
            Ok(())
        },
    );
}

/// Beam stiffness is linear in E and w, cubic in t and 1/L.
#[test]
fn beam_stiffness_scaling() {
    check(
        "beam stiffness scaling",
        &Config::default(),
        |d| {
            (
                d.f64_in(1.0, 20.0),
                d.f64_in(100.0, 2000.0),
                d.f64_in(20.0, 500.0),
            )
        },
        |&(l_um, w_nm, t_nm)| {
            let m = Material::poly_si();
            let b = Beam::new(
                m.clone(),
                Anchor::FixedFixed,
                l_um * 1e-6,
                w_nm * 1e-9,
                t_nm * 1e-9,
            );
            let b2 = Beam::new(
                m.clone(),
                Anchor::FixedFixed,
                l_um * 1e-6,
                2.0 * w_nm * 1e-9,
                t_nm * 1e-9,
            );
            prop_check!(
                (b2.stiffness() / b.stiffness() - 2.0).abs() < 1e-9,
                "2w must double k"
            );
            let b3 = Beam::new(
                m,
                Anchor::FixedFixed,
                2.0 * l_um * 1e-6,
                w_nm * 1e-9,
                t_nm * 1e-9,
            );
            prop_check!(
                (b.stiffness() / b3.stiffness() - 8.0).abs() < 1e-9,
                "2L must cut k by 8"
            );
            Ok(())
        },
    );
}

/// The integrated trajectory never penetrates far past the gap and never
/// flies below the rest position by more than numerical jitter, for any
/// step drive up to 3 V_pi.
#[test]
fn trajectory_stays_physical() {
    check(
        "trajectory stays physical",
        &Config::with_cases(24),
        |d| d.f64_in(0.2, 3.0),
        |&frac| {
            let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 5e-9, 7.5);
            let d = ActuatorDynamics::new(act, 4e-14, 5e-8);
            let vpi = d.actuator().pull_in_voltage();
            let result = d.integrate(|_| frac * vpi, 1e-6, 2e-10);
            let g0 = d.actuator().gap();
            for p in &result.trajectory {
                prop_check!(p.x < 1.2 * g0, "penetration x = {:.3e}", p.x);
                prop_check!(p.x > -0.5 * g0, "negative excursion x = {:.3e}", p.x);
            }
            // Contact iff overdriven.
            if frac >= 1.1 {
                prop_check!(
                    result.contact_time.is_some(),
                    "should pull in at {frac} V_pi"
                );
            }
            if frac <= 0.9 {
                prop_check!(
                    result.contact_time.is_none(),
                    "should stay open at {frac} V_pi"
                );
            }
            Ok(())
        },
    );
}
