//! Euler–Bernoulli beam mechanics for suspended gates and cantilever relays.

use crate::materials::Material;

/// Boundary condition of the suspended beam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Clamped at both ends, loaded at the centre (suspended-gate MOSFET,
    /// Fig. 3/4 of the paper).
    FixedFixed,
    /// Clamped at one end, loaded at the tip (cantilever / CNT relay,
    /// Fig. 5 of the paper).
    Cantilever,
}

/// A rectangular-cross-section Euler–Bernoulli beam.
///
/// # Example
///
/// ```
/// use nemscmos_mems::beam::{Anchor, Beam};
/// use nemscmos_mems::materials::Material;
///
/// let b = Beam::new(Material::poly_si(), Anchor::FixedFixed, 2e-6, 500e-9, 100e-9);
/// // Fixed-fixed is 64x stiffer than the same cantilever.
/// let c = Beam::new(Material::poly_si(), Anchor::Cantilever, 2e-6, 500e-9, 100e-9);
/// assert!((b.stiffness() / c.stiffness() - 64.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Beam {
    material: Material,
    anchor: Anchor,
    length: f64,
    width: f64,
    thickness: f64,
}

/// Modal-mass fraction of a fixed-fixed beam's fundamental mode.
const MODAL_MASS_FIXED_FIXED: f64 = 0.396;
/// Modal-mass fraction of a cantilever's fundamental mode.
const MODAL_MASS_CANTILEVER: f64 = 0.236;

impl Beam {
    /// Creates a beam. Dimensions in metres.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not strictly positive and finite.
    pub fn new(
        material: Material,
        anchor: Anchor,
        length: f64,
        width: f64,
        thickness: f64,
    ) -> Beam {
        for (what, v) in [
            ("length", length),
            ("width", width),
            ("thickness", thickness),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "beam {what} must be positive, got {v}"
            );
        }
        Beam {
            material,
            anchor,
            length,
            width,
            thickness,
        }
    }

    /// The structural material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// The anchor style.
    pub fn anchor(&self) -> Anchor {
        self.anchor
    }

    /// Beam length (m).
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Beam width (m) — also the electrode width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Beam thickness (m), in the bending direction.
    pub fn thickness(&self) -> f64 {
        self.thickness
    }

    /// Second moment of area `I = w t³ / 12` (m⁴).
    pub fn second_moment(&self) -> f64 {
        self.width * self.thickness.powi(3) / 12.0
    }

    /// Point-load bending stiffness at the actuation point (N/m):
    /// `192 E I / L³` for fixed-fixed, `3 E I / L³` for a cantilever.
    pub fn stiffness(&self) -> f64 {
        let ei = self.material.youngs_modulus * self.second_moment();
        match self.anchor {
            Anchor::FixedFixed => 192.0 * ei / self.length.powi(3),
            Anchor::Cantilever => 3.0 * ei / self.length.powi(3),
        }
    }

    /// Total beam mass (kg).
    pub fn mass(&self) -> f64 {
        self.material.density * self.length * self.width * self.thickness
    }

    /// Effective (modal) mass of the fundamental bending mode (kg).
    pub fn effective_mass(&self) -> f64 {
        let frac = match self.anchor {
            Anchor::FixedFixed => MODAL_MASS_FIXED_FIXED,
            Anchor::Cantilever => MODAL_MASS_CANTILEVER,
        };
        frac * self.mass()
    }

    /// Fundamental resonant frequency `f₀ = √(k/m_eff) / 2π` (Hz).
    pub fn resonant_frequency(&self) -> f64 {
        (self.stiffness() / self.effective_mass()).sqrt() / (2.0 * std::f64::consts::PI)
    }

    /// Plate (electrode) area `L · w` (m²).
    pub fn plate_area(&self) -> f64 {
        self.length * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_beam(anchor: Anchor) -> Beam {
        Beam::new(Material::poly_si(), anchor, 10e-6, 1e-6, 200e-9)
    }

    #[test]
    fn stiffness_scales_with_inverse_length_cubed() {
        let b1 = Beam::new(Material::poly_si(), Anchor::FixedFixed, 1e-6, 1e-6, 100e-9);
        let b2 = Beam::new(Material::poly_si(), Anchor::FixedFixed, 2e-6, 1e-6, 100e-9);
        assert!((b1.stiffness() / b2.stiffness() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn stiffness_scales_with_thickness_cubed() {
        let b1 = Beam::new(Material::poly_si(), Anchor::FixedFixed, 1e-6, 1e-6, 100e-9);
        let b2 = Beam::new(Material::poly_si(), Anchor::FixedFixed, 1e-6, 1e-6, 200e-9);
        assert!((b2.stiffness() / b1.stiffness() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_fixed_stiffness_formula() {
        let b = test_beam(Anchor::FixedFixed);
        let i = 1e-6 * (200e-9f64).powi(3) / 12.0;
        let expect = 192.0 * 160e9 * i / (10e-6f64).powi(3);
        assert!((b.stiffness() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn cantilever_is_much_softer() {
        assert!(
            test_beam(Anchor::Cantilever).stiffness() < test_beam(Anchor::FixedFixed).stiffness()
        );
    }

    #[test]
    fn effective_mass_below_total() {
        for anchor in [Anchor::FixedFixed, Anchor::Cantilever] {
            let b = test_beam(anchor);
            assert!(b.effective_mass() < b.mass());
            assert!(b.effective_mass() > 0.0);
        }
    }

    #[test]
    fn resonance_in_plausible_mems_range() {
        // A 10 µm poly-Si fixed-fixed beam resonates in the MHz decade.
        let f = test_beam(Anchor::FixedFixed).resonant_frequency();
        assert!(f > 1e5 && f < 1e9, "f0 = {f}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = Beam::new(Material::poly_si(), Anchor::FixedFixed, 0.0, 1e-6, 1e-7);
    }
}
