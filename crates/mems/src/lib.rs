//! Electromechanical physics of suspended-gate NEMS switches.
//!
//! This crate models the *mechanical* half of a NEMFET (suspended-gate
//! MOSFET): beam elasticity, parallel-plate electrostatic actuation,
//! squeeze-film damping, and the 1-D pull-in dynamics. It supplies the
//! physically-derived spring constant `k`, modal mass `m`, damping `c`,
//! pull-in voltage `V_pi` and release voltage `V_po` that parameterize the
//! NEMFET compact model in `nemscmos-devices` — the paper's equivalent of
//! the R/L/f(V_g) electrical-analogy model of Fig. 6(b).
//!
//! All quantities are SI (metres, kilograms, seconds, volts, newtons).
//!
//! # Example
//!
//! ```
//! use nemscmos_mems::beam::{Anchor, Beam};
//! use nemscmos_mems::materials::Material;
//! use nemscmos_mems::electrostatics::Actuator;
//!
//! // A 1 µm × 200 nm × 50 nm AlSi fixed-fixed beam over a 20 nm air gap.
//! let beam = Beam::new(Material::alsi(), Anchor::FixedFixed, 1e-6, 200e-9, 50e-9);
//! let act = Actuator::new(&beam, 20e-9, 5e-9, 7.5);
//! assert!(act.pull_in_voltage() > 0.1 && act.pull_in_voltage() < 10.0);
//! assert!(act.pull_out_voltage() < act.pull_in_voltage()); // hysteresis
//! ```

pub mod beam;
pub mod damping;
pub mod dynamics;
pub mod electrostatics;
pub mod materials;

/// Vacuum permittivity (F/m).
pub const EPSILON_0: f64 = 8.854_187_812_8e-12;
