//! Parallel-plate electrostatic actuation, pull-in, and release.

use crate::beam::Beam;
use crate::EPSILON_0;

/// An electrostatically actuated gap: a beam suspended a distance `g0`
/// above a fixed electrode covered by a thin dielectric.
///
/// Displacement `x` is measured *into* the gap: `x = 0` is the rest
/// position, `x = g0` is mechanical contact with the dielectric surface.
///
/// # Example
///
/// ```
/// use nemscmos_mems::beam::{Anchor, Beam};
/// use nemscmos_mems::materials::Material;
/// use nemscmos_mems::electrostatics::Actuator;
///
/// let beam = Beam::new(Material::alsi(), Anchor::FixedFixed, 1e-6, 200e-9, 50e-9);
/// let act = Actuator::new(&beam, 20e-9, 5e-9, 7.5);
/// // Classic result: static pull-in at one third of the electrical gap.
/// let total_gap = 20e-9 + act.contact_gap();
/// assert!((act.pull_in_displacement() - total_gap / 3.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Actuator {
    stiffness: f64,
    area: f64,
    gap: f64,
    dielectric_thickness: f64,
    dielectric_constant: f64,
}

impl Actuator {
    /// Builds an actuator from a beam over an air gap `g0` with a
    /// dielectric of thickness `t_d` and relative permittivity `eps_r`
    /// on the fixed electrode.
    ///
    /// # Panics
    ///
    /// Panics if `g0` or `eps_r` is not strictly positive, or `t_d` is
    /// negative.
    pub fn new(beam: &Beam, g0: f64, t_d: f64, eps_r: f64) -> Actuator {
        Actuator::from_parameters(beam.stiffness(), beam.plate_area(), g0, t_d, eps_r)
    }

    /// Builds an actuator from raw lumped parameters (stiffness in N/m,
    /// electrode area in m²).
    ///
    /// # Panics
    ///
    /// Panics on non-positive stiffness, area, gap or permittivity, or a
    /// negative dielectric thickness.
    pub fn from_parameters(stiffness: f64, area: f64, g0: f64, t_d: f64, eps_r: f64) -> Actuator {
        assert!(
            stiffness.is_finite() && stiffness > 0.0,
            "stiffness must be positive"
        );
        assert!(area.is_finite() && area > 0.0, "area must be positive");
        assert!(g0.is_finite() && g0 > 0.0, "gap must be positive");
        assert!(
            t_d.is_finite() && t_d >= 0.0,
            "dielectric thickness must be non-negative"
        );
        assert!(
            eps_r.is_finite() && eps_r > 0.0,
            "dielectric constant must be positive"
        );
        Actuator {
            stiffness,
            area,
            gap: g0,
            dielectric_thickness: t_d,
            dielectric_constant: eps_r,
        }
    }

    /// Spring constant (N/m).
    pub fn stiffness(&self) -> f64 {
        self.stiffness
    }

    /// Electrode area (m²).
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Rest air gap `g0` (m).
    pub fn gap(&self) -> f64 {
        self.gap
    }

    /// Equivalent air thickness of the contact dielectric `t_d / ε_r` (m).
    pub fn contact_gap(&self) -> f64 {
        self.dielectric_thickness / self.dielectric_constant
    }

    /// Total electrical gap at displacement `x` (m): remaining air plus
    /// the dielectric's air-equivalent thickness.
    pub fn electrical_gap(&self, x: f64) -> f64 {
        (self.gap - x).max(0.0) + self.contact_gap()
    }

    /// Gap capacitance at displacement `x` (F).
    pub fn capacitance(&self, x: f64) -> f64 {
        EPSILON_0 * self.area / self.electrical_gap(x)
    }

    /// Attractive electrostatic force at bias `v` and displacement `x` (N):
    /// `F = ε0 A v² / (2 g_el(x)²)`.
    pub fn force(&self, v: f64, x: f64) -> f64 {
        let g = self.electrical_gap(x);
        EPSILON_0 * self.area * v * v / (2.0 * g * g)
    }

    /// Static pull-in displacement: one third of the *total* electrical
    /// gap `(g0 + g_c) / 3`, clamped to the mechanical travel `g0` (for a
    /// thick dielectric the beam can contact before going unstable).
    pub fn pull_in_displacement(&self) -> f64 {
        ((self.gap + self.contact_gap()) / 3.0).min(self.gap)
    }

    /// Static pull-in voltage
    /// `V_pi = √(8 k g0³ / 27 ε0 A)` (with `g0` extended by the dielectric's
    /// air-equivalent thickness).
    pub fn pull_in_voltage(&self) -> f64 {
        let g = self.gap + self.contact_gap();
        (8.0 * self.stiffness * g.powi(3) / (27.0 * EPSILON_0 * self.area)).sqrt()
    }

    /// Release (pull-out) voltage: the bias below which the spring
    /// restoring force at contact exceeds the electrostatic hold force,
    /// `V_po = √(2 k g0 g_c² / ε0 A)` with `g_c` the contact gap.
    ///
    /// For an ideal zero-thickness dielectric this is zero (infinite hold
    /// force), so callers model stiction-free switches with `t_d > 0`.
    pub fn pull_out_voltage(&self) -> f64 {
        let gc = self.contact_gap();
        (2.0 * self.stiffness * self.gap * gc * gc / (EPSILON_0 * self.area)).sqrt()
    }

    /// Static equilibrium displacement on the *stable* (non-contacted)
    /// branch for bias `v`, found by solving `k x = F(v, x)` with
    /// bisection, or `None` if `v` exceeds pull-in (no stable equilibrium).
    pub fn stable_displacement(&self, v: f64) -> Option<f64> {
        if v.abs() >= self.pull_in_voltage() {
            return None;
        }
        let xpi = self.pull_in_displacement();
        // The stable root lies in [0, x_pi]; net(x) = F − k·x is ≥ 0 at
        // x = 0 and < 0 at x_pi for v < V_pi.
        let net = |x: f64| self.force(v, x) - self.stiffness * x;
        if net(xpi) > 0.0 {
            // Numerically right at the boundary: treat as pulled in.
            return None;
        }
        let mut lo = 0.0;
        let mut hi = xpi;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if net(mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::Anchor;
    use crate::materials::Material;

    fn actuator() -> Actuator {
        let beam = Beam::new(Material::alsi(), Anchor::FixedFixed, 1e-6, 200e-9, 50e-9);
        Actuator::new(&beam, 20e-9, 5e-9, 7.5)
    }

    #[test]
    fn force_increases_as_gap_closes() {
        let a = actuator();
        assert!(a.force(1.0, 10e-9) > a.force(1.0, 0.0));
    }

    #[test]
    fn force_is_quadratic_in_voltage() {
        let a = actuator();
        let f1 = a.force(1.0, 0.0);
        let f2 = a.force(2.0, 0.0);
        assert!((f2 / f1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn capacitance_grows_to_contact() {
        let a = actuator();
        assert!(a.capacitance(a.gap()) > a.capacitance(0.0));
        // At contact the capacitance is set by the dielectric alone.
        let c_contact = a.capacitance(a.gap());
        let expect = crate::EPSILON_0 * a.area() / a.contact_gap();
        assert!((c_contact - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn pull_in_matches_closed_form_equilibrium() {
        // Just below V_pi a stable equilibrium exists near g0/3; just above
        // it does not.
        let a = actuator();
        let vpi = a.pull_in_voltage();
        let x = a
            .stable_displacement(0.999 * vpi)
            .expect("stable below pull-in");
        assert!(
            (x - a.pull_in_displacement()).abs() < 0.15 * a.pull_in_displacement(),
            "x = {x:.3e}"
        );
        assert!(a.stable_displacement(1.001 * vpi).is_none());
    }

    #[test]
    fn zero_bias_rests_at_zero() {
        let a = actuator();
        let x = a.stable_displacement(0.0).unwrap();
        assert!(x.abs() < 1e-15);
    }

    #[test]
    fn hysteresis_window_exists() {
        let a = actuator();
        assert!(a.pull_out_voltage() < a.pull_in_voltage());
        assert!(a.pull_out_voltage() > 0.0);
    }

    #[test]
    fn stiffer_spring_raises_pull_in() {
        let soft = Actuator::from_parameters(1.0, 1e-12, 20e-9, 5e-9, 7.5);
        let stiff = Actuator::from_parameters(4.0, 1e-12, 20e-9, 5e-9, 7.5);
        assert!((stiff.pull_in_voltage() / soft.pull_in_voltage() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gap_rejected() {
        let _ = Actuator::from_parameters(1.0, 1e-12, 0.0, 1e-9, 7.5);
    }
}
