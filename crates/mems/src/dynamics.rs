//! Transient pull-in dynamics of the 1-D actuator model.
//!
//! Integrates `m ẍ + c ẋ + k x = F_e(v(t), x)` with a contact penalty at
//! `x = g0`, using classic RK4 with gap-adaptive damping. This is the
//! paper's Fig. 6(b) electrical-analogy model (L ≙ m, R ≙ c, source ≙
//! `f(V_g)`) integrated directly in the mechanical domain; it provides
//! switching-time numbers and the contact-bounce study.

use crate::electrostatics::Actuator;
use crate::EPSILON_0;

/// Contact penalty stiffness as a multiple of the beam stiffness. Sized so
/// that the electrostatic hold force at contact penetrates well under a
/// nanometre for typical NEMS parameters.
const CONTACT_PENALTY_FACTOR: f64 = 1e4;

/// Damping ratio of the contact penalty (models the inelastic landing of
/// the beam on the dielectric).
const CONTACT_DAMPING_RATIO: f64 = 0.7;

/// Lumped 1-D electromechanical actuator dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuatorDynamics {
    actuator: Actuator,
    mass: f64,
    damping: f64,
}

/// One sample of a transient trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatePoint {
    /// Time (s).
    pub t: f64,
    /// Displacement into the gap (m).
    pub x: f64,
    /// Velocity (m/s).
    pub v: f64,
}

/// Result of a switching-transient integration.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingTransient {
    /// Sampled trajectory.
    pub trajectory: Vec<StatePoint>,
    /// First time the beam reached 90% of the gap, if it did.
    pub contact_time: Option<f64>,
    /// Number of contact bounces (velocity sign reversals while within 2%
    /// of the gap).
    pub bounces: usize,
}

impl ActuatorDynamics {
    /// Creates the dynamic model from an actuator, modal mass `m` (kg) and
    /// damping coefficient `c` (N·s/m).
    ///
    /// # Panics
    ///
    /// Panics if the mass is not strictly positive or the damping is
    /// negative.
    pub fn new(actuator: Actuator, mass: f64, damping: f64) -> ActuatorDynamics {
        assert!(mass.is_finite() && mass > 0.0, "mass must be positive");
        assert!(
            damping.is_finite() && damping >= 0.0,
            "damping must be non-negative"
        );
        ActuatorDynamics {
            actuator,
            mass,
            damping,
        }
    }

    /// The underlying quasi-static actuator.
    pub fn actuator(&self) -> &Actuator {
        &self.actuator
    }

    /// Modal mass (kg).
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Damping coefficient (N·s/m).
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Net force on the beam at `(x, v)` under bias `volts` (N), including
    /// the contact penalty.
    pub fn net_force(&self, volts: f64, x: f64, v: f64) -> f64 {
        let k = self.actuator.stiffness();
        let g0 = self.actuator.gap();
        let mut f = self.actuator.force(volts, x) - k * x - self.damping * v;
        if x > g0 {
            // Stiff, lossy penalty keeps the beam at the dielectric surface
            // and absorbs the landing energy.
            let k_pen = CONTACT_PENALTY_FACTOR * k;
            let c_pen = 2.0 * CONTACT_DAMPING_RATIO * (k_pen * self.mass).sqrt();
            f -= k_pen * (x - g0) + c_pen * v;
        }
        f
    }

    /// Integrates the trajectory from rest under the bias waveform
    /// `volts(t)` for `t_stop` seconds with fixed step `dt` (RK4).
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `t_stop` is not strictly positive.
    pub fn integrate<V: Fn(f64) -> f64>(
        &self,
        volts: V,
        t_stop: f64,
        dt: f64,
    ) -> SwitchingTransient {
        assert!(dt > 0.0 && t_stop > 0.0, "dt and t_stop must be positive");
        let g0 = self.actuator.gap();
        let contact_level = 0.9 * g0;
        let bounce_band = 0.02 * g0;
        let mut x = 0.0f64;
        let mut v = 0.0f64;
        let mut t = 0.0f64;
        let mut trajectory = vec![StatePoint { t, x, v }];
        let mut contact_time = None;
        let mut bounces = 0usize;
        let mut prev_v_sign = 0i8;

        let deriv = |t: f64, x: f64, v: f64, volts: &V| -> (f64, f64) {
            (v, self.net_force(volts(t), x, v) / self.mass)
        };

        let steps = (t_stop / dt).ceil() as usize;
        for _ in 0..steps {
            let (k1x, k1v) = deriv(t, x, v, &volts);
            let (k2x, k2v) = deriv(t + dt / 2.0, x + k1x * dt / 2.0, v + k1v * dt / 2.0, &volts);
            let (k3x, k3v) = deriv(t + dt / 2.0, x + k2x * dt / 2.0, v + k2v * dt / 2.0, &volts);
            let (k4x, k4v) = deriv(t + dt, x + k3x * dt, v + k3v * dt, &volts);
            x += dt / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x);
            v += dt / 6.0 * (k1v + 2.0 * k2v + 2.0 * k3v + k4v);
            t += dt;
            trajectory.push(StatePoint { t, x, v });
            if contact_time.is_none() && x >= contact_level {
                contact_time = Some(t);
            }
            // Bounce counting: velocity reversals while near the surface.
            if (x - g0).abs() < bounce_band {
                let sign = if v > 0.0 {
                    1
                } else if v < 0.0 {
                    -1
                } else {
                    0
                };
                if sign != 0 && prev_v_sign != 0 && sign != prev_v_sign {
                    bounces += 1;
                }
                if sign != 0 {
                    prev_v_sign = sign;
                }
            } else {
                prev_v_sign = 0;
            }
        }
        SwitchingTransient {
            trajectory,
            contact_time,
            bounces,
        }
    }

    /// Pull-in (switch-on) time under a voltage step to `volts`, or `None`
    /// if the bias never closes the switch within `t_stop`.
    pub fn switching_time(&self, volts: f64, t_stop: f64, dt: f64) -> Option<f64> {
        self.integrate(|_| volts, t_stop, dt).contact_time
    }

    /// A first-order estimate of the pull-in time for `volts ≫ V_pi`
    /// (inertia-limited):
    /// `t ≈ √(27 V_pi² / (2 V²)) / ω0` — useful as a sanity bound.
    pub fn inertia_limited_time(&self, volts: f64) -> f64 {
        let vpi = self.actuator.pull_in_voltage();
        let w0 = (self.actuator.stiffness() / self.mass).sqrt();
        (27.0 * vpi * vpi / (2.0 * volts * volts)).sqrt() / w0
    }

    /// The paper's `f(V_g)` abstraction: the voltage "absorbed" by the
    /// electromechanical transducer at bias `volts` on the stable branch —
    /// the difference between the applied bias and the voltage that an
    /// ideal fixed-gap capacitor would need to store the same charge.
    ///
    /// Returns `0` beyond pull-in (the gap has collapsed; the drop is then
    /// fixed by the dielectric).
    pub fn transducer_drop(&self, volts: f64) -> f64 {
        match self.actuator.stable_displacement(volts) {
            Some(x) => {
                let c0 = self.actuator.capacitance(0.0);
                let cx = self.actuator.capacitance(x);
                // Same charge on the moved plate as an ideal capacitor at
                // full bias: q = cx·volts; the fixed-gap voltage for that
                // charge is q/c0, so the "lost" drive is volts·(1 − cx/c0)
                // ... which is negative since cx > c0. The *gain* in drive
                // is what the paper's f(V_g) subtracts from V_g; report the
                // magnitude of the difference.
                (volts * (1.0 - cx / c0)).abs()
            }
            None => 0.0,
        }
    }
}

/// Convenience: pull-in voltage of raw lumped parameters (used by tests
/// and by the device-calibration code).
pub fn pull_in_voltage(k: f64, area: f64, g0: f64) -> f64 {
    (8.0 * k * g0.powi(3) / (27.0 * EPSILON_0 * area)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dynamics() -> ActuatorDynamics {
        // Lumped switch: k = 1 N/m, A = 0.2 µm², g0 = 20 nm, t_d = 5 nm.
        let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 5e-9, 7.5);
        // m chosen for f0 ≈ 80 MHz, light damping.
        ActuatorDynamics::new(act, 4e-14, 5e-9)
    }

    #[test]
    fn below_pull_in_never_contacts() {
        let d = dynamics();
        let vpi = d.actuator().pull_in_voltage();
        assert!(d.switching_time(0.8 * vpi, 2e-6, 1e-10).is_none());
    }

    #[test]
    fn above_pull_in_contacts() {
        let d = dynamics();
        let vpi = d.actuator().pull_in_voltage();
        let t = d
            .switching_time(1.5 * vpi, 2e-6, 1e-10)
            .expect("should pull in");
        assert!(t > 0.0 && t < 2e-6);
    }

    #[test]
    fn harder_drive_switches_faster() {
        let d = dynamics();
        let vpi = d.actuator().pull_in_voltage();
        let t_slow = d.switching_time(1.2 * vpi, 5e-6, 1e-10).unwrap();
        let t_fast = d.switching_time(3.0 * vpi, 5e-6, 1e-10).unwrap();
        assert!(t_fast < t_slow, "fast {t_fast} vs slow {t_slow}");
    }

    #[test]
    fn switching_time_is_in_nanoseconds_for_nems_scale() {
        let d = dynamics();
        let vpi = d.actuator().pull_in_voltage();
        let t = d.switching_time(2.0 * vpi, 2e-6, 1e-10).unwrap();
        assert!(t > 1e-10 && t < 1e-6, "t = {t:.3e}");
    }

    #[test]
    fn trajectory_respects_contact_penalty() {
        let d = dynamics();
        let vpi = d.actuator().pull_in_voltage();
        let result = d.integrate(|_| 2.0 * vpi, 2e-6, 1e-10);
        let g0 = d.actuator().gap();
        let overshoot = result
            .trajectory
            .iter()
            .map(|p| p.x - g0)
            .fold(f64::NEG_INFINITY, f64::max);
        // Penetration limited to a small fraction of the gap.
        assert!(overshoot < 0.1 * g0, "overshoot = {overshoot:.3e}");
    }

    #[test]
    fn release_returns_to_rest() {
        // Near-critically damped beam so the release transient settles
        // within the window.
        let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 5e-9, 7.5);
        let d = ActuatorDynamics::new(act, 4e-14, 3e-7);
        let vpi = d.actuator().pull_in_voltage();
        // Drive hard for 1 µs, then remove the bias.
        let result = d.integrate(|t| if t < 1e-6 { 2.0 * vpi } else { 0.0 }, 6e-6, 1e-10);
        let last = result.trajectory.last().unwrap();
        assert!(
            last.x.abs() < 0.2 * d.actuator().gap(),
            "x_end = {:.3e}",
            last.x
        );
    }

    #[test]
    fn inertia_estimate_is_same_order_as_simulation() {
        let d = dynamics();
        let vpi = d.actuator().pull_in_voltage();
        let v = 2.0 * vpi;
        let sim = d.switching_time(v, 5e-6, 1e-10).unwrap();
        let est = d.inertia_limited_time(v);
        let ratio = sim / est;
        assert!(ratio > 0.1 && ratio < 10.0, "ratio = {ratio}");
    }

    #[test]
    fn transducer_drop_grows_with_bias_below_pull_in() {
        let d = dynamics();
        let vpi = d.actuator().pull_in_voltage();
        let d1 = d.transducer_drop(0.3 * vpi);
        let d2 = d.transducer_drop(0.9 * vpi);
        assert!(d2 > d1);
        assert_eq!(d.transducer_drop(2.0 * vpi), 0.0);
    }

    #[test]
    fn pull_in_helper_matches_actuator() {
        let act = Actuator::from_parameters(1.0, 0.2e-12, 20e-9, 0.0, 7.5);
        let direct = pull_in_voltage(1.0, 0.2e-12, 20e-9);
        assert!((act.pull_in_voltage() - direct).abs() / direct < 1e-12);
    }
}
