//! Structural materials for surface-micromachined NEMS.

/// A linear-elastic structural material.
///
/// # Example
///
/// ```
/// use nemscmos_mems::materials::Material;
///
/// let alsi = Material::alsi();
/// assert!(alsi.youngs_modulus > 50e9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    /// Human-readable name.
    pub name: &'static str,
    /// Young's modulus in pascals.
    pub youngs_modulus: f64,
    /// Mass density in kg/m³.
    pub density: f64,
}

impl Material {
    /// Creates a custom material.
    ///
    /// # Panics
    ///
    /// Panics if modulus or density is not strictly positive and finite.
    pub fn new(name: &'static str, youngs_modulus: f64, density: f64) -> Material {
        assert!(
            youngs_modulus.is_finite() && youngs_modulus > 0.0,
            "Young's modulus must be positive"
        );
        assert!(
            density.is_finite() && density > 0.0,
            "density must be positive"
        );
        Material {
            name,
            youngs_modulus,
            density,
        }
    }

    /// Sputtered AlSi — the suspended-gate material of the paper's process
    /// flow (Fig. 7(f)).
    pub fn alsi() -> Material {
        Material::new("AlSi", 70e9, 2700.0)
    }

    /// LPCVD polysilicon, the classic surface-micromachining structural
    /// layer.
    pub fn poly_si() -> Material {
        Material::new("poly-Si", 160e9, 2330.0)
    }

    /// Single-crystal silicon (⟨110⟩ average).
    pub fn silicon() -> Material {
        Material::new("Si", 170e9, 2329.0)
    }

    /// Silicon nitride (LPCVD).
    pub fn silicon_nitride() -> Material {
        Material::new("Si3N4", 250e9, 3100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_materials_are_ordered_by_stiffness() {
        assert!(Material::alsi().youngs_modulus < Material::poly_si().youngs_modulus);
        assert!(Material::poly_si().youngs_modulus < Material::silicon_nitride().youngs_modulus);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_modulus_rejected() {
        let _ = Material::new("bad", 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_density_rejected() {
        let _ = Material::new("bad", 1.0, -1.0);
    }
}
