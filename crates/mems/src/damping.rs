//! Squeeze-film damping of a plate moving toward a substrate.

use crate::beam::Beam;

/// Dynamic viscosity of air at 300 K (Pa·s).
pub const AIR_VISCOSITY: f64 = 1.85e-5;

/// Mean free path of air at atmospheric pressure (m), used for the
/// Knudsen rarefaction correction.
pub const AIR_MEAN_FREE_PATH: f64 = 68e-9;

/// Squeeze-film damping model of a rectangular plate over a gap.
///
/// Uses the long-rectangular-plate solution
/// `c = 96 μ_eff L w³ / (π⁴ g³)` with the Veijola rarefaction correction
/// `μ_eff = μ / (1 + 9.638 Kn^1.159)`, `Kn = λ / g`.
///
/// # Example
///
/// ```
/// use nemscmos_mems::beam::{Anchor, Beam};
/// use nemscmos_mems::materials::Material;
/// use nemscmos_mems::damping::SqueezeFilm;
///
/// let beam = Beam::new(Material::alsi(), Anchor::FixedFixed, 1e-6, 200e-9, 50e-9);
/// let sf = SqueezeFilm::new(&beam, 20e-9);
/// assert!(sf.coefficient() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqueezeFilm {
    length: f64,
    width: f64,
    gap: f64,
    /// Ambient pressure in atmospheres (1.0 = unpackaged).
    pressure_atm: f64,
}

impl SqueezeFilm {
    /// Builds the damper for `beam` over a rest gap `g0`.
    ///
    /// # Panics
    ///
    /// Panics if the gap is not strictly positive.
    pub fn new(beam: &Beam, g0: f64) -> SqueezeFilm {
        SqueezeFilm::from_dimensions(beam.length(), beam.width(), g0)
    }

    /// Builds the damper from raw plate dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not strictly positive and finite.
    pub fn from_dimensions(length: f64, width: f64, g0: f64) -> SqueezeFilm {
        for (what, v) in [("length", length), ("width", width), ("gap", g0)] {
            assert!(
                v.is_finite() && v > 0.0,
                "squeeze-film {what} must be positive, got {v}"
            );
        }
        SqueezeFilm {
            length,
            width,
            gap: g0,
            pressure_atm: 1.0,
        }
    }

    /// Returns this damper at a different ambient pressure (atm) — the
    /// vacuum-packaging knob: the mean free path scales as `1/P`, driving
    /// the film into free-molecular flow and collapsing the damping.
    ///
    /// # Panics
    ///
    /// Panics if the pressure is not strictly positive and finite.
    pub fn at_pressure(&self, pressure_atm: f64) -> SqueezeFilm {
        assert!(
            pressure_atm.is_finite() && pressure_atm > 0.0,
            "pressure must be positive"
        );
        SqueezeFilm {
            pressure_atm,
            ..*self
        }
    }

    /// Knudsen number `λ(P) / g` at the rest gap and ambient pressure.
    pub fn knudsen(&self) -> f64 {
        AIR_MEAN_FREE_PATH / self.pressure_atm / self.gap
    }

    /// Effective (rarefied) viscosity (Pa·s).
    pub fn effective_viscosity(&self) -> f64 {
        AIR_VISCOSITY / (1.0 + 9.638 * self.knudsen().powf(1.159))
    }

    /// Damping coefficient at the rest gap (N·s/m).
    pub fn coefficient(&self) -> f64 {
        self.coefficient_at_gap(self.gap)
    }

    /// Damping coefficient at an arbitrary instantaneous gap `g` (N·s/m);
    /// grows as `1/g³` as the film thins.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not strictly positive.
    pub fn coefficient_at_gap(&self, g: f64) -> f64 {
        assert!(g > 0.0, "gap must be positive");
        let (long, short) = if self.length >= self.width {
            (self.length, self.width)
        } else {
            (self.width, self.length)
        };
        let pi4 = std::f64::consts::PI.powi(4);
        96.0 * self.effective_viscosity() * long * short.powi(3) / (pi4 * g.powi(3))
    }

    /// Quality factor of a resonator with stiffness `k` (N/m) and modal
    /// mass `m` (kg): `Q = √(k m) / c`.
    pub fn quality_factor(&self, k: f64, m: f64) -> f64 {
        (k * m).sqrt() / self.coefficient()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::Anchor;
    use crate::materials::Material;

    fn film() -> SqueezeFilm {
        SqueezeFilm::from_dimensions(10e-6, 1e-6, 100e-9)
    }

    #[test]
    fn damping_grows_as_gap_shrinks() {
        let f = film();
        assert!(f.coefficient_at_gap(50e-9) > f.coefficient_at_gap(100e-9));
        let ratio = f.coefficient_at_gap(50e-9) / f.coefficient_at_gap(100e-9);
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rarefaction_reduces_viscosity() {
        let f = film();
        assert!(f.effective_viscosity() < AIR_VISCOSITY);
        assert!(f.effective_viscosity() > 0.0);
    }

    #[test]
    fn knudsen_number_for_nanogap_is_large() {
        // 100 nm gap ≈ 0.68 Knudsen: clearly rarefied.
        assert!((film().knudsen() - 0.68).abs() < 1e-12);
    }

    #[test]
    fn quality_factor_is_consistent() {
        let beam = Beam::new(Material::poly_si(), Anchor::FixedFixed, 10e-6, 1e-6, 200e-9);
        let sf = SqueezeFilm::new(&beam, 100e-9);
        let q = sf.quality_factor(beam.stiffness(), beam.effective_mass());
        assert!(q > 0.0 && q.is_finite());
    }

    #[test]
    fn orientation_does_not_matter() {
        let a = SqueezeFilm::from_dimensions(10e-6, 1e-6, 100e-9);
        let b = SqueezeFilm::from_dimensions(1e-6, 10e-6, 100e-9);
        assert!((a.coefficient() - b.coefficient()).abs() < 1e-20);
    }

    #[test]
    fn vacuum_packaging_collapses_damping() {
        let film = SqueezeFilm::from_dimensions(10e-6, 1e-6, 100e-9);
        let vacuum = film.at_pressure(1e-3); // millitorr-class package
        assert!(vacuum.coefficient() < film.coefficient() / 10.0);
        // Quality factor scales inversely with the damping.
        let q_atm = film.quality_factor(10.0, 1e-14);
        let q_vac = vacuum.quality_factor(10.0, 1e-14);
        assert!(q_vac > 10.0 * q_atm);
    }

    #[test]
    #[should_panic(expected = "pressure")]
    fn bad_pressure_rejected() {
        let _ = SqueezeFilm::from_dimensions(1e-6, 1e-6, 1e-7).at_pressure(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gap_rejected() {
        let _ = SqueezeFilm::from_dimensions(1e-6, 1e-6, 0.0);
    }
}
