//! Small, vendored pseudo-random number generators.
//!
//! The workspace builds with no registry access, so instead of the `rand`
//! crate the Monte Carlo machinery uses two classic public-domain
//! generators implemented here:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. Tiny state, used to
//!   expand a single `u64` seed into the larger xoshiro state (this is the
//!   seeding procedure the xoshiro authors recommend).
//! * [`Xoshiro256pp`] — Blackman/Vigna's xoshiro256++ 1.0, the workhorse
//!   generator: 256-bit state, period `2^256 − 1`, passes BigCrush.
//!
//! Both implement the minimal [`Rand64`] trait, which is what samplers
//! (e.g. the `Normal` sampler in `nemscmos-analysis::montecarlo`) are
//! generic over.
//!
//! # Determinism contract
//!
//! Given the same seed, every method produces the same stream on every
//! platform and at every optimization level — the harness relies on this
//! to make parallel experiment results independent of thread count.
//!
//! # Example
//!
//! ```
//! use nemscmos_numeric::rng::{Rand64, Xoshiro256pp};
//!
//! let mut a = Xoshiro256pp::seed_from_u64(42);
//! let mut b = Xoshiro256pp::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! ```

/// Minimal uniform-random source: 64 random bits per call.
pub trait Rand64 {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 spacing fills [0, 1) exactly.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64: one multiply-shift-xor avalanche per output.
///
/// Good enough statistically for seeding and for cheap stream splitting;
/// use [`Xoshiro256pp`] for bulk sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed (any value is fine).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Mixes a single value once (stateless avalanche) — handy for turning
    /// a job index into a decorrelated seed.
    pub fn mix(z: u64) -> u64 {
        let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rand64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state by running SplitMix64 from `seed`, as the
    /// xoshiro reference implementation recommends. A zero seed is safe
    /// (SplitMix64 never yields an all-zero expansion in four draws).
    pub fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        debug_assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Xoshiro256pp { s }
    }

    /// Deterministic per-stream generator: decorrelates `stream` (e.g. a
    /// Monte Carlo trial index or harness job index) from the master seed
    /// so every stream is independent *and* independent of scheduling.
    pub fn for_stream(seed: u64, stream: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(seed ^ SplitMix64::mix(stream.wrapping_add(1)))
    }
}

impl Rand64 for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values from the public-domain splitmix64.c with
        // state = 1234567.
        let mut sm = SplitMix64::new(1234567);
        let expect = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
        ];
        for &e in &expect {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_streams_are_deterministic_and_distinct() {
        let mut a = Xoshiro256pp::for_stream(99, 0);
        let mut b = Xoshiro256pp::for_stream(99, 0);
        let mut c = Xoshiro256pp::for_stream(99, 1);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean = {mean}");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn mix_avalanches_consecutive_indices() {
        // Consecutive stream indices must land far apart.
        let a = SplitMix64::mix(1);
        let b = SplitMix64::mix(2);
        assert!((a ^ b).count_ones() > 16, "{a:x} vs {b:x}");
    }
}
