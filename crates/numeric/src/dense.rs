//! Column-major dense matrices and LU factorization with partial pivoting.
//!
//! Dense solves are used for small circuit Jacobians (a handful of nodes),
//! for the normal equations of polynomial least-squares fits, and as the
//! reference oracle in property tests of the sparse LU.

use crate::{NumericError, Result};

/// A column-major dense matrix of `f64`.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::dense::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a.get(1, 0), 3.0);
/// let y = a.mat_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: element (r, c) lives at `data[c * rows + r]`.
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nr = rows.len();
        let nc = rows.first().map_or(0, |r| r.len());
        let mut m = DenseMatrix::zeros(nr, nc);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), nc, "inconsistent row length in from_rows");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[c * self.rows + r]
    }

    /// Sets element `(r, c)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[c * self.rows + r] = v;
    }

    /// Adds `v` to element `(r, c)` — the natural operation for MNA stamping.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[c * self.rows + r] += v;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            let col = &self.data[c * self.rows..(c + 1) * self.rows];
            for (yr, &a) in y.iter_mut().zip(col.iter()) {
                *yr += a * xc;
            }
        }
        y
    }

    /// Factors the matrix in place and solves `A x = b`.
    ///
    /// This is a convenience wrapper around [`DenseLu::factor`] for one-shot
    /// solves; reuse a [`DenseLu`] when solving with several right-hand
    /// sides.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] if a zero pivot is
    /// encountered and [`NumericError::DimensionMismatch`] if `b` has the
    /// wrong length or the matrix is not square.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let lu = DenseLu::factor(self.clone())?;
        lu.solve(b)
    }
}

/// An LU factorization (with partial pivoting) of a square [`DenseMatrix`].
///
/// # Example
///
/// ```
/// use nemscmos_numeric::dense::{DenseLu, DenseMatrix};
///
/// # fn main() -> Result<(), nemscmos_numeric::NumericError> {
/// let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
/// let lu = DenseLu::factor(a)?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseLu {
    lu: DenseMatrix,
    /// Row permutation: `perm[k]` is the original row used as the k-th pivot.
    perm: Vec<usize>,
}

/// Pivot magnitudes below this threshold are treated as singular.
const PIVOT_EPS: f64 = 1e-300;

impl DenseLu {
    /// Factors `a` as `P A = L U` using partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for non-square input and
    /// [`NumericError::SingularMatrix`] if no usable pivot exists in some
    /// column.
    pub fn factor(a: DenseMatrix) -> Result<Self> {
        let n = a.rows;
        if a.cols != n {
            return Err(NumericError::DimensionMismatch {
                got: a.cols,
                expected: n,
            });
        }
        let mut lu = DenseLu {
            lu: a,
            perm: (0..n).collect(),
        };
        Self::eliminate(&mut lu.lu, &mut lu.perm)?;
        Ok(lu)
    }

    /// Refactors `a` in place, reusing this factorization's storage — no
    /// allocation, same pivoting and arithmetic as a fresh
    /// [`factor`](DenseLu::factor) (the results are bitwise identical).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `a`'s shape differs
    /// from the stored one and [`NumericError::SingularMatrix`] if no
    /// usable pivot exists in some column. After an error the stored
    /// factors are partially overwritten and must not be used for solves.
    pub fn refactor(&mut self, a: &DenseMatrix) -> Result<()> {
        let n = self.lu.rows;
        if a.rows != n || a.cols != n {
            return Err(NumericError::DimensionMismatch {
                got: a.rows,
                expected: n,
            });
        }
        self.lu.data.copy_from_slice(&a.data);
        for (k, p) in self.perm.iter_mut().enumerate() {
            *p = k;
        }
        Self::eliminate(&mut self.lu, &mut self.perm)
    }

    /// The shared elimination kernel: partial-pivot LU of `a` in place,
    /// recording the row permutation in `perm`.
    fn eliminate(a: &mut DenseMatrix, perm: &mut [usize]) -> Result<()> {
        let n = a.rows;
        for k in 0..n {
            // Find pivot: largest magnitude in column k at or below the diagonal.
            let mut p = k;
            let mut best = a.get(k, k).abs();
            for r in (k + 1)..n {
                let v = a.get(r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best.is_nan() || best <= PIVOT_EPS {
                return Err(NumericError::SingularMatrix {
                    column: k,
                    pivot: best,
                });
            }
            if p != k {
                perm.swap(k, p);
                for c in 0..n {
                    let t = a.get(k, c);
                    a.set(k, c, a.get(p, c));
                    a.set(p, c, t);
                }
            }
            let pivot = a.get(k, k);
            for r in (k + 1)..n {
                let m = a.get(r, k) / pivot;
                a.set(r, k, m);
                if m != 0.0 {
                    for c in (k + 1)..n {
                        a.add(r, c, -m * a.get(k, c));
                    }
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.lu.rows
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                got: b.len(),
                expected: n,
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for k in 0..n {
            for r in (k + 1)..n {
                let m = self.lu.get(r, k);
                if m != 0.0 {
                    x[r] -= m * x[k];
                }
            }
        }
        // Back substitution with U.
        for k in (0..n).rev() {
            for c in (k + 1)..n {
                let u = self.lu.get(k, c);
                if u != 0.0 {
                    x[k] -= u * x[c];
                }
            }
            x[k] /= self.lu.get(k, k);
        }
        Ok(x)
    }
}

/// Solves the linear least-squares problem `min ||A x - b||_2` via the
/// normal equations `A^T A x = A^T b`.
///
/// Adequate for the low-order polynomial fits used by the device models
/// (condition numbers stay small for degree ≤ 6 on normalized abscissae).
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if `b.len() != a.rows()` and
/// [`NumericError::SingularMatrix`] if `A^T A` is singular (rank-deficient
/// fit).
pub fn least_squares(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(NumericError::DimensionMismatch {
            got: b.len(),
            expected: a.rows(),
        });
    }
    let m = a.rows();
    let n = a.cols();
    let mut ata = DenseMatrix::zeros(n, n);
    let mut atb = vec![0.0; n];
    for (i, atb_i) in atb.iter_mut().enumerate() {
        for j in 0..n {
            let mut s = 0.0;
            for r in 0..m {
                s += a.get(r, i) * a.get(r, j);
            }
            ata.set(i, j, s);
        }
        *atb_i = b.iter().enumerate().map(|(r, &br)| a.get(r, i) * br).sum();
    }
    ata.solve(&atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let a = DenseMatrix::identity(4);
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = a.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!((xi - bi).abs() < 1e-15);
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-15);
        assert!((x[1] - 5.0).abs() < 1e-15);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.solve(&[1.0, 2.0]) {
            Err(NumericError::SingularMatrix { .. }) => {}
            other => panic!("expected SingularMatrix, got {other:?}"),
        }
    }

    #[test]
    fn non_square_factor_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            DenseLu::factor(a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let a = DenseMatrix::identity(3);
        let lu = DenseLu::factor(a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(NumericError::DimensionMismatch {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn solve_matches_mat_vec_roundtrip() {
        let a = DenseMatrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let x_true = [1.0, 2.0, 3.0];
        let b = a.mat_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_matches_fresh_factor_bitwise() {
        let a0 =
            DenseMatrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let a1 = DenseMatrix::from_rows(&[&[0.5, 3.0, -1.0], &[7.0, 0.1, 2.0], &[-1.0, 2.5, 0.3]]);
        let mut lu = DenseLu::factor(a0).unwrap();
        lu.refactor(&a1).unwrap();
        let fresh = DenseLu::factor(a1).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x_re = lu.solve(&b).unwrap();
        let x_fresh = fresh.solve(&b).unwrap();
        for (p, q) in x_re.iter().zip(x_fresh.iter()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // Shape mismatch is rejected.
        assert!(matches!(
            lu.refactor(&DenseMatrix::zeros(2, 2)),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // Fit y = 2 + 3 t through exact samples.
        let ts = [0.0, 1.0, 2.0, 3.0];
        let mut a = DenseMatrix::zeros(4, 2);
        let mut b = vec![0.0; 4];
        for (r, &t) in ts.iter().enumerate() {
            a.set(r, 0, 1.0);
            a.set(r, 1, t);
            b[r] = 2.0 + 3.0 * t;
        }
        let c = least_squares(&a, &b).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-12);
        assert!((c[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_rejects_bad_rhs() {
        let a = DenseMatrix::zeros(3, 2);
        assert!(matches!(
            least_squares(&a, &[1.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn clear_zeroes_all_entries() {
        let mut a = DenseMatrix::identity(3);
        a.clear();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), 0.0);
            }
        }
    }
}
