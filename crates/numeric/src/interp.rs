//! Piecewise-linear interpolation over sampled waveforms.

use crate::{NumericError, Result};

/// A piecewise-linear function defined by sorted `(x, y)` breakpoints.
///
/// Evaluation clamps to the end values outside the breakpoint range, which
/// matches SPICE PWL-source semantics.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::interp::PiecewiseLinear;
///
/// # fn main() -> Result<(), nemscmos_numeric::NumericError> {
/// let pwl = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)])?;
/// assert_eq!(pwl.eval(0.5), 1.0);
/// assert_eq!(pwl.eval(-1.0), 0.0); // clamped
/// assert_eq!(pwl.eval(10.0), 2.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Creates a piecewise-linear function from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if the list is empty, if
    /// any coordinate is non-finite, or if the abscissae are not strictly
    /// increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(NumericError::InvalidArgument("empty PWL point list".into()));
        }
        for w in points.windows(2) {
            if w[1].0.partial_cmp(&w[0].0) != Some(std::cmp::Ordering::Greater) {
                return Err(NumericError::InvalidArgument(format!(
                    "PWL abscissae must be strictly increasing ({} then {})",
                    w[0].0, w[1].0
                )));
            }
        }
        if points
            .iter()
            .any(|&(x, y)| !x.is_finite() || !y.is_finite())
        {
            return Err(NumericError::InvalidArgument("non-finite PWL point".into()));
        }
        Ok(PiecewiseLinear { points })
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the function at `x`, clamping outside the defined range.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let idx = pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Earliest `x >= from` at which the function crosses `level`,
    /// or `None` if it never does.
    ///
    /// Segments are scanned left to right; a breakpoint exactly on the
    /// level counts as a crossing.
    pub fn crossing(&self, level: f64, from: f64) -> Option<f64> {
        let pts = &self.points;
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x1 < from {
                continue;
            }
            let lo = y0.min(y1);
            let hi = y0.max(y1);
            if level < lo || level > hi {
                continue;
            }
            let x = if (y1 - y0).abs() < f64::MIN_POSITIVE {
                x0
            } else {
                x0 + (x1 - x0) * (level - y0) / (y1 - y0)
            };
            if x >= from {
                return Some(x);
            }
        }
        None
    }
}

/// Trapezoidal integral of samples `(xs, ys)` over the full range.
///
/// # Panics
///
/// Panics if `xs.len() != ys.len()`.
///
/// ```
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 1.0, 0.0];
/// assert_eq!(nemscmos_numeric::interp::trapezoid(&xs, &ys), 1.0);
/// ```
pub fn trapezoid(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "trapezoid sample length mismatch");
    let mut acc = 0.0;
    for i in 1..xs.len() {
        acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_constant() {
        let pwl = PiecewiseLinear::new(vec![(0.0, 3.0)]).unwrap();
        assert_eq!(pwl.eval(-5.0), 3.0);
        assert_eq!(pwl.eval(5.0), 3.0);
    }

    #[test]
    fn rejects_non_increasing_abscissae() {
        assert!(PiecewiseLinear::new(vec![(0.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(1.0, 0.0), (0.0, 1.0)]).is_err());
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(PiecewiseLinear::new(vec![]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, f64::NAN)]).is_err());
    }

    #[test]
    fn interpolates_midpoints() {
        let pwl = PiecewiseLinear::new(vec![(0.0, 0.0), (2.0, 4.0)]).unwrap();
        assert_eq!(pwl.eval(1.0), 2.0);
        assert_eq!(pwl.eval(1.5), 3.0);
    }

    #[test]
    fn crossing_finds_rising_edge() {
        let pwl = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]).unwrap();
        assert_eq!(pwl.crossing(0.5, 0.0), Some(0.5));
        // Falling edge after t = 1.
        assert_eq!(pwl.crossing(0.5, 1.0), Some(1.5));
        assert_eq!(pwl.crossing(2.0, 0.0), None);
    }

    #[test]
    fn crossing_on_flat_segment_returns_segment_start() {
        let pwl = PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 1.0), (2.0, 0.0)]).unwrap();
        assert_eq!(pwl.crossing(1.0, 0.0), Some(0.0));
    }

    #[test]
    fn trapezoid_of_constant() {
        let xs = [0.0, 0.5, 2.0];
        let ys = [3.0, 3.0, 3.0];
        assert!((trapezoid(&xs, &ys) - 6.0).abs() < 1e-15);
    }

    #[test]
    fn trapezoid_of_empty_is_zero() {
        assert_eq!(trapezoid(&[], &[]), 0.0);
    }
}
