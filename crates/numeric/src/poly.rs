//! Least-squares polynomial fitting and evaluation.
//!
//! The paper's NEMFET SPICE model approximates the electrostatic force term
//! `f(V_g)` by a fitted polynomial (Section 2.4); this module provides the
//! same capability for our device models and for post-processing.

use crate::dense::{least_squares, DenseMatrix};
use crate::{NumericError, Result};

/// A polynomial `c0 + c1 x + c2 x² + …` with coefficients in ascending
/// order of degree.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::poly::Polynomial;
///
/// let p = Polynomial::new(vec![1.0, 0.0, 2.0]); // 1 + 2x²
/// assert_eq!(p.eval(3.0), 19.0);
/// assert_eq!(p.deriv().eval(3.0), 12.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending-degree coefficients.
    ///
    /// An empty coefficient list is the zero polynomial.
    pub fn new(coeffs: Vec<f64>) -> Self {
        Polynomial { coeffs }
    }

    /// The coefficients in ascending order of degree.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree of the polynomial (`0` for constants and the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Evaluates at `x` using Horner's scheme.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Returns the derivative polynomial.
    pub fn deriv(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &c)| k as f64 * c)
            .collect();
        Polynomial::new(coeffs)
    }

    /// Fits a degree-`degree` polynomial to the samples `(xs, ys)` in the
    /// least-squares sense.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `xs` and `ys` differ
    /// in length, [`NumericError::InvalidArgument`] if there are fewer than
    /// `degree + 1` samples, and [`NumericError::SingularMatrix`] if the
    /// Vandermonde normal equations are rank deficient (e.g. duplicated
    /// abscissae).
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Polynomial> {
        if xs.len() != ys.len() {
            return Err(NumericError::DimensionMismatch {
                got: ys.len(),
                expected: xs.len(),
            });
        }
        if xs.len() < degree + 1 {
            return Err(NumericError::InvalidArgument(format!(
                "need at least {} samples for a degree-{} fit, got {}",
                degree + 1,
                degree,
                xs.len()
            )));
        }
        let mut a = DenseMatrix::zeros(xs.len(), degree + 1);
        for (r, &x) in xs.iter().enumerate() {
            let mut p = 1.0;
            for c in 0..=degree {
                a.set(r, c, p);
                p *= x;
            }
        }
        let coeffs = least_squares(&a, ys)?;
        Ok(Polynomial::new(coeffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_polynomial_evaluates_to_zero() {
        let p = Polynomial::new(vec![]);
        assert_eq!(p.eval(42.0), 0.0);
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn horner_matches_naive_evaluation() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5, 3.0]);
        let x = 1.7;
        let naive = 1.0 - 2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
        assert!((p.eval(x) - naive).abs() < 1e-12);
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        let p = Polynomial::new(vec![5.0]);
        assert_eq!(p.deriv().eval(10.0), 0.0);
    }

    #[test]
    fn fit_recovers_exact_cubic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.3).collect();
        let truth = Polynomial::new(vec![0.5, -1.0, 2.0, 0.25]);
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fitted = Polynomial::fit(&xs, &ys, 3).unwrap();
        for (c, t) in fitted.coeffs().iter().zip(truth.coeffs()) {
            assert!((c - t).abs() < 1e-9, "coefficient mismatch: {c} vs {t}");
        }
    }

    #[test]
    fn fit_rejects_underdetermined_input() {
        assert!(matches!(
            Polynomial::fit(&[0.0, 1.0], &[0.0, 1.0], 2),
            Err(NumericError::InvalidArgument(_))
        ));
    }

    #[test]
    fn fit_rejects_length_mismatch() {
        assert!(matches!(
            Polynomial::fit(&[0.0, 1.0], &[0.0], 1),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn fit_of_noisy_line_is_close() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        // Deterministic "noise".
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 3.0 * x + 1.0 + 0.01 * ((i % 7) as f64 - 3.0))
            .collect();
        let p = Polynomial::fit(&xs, &ys, 1).unwrap();
        assert!((p.coeffs()[1] - 3.0).abs() < 0.05);
        assert!((p.coeffs()[0] - 1.0).abs() < 0.05);
    }
}
