//! Scalar root finding: bisection and Brent's method.
//!
//! Used throughout the measurement code — waveform threshold crossings,
//! dynamic-gate noise-margin search, and model calibration all reduce to
//! bracketed scalar root problems.

use crate::{NumericError, Result};

/// Finds a root of `f` in `[lo, hi]` by plain bisection.
///
/// Robust but linear-converging; preferred when `f` is expensive to
/// evaluate *and* potentially noisy (e.g. wraps a transient simulation).
///
/// # Errors
///
/// Returns [`NumericError::InvalidBracket`] if `f(lo)` and `f(hi)` have the
/// same sign, and [`NumericError::InvalidArgument`] if the interval is
/// degenerate or non-finite.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    if !(lo.is_finite() && hi.is_finite() && lo < hi) {
        return Err(NumericError::InvalidArgument(format!(
            "bad bisection interval [{lo}, {hi}]"
        )));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidBracket { f_lo: fa, f_hi: fb });
    }
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a) < tol {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Ok(0.5 * (a + b))
}

/// Finds a root of `f` in `[lo, hi]` using Brent's method
/// (inverse-quadratic interpolation with bisection fallback).
///
/// # Errors
///
/// Returns [`NumericError::InvalidBracket`] if the interval does not
/// bracket a sign change, [`NumericError::InvalidArgument`] for a bad
/// interval, and [`NumericError::NonConvergence`] if the iteration budget
/// is exhausted before the bracket shrinks below `tol`.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    if !(lo.is_finite() && hi.is_finite() && lo < hi) {
        return Err(NumericError::InvalidArgument(format!(
            "bad brent interval [{lo}, {hi}]"
        )));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidBracket { f_lo: fa, f_hi: fb });
    }
    // Ensure |f(b)| <= |f(a)|: b is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;
    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo_bound = (3.0 * a + b) / 4.0;
        let (blo, bhi) = if lo_bound < b {
            (lo_bound, b)
        } else {
            (b, lo_bound)
        };
        let cond = !(s > blo && s < bhi)
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            || (mflag && (b - c).abs() < tol)
            || (!mflag && (c - d).abs() < tol);
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericError::NonConvergence {
        iterations: max_iter,
        residual: fb.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_same_sign() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9, 100),
            Err(NumericError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn bisect_rejects_degenerate_interval() {
        assert!(matches!(
            bisect(|x| x, 1.0, 1.0, 1e-9, 100),
            Err(NumericError::InvalidArgument(_))
        ));
    }

    #[test]
    fn bisect_returns_exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-9, 100).unwrap(), 1.0);
    }

    #[test]
    fn brent_finds_cos_root() {
        let r = brent(|x| x.cos(), 0.0, 3.0, 1e-14, 100).unwrap();
        assert!((r - std::f64::consts::FRAC_PI_2).abs() < 1e-10);
    }

    #[test]
    fn brent_handles_steep_functions() {
        // f has a very steep root at x = 1e-6.
        let r = brent(|x| (x - 1e-6) * 1e9, 0.0, 1.0, 1e-15, 200).unwrap();
        assert!((r - 1e-6).abs() < 1e-9);
    }

    #[test]
    fn brent_rejects_same_sign() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9, 100),
            Err(NumericError::InvalidBracket { .. })
        ));
    }
}
