//! A vendored, std-only property-test runner.
//!
//! The workspace builds offline, so the external `proptest` crate is not
//! available; this module replaces it for the property suites in
//! `nemscmos-mems`, `nemscmos-devices`, `nemscmos-analysis`, and
//! `nemscmos-spice`. The design follows the Hypothesis school: a test
//! case is generated from a recorded sequence of unit-interval draws
//! ([`Draws`]), and shrinking operates on that *draw record* — zeroing
//! and halving entries — rather than on the generated value. Because a
//! draw of `0.0` maps to the lower bound of whatever range the generator
//! asked for, shrunk candidates always stay inside the generator's
//! domain and can never trip unrelated construction panics.
//!
//! Determinism: every case is derived from a seed computed from the
//! property name (FNV-1a, then [`SplitMix64::mix`]), so a failure
//! reproduces without recording anything. Recorded failures from the
//! retired `proptest` suites are pinned as explicit cases via
//! [`check_cases`].
//!
//! # Example
//!
//! ```
//! use nemscmos_numeric::check::{check, Config, Draws};
//!
//! check("squares are non-negative", &Config::default(),
//!     |d: &mut Draws| d.f64_in(-10.0, 10.0),
//!     |&x| {
//!         if x * x >= 0.0 { Ok(()) } else { Err(format!("{x}² < 0")) }
//!     });
//! ```

use crate::rng::{Rand64, SplitMix64, Xoshiro256pp};

/// Fails a property with a formatted message unless `cond` holds.
///
/// Usable only inside closures returning `Result<(), String>`.
#[macro_export]
macro_rules! prop_check {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run (`NEMSCMOS_CHECK_CASES` overrides).
    pub cases: u32,
    /// Extra entropy folded into the per-property seed; bump to explore
    /// a different corner of the case space without touching code.
    pub seed: u64,
    /// Budget of candidate evaluations during shrinking.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 48,
            seed: 0,
            max_shrink_steps: 400,
        }
    }
}

impl Config {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("NEMSCMOS_CHECK_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// FNV-1a hash of the property name, mixed once — the per-property seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SplitMix64::mix(h)
}

/// The source of randomness handed to generators: a sequence of draws in
/// `[0, 1)`, recorded on first use so the runner can replay mutated
/// (shrunk) versions of the same sequence.
#[derive(Debug)]
pub struct Draws {
    rng: Xoshiro256pp,
    record: Vec<f64>,
    /// Replay prefix: consumed before any fresh randomness. During
    /// shrinking this holds the mutated record and `rng` is never
    /// touched (generators that ask for more draws than recorded get
    /// `0.0`, the minimal draw).
    replay: Option<Vec<f64>>,
    cursor: usize,
}

impl Draws {
    fn fresh(seed: u64, stream: u64) -> Draws {
        Draws {
            rng: Xoshiro256pp::for_stream(seed, stream),
            record: Vec::new(),
            replay: None,
            cursor: 0,
        }
    }

    fn replay(record: Vec<f64>) -> Draws {
        Draws {
            rng: Xoshiro256pp::seed_from_u64(0),
            record: Vec::new(),
            replay: Some(record),
            cursor: 0,
        }
    }

    /// The next draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        let v = match &self.replay {
            Some(r) => *r.get(self.cursor).unwrap_or(&0.0),
            None => self.rng.next_f64(),
        };
        self.cursor += 1;
        self.record.push(v);
        v
    }

    /// A uniform value in `[lo, hi)`. A zero draw maps exactly to `lo`,
    /// so shrinking drives parameters to their lower bounds.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi >= lo);
        let span = (hi - lo + 1) as f64;
        lo + ((self.unit() * span) as usize).min(hi - lo)
    }

    /// A fair boolean (`false` under shrinking).
    pub fn bool(&mut self) -> bool {
        self.unit() >= 0.5
    }

    /// A vector of `n ∈ [min_len, max_len]` values produced by `f`.
    /// Shrinking shortens the vector (the length draw shrinks first).
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Draws) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| f(self)).collect()
    }

    fn into_record(self) -> Vec<f64> {
        self.record
    }
}

/// Outcome of one property evaluation over a draw record.
fn eval_record<T, G, P>(record: Vec<f64>, gen: &G, prop: &P) -> (T, Result<(), String>)
where
    G: Fn(&mut Draws) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut draws = Draws::replay(record);
    let value = gen(&mut draws);
    let verdict = prop(&value);
    (value, verdict)
}

/// Runs `prop` over `cfg.cases` random cases produced by `gen`,
/// shrinking the first failure and panicking with a reproducible report.
///
/// The generator must be a pure function of the draws it takes from
/// [`Draws`]; the property returns `Err(reason)` to fail a case.
///
/// # Panics
///
/// Panics when a case fails, after shrinking, with the property name,
/// seed, shrunk value, and failure reason.
pub fn check<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Draws) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let seed = seed_from_name(name) ^ cfg.seed;
    for case in 0..cfg.effective_cases() {
        let mut draws = Draws::fresh(seed, u64::from(case));
        let value = gen(&mut draws);
        if let Err(reason) = prop(&value) {
            let record = draws.into_record();
            let (shrunk, shrunk_reason, steps) = shrink(record, &gen, &prop, cfg.max_shrink_steps);
            panic!(
                "property '{name}' failed (seed {seed:#018x}, case {case}, \
                 {steps} shrink steps)\n  shrunk input: {shrunk:?}\n  reason: {shrunk_reason}\n  \
                 original reason: {reason}"
            );
        }
    }
}

/// Runs `prop` over explicit pinned cases (regression seeds recorded by
/// earlier property-test runs). No generation, no shrinking: each case
/// must pass as-is.
///
/// # Panics
///
/// Panics on the first failing case with its index, value, and reason.
pub fn check_cases<T, P>(name: &str, cases: &[T], prop: P)
where
    T: std::fmt::Debug,
    P: Fn(&T) -> Result<(), String>,
{
    for (i, case) in cases.iter().enumerate() {
        if let Err(reason) = prop(case) {
            panic!("pinned case {i} of '{name}' failed\n  input: {case:?}\n  reason: {reason}");
        }
    }
}

/// Greedy record-level shrinking: repeatedly try zeroing, halving, and
/// truncating draws; keep any mutation under which the property still
/// fails. Returns the smallest failing value found, its failure reason,
/// and the number of candidate evaluations spent.
fn shrink<T, G, P>(mut record: Vec<f64>, gen: &G, prop: &P, budget: u32) -> (T, String, u32)
where
    G: Fn(&mut Draws) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0u32;
    let try_candidate = |cand: Vec<f64>, steps: &mut u32| -> Option<(Vec<f64>, String)> {
        if *steps >= budget {
            return None;
        }
        *steps += 1;
        let (_, verdict) = eval_record::<T, G, P>(cand.clone(), gen, prop);
        verdict.err().map(|reason| (cand, reason))
    };

    let mut improved = true;
    while improved && steps < budget {
        improved = false;
        // Truncation first: shorter records mean smaller collections.
        let mut len = record.len();
        while len > 1 {
            len /= 2;
            let cand: Vec<f64> = record[..len].to_vec();
            if let Some((c, _)) = try_candidate(cand, &mut steps) {
                record = c;
                improved = true;
            } else {
                break;
            }
        }
        // Per-draw minimization: zero, then binary-search toward zero.
        for i in 0..record.len() {
            if record[i] == 0.0 {
                continue;
            }
            let mut cand = record.clone();
            cand[i] = 0.0;
            if let Some((c, _)) = try_candidate(cand, &mut steps) {
                record = c;
                improved = true;
                continue;
            }
            let mut lo = 0.0f64;
            let mut hi = record[i];
            for _ in 0..8 {
                let mid = 0.5 * (lo + hi);
                let mut cand = record.clone();
                cand[i] = mid;
                match try_candidate(cand, &mut steps) {
                    Some((c, _)) => {
                        record = c;
                        hi = mid;
                        improved = true;
                    }
                    None => lo = mid,
                }
                if steps >= budget {
                    break;
                }
            }
        }
    }
    let (value, verdict) = eval_record::<T, G, P>(record, gen, prop);
    let reason = verdict.err().unwrap_or_else(|| {
        // The final record must fail (every kept mutation failed); if
        // a flaky property passes here, report that explicitly.
        "property passed on re-evaluation of the shrunk record (flaky property?)".into()
    });
    (value, reason, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let seen = std::cell::Cell::new(0u32);
        let cfg = Config::with_cases(32);
        check(
            "unit draws stay in range",
            &cfg,
            |d: &mut Draws| d.f64_in(2.0, 5.0),
            |&x| {
                seen.set(seen.get() + 1);
                if (2.0..5.0).contains(&x) {
                    Ok(())
                } else {
                    Err(format!("{x} outside [2, 5)"))
                }
            },
        );
        assert_eq!(seen.get(), 32);
    }

    #[test]
    fn failure_shrinks_to_boundary() {
        // Property "x < 3" over [0, 10): the shrunk counterexample must
        // land essentially on the boundary 3.
        let result = std::panic::catch_unwind(|| {
            check(
                "x below three",
                &Config::default(),
                |d: &mut Draws| d.f64_in(0.0, 10.0),
                |&x| {
                    if x < 3.0 {
                        Ok(())
                    } else {
                        Err(format!("{x} >= 3"))
                    }
                },
            );
        });
        let msg = match result {
            Ok(()) => panic!("property must fail"),
            Err(p) => *p.downcast::<String>().expect("panic payload is String"),
        };
        assert!(msg.contains("shrunk input"), "{msg}");
        // Parse the shrunk value back out of the report.
        let v: f64 = msg
            .split("shrunk input: ")
            .nth(1)
            .and_then(|s| s.split('\n').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("report carries the shrunk value");
        assert!((3.0..3.2).contains(&v), "shrunk to {v}, want ≈3");
    }

    #[test]
    fn shrinking_respects_generator_bounds() {
        // Generator lower bound is 1.0; a naive value-level shrinker
        // would pass 0.0 to the property. Record-level shrinking cannot.
        let result = std::panic::catch_unwind(|| {
            check(
                "always fails in range",
                &Config::default(),
                |d: &mut Draws| d.f64_in(1.0, 2.0),
                |&x| {
                    assert!((1.0..2.0).contains(&x), "generator bound violated: {x}");
                    Err("unconditional".into())
                },
            );
        });
        let msg = match result {
            Ok(()) => panic!("property must fail"),
            Err(p) => *p.downcast::<String>().expect("panic payload is String"),
        };
        assert!(msg.contains("unconditional"), "{msg}");
    }

    #[test]
    fn vectors_shrink_toward_short() {
        let result = std::panic::catch_unwind(|| {
            check(
                "no vector of length >= 3",
                &Config::with_cases(64),
                |d: &mut Draws| d.vec_of(0, 10, |d| d.f64_in(0.0, 1.0)),
                |v: &Vec<f64>| {
                    if v.len() < 3 {
                        Ok(())
                    } else {
                        Err(format!("len {}", v.len()))
                    }
                },
            );
        });
        let msg = match result {
            Ok(()) => panic!("property must fail"),
            Err(p) => *p.downcast::<String>().expect("panic payload is String"),
        };
        // Minimal counterexample is a length-3 vector of zeros.
        assert!(msg.contains("len 3"), "{msg}");
    }

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        assert_eq!(seed_from_name("a"), seed_from_name("a"));
        assert_ne!(seed_from_name("a"), seed_from_name("b"));
    }

    #[test]
    fn pinned_cases_run_verbatim() {
        check_cases("exact pins", &[1.5f64, 2.5, 3.5], |&x| {
            if x.fract() == 0.5 {
                Ok(())
            } else {
                Err("not a half".into())
            }
        });
    }

    #[test]
    #[should_panic(expected = "pinned case 1")]
    fn pinned_failure_names_the_case() {
        check_cases("pins with a bad one", &[1.0f64, 2.5], |&x| {
            if x.fract() == 0.0 {
                Ok(())
            } else {
                Err("not integral".into())
            }
        });
    }

    #[test]
    fn usize_in_covers_inclusive_range() {
        let mut d = Draws::fresh(7, 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[d.usize_in(0, 3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..=3 should appear");
    }

    #[test]
    fn prop_check_macro_formats() {
        let f = |x: i32| -> Result<(), String> {
            prop_check!(x > 0, "x = {x} must be positive");
            Ok(())
        };
        assert!(f(1).is_ok());
        assert_eq!(f(-1).unwrap_err(), "x = -1 must be positive");
    }
}
