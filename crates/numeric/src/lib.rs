//! Numerical kernels for the `nemscmos` circuit-simulation workspace.
//!
//! This crate is self-contained (no external dependencies) and provides the
//! numerical machinery that the MNA circuit simulator
//! ([`nemscmos-spice`](https://example.com/nemscmos)) and the device models
//! are built on:
//!
//! * [`dense`] — column-major dense matrices and LU factorization with
//!   partial pivoting, used for small systems and for least-squares fits.
//! * [`sparse`] — triplet and compressed-sparse-column matrices plus a
//!   left-looking Gilbert–Peierls LU with partial pivoting, used for the
//!   MNA Jacobians of larger circuits.
//! * [`newton`] — a damped Newton–Raphson driver for nonlinear systems.
//! * [`roots`] — scalar bisection/Brent root bracketing used by the
//!   measurement code (threshold crossings, noise-margin search).
//! * [`poly`] — least-squares polynomial fitting and evaluation (used to
//!   reproduce the paper's polynomial approximation of the electrostatic
//!   force term `f(V_g)`).
//! * [`interp`] — piecewise-linear interpolation for waveforms.
//! * [`stats`] — summary statistics for Monte Carlo experiments.
//! * [`rng`] — vendored SplitMix64 / xoshiro256++ generators (the
//!   workspace builds offline, so no `rand` dependency).
//! * [`check`] — a vendored property-test runner (seeded generation and
//!   record-level shrinking on the [`rng`] generators), replacing the
//!   external `proptest` crate for the workspace's property suites.
//!
//! # Example
//!
//! ```
//! use nemscmos_numeric::dense::DenseMatrix;
//!
//! # fn main() -> Result<(), nemscmos_numeric::NumericError> {
//! let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let x = a.solve(&[3.0, 5.0])?;
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod complex;
pub mod dense;
pub mod interp;
pub mod newton;
pub mod poly;
pub mod rng;
pub mod roots;
pub mod sparse;
pub mod stats;

use std::error::Error;
use std::fmt;

/// Errors produced by the numerical kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// A matrix was singular (or numerically singular) during factorization.
    ///
    /// Carries the pivot column at which elimination broke down and the
    /// magnitude of the best rejected pivot candidate, so callers can
    /// distinguish a structurally empty column (`pivot == 0`), a
    /// numerically vanishing one, and a NaN-poisoned one.
    SingularMatrix {
        /// Column index of the failing pivot.
        column: usize,
        /// `|best candidate|` in that column (`0.0` if none, NaN if the
        /// column was poisoned by a non-finite value).
        pivot: f64,
    },
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// What the caller supplied.
        got: usize,
        /// What the operation required.
        expected: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NonConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm at the final iterate.
        residual: f64,
    },
    /// A root-bracketing routine was given an interval that does not bracket
    /// a sign change.
    InvalidBracket {
        /// Function value at the lower end.
        f_lo: f64,
        /// Function value at the upper end.
        f_hi: f64,
    },
    /// Invalid argument (empty input, non-finite value, ...).
    InvalidArgument(String),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::SingularMatrix { column, pivot } => {
                write!(
                    f,
                    "matrix is singular at pivot column {column} (best pivot magnitude {pivot:.3e})"
                )
            }
            NumericError::DimensionMismatch { got, expected } => {
                write!(f, "dimension mismatch: got {got}, expected {expected}")
            }
            NumericError::NonConvergence { iterations, residual } => write!(
                f,
                "iteration failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericError::InvalidBracket { f_lo, f_hi } => write!(
                f,
                "interval does not bracket a root (f(lo) = {f_lo:.3e}, f(hi) = {f_hi:.3e})"
            ),
            NumericError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for NumericError {}

/// Convenience alias for results of numerical routines.
pub type Result<T> = std::result::Result<T, NumericError>;

/// Maximum-magnitude (infinity) norm of a vector; `0.0` for an empty slice.
///
/// ```
/// assert_eq!(nemscmos_numeric::inf_norm(&[1.0, -3.5, 2.0]), 3.5);
/// ```
pub fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Euclidean norm of a vector.
///
/// ```
/// assert!((nemscmos_numeric::l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
/// ```
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_norm_empty_is_zero() {
        assert_eq!(inf_norm(&[]), 0.0);
    }

    #[test]
    fn inf_norm_handles_negatives() {
        assert_eq!(inf_norm(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn l2_norm_of_unit_axes() {
        assert_eq!(l2_norm(&[1.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            NumericError::SingularMatrix {
                column: 3,
                pivot: 0.0,
            },
            NumericError::DimensionMismatch {
                got: 2,
                expected: 4,
            },
            NumericError::NonConvergence {
                iterations: 10,
                residual: 1.0,
            },
            NumericError::InvalidBracket {
                f_lo: 1.0,
                f_hi: 2.0,
            },
            NumericError::InvalidArgument("x".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
