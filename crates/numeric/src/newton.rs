//! Damped Newton–Raphson driver for nonlinear systems.
//!
//! The circuit simulator supplies its own residual/Jacobian evaluation and
//! linear solve; this module contains the shared iteration logic —
//! convergence tests, step damping, and divergence detection — so that both
//! the dense and sparse paths behave identically.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::inf_norm;

/// Why an iteration was interrupted (see [`InterruptFlag`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptKind {
    /// Cooperative cancellation requested by an external party.
    Cancelled,
    /// A wall-clock deadline or iteration budget expired (raised by a
    /// supervising layer — a deadline check or a watchdog thread).
    Deadline,
}

/// A shared, one-shot cooperative interrupt flag.
///
/// Clones share the same underlying state; the first raise wins and the
/// flag stays raised (it is sticky), so every nested solve observing the
/// flag fails fast once any supervisor trips it. This is the primitive
/// that deadline propagation and watchdog cancellation are built on: the
/// supervisor holds one clone, the iterating solver polls another.
#[derive(Debug, Clone, Default)]
pub struct InterruptFlag(Arc<AtomicU8>);

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

impl InterruptFlag {
    /// A fresh, unraised flag.
    pub fn new() -> InterruptFlag {
        InterruptFlag::default()
    }

    /// Raises the flag as a cooperative cancellation. No-op if already
    /// raised (the first raise wins).
    pub fn cancel(&self) {
        let _ = self
            .0
            .compare_exchange(LIVE, CANCELLED, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Raises the flag as a deadline/budget expiry. No-op if already
    /// raised (the first raise wins).
    pub fn expire(&self) {
        let _ = self
            .0
            .compare_exchange(LIVE, DEADLINE, Ordering::AcqRel, Ordering::Acquire);
    }

    /// The interrupt kind, if the flag has been raised.
    pub fn raised(&self) -> Option<InterruptKind> {
        match self.0.load(Ordering::Acquire) {
            CANCELLED => Some(InterruptKind::Cancelled),
            DEADLINE => Some(InterruptKind::Deadline),
            _ => None,
        }
    }

    /// True once the flag has been raised (either kind).
    pub fn is_raised(&self) -> bool {
        self.raised().is_some()
    }
}

/// Convergence and damping settings for [`NewtonSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum number of Newton iterations per solve.
    pub max_iter: usize,
    /// Absolute tolerance on the update norm (`‖Δx‖_∞`).
    pub abs_tol: f64,
    /// Relative tolerance on the update norm versus the iterate norm.
    pub rel_tol: f64,
    /// Maximum allowed `‖Δx‖_∞` per iteration; larger steps are scaled down
    /// (classical SPICE-style voltage limiting).
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 100,
            abs_tol: 1e-9,
            rel_tol: 1e-6,
            max_step: 0.5,
        }
    }
}

/// Outcome of one damped Newton update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NewtonStatus {
    /// The iteration has converged (update below tolerance).
    Converged,
    /// The iteration should continue.
    Continue,
    /// An attached [`InterruptFlag`] was raised; the update was *not*
    /// applied and the caller must abandon the solve.
    Interrupted(InterruptKind),
}

/// Incremental Newton state machine.
///
/// The caller owns the unknown vector and the linearized solve; this type
/// just applies damping and judges convergence, which keeps it independent
/// of the matrix backend.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::newton::{NewtonOptions, NewtonSolver, NewtonStatus};
///
/// // Solve x^2 = 4 by Newton iteration.
/// let mut x = vec![10.0_f64];
/// let mut newton = NewtonSolver::new(NewtonOptions::default());
/// for _ in 0..50 {
///     let f = x[0] * x[0] - 4.0;
///     let jac = 2.0 * x[0];
///     let dx = vec![-f / jac];
///     if newton.apply_step(&mut x, &dx) == NewtonStatus::Converged {
///         break;
///     }
/// }
/// assert!((x[0] - 2.0).abs() < 1e-8);
/// ```
#[derive(Debug, Clone)]
pub struct NewtonSolver {
    options: NewtonOptions,
    iterations: usize,
    last_update_norm: f64,
    interrupt: Option<InterruptFlag>,
}

impl NewtonSolver {
    /// Creates a solver with the given options.
    pub fn new(options: NewtonOptions) -> Self {
        NewtonSolver {
            options,
            iterations: 0,
            last_update_norm: f64::INFINITY,
            interrupt: None,
        }
    }

    /// Attaches a cooperative interrupt flag, checked at the top of every
    /// [`apply_step`](NewtonSolver::apply_step) call.
    pub fn attach_interrupt(&mut self, flag: InterruptFlag) {
        self.interrupt = Some(flag);
    }

    /// Number of steps applied so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// `‖Δx‖_∞` of the most recent (damped) update.
    pub fn last_update_norm(&self) -> f64 {
        self.last_update_norm
    }

    /// True once the iteration budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.iterations >= self.options.max_iter
    }

    /// Resets the iteration counter for a fresh solve.
    pub fn reset(&mut self) {
        self.iterations = 0;
        self.last_update_norm = f64::INFINITY;
    }

    /// Applies the Newton update `dx` to `x` with step limiting, and reports
    /// whether the iteration has converged.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dx.len()`.
    pub fn apply_step(&mut self, x: &mut [f64], dx: &[f64]) -> NewtonStatus {
        assert_eq!(x.len(), dx.len(), "state/update dimension mismatch");
        if let Some(kind) = self.interrupt.as_ref().and_then(InterruptFlag::raised) {
            return NewtonStatus::Interrupted(kind);
        }
        self.iterations += 1;
        let raw_norm = inf_norm(dx);
        let scale = if raw_norm > self.options.max_step {
            self.options.max_step / raw_norm
        } else {
            1.0
        };
        for (xi, &di) in x.iter_mut().zip(dx.iter()) {
            *xi += scale * di;
        }
        self.last_update_norm = raw_norm * scale;
        // Convergence is judged on the *undamped* Newton update so that a
        // limited step never reports convergence prematurely.
        let xnorm = inf_norm(x);
        if scale == 1.0 && raw_norm <= self.options.abs_tol + self.options.rel_tol * xnorm {
            NewtonStatus::Converged
        } else {
            NewtonStatus::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_scalar_quadratic() {
        let mut x = vec![3.0_f64];
        let mut n = NewtonSolver::new(NewtonOptions::default());
        let mut converged = false;
        while !n.exhausted() {
            let f = x[0] * x[0] - 2.0;
            let dx = vec![-f / (2.0 * x[0])];
            if n.apply_step(&mut x, &dx) == NewtonStatus::Converged {
                converged = true;
                break;
            }
        }
        assert!(converged);
        assert!((x[0] - 2.0_f64.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn large_steps_are_damped() {
        let mut x = vec![0.0_f64];
        let opts = NewtonOptions {
            max_step: 0.1,
            ..Default::default()
        };
        let mut n = NewtonSolver::new(opts);
        let status = n.apply_step(&mut x, &[10.0]);
        assert_eq!(status, NewtonStatus::Continue);
        assert!((x[0] - 0.1).abs() < 1e-15);
        assert!((n.last_update_norm() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn damped_step_never_reports_convergence() {
        let mut x = vec![0.0_f64];
        let opts = NewtonOptions {
            max_step: 1e-12,
            abs_tol: 1e-9,
            ..Default::default()
        };
        let mut n = NewtonSolver::new(opts);
        // The damped update is tiny, but the raw step is huge: must continue.
        assert_eq!(n.apply_step(&mut x, &[1.0]), NewtonStatus::Continue);
    }

    #[test]
    fn exhaustion_is_reported() {
        let opts = NewtonOptions {
            max_iter: 2,
            ..Default::default()
        };
        let mut n = NewtonSolver::new(opts);
        let mut x = vec![0.0_f64];
        n.apply_step(&mut x, &[1.0]);
        assert!(!n.exhausted());
        n.apply_step(&mut x, &[1.0]);
        assert!(n.exhausted());
        n.reset();
        assert!(!n.exhausted());
        assert_eq!(n.iterations(), 0);
    }

    #[test]
    fn raised_flag_interrupts_before_applying_the_update() {
        let flag = InterruptFlag::new();
        let mut n = NewtonSolver::new(NewtonOptions::default());
        n.attach_interrupt(flag.clone());
        let mut x = vec![0.0_f64];
        assert_eq!(n.apply_step(&mut x, &[0.25]), NewtonStatus::Continue);
        flag.cancel();
        assert_eq!(
            n.apply_step(&mut x, &[0.25]),
            NewtonStatus::Interrupted(InterruptKind::Cancelled)
        );
        // The interrupted step neither moved the iterate nor counted.
        assert_eq!(x[0], 0.25);
        assert_eq!(n.iterations(), 1);
    }

    #[test]
    fn first_raise_wins_and_is_sticky() {
        let flag = InterruptFlag::new();
        assert!(!flag.is_raised());
        flag.expire();
        flag.cancel();
        assert_eq!(flag.raised(), Some(InterruptKind::Deadline));
        let clone = flag.clone();
        assert_eq!(clone.raised(), Some(InterruptKind::Deadline));
    }
}
