//! Summary statistics for Monte Carlo experiments.

use crate::{NumericError, Result};

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; `0` for one sample).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `samples` is empty or
    /// contains non-finite values.
    pub fn of(samples: &[f64]) -> Result<Summary> {
        if samples.is_empty() {
            return Err(NumericError::InvalidArgument("empty sample set".into()));
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(NumericError::InvalidArgument("non-finite sample".into()));
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples
                .iter()
                .map(|&x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (n - 1.0)
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Mean plus `k` standard deviations — the paper's worst-case corner
    /// (e.g. `k = 3` for 3σ leakage).
    pub fn mean_plus_sigma(&self, k: f64) -> f64 {
        self.mean + k * self.std_dev
    }
}

/// Standard normal cumulative distribution function Φ(z), via the
/// Abramowitz–Stegun erf approximation (|error| < 1.5e-7).
///
/// ```
/// let phi = nemscmos_numeric::stats::normal_cdf(0.0);
/// assert!((phi - 0.5).abs() < 1e-7);
/// ```
pub fn normal_cdf(z: f64) -> f64 {
    // erf via A&S 7.1.26 on |x|, reflected for negative arguments.
    let x = z / std::f64::consts::SQRT_2;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = sign * (1.0 - poly * (-x * x).exp());
    0.5 * (1.0 + erf)
}

/// Yield of a normal population against a lower specification limit:
/// the fraction of parts with `value >= limit`.
///
/// ```
/// use nemscmos_numeric::stats::gaussian_yield_above;
/// // A limit 3σ below the mean passes ~99.87% of parts.
/// let y = gaussian_yield_above(1.0, 0.1, 0.7);
/// assert!((y - 0.99865).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if `sigma` is not strictly positive.
pub fn gaussian_yield_above(mean: f64, sigma: f64, limit: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    1.0 - normal_cdf((limit - mean) / sigma)
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the samples by linear
/// interpolation between order statistics.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the sample set is empty or
/// `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> Result<f64> {
    if samples.is_empty() {
        return Err(NumericError::InvalidArgument("empty sample set".into()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(NumericError::InvalidArgument(format!(
            "quantile {q} outside [0, 1]"
        )));
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample in quantile"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn summary_matches_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-15);
        // Sample variance of 1..4 is 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_err());
        assert!(Summary::of(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean_plus_sigma(3.0), 7.0);
    }

    #[test]
    fn quantile_endpoints_are_min_max() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 1.0];
        assert!((quantile(&xs, 0.25).unwrap() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn normal_cdf_known_points() {
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-5);
        assert!((normal_cdf(3.0) - 0.998_650_1).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn yield_is_monotone_in_margin() {
        let tight = gaussian_yield_above(0.25, 0.02, 0.2);
        let loose = gaussian_yield_above(0.25, 0.02, 0.1);
        assert!(loose > tight);
        assert!((0.0..=1.0).contains(&tight));
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }
}
