//! Minimal complex arithmetic and a dense complex LU solver, used by the
//! AC small-signal analysis.

use crate::{NumericError, Result};

/// A complex number (rectangular form).
///
/// # Example
///
/// ```
/// use nemscmos_numeric::complex::Complex;
///
/// let j = Complex::new(0.0, 1.0);
/// assert_eq!(j * j, Complex::new(-1.0, 0.0));
/// assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + j·im`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A purely real value.
    pub fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// A purely imaginary value.
    pub fn imag(im: f64) -> Complex {
        Complex { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude in decibels (`20 log10 |z|`); `-inf` for zero.
    pub fn db(self) -> f64 {
        20.0 * self.abs().log10()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::ops::AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

/// A column-major dense complex matrix with an LU solve, sufficient for
/// the AC analysis of the circuit sizes in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> ComplexMatrix {
        ComplexMatrix {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Complex {
        assert!(r < self.n && c < self.n, "index out of bounds");
        self.data[c * self.n + r]
    }

    /// Adds `v` to element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: Complex) {
        assert!(r < self.n && c < self.n, "index out of bounds");
        self.data[c * self.n + r] += v;
    }

    /// Solves `A x = b` by LU with partial pivoting (consumes a copy of
    /// the matrix).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] on a vanishing pivot and
    /// [`NumericError::DimensionMismatch`] for a wrong-length right-hand
    /// side.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                got: b.len(),
                expected: n,
            });
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let at = |a: &Vec<Complex>, r: usize, c: usize| a[c * n + r];
        for k in 0..n {
            // Partial pivot by magnitude.
            let mut p = k;
            let mut best = at(&a, k, k).abs();
            for r in (k + 1)..n {
                let v = at(&a, r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best.is_nan() || best <= 1e-300 {
                return Err(NumericError::SingularMatrix {
                    column: k,
                    pivot: best,
                });
            }
            if p != k {
                for c in 0..n {
                    a.swap(c * n + k, c * n + p);
                }
                x.swap(k, p);
            }
            let pivot = at(&a, k, k);
            for r in (k + 1)..n {
                let m = at(&a, r, k) / pivot;
                if m.abs() != 0.0 {
                    for c in (k + 1)..n {
                        let sub = m * at(&a, k, c);
                        a[c * n + r] = a[c * n + r] - sub;
                    }
                    let sub = m * x[k];
                    x[r] = x[r] - sub;
                }
            }
        }
        for k in (0..n).rev() {
            for c in (k + 1)..n {
                let sub = at(&a, k, c) * x[c];
                x[k] = x[k] - sub;
            }
            x[k] = x[k] / at(&a, k, k);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b - b, a);
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-14);
        assert_eq!(a.conj().im, -2.0);
        assert!((Complex::ONE.db() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn solves_complex_system() {
        // (1+j) x = 2 → x = 1 − j.
        let mut m = ComplexMatrix::zeros(1);
        m.add(0, 0, Complex::new(1.0, 1.0));
        let x = m.solve(&[Complex::real(2.0)]).unwrap();
        assert!((x[0] - Complex::new(1.0, -1.0)).abs() < 1e-14);
    }

    #[test]
    fn solves_2x2_with_pivoting() {
        let mut m = ComplexMatrix::zeros(2);
        m.add(0, 1, Complex::ONE);
        m.add(1, 0, Complex::imag(1.0));
        let x = m.solve(&[Complex::real(3.0), Complex::real(2.0)]).unwrap();
        // x1 = 3 (from row 0); j x0 = 2 → x0 = −2j.
        assert!((x[1] - Complex::real(3.0)).abs() < 1e-14);
        assert!((x[0] - Complex::new(0.0, -2.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let m = ComplexMatrix::zeros(2);
        assert!(matches!(
            m.solve(&[Complex::ZERO, Complex::ZERO]),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn bad_rhs_rejected() {
        let m = ComplexMatrix::zeros(2);
        assert!(matches!(
            m.solve(&[Complex::ZERO]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn residual_of_random_system_is_small() {
        // Deterministic pseudo-random fill.
        let n = 12;
        let mut m = ComplexMatrix::zeros(n);
        let mut seed = 1u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / 2f64.powi(31)) - 1.0
        };
        for r in 0..n {
            for c in 0..n {
                m.add(r, c, Complex::new(rnd(), rnd()));
            }
            m.add(r, r, Complex::real(4.0)); // diagonally dominant-ish
        }
        let b: Vec<Complex> = (0..n).map(|k| Complex::new(k as f64, -1.0)).collect();
        let x = m.solve(&b).unwrap();
        // Check A x ≈ b.
        for (r, &br) in b.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (c, &xc) in x.iter().enumerate() {
                acc += m.get(r, c) * xc;
            }
            assert!((acc - br).abs() < 1e-10);
        }
    }
}
