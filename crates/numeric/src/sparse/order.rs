//! Fill-reducing column ordering for the sparse LU.
//!
//! [`min_degree`] computes an approximate-minimum-degree elimination
//! order on the symmetrized pattern `A + Aᵀ` using a quotient graph:
//! eliminated pivots become *elements* whose boundary lists stand in for
//! the fill they would have caused, so the fill itself is never formed.
//! Elements adjacent to a pivot are absorbed into the new element, and
//! each boundary variable's external degree is recomputed as the exact
//! size of the union of its surviving original edges and its elements'
//! boundaries.
//!
//! The order is fully deterministic: ties in degree are broken toward
//! the lowest variable index, and no randomization or hashing is used —
//! the same pattern always yields the same permutation, which the
//! bitwise-reproducibility guarantees upstream rely on.
//!
//! MNA matrices are structurally unsymmetric (voltage-source branch
//! rows), but their pattern is nearly symmetric; ordering the
//! symmetrized pattern is the standard approach for partial-pivoting LU
//! (it bounds fill for any row-pivot choice within the column).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::CscMatrix;

/// Computes a fill-reducing elimination order for the pattern of `a`.
///
/// Returns a permutation `q` of `0..n` (`n = a.cols()`): `q[k]` is the
/// column to eliminate at step `k`. Feed it to
/// [`SparseLu::factor_symbolic_with_order`].
///
/// Rectangular input is ordered over `max(rows, cols)` so the result is
/// always a valid permutation, but only square matrices are meaningful.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::sparse::{min_degree, CscMatrix};
///
/// // An arrow matrix: natural order eliminates the dense hub first and
/// // fills in completely; minimum degree saves the hub for last.
/// let n = 6;
/// let mut tr = vec![];
/// for i in 0..n {
///     tr.push((i, i, 1.0));
///     if i > 0 {
///         tr.push((0, i, 1.0));
///         tr.push((i, 0, 1.0));
///     }
/// }
/// let a = CscMatrix::from_triplets(n, n, &tr);
/// let q = min_degree(&a);
/// let hub_step = q.iter().position(|&c| c == 0).unwrap();
/// assert!(hub_step >= n - 2, "the hub is deferred to the end");
/// ```
///
/// [`SparseLu::factor_symbolic_with_order`]:
///     super::SparseLu::factor_symbolic_with_order
pub fn min_degree(a: &CscMatrix) -> Vec<usize> {
    let n = a.rows().max(a.cols());
    // Symmetrized adjacency A + Aᵀ, diagonal dropped, duplicates merged.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let col_ptr = a.col_ptr();
    let row_idx = a.row_indices();
    for j in 0..a.cols() {
        for &i in &row_idx[col_ptr[j]..col_ptr[j + 1]] {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }

    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut alive = vec![true; n];
    // Quotient-graph state: per variable, the adjacent elements; per
    // element, its boundary variables (dead entries pruned lazily).
    let mut var_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elem_bound: Vec<Vec<usize>> = Vec::new();
    let mut elem_alive: Vec<bool> = Vec::new();
    // Stamp-based visited markers for the union computations.
    let mut mark = vec![0usize; n];
    let mut stamp = 0usize;
    let mut in_bound = vec![0usize; n];
    let mut bstamp = 0usize;

    // Lazy min-heap of (degree, variable): stale entries are skipped on
    // pop (alive check + degree match). Lexicographic order on the pair
    // gives the lowest-index tie-break.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|v| Reverse((degree[v], v))).collect();

    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let p = loop {
            let Reverse((d, v)) = heap.pop().expect("every alive variable stays in the heap");
            if alive[v] && degree[v] == d {
                break v;
            }
        };

        // Boundary of the new element: alive variables reachable from p
        // through surviving original edges or through the boundaries of
        // p's elements (union via marker).
        stamp += 1;
        mark[p] = stamp;
        let mut bound: Vec<usize> = Vec::new();
        for &v in &adj[p] {
            if alive[v] && mark[v] != stamp {
                mark[v] = stamp;
                bound.push(v);
            }
        }
        for &e in &var_elems[p] {
            if !elem_alive[e] {
                continue;
            }
            for &v in &elem_bound[e] {
                if alive[v] && mark[v] != stamp {
                    mark[v] = stamp;
                    bound.push(v);
                }
            }
        }
        bound.sort_unstable();

        alive[p] = false;
        order.push(p);

        // Absorb the elements adjacent to p: the new element's boundary
        // covers theirs.
        for &e in &var_elems[p] {
            elem_alive[e] = false;
            elem_bound[e] = Vec::new();
        }
        let e_new = elem_bound.len();
        elem_bound.push(bound.clone());
        elem_alive.push(true);

        bstamp += 1;
        for &v in &bound {
            in_bound[v] = bstamp;
        }
        for &v in &bound {
            // Original edges inside the new element's boundary are now
            // redundant (covered by e_new), as are edges to dead
            // variables; pruning them keeps the lists from growing.
            adj[v].retain(|&u| alive[u] && in_bound[u] != bstamp);
            var_elems[v].retain(|&e| elem_alive[e]);
            var_elems[v].push(e_new);
            // Exact external degree: |adj(v) ∪ boundaries of elems(v)| − {v}.
            stamp += 1;
            mark[v] = stamp;
            let mut d = 0usize;
            for &u in &adj[v] {
                if mark[u] != stamp {
                    mark[u] = stamp;
                    d += 1;
                }
            }
            for &e in &var_elems[v] {
                for &u in &elem_bound[e] {
                    if alive[u] && mark[u] != stamp {
                        mark[u] = stamp;
                        d += 1;
                    }
                }
            }
            degree[v] = d;
            heap.push(Reverse((d, v)));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(q: &[usize], n: usize) -> bool {
        if q.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        q.iter()
            .all(|&v| v < n && !std::mem::replace(&mut seen[v], true))
    }

    #[test]
    fn empty_and_diagonal_patterns() {
        let a = CscMatrix::from_triplets(0, 0, &[]);
        assert!(min_degree(&a).is_empty());
        let d = CscMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        // All degrees zero: ties resolve to the identity.
        assert_eq!(min_degree(&d), vec![0, 1, 2, 3]);
    }

    #[test]
    fn arrow_hub_is_last() {
        let n = 12;
        let mut tr = vec![];
        for i in 0..n {
            tr.push((i, i, 1.0));
            if i > 0 {
                tr.push((0, i, 1.0));
                tr.push((i, 0, 1.0));
            }
        }
        let q = min_degree(&CscMatrix::from_triplets(n, n, &tr));
        assert!(is_permutation(&q, n));
        // Once only the hub and one spoke remain they tie at degree 1 and
        // the lowest index (the hub) wins, so the hub lands in the last
        // two steps rather than strictly last.
        let hub_step = q.iter().position(|&c| c == 0).unwrap();
        assert!(hub_step >= n - 2, "hub eliminated at step {hub_step}");
    }

    #[test]
    fn tridiagonal_is_a_permutation_and_deterministic() {
        let n = 40;
        let mut tr = vec![];
        for i in 0..n {
            tr.push((i, i, 2.0));
            if i + 1 < n {
                tr.push((i, i + 1, -1.0));
                tr.push((i + 1, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &tr);
        let q = min_degree(&a);
        assert!(is_permutation(&q, n));
        assert_eq!(q, min_degree(&a), "ordering must be deterministic");
    }

    #[test]
    fn unsymmetric_pattern_is_symmetrized() {
        // Strictly upper-triangular coupling: the symmetrized graph is a
        // path, and the result must still be a permutation.
        let n = 10;
        let mut tr = vec![];
        for i in 0..n {
            tr.push((i, i, 1.0));
            if i + 1 < n {
                tr.push((i, i + 1, 1.0));
            }
        }
        let q = min_degree(&CscMatrix::from_triplets(n, n, &tr));
        assert!(is_permutation(&q, n));
    }
}
