//! Compressed-sparse-column matrix storage.

/// A compressed-sparse-column (CSC) matrix.
///
/// Column `c` occupies the half-open range
/// `col_ptr[c] .. col_ptr[c + 1]` of the parallel `row_idx` / `values`
/// arrays; row indices within a column are sorted ascending and unique.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::sparse::CscMatrix;
///
/// let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0), (1, 1, 3.0)]);
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.mat_vec(&[1.0, 1.0]), vec![1.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from coordinate triplets, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> Self {
        Self::compress(rows, cols, entries, None)
    }

    /// Builds a CSC matrix from coordinate triplets and, alongside it, the
    /// slot map: `map[k]` is the index into [`values_mut`] where triplet
    /// `entries[k]` was accumulated. Repeated assembly over a frozen
    /// pattern can then skip compression entirely and write straight into
    /// the value slots.
    ///
    /// Duplicates are summed in push order (the sort is stable with
    /// respect to the original entry order), so slot-wise accumulation in
    /// entry order reproduces this compression bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    ///
    /// [`values_mut`]: CscMatrix::values_mut
    pub fn from_triplets_mapped(
        rows: usize,
        cols: usize,
        entries: &[(usize, usize, f64)],
    ) -> (Self, Vec<usize>) {
        let mut map = vec![0usize; entries.len()];
        let m = Self::compress(rows, cols, entries, Some(&mut map));
        (m, map)
    }

    fn compress(
        rows: usize,
        cols: usize,
        entries: &[(usize, usize, f64)],
        mut slot_map: Option<&mut [usize]>,
    ) -> Self {
        for &(r, c, _) in entries {
            assert!(r < rows && c < cols, "triplet index out of bounds");
        }
        // Count entries per column (with duplicates).
        let mut count = vec![0usize; cols + 1];
        for &(_, c, _) in entries {
            count[c + 1] += 1;
        }
        for c in 0..cols {
            count[c + 1] += count[c];
        }
        // Scatter into per-column buckets, remembering each entry's
        // original index so the per-column sort can stay stable (duplicate
        // summation order == push order) and the slot map can be filled.
        let mut tmp: Vec<(usize, usize, f64)> = vec![(0, 0, 0.0); entries.len()];
        let mut next = count.clone();
        for (k, &(r, c, v)) in entries.iter().enumerate() {
            tmp[next[c]] = (r, k, v);
            next[c] += 1;
        }
        // Sort each column by row and merge duplicates.
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        col_ptr.push(0);
        for c in 0..cols {
            let bucket = &mut tmp[count[c]..count[c + 1]];
            bucket.sort_unstable_by_key(|&(r, k, _)| (r, k));
            let mut i = 0;
            while i < bucket.len() {
                let r = bucket[i].0;
                let slot = row_idx.len();
                let mut v = bucket[i].2;
                if let Some(map) = slot_map.as_deref_mut() {
                    map[bucket[i].1] = slot;
                }
                i += 1;
                while i < bucket.len() && bucket[i].0 == r {
                    v += bucket[i].2;
                    if let Some(map) = slot_map.as_deref_mut() {
                        map[bucket[i].1] = slot;
                    }
                    i += 1;
                }
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at `(r, c)`, `0.0` if the position is not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let range = self.col_ptr[c]..self.col_ptr[c + 1];
        match self.row_idx[range.clone()].binary_search(&r) {
            Ok(k) => self.values[range.start + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored entries of column `c` as `(row, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(c < self.cols, "column index out of bounds");
        let range = self.col_ptr[c]..self.col_ptr[c + 1];
        self.row_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// The column-pointer array (`cols() + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row index of every stored entry, column by column.
    pub fn row_indices(&self) -> &[usize] {
        &self.row_idx
    }

    /// The stored values, column by column (parallel to
    /// [`row_indices`](CscMatrix::row_indices)).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values for in-place re-assembly over a
    /// frozen pattern (see
    /// [`from_triplets_mapped`](CscMatrix::from_triplets_mapped)).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Zeroes every stored value in row `r`, leaving the structural
    /// pattern intact (the row becomes numerically empty).
    pub fn zero_row_values(&mut self, r: usize) {
        for (ri, v) in self.row_idx.iter().zip(self.values.iter_mut()) {
            if *ri == r {
                *v = 0.0;
            }
        }
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[p]] += self.values[p] * xc;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed_and_sorted() {
        let m =
            CscMatrix::from_triplets(3, 2, &[(2, 0, 1.0), (0, 0, 4.0), (2, 0, 1.5), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(2, 0), 2.5);
        assert_eq!(m.get(1, 1), 2.0);
        let col0: Vec<usize> = m.col(0).map(|(r, _)| r).collect();
        assert_eq!(col0, vec![0, 2]); // sorted
    }

    #[test]
    fn mat_vec_matches_dense_computation() {
        let m = CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
        assert_eq!(m.mat_vec(&[1.0, 2.0, 3.0]), vec![7.0, -2.0]);
    }

    #[test]
    fn entries_cancelling_to_zero_remain_structural() {
        let m = CscMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, -1.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn slot_map_replays_compression_exactly() {
        let entries = [
            (2, 0, 1.0),
            (0, 0, 4.0),
            (2, 0, 1.5),
            (1, 1, 2.0),
            (0, 0, -0.5),
        ];
        let (m, map) = CscMatrix::from_triplets_mapped(3, 2, &entries);
        assert_eq!(map.len(), entries.len());
        // Replay through the slot map: assign on the first touch of a
        // slot, accumulate afterwards. Must land on the same values.
        let mut replay = m.clone();
        replay.values_mut().iter_mut().for_each(|v| *v = f64::NAN);
        let mut touched = vec![false; replay.nnz()];
        for (k, &(_, _, v)) in entries.iter().enumerate() {
            let s = map[k];
            if touched[s] {
                replay.values_mut()[s] += v;
            } else {
                replay.values_mut()[s] = v;
                touched[s] = true;
            }
        }
        assert_eq!(replay.values(), m.values());
        // Slots agree with the coordinates they claim to represent.
        for (k, &(r, c, _)) in entries.iter().enumerate() {
            let s = map[k];
            assert_eq!(replay.row_indices()[s], r);
            assert!(s >= m.col_ptr()[c] && s < m.col_ptr()[c + 1]);
        }
    }

    #[test]
    fn duplicate_summation_is_stable_in_push_order() {
        // Three values whose sum depends on association order: with push
        // order a, b, c the result is (a + b) + c.
        let (a, b, c) = (1.0e16, -1.0e16, 1.0);
        let m = CscMatrix::from_triplets(2, 1, &[(1, 0, a), (0, 0, 7.0), (1, 0, b), (1, 0, c)]);
        assert_eq!(m.get(1, 0), (a + b) + c);
    }
}
