//! Compressed-sparse-column matrix storage.

/// A compressed-sparse-column (CSC) matrix.
///
/// Column `c` occupies the half-open range
/// `col_ptr[c] .. col_ptr[c + 1]` of the parallel `row_idx` / `values`
/// arrays; row indices within a column are sorted ascending and unique.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::sparse::CscMatrix;
///
/// let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0), (1, 1, 3.0)]);
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.mat_vec(&[1.0, 1.0]), vec![1.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from coordinate triplets, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in entries {
            assert!(r < rows && c < cols, "triplet index out of bounds");
        }
        // Count entries per column (with duplicates).
        let mut count = vec![0usize; cols + 1];
        for &(_, c, _) in entries {
            count[c + 1] += 1;
        }
        for c in 0..cols {
            count[c + 1] += count[c];
        }
        // Scatter into per-column buckets.
        let mut tmp_rows = vec![0usize; entries.len()];
        let mut tmp_vals = vec![0.0f64; entries.len()];
        let mut next = count.clone();
        for &(r, c, v) in entries {
            let p = next[c];
            tmp_rows[p] = r;
            tmp_vals[p] = v;
            next[c] += 1;
        }
        // Sort each column by row and merge duplicates.
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        col_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for c in 0..cols {
            scratch.clear();
            scratch.extend(
                tmp_rows[count[c]..count[c + 1]]
                    .iter()
                    .copied()
                    .zip(tmp_vals[count[c]..count[c + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                i += 1;
                while i < scratch.len() && scratch[i].0 == r {
                    v += scratch[i].1;
                    i += 1;
                }
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at `(r, c)`, `0.0` if the position is not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let range = self.col_ptr[c]..self.col_ptr[c + 1];
        match self.row_idx[range.clone()].binary_search(&r) {
            Ok(k) => self.values[range.start + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored entries of column `c` as `(row, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(c < self.cols, "column index out of bounds");
        let range = self.col_ptr[c]..self.col_ptr[c + 1];
        self.row_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[p]] += self.values[p] * xc;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed_and_sorted() {
        let m =
            CscMatrix::from_triplets(3, 2, &[(2, 0, 1.0), (0, 0, 4.0), (2, 0, 1.5), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(2, 0), 2.5);
        assert_eq!(m.get(1, 1), 2.0);
        let col0: Vec<usize> = m.col(0).map(|(r, _)| r).collect();
        assert_eq!(col0, vec![0, 2]); // sorted
    }

    #[test]
    fn mat_vec_matches_dense_computation() {
        let m = CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
        assert_eq!(m.mat_vec(&[1.0, 2.0, 3.0]), vec![7.0, -2.0]);
    }

    #[test]
    fn entries_cancelling_to_zero_remain_structural() {
        let m = CscMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, -1.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }
}
