//! Coordinate-format (triplet) sparse matrix builder.

use super::CscMatrix;

/// A coordinate-format sparse matrix builder.
///
/// Duplicate entries are allowed and are summed when compressed — exactly
/// the semantics needed for MNA stamping, where several elements contribute
/// to the same matrix position.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::sparse::Triplet;
///
/// let mut t = Triplet::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicates are summed
/// t.push(1, 1, 4.0);
/// let m = t.to_csc();
/// assert_eq!(m.get(0, 0), 3.0);
/// assert_eq!(m.get(1, 1), 4.0);
/// assert_eq!(m.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Triplet {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplet {
    /// Creates an empty `rows x cols` triplet builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplet {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Triplet {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (possibly duplicated) entries pushed so far.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Appends the contribution `v` at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds.
    #[inline]
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "triplet index out of bounds"
        );
        self.entries.push((r, c, v));
    }

    /// Clears all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over the raw entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The raw entries in push order, as a slice.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Compresses into CSC form together with the entry → value-slot map
    /// (see [`CscMatrix::from_triplets_mapped`]).
    pub fn to_csc_mapped(&self) -> (CscMatrix, Vec<usize>) {
        CscMatrix::from_triplets_mapped(self.rows, self.cols, &self.entries)
    }

    /// Zeroes every entry in row `r` (the row becomes structurally empty
    /// after compression). Used by the solver fault-injection framework to
    /// force a singular system deterministically.
    pub fn zero_row(&mut self, r: usize) {
        for e in &mut self.entries {
            if e.0 == r {
                e.2 = 0.0;
            }
        }
    }

    /// Applies `f` to every stored value in place (fault injection and
    /// scaling experiments).
    pub fn map_values(&mut self, mut f: impl FnMut(f64) -> f64) {
        for e in &mut self.entries {
            e.2 = f(e.2);
        }
    }

    /// Compresses into CSC form, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_triplet_compresses_to_all_zero() {
        let t = Triplet::new(3, 3);
        let m = t.to_csc();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), 0.0);
            }
        }
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut t = Triplet::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn clear_retains_shape() {
        let mut t = Triplet::new(2, 3);
        t.push(1, 2, 5.0);
        t.clear();
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }
}
