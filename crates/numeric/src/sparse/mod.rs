//! Sparse matrices (triplet and CSC) and a left-looking sparse LU.
//!
//! The MNA Jacobian of a circuit is extremely sparse (a handful of entries
//! per row), so circuits beyond a few dozen nodes are solved with the
//! Gilbert–Peierls LU ([`SparseLu`]) rather than the dense kernel.

mod csc;
mod lu;
mod order;
mod triplet;

pub use csc::CscMatrix;
pub use lu::{RefactorReject, SparseLu};
pub use order::min_degree;
pub use triplet::Triplet;
