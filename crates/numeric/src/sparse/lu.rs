//! Left-looking sparse LU factorization with partial pivoting
//! (Gilbert–Peierls), in the style of CSparse's `cs_lu`.
//!
//! For each column `j` of `A`, the set of rows reachable from the nonzeros
//! of `A(:, j)` through the directed graph of the already-computed `L`
//! columns is found by depth-first search; a sparse triangular solve over
//! that set yields the numerical column, from which the pivot is chosen by
//! magnitude among not-yet-pivoted rows.

use super::CscMatrix;
use crate::{NumericError, Result};

/// Sentinel for "row not pivoted yet" in the `pinv` map.
const UNPIVOTED: isize = -1;

/// Pivot magnitudes below this threshold are treated as singular.
const PIVOT_EPS: f64 = 1e-300;

/// A sparse LU factorization `P A = L U` with partial (row) pivoting.
///
/// # Example
///
/// ```
/// use nemscmos_numeric::sparse::{CscMatrix, SparseLu};
///
/// # fn main() -> Result<(), nemscmos_numeric::NumericError> {
/// let a = CscMatrix::from_triplets(
///     3,
///     3,
///     &[(0, 0, 4.0), (1, 0, -1.0), (1, 1, 4.0), (2, 1, -1.0), (2, 2, 4.0), (0, 2, -1.0)],
/// );
/// let lu = SparseLu::factor(&a)?;
/// let x = lu.solve(&[3.0, 3.0, 3.0])?;
/// let r = a.mat_vec(&x);
/// assert!(r.iter().all(|&ri| (ri - 3.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// `L` columns: strictly-lower multipliers, stored with *original* row
    /// indices (unit diagonal implied).
    l_col_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// `U` columns: rows stored in *pivot* numbering, excluding the diagonal.
    u_col_ptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    /// Diagonal of `U` per pivot column.
    u_diag: Vec<f64>,
    /// `p[j]` = original row chosen as the pivot of column `j`.
    p: Vec<usize>,
}

impl SparseLu {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for non-square input and
    /// [`NumericError::SingularMatrix`] if some column has no usable pivot.
    pub fn factor(a: &CscMatrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericError::DimensionMismatch {
                got: a.cols(),
                expected: n,
            });
        }
        let mut lu = SparseLu {
            n,
            l_col_ptr: Vec::with_capacity(n + 1),
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_col_ptr: Vec::with_capacity(n + 1),
            u_rows: Vec::new(),
            u_vals: Vec::new(),
            u_diag: vec![0.0; n],
            p: vec![usize::MAX; n],
        };
        lu.l_col_ptr.push(0);
        lu.u_col_ptr.push(0);

        // pinv[i] = pivot column of original row i, or UNPIVOTED.
        let mut pinv = vec![UNPIVOTED; n];
        // Dense scatter vector for the current column.
        let mut x = vec![0.0f64; n];
        // DFS bookkeeping.
        let mut mark = vec![usize::MAX; n]; // mark[i] == j means visited this column
        let mut topo: Vec<usize> = Vec::with_capacity(n); // reach, topological order
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new(); // (node, next child offset)

        for j in 0..n {
            // --- Symbolic: reach of A(:, j) through the graph of L. ---
            topo.clear();
            for (i, _) in a.col(j) {
                if mark[i] != j {
                    Self::dfs(
                        i,
                        j,
                        &pinv,
                        &lu.l_col_ptr,
                        &lu.l_rows,
                        &mut mark,
                        &mut dfs_stack,
                        &mut topo,
                    );
                }
            }
            // topo now holds reach in reverse-topological order (children first
            // within each DFS tree, trees in push order). We need topological
            // order for the solve: process in reverse.

            // --- Numeric: scatter A(:, j), then sparse triangular solve. ---
            for &i in topo.iter() {
                x[i] = 0.0;
            }
            for (i, v) in a.col(j) {
                x[i] = v;
            }
            for &i in topo.iter().rev() {
                let k = pinv[i];
                if k < 0 {
                    continue; // row not pivoted yet: no L column to apply
                }
                let k = k as usize;
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                for p in lu.l_col_ptr[k]..lu.l_col_ptr[k + 1] {
                    x[lu.l_rows[p]] -= lu.l_vals[p] * xi;
                }
            }

            // --- Pivot selection among unpivoted rows of the reach. ---
            let mut pivot_row = usize::MAX;
            let mut best = 0.0f64;
            for &i in topo.iter() {
                if pinv[i] == UNPIVOTED {
                    let v = x[i].abs();
                    if v > best || pivot_row == usize::MAX {
                        best = v;
                        pivot_row = i;
                    }
                }
            }
            if pivot_row == usize::MAX || best.is_nan() || best <= PIVOT_EPS {
                return Err(NumericError::SingularMatrix {
                    column: j,
                    pivot: if pivot_row == usize::MAX { 0.0 } else { best },
                });
            }
            let pivot_val = x[pivot_row];
            pinv[pivot_row] = j as isize;
            lu.p[j] = pivot_row;
            lu.u_diag[j] = pivot_val;

            // --- Store U(:, j) (pivot-numbered rows) and L(:, j). ---
            for &i in topo.iter() {
                let v = x[i];
                match pinv[i] {
                    k if k >= 0 && (k as usize) < j => {
                        if v != 0.0 {
                            lu.u_rows.push(k as usize);
                            lu.u_vals.push(v);
                        }
                    }
                    k if k == j as isize => {} // the pivot/diagonal itself
                    _ => {
                        // Unpivoted row: multiplier for L.
                        let m = v / pivot_val;
                        if m != 0.0 {
                            lu.l_rows.push(i);
                            lu.l_vals.push(m);
                        }
                    }
                }
            }
            lu.u_col_ptr.push(lu.u_rows.len());
            lu.l_col_ptr.push(lu.l_rows.len());
        }
        Ok(lu)
    }

    /// Iterative DFS from `start` through the graph of `L`, appending nodes
    /// to `topo` in reverse-topological (post-) order.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        start: usize,
        j: usize,
        pinv: &[isize],
        l_col_ptr: &[usize],
        l_rows: &[usize],
        mark: &mut [usize],
        stack: &mut Vec<(usize, usize)>,
        topo: &mut Vec<usize>,
    ) {
        stack.clear();
        stack.push((start, 0));
        mark[start] = j;
        while let Some(top) = stack.last_mut() {
            let node = top.0;
            let k = pinv[node];
            let (lo, hi) = if k >= 0 {
                let k = k as usize;
                (l_col_ptr[k], l_col_ptr[k + 1])
            } else {
                (0, 0)
            };
            let mut pending = None;
            while lo + top.1 < hi {
                let next = l_rows[lo + top.1];
                top.1 += 1;
                if mark[next] != j {
                    mark[next] = j;
                    pending = Some(next);
                    break;
                }
            }
            match pending {
                Some(next) => stack.push((next, 0)),
                None => {
                    // Node fully explored: emit in post-order.
                    topo.push(node);
                    stack.pop();
                }
            }
        }
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros in `L` plus `U` (including the diagonal).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                got: b.len(),
                expected: n,
            });
        }
        // Forward solve L y = P b, working on a copy indexed by original row.
        let mut work = b.to_vec();
        let mut y = vec![0.0f64; n];
        for j in 0..n {
            let yj = work[self.p[j]];
            y[j] = yj;
            if yj != 0.0 {
                for p in self.l_col_ptr[j]..self.l_col_ptr[j + 1] {
                    work[self.l_rows[p]] -= self.l_vals[p] * yj;
                }
            }
        }
        // Back solve U x = y (U stored by column, pivot-numbered rows).
        for j in (0..n).rev() {
            y[j] /= self.u_diag[j];
            let xj = y[j];
            if xj != 0.0 {
                for p in self.u_col_ptr[j]..self.u_col_ptr[j + 1] {
                    y[self.u_rows[p]] -= self.u_vals[p] * xj;
                }
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.mat_vec(x)
            .iter()
            .zip(b.iter())
            .fold(0.0f64, |m, (ri, bi)| m.max((ri - bi).abs()))
    }

    #[test]
    fn solves_diagonal_system() {
        let a = CscMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)]);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn solves_permutation_requiring_pivoting() {
        // [[0, 1], [1, 0]] has zeros on the diagonal.
        let a = CscMatrix::from_triplets(2, 2, &[(1, 0, 1.0), (0, 1, 1.0)]);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 9.0]).unwrap();
        assert_eq!(x, vec![9.0, 3.0]);
    }

    #[test]
    fn tridiagonal_poisson_system() {
        // Classic -1/2/-1 Poisson matrix, n = 50.
        let n = 50;
        let mut tr = Vec::new();
        for i in 0..n {
            tr.push((i, i, 2.0));
            if i + 1 < n {
                tr.push((i, i + 1, -1.0));
                tr.push((i + 1, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &tr);
        let lu = SparseLu::factor(&a).unwrap();
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-10);
        // Solution of the discrete Poisson problem is positive and symmetric.
        assert!(x.iter().all(|&v| v > 0.0));
        assert!((x[0] - x[n - 1]).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_is_detected() {
        // Column 1 is all zero.
        let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(matches!(
            SparseLu::factor(&a),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            SparseLu::factor(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn unsymmetric_system_with_fill_in() {
        // An arrow matrix creates fill during elimination.
        let n = 20;
        let mut tr = Vec::new();
        for i in 0..n {
            tr.push((i, i, 3.0 + i as f64 * 0.1));
            if i > 0 {
                tr.push((0, i, 1.0));
                tr.push((i, 0, -0.5));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &tr);
        let lu = SparseLu::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-10);
    }
}
