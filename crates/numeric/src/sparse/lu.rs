//! Left-looking sparse LU factorization with partial pivoting
//! (Gilbert–Peierls), in the style of CSparse's `cs_lu`.
//!
//! For each column `j` of `A`, the set of rows reachable from the nonzeros
//! of `A(:, j)` through the directed graph of the already-computed `L`
//! columns is found by depth-first search; a sparse triangular solve over
//! that set yields the numerical column, from which the pivot is chosen by
//! magnitude among not-yet-pivoted rows.

use super::CscMatrix;
use crate::{NumericError, Result};

/// Sentinel for "row not pivoted yet" in the `pinv` map.
const UNPIVOTED: isize = -1;

/// Pivot magnitudes below this threshold are treated as singular.
const PIVOT_EPS: f64 = 1e-300;

/// Why a numeric-only refactorization was rejected (see
/// [`SparseLu::refactor`]). A rejection is not an error: the caller falls
/// back to a fresh [`SparseLu::factor_symbolic`] and records the fallback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefactorReject {
    /// The factorization carries no symbolic record (built with
    /// [`SparseLu::factor`], not [`SparseLu::factor_symbolic`]).
    NoSymbolic,
    /// The input matrix pattern differs from the recorded one.
    PatternMismatch,
    /// A pivot became non-finite or too small to divide by; a fresh
    /// factorization will surface the singularity with full pivoting.
    SmallPivot {
        /// The column whose pivot collapsed.
        column: usize,
        /// Magnitude of the best available pivot.
        pivot: f64,
    },
    /// The values drifted enough that partial pivoting would now choose a
    /// different pivot row — replaying the recorded order would lose the
    /// growth bound (and bitwise agreement with a fresh factorization).
    PivotGrowth {
        /// The column where the recorded pivot lost.
        column: usize,
        /// `|best candidate| / |recorded pivot|` at that column.
        ratio: f64,
    },
    /// The set of numerically nonzero fill positions changed, so the
    /// recorded L/U pattern no longer matches a fresh factorization.
    FillDrift {
        /// The column where the drift was detected.
        column: usize,
    },
}

/// Symbolic replay record for numeric-only refactorization: the final
/// pivot assignment and each column's DFS reach, captured by
/// [`SparseLu::factor_symbolic`].
#[derive(Debug, Clone)]
struct Symbolic {
    /// Final `pinv`: pivot column of each original row.
    pinv: Vec<isize>,
    /// Per-column slice bounds into `reach_rows`.
    reach_ptr: Vec<usize>,
    /// Concatenated per-column reach sets in recorded post-order.
    reach_rows: Vec<usize>,
    /// Input pattern guard: the column pointers of the factored matrix.
    a_col_ptr: Vec<usize>,
    /// Input pattern guard: the row indices of the factored matrix.
    a_row_idx: Vec<usize>,
}

/// A sparse LU factorization `P A Q = L U` with partial (row) pivoting
/// and an optional fill-reducing column permutation `Q` (identity unless
/// built with [`factor_symbolic_with_order`]).
///
/// [`factor_symbolic_with_order`]: SparseLu::factor_symbolic_with_order
///
/// # Example
///
/// ```
/// use nemscmos_numeric::sparse::{CscMatrix, SparseLu};
///
/// # fn main() -> Result<(), nemscmos_numeric::NumericError> {
/// let a = CscMatrix::from_triplets(
///     3,
///     3,
///     &[(0, 0, 4.0), (1, 0, -1.0), (1, 1, 4.0), (2, 1, -1.0), (2, 2, 4.0), (0, 2, -1.0)],
/// );
/// let lu = SparseLu::factor(&a)?;
/// let x = lu.solve(&[3.0, 3.0, 3.0])?;
/// let r = a.mat_vec(&x);
/// assert!(r.iter().all(|&ri| (ri - 3.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// `L` columns: strictly-lower multipliers, stored with *original* row
    /// indices (unit diagonal implied).
    l_col_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// `U` columns: rows stored in *pivot* numbering, excluding the diagonal.
    u_col_ptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    /// Diagonal of `U` per pivot column.
    u_diag: Vec<f64>,
    /// `p[j]` = original row chosen as the pivot of column `j`.
    p: Vec<usize>,
    /// Fill-reducing column order: `q[step]` = original column eliminated
    /// at `step`. `None` means natural order (identity).
    q: Option<Vec<usize>>,
    /// Symbolic replay record, present after `factor_symbolic`.
    sym: Option<Symbolic>,
    /// Scratch column for refactorization (kept across calls).
    scratch: Vec<f64>,
}

impl SparseLu {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for non-square input and
    /// [`NumericError::SingularMatrix`] if some column has no usable pivot.
    pub fn factor(a: &CscMatrix) -> Result<Self> {
        Self::factor_impl(a, false, None)
    }

    /// Factors `a` exactly like [`factor`](SparseLu::factor) — same pivots,
    /// same arithmetic, bitwise-identical factors — while also recording
    /// the symbolic structure (pivot order and per-column reach) needed by
    /// [`refactor`](SparseLu::refactor).
    ///
    /// # Errors
    ///
    /// Same as [`factor`](SparseLu::factor).
    pub fn factor_symbolic(a: &CscMatrix) -> Result<Self> {
        Self::factor_impl(a, true, None)
    }

    /// Like [`factor_symbolic`](SparseLu::factor_symbolic), but eliminating
    /// the columns of `a` in the order given by the permutation `order`
    /// (`order[step]` = column eliminated at `step`, e.g. from
    /// [`min_degree`](super::min_degree)). The result solves the same
    /// system — [`solve`](SparseLu::solve) un-permutes internally — but a
    /// fill-reducing order can shrink `nnz(L + U)` and factor time
    /// dramatically on grid- and array-structured matrices.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `order` is not a permutation of
    /// `0..a.cols()`, plus everything [`factor`](SparseLu::factor) returns.
    pub fn factor_symbolic_with_order(a: &CscMatrix, order: &[usize]) -> Result<Self> {
        Self::validate_order(a.cols(), order)?;
        Self::factor_impl(a, true, Some(order.to_vec()))
    }

    fn validate_order(n: usize, order: &[usize]) -> Result<()> {
        if order.len() != n {
            return Err(NumericError::DimensionMismatch {
                got: order.len(),
                expected: n,
            });
        }
        let mut seen = vec![false; n];
        for &c in order {
            if c >= n || std::mem::replace(&mut seen[c], true) {
                return Err(NumericError::InvalidArgument(format!(
                    "column order is not a permutation of 0..{n}"
                )));
            }
        }
        Ok(())
    }

    fn factor_impl(a: &CscMatrix, record: bool, order: Option<Vec<usize>>) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericError::DimensionMismatch {
                got: a.cols(),
                expected: n,
            });
        }
        let mut lu = SparseLu {
            n,
            l_col_ptr: Vec::with_capacity(n + 1),
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_col_ptr: Vec::with_capacity(n + 1),
            u_rows: Vec::new(),
            u_vals: Vec::new(),
            u_diag: vec![0.0; n],
            p: vec![usize::MAX; n],
            q: order,
            sym: None,
            scratch: Vec::new(),
        };
        lu.l_col_ptr.push(0);
        lu.u_col_ptr.push(0);
        let mut rec = record.then(|| Symbolic {
            pinv: Vec::new(),
            reach_ptr: vec![0],
            reach_rows: Vec::new(),
            a_col_ptr: a.col_ptr().to_vec(),
            a_row_idx: a.row_indices().to_vec(),
        });

        // pinv[i] = pivot column of original row i, or UNPIVOTED.
        let mut pinv = vec![UNPIVOTED; n];
        // Dense scatter vector for the current column.
        let mut x = vec![0.0f64; n];
        // DFS bookkeeping.
        let mut mark = vec![usize::MAX; n]; // mark[i] == j means visited this column
        let mut topo: Vec<usize> = Vec::with_capacity(n); // reach, topological order
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new(); // (node, next child offset)

        for step in 0..n {
            // Actual column eliminated at this step (identity when no
            // fill-reducing order is installed; `col == step` then, so the
            // natural path is bitwise-unchanged by the indirection).
            let col = match &lu.q {
                Some(q) => q[step],
                None => step,
            };
            let j = step;
            // --- Symbolic: reach of A(:, col) through the graph of L. ---
            topo.clear();
            for (i, _) in a.col(col) {
                if mark[i] != j {
                    Self::dfs(
                        i,
                        j,
                        &pinv,
                        &lu.l_col_ptr,
                        &lu.l_rows,
                        &mut mark,
                        &mut dfs_stack,
                        &mut topo,
                    );
                }
            }
            // topo now holds reach in reverse-topological order (children first
            // within each DFS tree, trees in push order). We need topological
            // order for the solve: process in reverse.
            if let Some(rec) = rec.as_mut() {
                rec.reach_rows.extend_from_slice(&topo);
                rec.reach_ptr.push(rec.reach_rows.len());
            }

            // --- Numeric: scatter A(:, col), then sparse triangular solve. ---
            for &i in topo.iter() {
                x[i] = 0.0;
            }
            for (i, v) in a.col(col) {
                x[i] = v;
            }
            for &i in topo.iter().rev() {
                let k = pinv[i];
                if k < 0 {
                    continue; // row not pivoted yet: no L column to apply
                }
                let k = k as usize;
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                for p in lu.l_col_ptr[k]..lu.l_col_ptr[k + 1] {
                    x[lu.l_rows[p]] -= lu.l_vals[p] * xi;
                }
            }

            // --- Pivot selection among unpivoted rows of the reach. ---
            let mut pivot_row = usize::MAX;
            let mut best = 0.0f64;
            for &i in topo.iter() {
                if pinv[i] == UNPIVOTED {
                    let v = x[i].abs();
                    if v > best || pivot_row == usize::MAX {
                        best = v;
                        pivot_row = i;
                    }
                }
            }
            if pivot_row == usize::MAX || best.is_nan() || best <= PIVOT_EPS {
                return Err(NumericError::SingularMatrix {
                    column: col,
                    pivot: if pivot_row == usize::MAX { 0.0 } else { best },
                });
            }
            let pivot_val = x[pivot_row];
            pinv[pivot_row] = j as isize;
            lu.p[j] = pivot_row;
            lu.u_diag[j] = pivot_val;

            // --- Store U(:, j) (pivot-numbered rows) and L(:, j). ---
            for &i in topo.iter() {
                let v = x[i];
                match pinv[i] {
                    k if k >= 0 && (k as usize) < j => {
                        if v != 0.0 {
                            lu.u_rows.push(k as usize);
                            lu.u_vals.push(v);
                        }
                    }
                    k if k == j as isize => {} // the pivot/diagonal itself
                    _ => {
                        // Unpivoted row: multiplier for L.
                        let m = v / pivot_val;
                        if m != 0.0 {
                            lu.l_rows.push(i);
                            lu.l_vals.push(m);
                        }
                    }
                }
            }
            lu.u_col_ptr.push(lu.u_rows.len());
            lu.l_col_ptr.push(lu.l_rows.len());
        }
        if let Some(mut rec) = rec {
            rec.pinv = pinv;
            lu.sym = Some(rec);
        }
        Ok(lu)
    }

    /// Iterative DFS from `start` through the graph of `L`, appending nodes
    /// to `topo` in reverse-topological (post-) order.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        start: usize,
        j: usize,
        pinv: &[isize],
        l_col_ptr: &[usize],
        l_rows: &[usize],
        mark: &mut [usize],
        stack: &mut Vec<(usize, usize)>,
        topo: &mut Vec<usize>,
    ) {
        stack.clear();
        stack.push((start, 0));
        mark[start] = j;
        while let Some(top) = stack.last_mut() {
            let node = top.0;
            let k = pinv[node];
            let (lo, hi) = if k >= 0 {
                let k = k as usize;
                (l_col_ptr[k], l_col_ptr[k + 1])
            } else {
                (0, 0)
            };
            let mut pending = None;
            while lo + top.1 < hi {
                let next = l_rows[lo + top.1];
                top.1 += 1;
                if mark[next] != j {
                    mark[next] = j;
                    pending = Some(next);
                    break;
                }
            }
            match pending {
                Some(next) => stack.push((next, 0)),
                None => {
                    // Node fully explored: emit in post-order.
                    topo.push(node);
                    stack.pop();
                }
            }
        }
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros in `L` plus `U` (including the diagonal).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// The fill-reducing column order this factorization eliminates in,
    /// or `None` for natural order.
    pub fn column_order(&self) -> Option<&[usize]> {
        self.q.as_deref()
    }

    /// True when this factorization carries the symbolic record needed by
    /// [`refactor`](SparseLu::refactor).
    pub fn has_symbolic(&self) -> bool {
        self.sym.is_some()
    }

    /// Numeric-only refactorization of `a` over the recorded symbolic
    /// structure: no DFS, no pivot search, no storage growth — the L/U
    /// values are overwritten in place.
    ///
    /// The replay is guarded so that success implies the result is
    /// *bitwise identical* to a fresh [`factor`](SparseLu::factor) of the
    /// same matrix: the input pattern must match the recorded one, every
    /// recorded fill position must stay numerically nonzero (and no new
    /// fill may appear), and the recorded pivot of each column must still
    /// win the partial-pivoting scan. Any drift yields a
    /// [`RefactorReject`]; the caller then falls back to
    /// [`factor_symbolic`](SparseLu::factor_symbolic).
    ///
    /// # Errors
    ///
    /// Returns a [`RefactorReject`] describing the first guard that fired.
    /// On rejection the stored factors are partially overwritten and must
    /// not be used for solves — discard this object and factor afresh.
    pub fn refactor(&mut self, a: &CscMatrix) -> std::result::Result<(), RefactorReject> {
        let sym = match self.sym.take() {
            Some(s) => s,
            None => return Err(RefactorReject::NoSymbolic),
        };
        let out = self.refactor_replay(&sym, a);
        self.sym = Some(sym);
        out
    }

    fn refactor_replay(
        &mut self,
        sym: &Symbolic,
        a: &CscMatrix,
    ) -> std::result::Result<(), RefactorReject> {
        let n = self.n;
        if a.rows() != n
            || a.cols() != n
            || a.col_ptr() != &sym.a_col_ptr[..]
            || a.row_indices() != &sym.a_row_idx[..]
        {
            return Err(RefactorReject::PatternMismatch);
        }
        self.scratch.resize(n, 0.0);
        for step in 0..n {
            let col = match &self.q {
                Some(q) => q[step],
                None => step,
            };
            let j = step;
            let reach = &sym.reach_rows[sym.reach_ptr[j]..sym.reach_ptr[j + 1]];
            // Scatter A(:, col) over the recorded reach, then replay the
            // sparse triangular solve in the recorded order. The guards
            // (`pinv[i] < j`, `xi == 0.0`) mirror `factor` exactly so the
            // arithmetic sequence is identical.
            for &i in reach {
                self.scratch[i] = 0.0;
            }
            for (i, v) in a.col(col) {
                self.scratch[i] = v;
            }
            for &i in reach.iter().rev() {
                let k = sym.pinv[i];
                if k < 0 || k as usize >= j {
                    continue; // row not pivoted yet at (fresh) time j
                }
                let k = k as usize;
                let xi = self.scratch[i];
                if xi == 0.0 {
                    continue;
                }
                for p in self.l_col_ptr[k]..self.l_col_ptr[k + 1] {
                    self.scratch[self.l_rows[p]] -= self.l_vals[p] * xi;
                }
            }

            // Replay the pivot scan over the same candidates in the same
            // order; the recorded pivot must still win or the replay would
            // diverge from a fresh factorization.
            let mut pivot_row = usize::MAX;
            let mut best = 0.0f64;
            for &i in reach {
                if sym.pinv[i] >= j as isize {
                    let v = self.scratch[i].abs();
                    if v > best || pivot_row == usize::MAX {
                        best = v;
                        pivot_row = i;
                    }
                }
            }
            if pivot_row == usize::MAX || best.is_nan() || best <= PIVOT_EPS {
                return Err(RefactorReject::SmallPivot {
                    column: j,
                    pivot: if pivot_row == usize::MAX { 0.0 } else { best },
                });
            }
            if pivot_row != self.p[j] {
                let recorded = self.scratch[self.p[j]].abs();
                return Err(RefactorReject::PivotGrowth {
                    column: j,
                    ratio: if recorded > 0.0 {
                        best / recorded
                    } else {
                        f64::INFINITY
                    },
                });
            }
            let pivot_val = self.scratch[pivot_row];
            self.u_diag[j] = pivot_val;

            // Overwrite the stored L/U slots in place. `factor` prunes
            // exact zeros from storage, so the recorded pattern is valid
            // only while every stored slot stays nonzero and every pruned
            // reach position stays zero.
            let mut up = self.u_col_ptr[j];
            let u_end = self.u_col_ptr[j + 1];
            let mut lp = self.l_col_ptr[j];
            let l_end = self.l_col_ptr[j + 1];
            for &i in reach {
                let k = sym.pinv[i];
                if k == j as isize {
                    continue; // the pivot/diagonal itself
                }
                if k >= 0 && (k as usize) < j {
                    let v = self.scratch[i];
                    if up < u_end && self.u_rows[up] == k as usize {
                        if v == 0.0 {
                            return Err(RefactorReject::FillDrift { column: j });
                        }
                        self.u_vals[up] = v;
                        up += 1;
                    } else if v != 0.0 {
                        return Err(RefactorReject::FillDrift { column: j });
                    }
                } else {
                    let m = self.scratch[i] / pivot_val;
                    if lp < l_end && self.l_rows[lp] == i {
                        if m == 0.0 {
                            return Err(RefactorReject::FillDrift { column: j });
                        }
                        self.l_vals[lp] = m;
                        lp += 1;
                    } else if m != 0.0 {
                        return Err(RefactorReject::FillDrift { column: j });
                    }
                }
            }
            if up != u_end || lp != l_end {
                return Err(RefactorReject::FillDrift { column: j });
            }
        }
        Ok(())
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                got: b.len(),
                expected: n,
            });
        }
        // Forward solve L y = P b, working on a copy indexed by original row.
        let mut work = b.to_vec();
        let mut y = vec![0.0f64; n];
        for j in 0..n {
            let yj = work[self.p[j]];
            y[j] = yj;
            if yj != 0.0 {
                for p in self.l_col_ptr[j]..self.l_col_ptr[j + 1] {
                    work[self.l_rows[p]] -= self.l_vals[p] * yj;
                }
            }
        }
        // Back solve U z = y (U stored by column, pivot-numbered rows).
        for j in (0..n).rev() {
            y[j] /= self.u_diag[j];
            let xj = y[j];
            if xj != 0.0 {
                for p in self.u_col_ptr[j]..self.u_col_ptr[j + 1] {
                    y[self.u_rows[p]] -= self.u_vals[p] * xj;
                }
            }
        }
        // z is indexed by elimination step; un-permute the fill-reducing
        // column order (natural order returns z directly, untouched).
        match &self.q {
            None => Ok(y),
            Some(q) => {
                let mut x = vec![0.0f64; n];
                for (step, &col) in q.iter().enumerate() {
                    x[col] = y[step];
                }
                Ok(x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.mat_vec(x)
            .iter()
            .zip(b.iter())
            .fold(0.0f64, |m, (ri, bi)| m.max((ri - bi).abs()))
    }

    #[test]
    fn solves_diagonal_system() {
        let a = CscMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)]);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn solves_permutation_requiring_pivoting() {
        // [[0, 1], [1, 0]] has zeros on the diagonal.
        let a = CscMatrix::from_triplets(2, 2, &[(1, 0, 1.0), (0, 1, 1.0)]);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 9.0]).unwrap();
        assert_eq!(x, vec![9.0, 3.0]);
    }

    #[test]
    fn tridiagonal_poisson_system() {
        // Classic -1/2/-1 Poisson matrix, n = 50.
        let n = 50;
        let mut tr = Vec::new();
        for i in 0..n {
            tr.push((i, i, 2.0));
            if i + 1 < n {
                tr.push((i, i + 1, -1.0));
                tr.push((i + 1, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &tr);
        let lu = SparseLu::factor(&a).unwrap();
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-10);
        // Solution of the discrete Poisson problem is positive and symmetric.
        assert!(x.iter().all(|&v| v > 0.0));
        assert!((x[0] - x[n - 1]).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_is_detected() {
        // Column 1 is all zero.
        let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(matches!(
            SparseLu::factor(&a),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            SparseLu::factor(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_matches_fresh_factor_bitwise() {
        // Same pattern, new values: the replay must reproduce a fresh
        // factorization exactly, including the solve.
        let n = 30;
        let pattern: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| {
                let mut v = vec![(i, i)];
                if i + 1 < n {
                    v.push((i, i + 1));
                    v.push((i + 1, i));
                }
                if i > 2 {
                    v.push((i, i - 3));
                }
                v
            })
            .collect();
        let vals = |seed: f64| -> Vec<(usize, usize, f64)> {
            pattern
                .iter()
                .map(|&(r, c)| {
                    let off = ((r * 7 + c * 13) % 11) as f64 * 0.083 * seed;
                    let v = if r == c { 6.0 + off } else { -1.0 - off };
                    (r, c, v)
                })
                .collect()
        };
        let a0 = CscMatrix::from_triplets(n, n, &vals(1.0));
        let a1 = CscMatrix::from_triplets(n, n, &vals(1.7));
        let mut lu = SparseLu::factor_symbolic(&a0).unwrap();
        assert!(lu.has_symbolic());
        lu.refactor(&a1)
            .expect("same-pattern refactor must succeed");
        let fresh = SparseLu::factor(&a1).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 3.5).collect();
        let x_re = lu.solve(&b).unwrap();
        let x_fresh = fresh.solve(&b).unwrap();
        for (a, b) in x_re.iter().zip(x_fresh.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "refactor drifted from fresh");
        }
    }

    #[test]
    fn refactor_rejects_pivot_drift() {
        // [[eps, 1], [1, eps]] pivots off-diagonal; swapping the magnitudes
        // moves the winning pivot row, which the replay must refuse.
        let a0 =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 0.1), (1, 0, 2.0), (0, 1, 2.0), (1, 1, 0.1)]);
        let a1 =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 0, 0.1), (0, 1, 0.1), (1, 1, 2.0)]);
        let mut lu = SparseLu::factor_symbolic(&a0).unwrap();
        match lu.refactor(&a1) {
            Err(RefactorReject::PivotGrowth { column: 0, ratio }) => {
                assert!(ratio > 1.0, "ratio {ratio} should exceed 1");
            }
            other => panic!("expected PivotGrowth, got {other:?}"),
        }
    }

    #[test]
    fn refactor_rejects_small_pivot_and_pattern_drift() {
        let a0 = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let mut lu = SparseLu::factor_symbolic(&a0).unwrap();
        // Zeroed column: the replay reports the collapse as SmallPivot.
        let a_sing = CscMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 1, 1.0)]);
        assert!(matches!(
            lu.refactor(&a_sing),
            Err(RefactorReject::SmallPivot { column: 0, .. })
        ));
        // Different structural pattern: rejected before any numerics.
        let mut lu2 = SparseLu::factor_symbolic(&a0).unwrap();
        let a_wide = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 0.5), (1, 1, 1.0)]);
        assert!(matches!(
            lu2.refactor(&a_wide),
            Err(RefactorReject::PatternMismatch)
        ));
        // No symbolic record at all.
        let mut plain = SparseLu::factor(&a0).unwrap();
        assert!(matches!(
            plain.refactor(&a0),
            Err(RefactorReject::NoSymbolic)
        ));
    }

    #[test]
    fn identity_order_matches_natural_bitwise() {
        let n = 25;
        let mut tr = Vec::new();
        for i in 0..n {
            tr.push((i, i, 3.0 + 0.1 * i as f64));
            if i + 1 < n {
                tr.push((i, i + 1, -1.0));
                tr.push((i + 1, i, -0.7));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &tr);
        let identity: Vec<usize> = (0..n).collect();
        let natural = SparseLu::factor_symbolic(&a).unwrap();
        let ordered = SparseLu::factor_symbolic_with_order(&a, &identity).unwrap();
        assert_eq!(natural.factor_nnz(), ordered.factor_nnz());
        let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let xn = natural.solve(&b).unwrap();
        let xo = ordered.solve(&b).unwrap();
        for (u, v) in xn.iter().zip(xo.iter()) {
            assert_eq!(u.to_bits(), v.to_bits(), "identity order must be a no-op");
        }
    }

    #[test]
    fn ordered_factor_reduces_arrow_fill_and_solves() {
        // Arrow matrix with the hub first: natural order fills in
        // completely, minimum degree keeps the factors sparse.
        let n = 40;
        let mut tr = Vec::new();
        for i in 0..n {
            tr.push((i, i, 4.0 + 0.01 * i as f64));
            if i > 0 {
                tr.push((0, i, 1.0));
                tr.push((i, 0, -0.5));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &tr);
        let q = super::super::min_degree(&a);
        let natural = SparseLu::factor_symbolic(&a).unwrap();
        let ordered = SparseLu::factor_symbolic_with_order(&a, &q).unwrap();
        assert!(
            ordered.factor_nnz() < natural.factor_nnz() / 2,
            "ordered fill {} should beat natural fill {}",
            ordered.factor_nnz(),
            natural.factor_nnz()
        );
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let x = ordered.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn ordered_refactor_matches_fresh_ordered_bitwise() {
        // The refactor-replay bitwise guarantee must survive a column
        // permutation: replaying new values over the ordered symbolic
        // record equals a fresh ordered factorization bit for bit.
        let n = 30;
        let pattern: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| {
                let mut v = vec![(i, i)];
                if i + 1 < n {
                    v.push((i, i + 1));
                    v.push((i + 1, i));
                }
                if i > 4 {
                    v.push((i, i - 5));
                    v.push((i - 5, i));
                }
                v
            })
            .collect();
        let vals = |seed: f64| -> Vec<(usize, usize, f64)> {
            pattern
                .iter()
                .map(|&(r, c)| {
                    let off = ((r * 5 + c * 17) % 13) as f64 * 0.071 * seed;
                    let v = if r == c { 8.0 + off } else { -1.0 - off };
                    (r, c, v)
                })
                .collect()
        };
        let a0 = CscMatrix::from_triplets(n, n, &vals(1.0));
        let a1 = CscMatrix::from_triplets(n, n, &vals(1.3));
        let q = super::super::min_degree(&a0);
        let mut lu = SparseLu::factor_symbolic_with_order(&a0, &q).unwrap();
        lu.refactor(&a1)
            .expect("same-pattern ordered refactor must succeed");
        let fresh = SparseLu::factor_symbolic_with_order(&a1, &q).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 7.5).collect();
        let x_re = lu.solve(&b).unwrap();
        let x_fresh = fresh.solve(&b).unwrap();
        for (a, b) in x_re.iter().zip(x_fresh.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "ordered refactor drifted");
        }
    }

    #[test]
    fn rejects_invalid_column_order() {
        let a = CscMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        assert!(matches!(
            SparseLu::factor_symbolic_with_order(&a, &[0, 1]),
            Err(NumericError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            SparseLu::factor_symbolic_with_order(&a, &[0, 0, 2]),
            Err(NumericError::InvalidArgument(_))
        ));
        assert!(matches!(
            SparseLu::factor_symbolic_with_order(&a, &[0, 1, 5]),
            Err(NumericError::InvalidArgument(_))
        ));
    }

    #[test]
    fn unsymmetric_system_with_fill_in() {
        // An arrow matrix creates fill during elimination.
        let n = 20;
        let mut tr = Vec::new();
        for i in 0..n {
            tr.push((i, i, 3.0 + i as f64 * 0.1));
            if i > 0 {
                tr.push((0, i, 1.0));
                tr.push((i, 0, -0.5));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &tr);
        let lu = SparseLu::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-10);
    }
}
