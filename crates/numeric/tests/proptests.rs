//! Property-based tests of the numerical kernels, running on the
//! vendored `nemscmos_numeric::check` runner (seeded generation plus
//! record-level shrinking — no external `proptest` dependency).

use nemscmos_numeric::check::{check, Config, Draws};
use nemscmos_numeric::complex::Complex;
use nemscmos_numeric::dense::{DenseLu, DenseMatrix};
use nemscmos_numeric::interp::{trapezoid, PiecewiseLinear};
use nemscmos_numeric::poly::Polynomial;
use nemscmos_numeric::prop_check;
use nemscmos_numeric::roots::{bisect, brent};
use nemscmos_numeric::sparse::{min_degree, CscMatrix, SparseLu};
use nemscmos_numeric::stats::{quantile, Summary};

/// Generator: a random diagonally dominant system as triplets plus a
/// random right-hand side. The strong diagonal keeps it nonsingular
/// regardless of the random off-diagonal content.
fn dominant_system(d: &mut Draws, n: usize) -> (Vec<(usize, usize, f64)>, Vec<f64>) {
    let mut tri = d.vec_of(0, 3 * n, |d| {
        (
            d.usize_in(0, n - 1),
            d.usize_in(0, n - 1),
            d.f64_in(-1.0, 1.0),
        )
    });
    for i in 0..n {
        tri.push((i, i, 8.0 + i as f64 * 0.1));
    }
    let rhs = (0..n).map(|_| d.f64_in(-10.0, 10.0)).collect();
    (tri, rhs)
}

#[test]
fn sparse_lu_matches_dense_lu() {
    check(
        "sparse LU matches dense LU",
        &Config::default(),
        |d| dominant_system(d, 24),
        |(tri, b)| {
            let n = b.len();
            let a_sparse = CscMatrix::from_triplets(n, n, tri);
            let mut a_dense = DenseMatrix::zeros(n, n);
            for &(r, c, v) in tri {
                a_dense.add(r, c, v);
            }
            let xs = SparseLu::factor(&a_sparse).unwrap().solve(b).unwrap();
            let xd = DenseLu::factor(a_dense).unwrap().solve(b).unwrap();
            for (s, d) in xs.iter().zip(xd.iter()) {
                prop_check!((s - d).abs() < 1e-8, "sparse {s} vs dense {d}");
            }
            Ok(())
        },
    );
}

#[test]
fn sparse_solve_has_small_residual() {
    check(
        "sparse solve has small residual",
        &Config::default(),
        |d| dominant_system(d, 40),
        |(tri, b)| {
            let n = b.len();
            let a = CscMatrix::from_triplets(n, n, tri);
            let x = SparseLu::factor(&a).unwrap().solve(b).unwrap();
            let r = a.mat_vec(&x);
            for (ri, bi) in r.iter().zip(b.iter()) {
                prop_check!((ri - bi).abs() < 1e-9, "residual {} vs {}", ri, bi);
            }
            Ok(())
        },
    );
}

#[test]
fn sparse_refactor_is_bitwise_equal_to_fresh_factor() {
    check(
        "sparse refactor is bitwise equal to fresh factor",
        &Config::default(),
        |d| {
            // One pattern, two value sets over it: the second system
            // reuses the first's symbolic factorization.
            let (tri, b) = dominant_system(d, 24);
            let scales: Vec<f64> = tri.iter().map(|_| d.f64_in(0.2, 5.0)).collect();
            (tri, scales, b)
        },
        |(tri, scales, b)| {
            let n = b.len();
            let a1 = CscMatrix::from_triplets(n, n, tri);
            let tri2: Vec<(usize, usize, f64)> = tri
                .iter()
                .zip(scales.iter())
                .map(|(&(r, c, v), &s)| (r, c, v * s))
                .collect();
            let a2 = CscMatrix::from_triplets(n, n, &tri2);
            // Same pattern by construction.
            prop_check!(a1.row_indices() == a2.row_indices(), "pattern drifted");

            let mut lu = SparseLu::factor_symbolic(&a1).unwrap();
            match lu.refactor(&a2) {
                Ok(()) => {
                    // A successful replay must be bitwise identical to a
                    // fresh factorization of the same matrix.
                    let fresh = SparseLu::factor(&a2).unwrap();
                    let xr = lu.solve(b).unwrap();
                    let xf = fresh.solve(b).unwrap();
                    for (r, f) in xr.iter().zip(xf.iter()) {
                        prop_check!(r.to_bits() == f.to_bits(), "refactor {r:e} != fresh {f:e}");
                    }
                }
                Err(_) => {
                    // Rejection (pivot drift under the random scaling) is
                    // legitimate — the caller falls back to a fresh
                    // factorization, which must itself succeed.
                    let x = SparseLu::factor(&a2).unwrap().solve(b).unwrap();
                    let r = a2.mat_vec(&x);
                    for (ri, bi) in r.iter().zip(b.iter()) {
                        prop_check!((ri - bi).abs() < 1e-8, "fallback residual {ri} vs {bi}");
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn min_degree_always_returns_a_permutation() {
    check(
        "min degree always returns a permutation",
        &Config::default(),
        |d| {
            let n = d.usize_in(1, 40);
            let tri = d.vec_of(0, 4 * n, |d| {
                (d.usize_in(0, n - 1), d.usize_in(0, n - 1), 1.0)
            });
            (n, tri)
        },
        |(n, tri)| {
            // Pattern only — values are irrelevant to the ordering, but
            // every column needs a diagonal so the matrix is factorable
            // in principle (the ordering itself doesn't require it).
            let mut tri = tri.clone();
            for i in 0..*n {
                tri.push((i, i, 1.0));
            }
            let a = CscMatrix::from_triplets(*n, *n, &tri);
            let q = min_degree(&a);
            prop_check!(q.len() == *n, "length {} != {n}", q.len());
            let mut seen = vec![false; *n];
            for &c in &q {
                prop_check!(c < *n, "column {c} out of range");
                prop_check!(!seen[c], "column {c} repeated");
                seen[c] = true;
            }
            Ok(())
        },
    );
}

#[test]
fn ordered_sparse_lu_matches_dense_lu() {
    check(
        "ordered sparse LU matches dense LU",
        &Config::default(),
        |d| dominant_system(d, 24),
        |(tri, b)| {
            let n = b.len();
            let a_sparse = CscMatrix::from_triplets(n, n, tri);
            let mut a_dense = DenseMatrix::zeros(n, n);
            for &(r, c, v) in tri {
                a_dense.add(r, c, v);
            }
            let q = min_degree(&a_sparse);
            let xs = SparseLu::factor_symbolic_with_order(&a_sparse, &q)
                .unwrap()
                .solve(b)
                .unwrap();
            let xd = DenseLu::factor(a_dense).unwrap().solve(b).unwrap();
            for (s, d) in xs.iter().zip(xd.iter()) {
                prop_check!((s - d).abs() < 1e-8, "ordered sparse {s} vs dense {d}");
            }
            Ok(())
        },
    );
}

#[test]
fn ordering_never_worsens_fill_on_grid_laplacians() {
    check(
        "ordering never worsens fill on grid laplacians",
        &Config::default(),
        |d| (d.usize_in(2, 12), d.usize_in(2, 12)),
        |&(rows, cols)| {
            // 5-point Laplacian on a rows × cols grid — the canonical
            // fill-reduction benchmark (natural order is the worst-case
            // banded elimination; minimum degree must never lose to it).
            let n = rows * cols;
            let mut tri = Vec::new();
            for r in 0..rows {
                for c in 0..cols {
                    let i = r * cols + c;
                    tri.push((i, i, 4.0));
                    if c + 1 < cols {
                        tri.push((i, i + 1, -1.0));
                        tri.push((i + 1, i, -1.0));
                    }
                    if r + 1 < rows {
                        tri.push((i, i + cols, -1.0));
                        tri.push((i + cols, i, -1.0));
                    }
                }
            }
            let a = CscMatrix::from_triplets(n, n, &tri);
            let natural = SparseLu::factor_symbolic(&a).unwrap();
            let q = min_degree(&a);
            let ordered = SparseLu::factor_symbolic_with_order(&a, &q).unwrap();
            prop_check!(
                ordered.factor_nnz() <= natural.factor_nnz(),
                "{rows}x{cols} grid: ordered fill {} > natural {}",
                ordered.factor_nnz(),
                natural.factor_nnz()
            );
            Ok(())
        },
    );
}

#[test]
fn dense_solve_roundtrip() {
    check(
        "dense solve roundtrip",
        &Config::default(),
        |d| d.vec_of(2, 12, |d| d.f64_in(-5.0, 5.0)),
        |x_true| {
            let n = x_true.len();
            let mut a = DenseMatrix::zeros(n, n);
            // A fixed well-conditioned pattern.
            for i in 0..n {
                a.set(i, i, 3.0);
                if i + 1 < n {
                    a.set(i, i + 1, -1.0);
                    a.set(i + 1, i, 1.0);
                }
            }
            let b = a.mat_vec(x_true);
            let x = a.solve(&b).unwrap();
            for (xi, ti) in x.iter().zip(x_true.iter()) {
                prop_check!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
            }
            Ok(())
        },
    );
}

#[test]
fn polynomial_fit_recovers_exact_coefficients() {
    check(
        "polynomial fit recovers exact coefficients",
        &Config::default(),
        |d| d.vec_of(1, 5, |d| d.f64_in(-3.0, 3.0)),
        |coeffs| {
            let truth = Polynomial::new(coeffs.clone());
            let deg = coeffs.len() - 1;
            let xs: Vec<f64> = (0..(deg + 4))
                .map(|k| -1.0 + 2.0 * k as f64 / (deg + 3) as f64)
                .collect();
            let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
            let fit = Polynomial::fit(&xs, &ys, deg).unwrap();
            for (c, t) in fit.coeffs().iter().zip(truth.coeffs()) {
                prop_check!((c - t).abs() < 1e-6, "{c} vs {t}");
            }
            Ok(())
        },
    );
}

#[test]
fn horner_matches_naive() {
    check(
        "horner matches naive evaluation",
        &Config::default(),
        |d| (d.vec_of(0, 6, |d| d.f64_in(-2.0, 2.0)), d.f64_in(-2.0, 2.0)),
        |(coeffs, x)| {
            let p = Polynomial::new(coeffs.clone());
            let naive: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32))
                .sum();
            prop_check!((p.eval(*x) - naive).abs() < 1e-10, "horner vs naive at {x}");
            Ok(())
        },
    );
}

#[test]
fn pwl_eval_is_bounded_by_breakpoints() {
    check(
        "pwl eval is bounded by breakpoints",
        &Config::default(),
        |d| {
            (
                d.vec_of(2, 10, |d| d.f64_in(-4.0, 4.0)),
                d.f64_in(-1.0, 11.0),
            )
        },
        |(ys, t)| {
            let pts: Vec<(f64, f64)> = ys.iter().enumerate().map(|(k, &y)| (k as f64, y)).collect();
            let pwl = PiecewiseLinear::new(pts).unwrap();
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let v = pwl.eval(*t);
            prop_check!(
                v >= lo - 1e-12 && v <= hi + 1e-12,
                "{v} outside [{lo}, {hi}]"
            );
            Ok(())
        },
    );
}

#[test]
fn trapezoid_is_exact_for_linear() {
    check(
        "trapezoid is exact for linear",
        &Config::default(),
        |d| (d.f64_in(-3.0, 3.0), d.f64_in(-3.0, 3.0)),
        |&(a, b)| {
            let xs: Vec<f64> = (0..7).map(|k| k as f64 * 0.5).collect();
            let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
            let span = *xs.last().unwrap();
            let exact = a * span * span / 2.0 + b * span;
            prop_check!(
                (trapezoid(&xs, &ys) - exact).abs() < 1e-10,
                "trapezoid vs exact {exact}"
            );
            Ok(())
        },
    );
}

#[test]
fn summary_orders_min_mean_max() {
    check(
        "summary orders min mean max",
        &Config::default(),
        |d| d.vec_of(1, 50, |d| d.f64_in(-100.0, 100.0)),
        |xs| {
            let s = Summary::of(xs).unwrap();
            prop_check!(s.min <= s.mean + 1e-12, "min > mean");
            prop_check!(s.mean <= s.max + 1e-12, "mean > max");
            prop_check!(s.std_dev >= 0.0, "negative std dev");
            Ok(())
        },
    );
}

#[test]
fn quantile_is_monotone() {
    check(
        "quantile is monotone",
        &Config::default(),
        |d| {
            (
                d.vec_of(1, 30, |d| d.f64_in(-10.0, 10.0)),
                d.f64_in(0.0, 1.0),
                d.f64_in(0.0, 1.0),
            )
        },
        |(xs, q1, q2)| {
            let (lo, hi) = if q1 <= q2 { (*q1, *q2) } else { (*q2, *q1) };
            let vlo = quantile(xs, lo).unwrap();
            let vhi = quantile(xs, hi).unwrap();
            prop_check!(vlo <= vhi + 1e-12, "quantile({lo}) > quantile({hi})");
            Ok(())
        },
    );
}

#[test]
fn brent_and_bisect_agree() {
    check(
        "brent and bisect agree",
        &Config::default(),
        |d| d.f64_in(-0.9, 0.9),
        |&root| {
            // Strictly increasing cubic with a known root.
            let f = |x: f64| (x - root) * (1.0 + (x - root) * (x - root));
            let rb = bisect(f, -1.0, 1.0, 1e-12, 300).unwrap();
            let rr = brent(f, -1.0, 1.0, 1e-12, 300).unwrap();
            prop_check!((rb - root).abs() < 1e-9, "bisect {rb} vs {root}");
            prop_check!((rr - root).abs() < 1e-9, "brent {rr} vs {root}");
            Ok(())
        },
    );
}

#[test]
fn complex_field_properties() {
    check(
        "complex field properties",
        &Config::default(),
        |d| {
            (
                d.f64_in(-3.0, 3.0),
                d.f64_in(-3.0, 3.0),
                d.f64_in(-3.0, 3.0),
                d.f64_in(-3.0, 3.0),
            )
        },
        |&(ar, ai, br, bi)| {
            let a = Complex::new(ar, ai);
            let b = Complex::new(br, bi);
            if b.abs() <= 1e-3 {
                return Ok(()); // division too ill-conditioned to test
            }
            let q = (a * b) / b;
            prop_check!((q - a).abs() < 1e-9, "(a·b)/b != a");
            prop_check!(
                ((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9,
                "|a·b| != |a||b|"
            );
            Ok(())
        },
    );
}
