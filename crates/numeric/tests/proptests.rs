//! Property-based tests of the numerical kernels.

#![cfg(feature = "proptest")]
// Gated out of the default (offline) build: the external `proptest`
// crate cannot be fetched without registry access. Vendor it and
// enable the `proptest` feature to run these.

use proptest::prelude::*;

use nemscmos_numeric::complex::Complex;
use nemscmos_numeric::dense::{DenseLu, DenseMatrix};
use nemscmos_numeric::interp::{trapezoid, PiecewiseLinear};
use nemscmos_numeric::poly::Polynomial;
use nemscmos_numeric::roots::{bisect, brent};
use nemscmos_numeric::sparse::{CscMatrix, SparseLu};
use nemscmos_numeric::stats::{quantile, Summary};

/// Strategy: a random diagonally dominant matrix as triplets, with a
/// random right-hand side.
fn dominant_system(n: usize) -> impl Strategy<Value = (Vec<(usize, usize, f64)>, Vec<f64>)> {
    let offdiag = proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..(3 * n));
    let rhs = proptest::collection::vec(-10.0f64..10.0, n);
    (offdiag, rhs).prop_map(move |(mut tri, rhs)| {
        // Strong diagonal makes the system nonsingular regardless of the
        // random off-diagonal content.
        for i in 0..n {
            tri.push((i, i, 8.0 + i as f64 * 0.1));
        }
        (tri, rhs)
    })
}

proptest! {
    #[test]
    fn sparse_lu_matches_dense_lu((tri, b) in dominant_system(24)) {
        let n = b.len();
        let a_sparse = CscMatrix::from_triplets(n, n, &tri);
        let mut a_dense = DenseMatrix::zeros(n, n);
        for &(r, c, v) in &tri {
            a_dense.add(r, c, v);
        }
        let xs = SparseLu::factor(&a_sparse).unwrap().solve(&b).unwrap();
        let xd = DenseLu::factor(a_dense).unwrap().solve(&b).unwrap();
        for (s, d) in xs.iter().zip(xd.iter()) {
            prop_assert!((s - d).abs() < 1e-8, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn sparse_solve_has_small_residual((tri, b) in dominant_system(40)) {
        let n = b.len();
        let a = CscMatrix::from_triplets(n, n, &tri);
        let x = SparseLu::factor(&a).unwrap().solve(&b).unwrap();
        let r = a.mat_vec(&x);
        for (ri, bi) in r.iter().zip(b.iter()) {
            prop_assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_solve_roundtrip(x_true in proptest::collection::vec(-5.0f64..5.0, 2..12)) {
        let n = x_true.len();
        let mut a = DenseMatrix::zeros(n, n);
        // A fixed well-conditioned pattern.
        for i in 0..n {
            a.set(i, i, 3.0);
            if i + 1 < n {
                a.set(i, i + 1, -1.0);
                a.set(i + 1, i, 1.0);
            }
        }
        let b = a.mat_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            prop_assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn polynomial_fit_recovers_exact_coefficients(
        coeffs in proptest::collection::vec(-3.0f64..3.0, 1..5)
    ) {
        let truth = Polynomial::new(coeffs.clone());
        let deg = coeffs.len() - 1;
        let xs: Vec<f64> = (0..(deg + 4)).map(|k| -1.0 + 2.0 * k as f64 / (deg + 3) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fit = Polynomial::fit(&xs, &ys, deg).unwrap();
        for (c, t) in fit.coeffs().iter().zip(truth.coeffs()) {
            prop_assert!((c - t).abs() < 1e-6, "{c} vs {t}");
        }
    }

    #[test]
    fn horner_matches_naive(coeffs in proptest::collection::vec(-2.0f64..2.0, 0..6), x in -2.0f64..2.0) {
        let p = Polynomial::new(coeffs.clone());
        let naive: f64 = coeffs.iter().enumerate().map(|(k, &c)| c * x.powi(k as i32)).sum();
        prop_assert!((p.eval(x) - naive).abs() < 1e-10);
    }

    #[test]
    fn pwl_eval_is_bounded_by_breakpoints(
        ys in proptest::collection::vec(-4.0f64..4.0, 2..10),
        t in -1.0f64..11.0
    ) {
        let pts: Vec<(f64, f64)> = ys.iter().enumerate().map(|(k, &y)| (k as f64, y)).collect();
        let pwl = PiecewiseLinear::new(pts).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = pwl.eval(t);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn trapezoid_is_exact_for_linear(a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let xs: Vec<f64> = (0..7).map(|k| k as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        let span = *xs.last().unwrap();
        let exact = a * span * span / 2.0 + b * span;
        prop_assert!((trapezoid(&xs, &ys) - exact).abs() < 1e-10);
    }

    #[test]
    fn summary_orders_min_mean_max(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.mean + 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn quantile_is_monotone(xs in proptest::collection::vec(-10.0f64..10.0, 1..30), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let vlo = quantile(&xs, lo).unwrap();
        let vhi = quantile(&xs, hi).unwrap();
        prop_assert!(vlo <= vhi + 1e-12);
    }

    #[test]
    fn brent_and_bisect_agree(root in -0.9f64..0.9) {
        // Strictly increasing cubic with a known root.
        let f = |x: f64| (x - root) * (1.0 + (x - root) * (x - root));
        let rb = bisect(f, -1.0, 1.0, 1e-12, 300).unwrap();
        let rr = brent(f, -1.0, 1.0, 1e-12, 300).unwrap();
        prop_assert!((rb - root).abs() < 1e-9);
        prop_assert!((rr - root).abs() < 1e-9);
    }

    #[test]
    fn complex_field_properties(ar in -3.0f64..3.0, ai in -3.0f64..3.0, br in -3.0f64..3.0, bi in -3.0f64..3.0) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        prop_assume!(b.abs() > 1e-3);
        let q = (a * b) / b;
        prop_assert!((q - a).abs() < 1e-9);
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }
}
