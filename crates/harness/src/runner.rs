//! Job specification and the orchestrating [`Runner`].
//!
//! A [`JobSpec`] names a job and carries its *spec string* — the
//! canonical rendering of everything that determines the result. The
//! [`Runner`] executes a batch of specs across the work-stealing pool,
//! consulting the content-addressed cache first and escalating through
//! the retry ladder on non-convergence, and publishes a [`RunReport`]
//! with per-job telemetry.
//!
//! Two supervision layers ride on top:
//!
//! * [`Runner::with_supervision`] installs a per-job
//!   [`Budget`](nemscmos_spice::budget::Budget) (deadline, iteration
//!   caps) around each job's whole retry ladder, and — when a stall
//!   timeout is configured — spawns a per-batch
//!   [`Watchdog`](crate::watchdog::Watchdog) that cancels jobs whose
//!   heartbeat stops progressing. Interrupted jobs fail with typed
//!   [`SpiceError`](nemscmos_spice::SpiceError) interrupts carrying
//!   partial telemetry; the rest of the batch keeps running.
//! * [`Runner::with_journal`] / [`Runner::resume`] make batches
//!   crash-safe: every completed job is fsync'd to an append-only
//!   [`Journal`](crate::journal::Journal), and a resumed run re-executes
//!   only the jobs that never landed — bitwise-identically, thanks to
//!   deterministic per-spec seeding.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use nemscmos_spice::budget::{self, InterruptFlag};
use nemscmos_spice::faults::{self, FaultPlan};
use nemscmos_spice::stats::{self, Heartbeat};

use crate::cache::{content_digest, spec_seed, Cache};
use crate::journal::Journal;
use crate::json::JsonCodec;
use crate::report::{self, JobOutcome, JobRecord, RunReport};
use crate::retry::{run_with_retries, Attempt, RetryPolicy, Rung};
use crate::watchdog::{Supervision, Watchdog};
use crate::{pool, HarnessError};

/// A fully-specified unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Short human-readable name (report rows).
    pub name: String,
    /// Canonical spec string: everything that influences the result —
    /// circuit configuration, solver options, trial counts, seed inputs.
    /// Equal spec strings ⇒ equal results (that is the cache contract).
    pub spec: String,
}

impl JobSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, spec: impl Into<String>) -> JobSpec {
        JobSpec {
            name: name.into(),
            spec: spec.into(),
        }
    }

    /// Content digest of the spec string (the cache key).
    pub fn digest(&self) -> String {
        content_digest(&self.spec)
    }

    /// Deterministic master seed derived from the spec string.
    pub fn seed(&self) -> u64 {
        spec_seed(&self.spec)
    }
}

/// Produces the fault plan (if any) to install around one job's full
/// retry ladder. Used by soak tests to exercise the degradation
/// contract; `None` per job means that job runs clean.
pub type FaultSource = Box<dyn Fn(usize, &JobSpec) -> Option<FaultPlan> + Send + Sync>;

/// Experiment orchestrator: pool + cache + retry ladder + telemetry.
pub struct Runner {
    threads: usize,
    cache: Option<Cache>,
    policy: RetryPolicy,
    fault_source: Option<FaultSource>,
    supervision: Supervision,
    journal: Option<Journal>,
}

impl fmt::Debug for Runner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runner")
            .field("threads", &self.threads)
            .field("cache", &self.cache)
            .field("policy", &self.policy)
            .field(
                "fault_source",
                &self.fault_source.as_ref().map(|_| "<fault source>"),
            )
            .field("supervision", &self.supervision)
            .field("journal", &self.journal.as_ref().map(Journal::run_id))
            .finish()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

impl Runner {
    /// A runner configured from the environment:
    ///
    /// - `NEMSCMOS_HARNESS_THREADS=n` — worker count (default: available
    ///   parallelism);
    /// - `NEMSCMOS_HARNESS_CACHE=off|0` — disable the result cache;
    /// - `NEMSCMOS_HARNESS_CACHE_DIR=path` — cache location (default
    ///   `target/harness-cache`);
    /// - `NEMSCMOS_HARNESS_DEADLINE_MS=n` / `NEMSCMOS_HARNESS_STALL_MS=n`
    ///   — per-job deadline and stall timeout (see
    ///   [`Supervision::from_env`]).
    ///
    /// # Panics
    ///
    /// On malformed supervision knobs (a set-but-garbage `*_MS` value):
    /// fail-fast with the typed [`HarnessError::Config`] message rather
    /// than silently running unsupervised. Services that prefer a
    /// recoverable error call [`Supervision::from_env`] themselves.
    pub fn from_env() -> Runner {
        let cache_off = std::env::var("NEMSCMOS_HARNESS_CACHE")
            .map(|v| v == "off" || v == "0")
            .unwrap_or(false);
        Runner {
            threads: pool::default_threads(),
            cache: (!cache_off).then(|| Cache::at(Cache::default_dir())),
            policy: RetryPolicy::default(),
            fault_source: None,
            supervision: Supervision::from_env()
                .unwrap_or_else(|e| panic!("harness refuses to start: {e}")),
            journal: None,
        }
    }

    /// The process-wide runner used by experiment modules (configured
    /// from the environment on first use).
    pub fn global() -> &'static Runner {
        static GLOBAL: OnceLock<Runner> = OnceLock::new();
        GLOBAL.get_or_init(Runner::from_env)
    }

    /// A runner with explicit settings (tests; custom tools).
    pub fn with_config(threads: usize, cache: Option<Cache>, policy: RetryPolicy) -> Runner {
        Runner {
            threads: threads.max(1),
            cache,
            policy,
            fault_source: None,
            supervision: Supervision::default(),
            journal: None,
        }
    }

    /// Installs a per-job [`Supervision`] policy: each job runs under a
    /// budget covering its whole retry ladder; when a stall timeout is
    /// set, a per-batch watchdog additionally cancels jobs whose
    /// heartbeat progress stops.
    #[must_use]
    pub fn with_supervision(mut self, supervision: Supervision) -> Runner {
        self.supervision = supervision;
        self
    }

    /// Attaches a crash-safe run journal named `run_id` (stored next to
    /// the result cache): every completed job is fsync'd to
    /// `journal-<run_id>.jsonl` before the batch moves on. Re-opening an
    /// existing journal replays it — jobs a previous invocation of the
    /// run already completed are served from the journal instead of
    /// re-executing.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Cache`] when `run_id` is not filesystem-safe or
    /// the journal file cannot be created.
    pub fn with_journal(mut self, run_id: &str) -> Result<Runner, HarnessError> {
        let dir = self
            .cache
            .as_ref()
            .map(|c| c.dir().to_path_buf())
            .unwrap_or_else(Cache::default_dir);
        self.journal = Some(Journal::open(dir, run_id)?);
        Ok(self)
    }

    /// An environment-configured runner resuming run `run_id`: jobs the
    /// killed or deadline-aborted previous invocation journaled are
    /// recovered without re-execution; only unfinished jobs run. With
    /// deterministic per-spec seeding the combined results are bitwise
    /// identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Cache`] when the journal cannot be opened.
    pub fn resume(run_id: &str) -> Result<Runner, HarnessError> {
        Runner::from_env().with_journal(run_id)
    }

    /// Installs a fault source: before each job, it is asked for a
    /// [`FaultPlan`] to arm around that job's entire retry ladder
    /// (soak/chaos testing). Faulted jobs bypass the result cache in
    /// both directions so injected failures can never poison cached
    /// artifacts or be masked by a prior clean run.
    #[must_use]
    pub fn with_fault_source(mut self, source: FaultSource) -> Runner {
        self.fault_source = Some(source);
        self
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The cache, if enabled.
    pub fn cache(&self) -> Option<&Cache> {
        self.cache.as_ref()
    }

    /// The supervision policy (inert by default).
    pub fn supervision(&self) -> &Supervision {
        &self.supervision
    }

    /// The run journal, if one is attached.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Runs `jobs` through cache → retry ladder → pool, returning results
    /// in job order and the telemetry report.
    ///
    /// `f` computes one job; it receives the job's index into `jobs` (so
    /// callers can index a parallel parameter array) and the current
    /// [`Attempt`] (rung already installed as the thread's solver
    /// profile, master seed derived from the spec string).
    ///
    /// # Errors
    ///
    /// The first job error in job order; telemetry for all jobs that ran
    /// is still published to the report sink.
    pub fn run<T, F>(&self, title: &str, jobs: &[JobSpec], f: F) -> Result<Vec<T>, HarnessError>
    where
        T: JsonCodec + Send,
        F: Fn(usize, &Attempt) -> Result<T, HarnessError> + Sync,
    {
        let (results, report) = self.run_collect(title, jobs, f);
        report::publish(report);
        results.into_iter().collect()
    }

    /// Like [`Runner::run`], but returns per-job results and the report
    /// directly instead of publishing to the global sink.
    pub fn run_collect<T, F>(
        &self,
        title: &str,
        jobs: &[JobSpec],
        f: F,
    ) -> (Vec<Result<T, HarnessError>>, RunReport)
    where
        T: JsonCodec + Send,
        F: Fn(usize, &Attempt) -> Result<T, HarnessError> + Sync,
    {
        let batch_started = Instant::now();
        let quarantined_before = self.cache.as_ref().map_or(0, Cache::quarantined);
        let watchdog = self
            .supervision
            .needs_watchdog()
            .then(|| Watchdog::spawn(&self.supervision));
        let slots = pool::try_parallel_map(self.threads, jobs.len(), |i| {
            self.run_one(i, &jobs[i], &f, watchdog.as_ref())
        });
        drop(watchdog); // stop and join the scanner before reporting
        let mut report = RunReport::new(title);
        report.batch_wall = batch_started.elapsed();
        report.torn = self.journal.as_ref().map_or(0, |j| j.torn() as u64);
        report.quarantined = self
            .cache
            .as_ref()
            .map_or(0, Cache::quarantined)
            .saturating_sub(quarantined_before);
        let mut results = Vec::with_capacity(jobs.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Ok((result, record)) => {
                    report.jobs.push(record);
                    results.push(result);
                }
                // A panic that escaped the per-job body guard (e.g. a
                // panicking `to_json` during the cache store) — degrade
                // to a per-job record instead of aborting the batch.
                Err(payload) => {
                    let message = pool::panic_message(&*payload);
                    report.jobs.push(JobRecord {
                        name: jobs[i].name.clone(),
                        digest: jobs[i].digest(),
                        cached: false,
                        resumed: false,
                        rung: Rung::Direct,
                        attempts: 0,
                        outcome: JobOutcome::Panicked {
                            message: message.clone(),
                        },
                        stats: Default::default(),
                        wall: Duration::ZERO,
                        deadline_margin: None,
                    });
                    results.push(Err(HarnessError::Panicked(message)));
                }
            }
        }
        (results, report)
    }

    /// Executes a single job: journal probe (resumed runs), cache probe,
    /// then the retry ladder under the job's budget and fault plan (if
    /// any), then a best-effort cache store and journal append. A
    /// panicking job body is caught here and degraded to
    /// [`HarnessError::Panicked`] so one buggy job cannot take down the
    /// batch.
    fn run_one<T, F>(
        &self,
        index: usize,
        job: &JobSpec,
        f: &F,
        watchdog: Option<&Watchdog>,
    ) -> (Result<T, HarnessError>, JobRecord)
    where
        T: JsonCodec,
        F: Fn(usize, &Attempt) -> Result<T, HarnessError>,
    {
        let digest = job.digest();
        let started = Instant::now();
        let plan = self.fault_source.as_ref().and_then(|s| s(index, job));

        // Faulted jobs bypass the journal and the cache entirely: a
        // stored clean result would mask the injected fault, and a
        // fault-perturbed result must never become the spec's canonical
        // artifact.
        if plan.is_none() {
            // Journal first: a previous invocation of this run already
            // completed the job — recover it without re-execution.
            if let Some(journal) = &self.journal {
                if let Some(value) = journal.lookup(&digest, &job.spec) {
                    if let Some(decoded) = T::from_json(&value) {
                        let record = JobRecord {
                            name: job.name.clone(),
                            digest,
                            cached: false,
                            resumed: true,
                            rung: Rung::Direct,
                            attempts: 0,
                            outcome: JobOutcome::Ok,
                            stats: Default::default(),
                            wall: started.elapsed(),
                            deadline_margin: None,
                        };
                        return (Ok(decoded), record);
                    }
                }
            }
            if let Some(cache) = &self.cache {
                if let Some(value) = cache.load(&digest, &job.spec) {
                    if let Some(decoded) = T::from_json(&value) {
                        let record = JobRecord {
                            name: job.name.clone(),
                            digest,
                            cached: true,
                            resumed: false,
                            rung: Rung::Direct,
                            attempts: 0,
                            outcome: JobOutcome::Ok,
                            stats: Default::default(),
                            wall: started.elapsed(),
                            deadline_margin: None,
                        };
                        return (Ok(decoded), record);
                    }
                    // Decodable JSON of the wrong shape: stale codec —
                    // fall through and recompute.
                }
            }
        }

        // Supervised jobs run under a budget wired to a fresh interrupt
        // flag and heartbeat; the watchdog (if any) watches the pair and
        // expires the flag on a progress stall. The guard unregisters on
        // every exit path, including panics.
        let mut watch_guard = None;
        let job_budget = if self.supervision.is_inert() {
            None
        } else {
            let flag = InterruptFlag::new();
            let heartbeat = Arc::new(Heartbeat::new());
            if let Some(dog) = watchdog {
                watch_guard = Some(dog.register(index, flag.clone(), Arc::clone(&heartbeat)));
            }
            Some(self.supervision.budget(flag, heartbeat))
        };

        let before = stats::snapshot();
        // The plan and the budget wrap the *whole* ladder, so fault
        // trigger counters persist across rungs and the deadline covers
        // every rescue attempt, not each one separately.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            budget::with_opt(job_budget, || {
                faults::with_opt(plan, || {
                    run_with_retries(self.policy, job.seed(), |attempt| f(index, attempt))
                })
            })
        }))
        .unwrap_or_else(|payload| Err(HarnessError::Panicked(pool::panic_message(&*payload))));
        drop(watch_guard);
        let spent = stats::snapshot().delta_since(&before);
        let wall = started.elapsed();
        let deadline_margin = self
            .supervision
            .deadline
            .map(|d| d.as_secs_f64() - wall.as_secs_f64());

        match outcome {
            Ok((value, rung, attempts)) => {
                if plan.is_none() && (self.cache.is_some() || self.journal.is_some()) {
                    // Store failures are non-fatal: the result is still
                    // correct, a later run just recomputes.
                    let artifact = value.to_json();
                    if let Some(cache) = &self.cache {
                        let _ = cache.store(&digest, &job.spec, &artifact);
                    }
                    if let Some(journal) = &self.journal {
                        let _ = journal.record(&job.name, &digest, &job.spec, &artifact);
                    }
                }
                let record = JobRecord {
                    name: job.name.clone(),
                    digest,
                    cached: false,
                    resumed: false,
                    rung,
                    attempts,
                    outcome: if attempts > 1 {
                        JobOutcome::Recovered(rung)
                    } else {
                        JobOutcome::Ok
                    },
                    stats: spent,
                    wall,
                    deadline_margin,
                };
                (Ok(value), record)
            }
            Err(e) => {
                let outcome = match &e {
                    HarnessError::Panicked(message) => JobOutcome::Panicked {
                        message: message.clone(),
                    },
                    other => JobOutcome::Failed {
                        kind: other.kind(),
                        message: other.to_string(),
                    },
                };
                let record = JobRecord {
                    name: job.name.clone(),
                    digest,
                    cached: false,
                    resumed: false,
                    rung: self.policy.max_rung,
                    attempts: Rung::ALL
                        .iter()
                        .filter(|r| **r <= self.policy.max_rung)
                        .count() as u32,
                    outcome,
                    stats: spent,
                    wall,
                    deadline_margin,
                };
                (Err(e), record)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_cache(tag: &str) -> Cache {
        let dir =
            std::env::temp_dir().join(format!("nemscmos-runner-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::at(dir)
    }

    #[test]
    fn results_are_in_job_order_and_cached_second_time() {
        let cache = scratch_cache("order");
        let dir = cache.dir().to_path_buf();
        let runner = Runner::with_config(4, Some(cache), RetryPolicy::default());
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec::new(format!("j{i}"), format!("runner-order item={i}")))
            .collect();

        let (results, report) = runner.run_collect("first", &jobs, |i, a| {
            Ok(i as f64 * 2.0 + (a.seed % 2) as f64 * 0.0)
        });
        let first: Vec<f64> = results.into_iter().map(Result::unwrap).collect();
        assert_eq!(
            first,
            (0..12).map(|i| f64::from(i) * 2.0).collect::<Vec<_>>()
        );
        assert_eq!(report.cache_hits(), 0);

        let (results, report) = runner.run_collect(
            "second",
            &jobs,
            |_: usize, _: &Attempt| -> Result<f64, HarnessError> {
                panic!("must be served from cache")
            },
        );
        let second: Vec<f64> = results.into_iter().map(Result::<f64, _>::unwrap).collect();
        assert_eq!(second, first);
        assert_eq!(report.cache_hits(), 12);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn retry_rung_is_recorded_in_report() {
        let runner = Runner::with_config(1, None, RetryPolicy::default());
        let jobs = [JobSpec::new("stiff", "runner-retry stiff-case")];
        let (results, report) = runner.run_collect("retry", &jobs, |_, a| {
            if a.rung < Rung::TightGmin {
                Err(HarnessError::NonConvergence("first pass fails".into()))
            } else {
                Ok(1.0)
            }
        });
        assert_eq!(results.into_iter().next().unwrap().unwrap(), 1.0);
        assert_eq!(report.jobs[0].rung, Rung::TightGmin);
        assert_eq!(report.jobs[0].attempts, 2);
        assert_eq!(report.retried_jobs(), 1);
    }

    #[test]
    fn job_errors_surface_but_other_jobs_complete() {
        let runner = Runner::with_config(2, None, RetryPolicy::default());
        let jobs = [
            JobSpec::new("good", "runner-err good"),
            JobSpec::new("bad", "runner-err bad"),
        ];
        let (results, report) = runner.run_collect("mixed", &jobs, |i, _| {
            if jobs[i].name == "bad" {
                Err(HarnessError::Failed("broken".into()))
            } else {
                Ok(5.0)
            }
        });
        assert!(results[0].as_ref().is_ok_and(|v| *v == 5.0));
        assert!(results[1].is_err());
        assert_eq!(report.jobs.len(), 2);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let runner = Runner::with_config(1, None, RetryPolicy::default());
        let jobs = [JobSpec::new("j", "runner-nocache j")];
        let mut calls = std::sync::atomic::AtomicUsize::new(0);
        for _ in 0..2 {
            let (results, report) = runner.run_collect("nocache", &jobs, |_, _| {
                calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(0.0)
            });
            assert!(results[0].is_ok());
            assert_eq!(report.cache_hits(), 0);
        }
        assert_eq!(*calls.get_mut(), 2);
    }

    #[test]
    fn seeds_differ_across_specs_but_not_across_runs() {
        let a = JobSpec::new("a", "seed-test a");
        let b = JobSpec::new("b", "seed-test b");
        assert_eq!(a.seed(), JobSpec::new("a2", "seed-test a").seed());
        assert_ne!(a.seed(), b.seed());
        assert_eq!(a.digest().len(), 32);
    }
}
