//! Per-job telemetry records and aggregated run reports.
//!
//! Every job the [`Runner`](crate::runner::Runner) executes produces a
//! [`JobRecord`]: where the result came from (cache or compute), which
//! retry rung finally converged, and the solver counters the job spent.
//! Records are grouped into a [`RunReport`] per experiment; reports can
//! be rendered as an aligned text table and are also published to a
//! process-global sink so binaries can drain and print them after an
//! experiment module returns only its domain results.

use std::sync::Mutex;
use std::time::Duration;

use nemscmos_spice::stats::SolverStats;

use crate::retry::Rung;
use crate::FailureKind;

/// How a job ended — the degradation contract made visible: a job either
/// succeeds outright, is rescued by the retry ladder, fails with a typed
/// diagnostic, or panics (caught at the harness boundary, never aborting
/// the batch).
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// First attempt (or cache hit) succeeded.
    Ok,
    /// A retry rung rescued the job after at least one failed attempt.
    Recovered(Rung),
    /// All applicable attempts failed; classified for the taxonomy.
    Failed {
        /// Coarse failure class.
        kind: FailureKind,
        /// The final error's display string.
        message: String,
    },
    /// The job body panicked; the payload message was captured.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl JobOutcome {
    /// Short display label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Ok => "ok",
            JobOutcome::Recovered(_) => "recovered",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::Panicked { .. } => "panic",
        }
    }

    /// Whether the job produced no result.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            JobOutcome::Failed { .. } | JobOutcome::Panicked { .. }
        )
    }

    /// The taxonomy class, if this outcome is a failure.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match self {
            JobOutcome::Failed { kind, .. } => Some(*kind),
            JobOutcome::Panicked { .. } => Some(FailureKind::Panic),
            _ => None,
        }
    }
}

/// Telemetry for one executed (or cache-served) job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Human-readable job name (also the first token of the spec).
    pub name: String,
    /// Content digest of the job spec (32 hex chars).
    pub digest: String,
    /// Whether the result was served from the cache.
    pub cached: bool,
    /// Whether the result was recovered from a run journal during a
    /// [`Runner::resume`](crate::runner::Runner::resume) — the job was
    /// completed by an earlier (killed or deadline-aborted) invocation
    /// of the same run and was not re-executed.
    pub resumed: bool,
    /// The retry rung that produced the result (`Direct` for cache hits).
    pub rung: Rung,
    /// Number of ladder attempts (0 for cache hits).
    pub attempts: u32,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Solver counters spent by this job (zero for cache hits).
    pub stats: SolverStats,
    /// Wall-clock time for the job, including retries.
    pub wall: Duration,
    /// Seconds of per-job deadline left when the job finished (negative
    /// when the budget tripped). `None` when the run had no deadline.
    pub deadline_margin: Option<f64>,
}

/// Aggregated telemetry for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Report title (experiment name).
    pub title: String,
    /// Per-job records, in job order.
    pub jobs: Vec<JobRecord>,
    /// Wall-clock span of the whole batch (submit to last job done) —
    /// distinct from [`RunReport::total_wall`], which sums overlapping
    /// per-job times.
    pub batch_wall: Duration,
    /// Cache artifacts quarantined as corrupt while serving this run.
    pub quarantined: u64,
    /// Torn journal lines quarantined to `journal-<run-id>.jsonl.torn`
    /// while replaying this run's journal.
    pub torn: u64,
}

impl RunReport {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> RunReport {
        RunReport {
            title: title.into(),
            jobs: Vec::new(),
            batch_wall: Duration::ZERO,
            quarantined: 0,
            torn: 0,
        }
    }

    /// Number of jobs served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.cached).count()
    }

    /// Number of jobs that needed at least one retry.
    pub fn retried_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.attempts > 1).count()
    }

    /// Number of jobs that produced no result (failed or panicked).
    pub fn failed_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_failure()).count()
    }

    /// Number of jobs whose body panicked.
    pub fn panicked_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Panicked { .. }))
            .count()
    }

    /// Number of jobs recovered from a run journal (not re-executed).
    pub fn resumed_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.resumed).count()
    }

    /// Number of jobs cancelled cooperatively (user or supervisor).
    pub fn cancelled_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.outcome.failure_kind() == Some(FailureKind::Cancelled))
            .count()
    }

    /// Number of jobs stopped by a deadline, iteration cap, or the
    /// stall watchdog.
    pub fn deadline_exceeded_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.outcome.failure_kind() == Some(FailureKind::Deadline))
            .count()
    }

    /// Failure counts by class, most frequent first (ties by class
    /// order). Empty when every job produced a result.
    pub fn failure_taxonomy(&self) -> Vec<(FailureKind, usize)> {
        let mut counts: Vec<(FailureKind, usize)> = Vec::new();
        for j in &self.jobs {
            if let Some(kind) = j.outcome.failure_kind() {
                match counts.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((kind, 1)),
                }
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Sum of solver counters across all jobs.
    pub fn total_stats(&self) -> SolverStats {
        self.jobs
            .iter()
            .fold(SolverStats::default(), |acc, j| acc + j.stats)
    }

    /// Total wall time across jobs (sum, not span — jobs overlap when
    /// the pool is parallel).
    pub fn total_wall(&self) -> Duration {
        self.jobs.iter().map(|j| j.wall).sum()
    }

    /// Renders an aligned text table of the per-job telemetry plus a
    /// summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== harness report: {} ==\n", self.title));
        if self.jobs.is_empty() {
            out.push_str("(no jobs)\n");
            return out;
        }
        let name_w = self
            .jobs
            .iter()
            .map(|j| j.name.len())
            .chain(["job".len()])
            .max()
            .unwrap_or(3);
        let with_margin = self.jobs.iter().any(|j| j.deadline_margin.is_some());
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>8}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}  {:>9}",
            "job", "src", "rung", "outcome", "newton", "lu", "rej", "acc", "wall"
        ));
        if with_margin {
            out.push_str(&format!("  {:>9}", "margin"));
        }
        out.push('\n');
        for j in &self.jobs {
            let src = if j.resumed {
                "journal"
            } else if j.cached {
                "cache"
            } else {
                "solve"
            };
            out.push_str(&format!(
                "{:<name_w$}  {:>7}  {:>8}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8.1}ms",
                j.name,
                src,
                if j.cached || j.resumed {
                    "-"
                } else {
                    j.rung.label()
                },
                j.outcome.label(),
                j.stats.newton_iterations,
                j.stats.lu_factorizations,
                j.stats.step_rejections,
                j.stats.steps_accepted,
                j.wall.as_secs_f64() * 1e3,
            ));
            if with_margin {
                match j.deadline_margin {
                    Some(m) => out.push_str(&format!("  {:>+8.1}ms", m * 1e3)),
                    None => out.push_str(&format!("  {:>9}", "-")),
                }
            }
            out.push('\n');
        }
        let t = self.total_stats();
        out.push_str(&format!(
            "total: {} jobs ({} cached, {} retried, {} failed) | newton {} | \
             lu {} | rejected {} | accepted {} | nonconv {} | wall {:.1}ms\n",
            self.jobs.len(),
            self.cache_hits(),
            self.retried_jobs(),
            self.failed_jobs(),
            t.newton_iterations,
            t.lu_factorizations,
            t.step_rejections,
            t.steps_accepted,
            t.nonconvergence_events,
            self.total_wall().as_secs_f64() * 1e3,
        ));
        // Incremental linear-algebra telemetry, shown only when the fast
        // path actually engaged (legacy runs keep the old report shape).
        if t.slot_cache_hits + t.symbolic_reuses + t.refactor_fallbacks + t.bypass_solves > 0 {
            out.push_str(&format!(
                "fast path: slot-cache hits {} | symbolic reuses {} | refactor fallbacks {} | \
                 bypass solves {}\n",
                t.slot_cache_hits, t.symbolic_reuses, t.refactor_fallbacks, t.bypass_solves,
            ));
        }
        let (resumed, cancelled, deadlined) = (
            self.resumed_jobs(),
            self.cancelled_jobs(),
            self.deadline_exceeded_jobs(),
        );
        if !self.batch_wall.is_zero()
            || resumed + cancelled + deadlined > 0
            || self.quarantined + self.torn > 0
        {
            out.push_str(&format!(
                "supervision: batch wall {:.1}ms | resumed {resumed} | cancelled {cancelled} | \
                 deadline-exceeded {deadlined} | quarantined {} | torn {}\n",
                self.batch_wall.as_secs_f64() * 1e3,
                self.quarantined,
                self.torn,
            ));
        }
        let taxonomy = self.failure_taxonomy();
        if !taxonomy.is_empty() {
            let classes: Vec<String> = taxonomy
                .iter()
                .map(|(k, n)| format!("{} {n}", k.label()))
                .collect();
            out.push_str(&format!("failure taxonomy: {}\n", classes.join(" | ")));
            for j in self.jobs.iter().filter(|j| j.outcome.is_failure()) {
                let detail = match &j.outcome {
                    JobOutcome::Failed { message, .. } | JobOutcome::Panicked { message } => {
                        message.as_str()
                    }
                    _ => unreachable!("is_failure covers Failed | Panicked"),
                };
                out.push_str(&format!("  {}: {detail}\n", j.name));
            }
        }
        out
    }
}

/// Aggregates the supervision counters of several reports into one
/// summary line — binaries print this after draining the sink so a long
/// multi-experiment run ends with the batch wall time and the
/// resumed / cancelled / deadline-exceeded / quarantined totals in one
/// place.
pub fn supervision_totals(reports: &[RunReport]) -> String {
    let batch_wall: Duration = reports.iter().map(|r| r.batch_wall).sum();
    let sum = |f: fn(&RunReport) -> usize| reports.iter().map(f).sum::<usize>();
    format!(
        "supervision totals: {} run(s) | batch wall {:.1}ms | resumed {} | cancelled {} | \
         deadline-exceeded {} | quarantined {} | torn {}",
        reports.len(),
        batch_wall.as_secs_f64() * 1e3,
        sum(RunReport::resumed_jobs),
        sum(RunReport::cancelled_jobs),
        sum(RunReport::deadline_exceeded_jobs),
        reports.iter().map(|r| r.quarantined).sum::<u64>(),
        reports.iter().map(|r| r.torn).sum::<u64>(),
    )
}

/// Process-global report sink.
///
/// Experiment functions keep their domain-level signatures (returning
/// figures/summaries); the harness publishes the matching [`RunReport`]
/// here, and binaries drain and print after running the sweep.
static SINK: Mutex<Vec<RunReport>> = Mutex::new(Vec::new());

/// Publishes a report to the global sink.
pub fn publish(report: RunReport) {
    SINK.lock().expect("report sink poisoned").push(report);
}

/// Drains all published reports, oldest first.
pub fn drain() -> Vec<RunReport> {
    std::mem::take(&mut *SINK.lock().expect("report sink poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, cached: bool, newton: u64) -> JobRecord {
        JobRecord {
            name: name.into(),
            digest: "0".repeat(32),
            cached,
            resumed: false,
            rung: Rung::Direct,
            attempts: u32::from(!cached),
            outcome: JobOutcome::Ok,
            stats: SolverStats {
                newton_iterations: newton,
                ..Default::default()
            },
            wall: Duration::from_millis(2),
            deadline_margin: None,
        }
    }

    fn failed_record(name: &str, outcome: JobOutcome) -> JobRecord {
        JobRecord {
            outcome,
            ..record(name, false, 0)
        }
    }

    #[test]
    fn aggregates_counters_and_hits() {
        let mut r = RunReport::new("fig10");
        r.jobs.push(record("or2", false, 40));
        r.jobs.push(record("or4", true, 0));
        r.jobs.push(record("or8", false, 55));
        assert_eq!(r.cache_hits(), 1);
        assert_eq!(r.retried_jobs(), 0);
        assert_eq!(r.total_stats().newton_iterations, 95);
        assert_eq!(r.total_wall(), Duration::from_millis(6));
    }

    #[test]
    fn render_contains_rows_and_summary() {
        let mut r = RunReport::new("sweep");
        r.jobs.push(record("job-a", false, 12));
        r.jobs.push(record("job-b", true, 0));
        let text = r.render();
        assert!(text.contains("harness report: sweep"));
        assert!(text.contains("job-a"));
        assert!(text.contains("cache"));
        assert!(text.contains("solve"));
        assert!(text.contains("total: 2 jobs (1 cached, 0 retried, 0 failed)"));
        assert!(!text.contains("failure taxonomy"));
        // No fast-path counters in these records → no fast-path line.
        assert!(!text.contains("fast path:"));
    }

    #[test]
    fn render_shows_fast_path_line_when_engaged() {
        let mut r = RunReport::new("sweep");
        let mut j = record("job-a", false, 12);
        j.stats.slot_cache_hits = 10;
        j.stats.symbolic_reuses = 9;
        j.stats.refactor_fallbacks = 1;
        j.stats.bypass_solves = 4;
        r.jobs.push(j);
        let text = r.render();
        assert!(text.contains(
            "fast path: slot-cache hits 10 | symbolic reuses 9 | refactor fallbacks 1 | \
             bypass solves 4"
        ));
    }

    #[test]
    fn taxonomy_counts_and_orders_failure_classes() {
        let mut r = RunReport::new("soak");
        r.jobs.push(record("fine", false, 5));
        r.jobs.push(failed_record(
            "sing-1",
            JobOutcome::Failed {
                kind: FailureKind::Singular,
                message: "pivot collapsed".into(),
            },
        ));
        r.jobs.push(failed_record(
            "sing-2",
            JobOutcome::Failed {
                kind: FailureKind::Singular,
                message: "pivot collapsed again".into(),
            },
        ));
        r.jobs.push(failed_record(
            "boom",
            JobOutcome::Panicked {
                message: "index out of bounds".into(),
            },
        ));
        assert_eq!(r.failed_jobs(), 3);
        assert_eq!(r.panicked_jobs(), 1);
        assert_eq!(
            r.failure_taxonomy(),
            vec![(FailureKind::Singular, 2), (FailureKind::Panic, 1)]
        );
        let text = r.render();
        assert!(
            text.contains("failure taxonomy: singular 2 | panic 1"),
            "{text}"
        );
        assert!(text.contains("boom: index out of bounds"), "{text}");
    }

    #[test]
    fn recovered_outcome_labels_and_classifies() {
        let o = JobOutcome::Recovered(Rung::TightGmin);
        assert_eq!(o.label(), "recovered");
        assert!(!o.is_failure());
        assert_eq!(o.failure_kind(), None);
        let p = JobOutcome::Panicked {
            message: "x".into(),
        };
        assert_eq!(p.failure_kind(), Some(FailureKind::Panic));
    }

    #[test]
    fn empty_report_renders() {
        assert!(RunReport::new("empty").render().contains("(no jobs)"));
    }

    #[test]
    fn supervision_summary_counts_resumed_and_interrupted_jobs() {
        let mut r = RunReport::new("resume");
        r.batch_wall = Duration::from_millis(120);
        r.quarantined = 1;
        let mut resumed = record("from-journal", false, 0);
        resumed.resumed = true;
        r.jobs.push(resumed);
        r.jobs.push(failed_record(
            "too-slow",
            JobOutcome::Failed {
                kind: FailureKind::Deadline,
                message: "budget exhausted".into(),
            },
        ));
        r.jobs.push(failed_record(
            "stopped",
            JobOutcome::Failed {
                kind: FailureKind::Cancelled,
                message: "solve cancelled".into(),
            },
        ));
        assert_eq!(r.resumed_jobs(), 1);
        assert_eq!(r.deadline_exceeded_jobs(), 1);
        assert_eq!(r.cancelled_jobs(), 1);
        r.torn = 2;
        let text = r.render();
        assert!(text.contains("journal"), "{text}");
        assert!(
            text.contains(
                "supervision: batch wall 120.0ms | resumed 1 | cancelled 1 | \
                 deadline-exceeded 1 | quarantined 1 | torn 2"
            ),
            "{text}"
        );
    }

    #[test]
    fn margin_column_appears_only_under_a_deadline() {
        let mut r = RunReport::new("deadline-cols");
        r.jobs.push(record("plain", false, 1));
        assert!(!r.render().contains("margin"));
        r.jobs[0].deadline_margin = Some(0.25);
        let text = r.render();
        assert!(text.contains("margin"), "{text}");
        assert!(text.contains("+250.0ms"), "{text}");
        r.jobs[0].deadline_margin = Some(-0.050);
        assert!(r.render().contains("-50.0ms"));
    }

    #[test]
    fn supervision_totals_fold_across_reports() {
        let mut a = RunReport::new("a");
        a.batch_wall = Duration::from_millis(30);
        let mut resumed = record("r", false, 0);
        resumed.resumed = true;
        a.jobs.push(resumed);
        let mut b = RunReport::new("b");
        b.batch_wall = Duration::from_millis(70);
        b.quarantined = 2;
        b.torn = 1;
        b.jobs.push(failed_record(
            "d",
            JobOutcome::Failed {
                kind: FailureKind::Deadline,
                message: "late".into(),
            },
        ));
        assert_eq!(
            supervision_totals(&[a, b]),
            "supervision totals: 2 run(s) | batch wall 100.0ms | resumed 1 | cancelled 0 | \
             deadline-exceeded 1 | quarantined 2 | torn 1"
        );
    }

    #[test]
    fn quiet_reports_omit_the_supervision_line() {
        let mut r = RunReport::new("quiet");
        r.jobs.push(record("j", false, 1));
        assert!(!r.render().contains("supervision:"));
    }

    #[test]
    fn sink_publish_and_drain() {
        // Other tests use the same process-global sink; tag our reports
        // and only assert about those.
        publish(RunReport::new("sink-test-1"));
        publish(RunReport::new("sink-test-2"));
        let mine: Vec<_> = drain()
            .into_iter()
            .filter(|r| r.title.starts_with("sink-test-"))
            .collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].title, "sink-test-1");
        assert_eq!(mine[1].title, "sink-test-2");
    }
}
