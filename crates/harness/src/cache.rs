//! Content-addressed, on-disk result cache.
//!
//! A job is identified by its *spec string* — a canonical rendering of
//! everything that influences the result (circuit configuration, solver
//! options, seed). The cache key is a 128-bit FNV-1a digest of that
//! string; artifacts are JSON files `<digest>.json` under the cache
//! directory (default `target/harness-cache/`).
//!
//! Each artifact stores the full spec alongside the result, so a digest
//! collision (or a stale file from an older spec format) is detected on
//! load and treated as a miss. Writes go through a temporary file and an
//! atomic rename, so concurrent writers at worst both do the work once.
//!
//! Artifacts carry a schema version and an FNV-1a checksum over the
//! stored spec + result. A version mismatch is a plain miss (stale but
//! well-formed artifacts are simply recomputed and overwritten); a
//! *corrupt* artifact — unparsable JSON, missing fields, or a checksum
//! mismatch — is quarantined to `<digest>.corrupt` instead of being
//! silently treated as a miss, and counted (see
//! [`Cache::quarantined`]) so run reports can surface it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::json::Json;

/// Artifact format version; bump to invalidate all cached results.
/// Version 2 added the `check` checksum trailer.
const FORMAT_VERSION: f64 = 2.0;

/// 64-bit FNV-1a over `bytes`, from an arbitrary offset basis.
fn fnv1a64(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// 128-bit content digest of a spec string, as 32 hex characters.
///
/// Two independent FNV-1a streams (the standard offset basis and a
/// re-mixed one) — not cryptographic, but 128 bits make accidental
/// collisions across a few thousand cached jobs vanishingly unlikely,
/// and the stored spec is verified on load anyway.
pub fn content_digest(spec: &str) -> String {
    let lo = fnv1a64(0xCBF2_9CE4_8422_2325, spec.as_bytes());
    let hi = fnv1a64(
        nemscmos_numeric::rng::SplitMix64::mix(0xCBF2_9CE4_8422_2325),
        spec.as_bytes(),
    );
    format!("{hi:016x}{lo:016x}")
}

/// Deterministic 64-bit seed derived from a spec string — the master
/// seed handed to a job so retries and thread placement cannot change
/// its random stream.
pub fn spec_seed(spec: &str) -> u64 {
    nemscmos_numeric::rng::SplitMix64::mix(fnv1a64(0xCBF2_9CE4_8422_2325, spec.as_bytes()))
}

/// Checksum trailer stored inside each artifact: FNV-1a over the spec
/// and the rendered result, as 16 hex characters. Detects torn writes
/// and bit rot that still parse as JSON.
fn artifact_checksum(spec: &str, result_render: &str) -> String {
    let h = fnv1a64(0xCBF2_9CE4_8422_2325, spec.as_bytes());
    let h = fnv1a64(h, b"\n");
    let h = fnv1a64(h, result_render.as_bytes());
    format!("{h:016x}")
}

/// On-disk result cache rooted at a directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
    // Shared across clones so the per-batch quarantine delta observed by
    // the runner covers all worker threads.
    quarantined: Arc<AtomicU64>,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Cache {
    /// Opens (and lazily creates) a cache at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Cache {
        Cache {
            dir: dir.into(),
            quarantined: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The default cache location: `$CARGO_TARGET_DIR/harness-cache`,
    /// falling back to `target/harness-cache` relative to the working
    /// directory. `NEMSCMOS_HARNESS_CACHE_DIR` overrides both.
    pub fn default_dir() -> PathBuf {
        if let Ok(dir) = std::env::var("NEMSCMOS_HARNESS_CACHE_DIR") {
            return PathBuf::from(dir);
        }
        let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
        Path::new(&target).join("harness-cache")
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn artifact_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Number of artifacts this cache (including all clones sharing it)
    /// has quarantined to `<digest>.corrupt` since creation.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Moves a corrupt artifact aside to `<digest>.corrupt` (preserving
    /// it for post-mortem) and bumps the quarantine counter.
    fn quarantine(&self, digest: &str) {
        let from = self.artifact_path(digest);
        let to = self.dir.join(format!("{digest}.corrupt"));
        let _ = std::fs::rename(&from, &to);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Loads the cached result for `spec`, verifying that the stored spec
    /// matches exactly.
    ///
    /// Misses come in two flavours: *benign* (no file, older format
    /// version, or a spec mismatch from a digest collision) return `None`
    /// and leave the file alone; *corrupt* (unparsable JSON, missing
    /// fields, checksum mismatch) also return `None` but first quarantine
    /// the file to `<digest>.corrupt` and bump
    /// [`quarantined`](Cache::quarantined).
    pub fn load(&self, digest: &str, spec: &str) -> Option<Json> {
        let text = std::fs::read_to_string(self.artifact_path(digest)).ok()?;
        let Ok(artifact) = Json::parse(&text) else {
            self.quarantine(digest);
            return None;
        };
        // A well-formed artifact from a different format version is
        // stale, not corrupt: plain miss, recompute overwrites it.
        match artifact.get("version").and_then(Json::as_f64) {
            Some(v) if v == FORMAT_VERSION => {}
            Some(_) => return None,
            None => {
                self.quarantine(digest);
                return None;
            }
        }
        let fields = (
            artifact.get("spec").and_then(Json::as_str),
            artifact.get("result"),
            artifact.get("check").and_then(Json::as_str),
        );
        let (Some(stored_spec), Some(result), Some(check)) = fields else {
            self.quarantine(digest);
            return None;
        };
        // Verify the checksum against the *stored* spec, so corruption
        // detection is independent of which spec is being probed.
        if artifact_checksum(stored_spec, &result.render()) != check {
            self.quarantine(digest);
            return None;
        }
        if stored_spec != spec {
            return None;
        }
        Some(result.clone())
    }

    /// Stores `result` for `spec` atomically (write to a temp file, then
    /// rename into place).
    ///
    /// # Errors
    ///
    /// Returns the I/O error message; callers generally treat a store
    /// failure as non-fatal (the result is still returned to the user).
    pub fn store(&self, digest: &str, spec: &str, result: &Json) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir).map_err(|e| e.to_string())?;
        let artifact = Json::Obj(vec![
            ("version".into(), Json::Num(FORMAT_VERSION)),
            ("spec".into(), Json::Str(spec.into())),
            ("result".into(), result.clone()),
            (
                "check".into(),
                Json::Str(artifact_checksum(spec, &result.render())),
            ),
        ]);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{digest}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, artifact.render()).map_err(|e| e.to_string())?;
        std::fs::rename(&tmp, self.artifact_path(digest)).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            e.to_string()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nemscmos-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn digest_is_stable_and_spec_sensitive() {
        let a = content_digest("fig10 fan_out=1 style=Cmos");
        let b = content_digest("fig10 fan_out=1 style=Cmos");
        let c = content_digest("fig10 fan_out=2 style=Cmos");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = Cache::at(scratch_dir("roundtrip"));
        let spec = "sram snm kind=Hybrid sigma=0.03";
        let digest = content_digest(spec);
        assert!(cache.load(&digest, spec).is_none(), "cold cache must miss");
        let result = Json::Arr(vec![Json::Num(0.285), Json::Num(0.012)]);
        cache.store(&digest, spec, &result).unwrap();
        assert_eq!(cache.load(&digest, spec), Some(result));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn spec_mismatch_is_a_miss() {
        let cache = Cache::at(scratch_dir("mismatch"));
        let digest = content_digest("spec-a");
        cache.store(&digest, "spec-a", &Json::Num(1.0)).unwrap();
        // Same digest file, different claimed spec → miss.
        assert!(cache.load(&digest, "spec-b").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_artifact_is_quarantined() {
        let cache = Cache::at(scratch_dir("corrupt"));
        let digest = content_digest("spec");
        cache.store(&digest, "spec", &Json::Num(1.0)).unwrap();
        std::fs::write(cache.dir().join(format!("{digest}.json")), "{not json").unwrap();
        assert!(cache.load(&digest, "spec").is_none());
        assert_eq!(cache.quarantined(), 1);
        // The file is preserved for post-mortem under .corrupt, and the
        // original slot is free: the next load is a clean miss.
        assert!(cache.dir().join(format!("{digest}.corrupt")).exists());
        assert!(!cache.dir().join(format!("{digest}.json")).exists());
        assert!(cache.load(&digest, "spec").is_none());
        assert_eq!(cache.quarantined(), 1, "clean miss must not re-count");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn checksum_mismatch_is_quarantined() {
        let cache = Cache::at(scratch_dir("checksum"));
        let digest = content_digest("spec");
        cache.store(&digest, "spec", &Json::Num(1.5)).unwrap();
        // Flip the stored result without updating the checksum: the file
        // still parses, but the trailer no longer matches.
        let path = cache.dir().join(format!("{digest}.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("1.5", "2.5")).unwrap();
        assert!(cache.load(&digest, "spec").is_none());
        assert_eq!(cache.quarantined(), 1);
        assert!(cache.dir().join(format!("{digest}.corrupt")).exists());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn older_format_version_is_a_plain_miss_not_corruption() {
        let cache = Cache::at(scratch_dir("version"));
        let digest = content_digest("spec");
        let legacy = Json::Obj(vec![
            ("version".into(), Json::Num(1.0)),
            ("spec".into(), Json::Str("spec".into())),
            ("result".into(), Json::Num(3.0)),
        ]);
        std::fs::create_dir_all(cache.dir()).unwrap();
        std::fs::write(cache.dir().join(format!("{digest}.json")), legacy.render()).unwrap();
        assert!(cache.load(&digest, "spec").is_none());
        assert_eq!(cache.quarantined(), 0, "stale format is not corruption");
        assert!(cache.dir().join(format!("{digest}.json")).exists());
        // A fresh store upgrades the artifact in place.
        cache.store(&digest, "spec", &Json::Num(3.0)).unwrap();
        assert_eq!(cache.load(&digest, "spec"), Some(Json::Num(3.0)));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn quarantine_counter_is_shared_across_clones() {
        let cache = Cache::at(scratch_dir("clones"));
        let clone = cache.clone();
        let digest = content_digest("spec");
        cache.store(&digest, "spec", &Json::Num(1.0)).unwrap();
        std::fs::write(cache.dir().join(format!("{digest}.json")), "garbage").unwrap();
        assert!(clone.load(&digest, "spec").is_none());
        assert_eq!(cache.quarantined(), 1, "clone's quarantine must be visible");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn spec_seed_is_deterministic() {
        assert_eq!(spec_seed("x"), spec_seed("x"));
        assert_ne!(spec_seed("x"), spec_seed("y"));
    }
}
