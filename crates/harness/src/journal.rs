//! Crash-safe batch journal: append-only JSONL of completed jobs.
//!
//! The result cache makes *individual* jobs cheap to redo, but a killed
//! batch still re-walks every spec, and cache-bypassing jobs (faulted
//! soak jobs, `NEMSCMOS_HARNESS_CACHE=off` runs) lose everything. The
//! journal closes that gap at the *run* level: every successful job is
//! appended to `journal-<run-id>.jsonl` as one self-contained JSON line
//! (name, spec digest, full spec, result artifact), fsync'd before the
//! runner moves on. [`Runner::resume`](crate::runner::Runner::resume)
//! replays the journal and re-executes only the jobs that never landed —
//! with deterministic per-spec seeding, the combined output is bitwise
//! identical to an uninterrupted run.
//!
//! # Torn writes
//!
//! A kill can land mid-append, leaving a torn final line. Loading
//! tolerates this: lines that fail to parse, lack a field, or whose
//! recomputed spec digest disagrees with the stored one are skipped (the
//! job simply re-runs). Appends are a single `write` + `sync_data`, so
//! at most the last line is ever torn.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::cache::content_digest;
use crate::json::Json;
use crate::HarnessError;

/// Append-only record of jobs completed by one named run.
#[derive(Debug)]
pub struct Journal {
    run_id: String,
    path: PathBuf,
    /// digest → (spec, result) recovered at open or recorded since.
    completed: Mutex<HashMap<String, (String, Json)>>,
    file: Mutex<File>,
    recovered: usize,
}

impl Journal {
    /// Opens (or creates) the journal for `run_id` under `dir`,
    /// replaying any entries a previous invocation of the run left
    /// behind. Torn or corrupt lines are skipped, not fatal.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Cache`] when `run_id` contains characters unsafe
    /// in a file name, or when the journal file cannot be created.
    pub fn open(dir: impl Into<PathBuf>, run_id: &str) -> Result<Journal, HarnessError> {
        if run_id.is_empty()
            || !run_id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(HarnessError::Cache(format!(
                "journal: run id {run_id:?} must be non-empty [A-Za-z0-9._-]"
            )));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| HarnessError::Cache(format!("journal: create {}: {e}", dir.display())))?;
        let path = dir.join(format!("journal-{run_id}.jsonl"));
        let completed = load_entries(&path);
        let recovered = completed.len();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| HarnessError::Cache(format!("journal: open {}: {e}", path.display())))?;
        Ok(Journal {
            run_id: run_id.to_string(),
            path,
            completed: Mutex::new(completed),
            file: Mutex::new(file),
            recovered,
        })
    }

    /// The run identifier this journal belongs to.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The on-disk journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many completed jobs the open replayed from a previous
    /// invocation of this run.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// The journaled result for `digest`, if this run already completed
    /// it with the *same* spec (a digest collision with a different spec
    /// is treated as absent).
    pub fn lookup(&self, digest: &str, spec: &str) -> Option<Json> {
        let completed = self.completed.lock().expect("journal map poisoned");
        completed
            .get(digest)
            .filter(|(stored_spec, _)| stored_spec == spec)
            .map(|(_, result)| result.clone())
    }

    /// Appends a completed job: one JSON line, flushed and `sync_data`'d
    /// so a kill immediately after cannot lose it.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Cache`] on I/O failure. The runner treats this as
    /// non-fatal — the job's result is still correct, a later resume
    /// just re-executes it.
    pub fn record(
        &self,
        name: &str,
        digest: &str,
        spec: &str,
        result: &Json,
    ) -> Result<(), HarnessError> {
        let entry = Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("digest".into(), Json::Str(digest.into())),
            ("spec".into(), Json::Str(spec.into())),
            ("result".into(), result.clone()),
        ]);
        let mut line = entry.render();
        line.push('\n');
        {
            // Hold the file lock across write + sync so concurrent
            // workers cannot interleave partial lines.
            let mut file = self.file.lock().expect("journal file poisoned");
            file.write_all(line.as_bytes())
                .and_then(|()| file.sync_data())
                .map_err(|e| {
                    HarnessError::Cache(format!("journal: append {}: {e}", self.path.display()))
                })?;
        }
        self.completed
            .lock()
            .expect("journal map poisoned")
            .insert(digest.to_string(), (spec.to_string(), result.clone()));
        Ok(())
    }
}

/// Parses every intact entry out of a journal file. Missing file ⇒
/// empty map (a fresh run). Each entry is verified: the stored digest
/// must match the recomputed digest of the stored spec, otherwise the
/// line is ignored.
fn load_entries(path: &Path) -> HashMap<String, (String, Json)> {
    let mut completed = HashMap::new();
    let Ok(file) = File::open(path) else {
        return completed;
    };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        let Some(entry) = parse_entry(&line) else {
            continue;
        };
        completed.insert(entry.0, (entry.1, entry.2));
    }
    completed
}

/// Decodes and verifies one journal line into (digest, spec, result).
fn parse_entry(line: &str) -> Option<(String, String, Json)> {
    if line.trim().is_empty() {
        return None;
    }
    let value = Json::parse(line).ok()?;
    let digest = value.get("digest")?.as_str()?;
    let spec = value.get("spec")?.as_str()?;
    let result = value.get("result")?;
    if content_digest(spec) != digest {
        return None;
    }
    Some((digest.to_string(), spec.to_string(), result.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nemscmos-journal-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_entries_across_reopens() {
        let dir = scratch_dir("roundtrip");
        let spec = "journal-test fan_in=4";
        let digest = content_digest(spec);
        {
            let j = Journal::open(&dir, "run-a").unwrap();
            assert_eq!(j.recovered(), 0);
            j.record("or4", &digest, spec, &Json::Num(1.25)).unwrap();
            // Visible immediately, same process.
            assert_eq!(j.lookup(&digest, spec), Some(Json::Num(1.25)));
        }
        let j = Journal::open(&dir, "run-a").unwrap();
        assert_eq!(j.recovered(), 1);
        assert_eq!(j.lookup(&digest, spec), Some(Json::Num(1.25)));
        // Different spec behind the same digest key ⇒ absent.
        assert_eq!(j.lookup(&digest, "some other spec"), None);
        // Different run id ⇒ separate journal, nothing recovered.
        let other = Journal::open(&dir, "run-b").unwrap();
        assert_eq!(other.recovered(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_final_line_is_skipped_not_fatal() {
        let dir = scratch_dir("torn");
        let specs = ["torn-test a", "torn-test b"];
        {
            let j = Journal::open(&dir, "run").unwrap();
            for spec in specs {
                j.record("j", &content_digest(spec), spec, &Json::Num(7.0))
                    .unwrap();
            }
        }
        // Simulate a kill mid-append: truncate the file partway through
        // the second line.
        let path = dir.join("journal-run.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        let first_len = text.find('\n').unwrap() + 1;
        let mut torn = text[..first_len + 20].to_string();
        torn.truncate(first_len + 20);
        std::fs::write(&path, torn).unwrap();

        let j = Journal::open(&dir, "run").unwrap();
        assert_eq!(j.recovered(), 1, "only the intact line survives");
        assert!(j.lookup(&content_digest(specs[0]), specs[0]).is_some());
        assert!(j.lookup(&content_digest(specs[1]), specs[1]).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn digest_mismatch_lines_are_ignored() {
        let dir = scratch_dir("mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal-bad.jsonl");
        // A well-formed line whose digest does not belong to its spec.
        std::fs::write(
            &path,
            "{\"name\":\"x\",\"digest\":\"00000000000000000000000000000000\",\
             \"spec\":\"mismatch spec\",\"result\":1.0}\n",
        )
        .unwrap();
        let j = Journal::open(&dir, "bad").unwrap();
        assert_eq!(j.recovered(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_unsafe_run_ids() {
        let dir = scratch_dir("ids");
        assert!(Journal::open(&dir, "").is_err());
        assert!(Journal::open(&dir, "../escape").is_err());
        assert!(Journal::open(&dir, "a b").is_err());
        assert!(Journal::open(&dir, "ok-run_1.2").is_ok());
        let _ = std::fs::remove_dir_all(dir);
    }
}
