//! Crash-safe batch journal: append-only JSONL of accepted and
//! completed jobs.
//!
//! The result cache makes *individual* jobs cheap to redo, but a killed
//! batch still re-walks every spec, and cache-bypassing jobs (faulted
//! soak jobs, `NEMSCMOS_HARNESS_CACHE=off` runs) lose everything. The
//! journal closes that gap at the *run* level: every successful job is
//! appended to `journal-<run-id>.jsonl` as one self-contained JSON line
//! (name, spec digest, full spec, result artifact), fsync'd before the
//! runner moves on. [`Runner::resume`](crate::runner::Runner::resume)
//! replays the journal and re-executes only the jobs that never landed —
//! with deterministic per-spec seeding, the combined output is bitwise
//! identical to an uninterrupted run.
//!
//! Server-owned runs additionally journal *acceptance*: a job accepted
//! into the queue is recorded with [`Journal::record_accepted`] (same
//! line shape, no `result` field) **before** the client is acked, so a
//! `kill -9` between ack and completion leaves a durable obligation. On
//! reopen, accepted-but-never-completed jobs surface through
//! [`Journal::pending`] and the server re-enqueues them.
//!
//! # Torn writes
//!
//! A kill can land mid-append, leaving a torn final line. Loading
//! *quarantines* such a line (and any other malformed or
//! digest-mismatched line) into `journal-<run-id>.jsonl.torn` — the same
//! post-mortem convention as the cache's `<digest>.corrupt` — counts it
//! (see [`Journal::torn`]), and rewrites the journal to the intact
//! entries only. The rewrite matters for correctness, not just
//! tidiness: a torn final line has no trailing newline, so appending the
//! next record directly after it would destroy *that* record too.
//! Appends are a single `write` + `sync_data`, so at most the last line
//! is ever torn.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::cache::content_digest;
use crate::json::Json;
use crate::HarnessError;

/// Append-only record of jobs accepted and completed by one named run.
#[derive(Debug)]
pub struct Journal {
    run_id: String,
    path: PathBuf,
    /// digest → (spec, result) recovered at open or recorded since.
    completed: Mutex<HashMap<String, (String, Json)>>,
    /// digest → (name, spec) accepted but not yet completed.
    pending: Mutex<HashMap<String, (String, String)>>,
    file: Mutex<File>,
    recovered: usize,
    torn: usize,
}

impl Journal {
    /// Opens (or creates) the journal for `run_id` under `dir`,
    /// replaying any entries a previous invocation of the run left
    /// behind. Torn or corrupt lines are quarantined to
    /// `journal-<run-id>.jsonl.torn`, counted in [`Journal::torn`], and
    /// removed from the live journal — never fatal.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Cache`] when `run_id` contains characters unsafe
    /// in a file name, or when the journal file cannot be created.
    pub fn open(dir: impl Into<PathBuf>, run_id: &str) -> Result<Journal, HarnessError> {
        if run_id.is_empty()
            || !run_id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(HarnessError::Cache(format!(
                "journal: run id {run_id:?} must be non-empty [A-Za-z0-9._-]"
            )));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| HarnessError::Cache(format!("journal: create {}: {e}", dir.display())))?;
        let path = dir.join(format!("journal-{run_id}.jsonl"));
        let replay = load_entries(&path);
        let recovered = replay.completed.len();
        let torn = replay.torn_lines.len();
        if torn > 0 {
            quarantine_torn(&path, &replay);
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| HarnessError::Cache(format!("journal: open {}: {e}", path.display())))?;
        Ok(Journal {
            run_id: run_id.to_string(),
            path,
            completed: Mutex::new(replay.completed),
            pending: Mutex::new(replay.pending),
            file: Mutex::new(file),
            recovered,
            torn,
        })
    }

    /// The run identifier this journal belongs to.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The on-disk journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many completed jobs the open replayed from a previous
    /// invocation of this run.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// How many torn/corrupt lines the open quarantined to
    /// `journal-<run-id>.jsonl.torn`.
    pub fn torn(&self) -> usize {
        self.torn
    }

    /// Jobs recorded as accepted by a previous invocation that never
    /// completed: `(name, digest, spec)` triples, the restart
    /// obligations of a server-owned run.
    pub fn pending(&self) -> Vec<(String, String, String)> {
        let pending = self.pending.lock().expect("journal map poisoned");
        let mut out: Vec<(String, String, String)> = pending
            .iter()
            .map(|(digest, (name, spec))| (name.clone(), digest.clone(), spec.clone()))
            .collect();
        out.sort();
        out
    }

    /// The journaled result for `digest`, if this run already completed
    /// it with the *same* spec (a digest collision with a different spec
    /// is treated as absent).
    pub fn lookup(&self, digest: &str, spec: &str) -> Option<Json> {
        let completed = self.completed.lock().expect("journal map poisoned");
        completed
            .get(digest)
            .filter(|(stored_spec, _)| stored_spec == spec)
            .map(|(_, result)| result.clone())
    }

    /// Records a job as *accepted*: one result-less JSON line, flushed
    /// and `sync_data`'d, written **before** the caller acknowledges the
    /// job to its client — a crash after the ack can then never lose the
    /// obligation. Completing the job later with [`Journal::record`]
    /// clears it from [`Journal::pending`].
    ///
    /// # Errors
    ///
    /// [`HarnessError::Cache`] on I/O failure — callers performing
    /// journal-before-ack must treat this as fatal for the job (reject
    /// instead of ack) to keep the zero-lost-acks contract.
    pub fn record_accepted(
        &self,
        name: &str,
        digest: &str,
        spec: &str,
    ) -> Result<(), HarnessError> {
        let entry = Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("digest".into(), Json::Str(digest.into())),
            ("spec".into(), Json::Str(spec.into())),
        ]);
        self.append_line(&entry)?;
        self.pending
            .lock()
            .expect("journal map poisoned")
            .insert(digest.to_string(), (name.to_string(), spec.to_string()));
        Ok(())
    }

    /// Appends a completed job: one JSON line, flushed and `sync_data`'d
    /// so a kill immediately after cannot lose it.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Cache`] on I/O failure. The runner treats this as
    /// non-fatal — the job's result is still correct, a later resume
    /// just re-executes it.
    pub fn record(
        &self,
        name: &str,
        digest: &str,
        spec: &str,
        result: &Json,
    ) -> Result<(), HarnessError> {
        let entry = Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("digest".into(), Json::Str(digest.into())),
            ("spec".into(), Json::Str(spec.into())),
            ("result".into(), result.clone()),
        ]);
        self.append_line(&entry)?;
        self.completed
            .lock()
            .expect("journal map poisoned")
            .insert(digest.to_string(), (spec.to_string(), result.clone()));
        self.pending
            .lock()
            .expect("journal map poisoned")
            .remove(digest);
        Ok(())
    }

    fn append_line(&self, entry: &Json) -> Result<(), HarnessError> {
        let mut line = entry.render();
        line.push('\n');
        // Hold the file lock across write + sync so concurrent workers
        // cannot interleave partial lines.
        let mut file = self.file.lock().expect("journal file poisoned");
        file.write_all(line.as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| {
                HarnessError::Cache(format!("journal: append {}: {e}", self.path.display()))
            })
    }
}

/// Everything one replay pass extracts from a journal file.
struct Replay {
    completed: HashMap<String, (String, Json)>,
    pending: HashMap<String, (String, String)>,
    /// Raw text of every malformed line, in file order.
    torn_lines: Vec<String>,
    /// Raw text of every intact line, in file order (for the rewrite).
    intact_lines: Vec<String>,
}

/// Parses every entry out of a journal file, splitting intact entries
/// from torn/corrupt lines. Missing file ⇒ empty replay (a fresh run).
/// Each entry is verified: the stored digest must match the recomputed
/// digest of the stored spec, otherwise the line counts as torn.
fn load_entries(path: &Path) -> Replay {
    let mut replay = Replay {
        completed: HashMap::new(),
        pending: HashMap::new(),
        torn_lines: Vec::new(),
        intact_lines: Vec::new(),
    };
    let Ok(file) = File::open(path) else {
        return replay;
    };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(&line) {
            Some(Entry {
                name: _,
                digest,
                spec,
                result: Some(result),
            }) => {
                replay.pending.remove(&digest);
                replay.completed.insert(digest, (spec, result));
                replay.intact_lines.push(line);
            }
            Some(Entry {
                name,
                digest,
                spec,
                result: None,
            }) => {
                if !replay.completed.contains_key(&digest) {
                    replay.pending.insert(digest, (name, spec));
                }
                replay.intact_lines.push(line);
            }
            None => replay.torn_lines.push(line),
        }
    }
    replay
}

/// Moves the torn lines of a replay aside to `<path>.torn` (appending,
/// preserving them for post-mortem) and rewrites the journal to its
/// intact entries so subsequent appends start on a clean line boundary.
/// Best-effort: an I/O failure here leaves the original journal alone.
fn quarantine_torn(path: &Path, replay: &Replay) {
    let torn_path = path.with_extension("jsonl.torn");
    let mut torn_text = String::new();
    for line in &replay.torn_lines {
        torn_text.push_str(line);
        torn_text.push('\n');
    }
    let appended = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&torn_path)
        .and_then(|mut f| f.write_all(torn_text.as_bytes()));
    if appended.is_err() {
        return;
    }
    let mut intact_text = String::new();
    for line in &replay.intact_lines {
        intact_text.push_str(line);
        intact_text.push('\n');
    }
    let tmp = path.with_extension("jsonl.rewrite");
    if std::fs::write(&tmp, intact_text).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

struct Entry {
    name: String,
    digest: String,
    spec: String,
    /// `None` for acceptance records.
    result: Option<Json>,
}

/// Decodes and verifies one journal line.
fn parse_entry(line: &str) -> Option<Entry> {
    let value = Json::parse(line).ok()?;
    let name = value.get("name")?.as_str()?;
    let digest = value.get("digest")?.as_str()?;
    let spec = value.get("spec")?.as_str()?;
    if content_digest(spec) != digest {
        return None;
    }
    Some(Entry {
        name: name.to_string(),
        digest: digest.to_string(),
        spec: spec.to_string(),
        result: value.get("result").cloned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nemscmos-journal-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_entries_across_reopens() {
        let dir = scratch_dir("roundtrip");
        let spec = "journal-test fan_in=4";
        let digest = content_digest(spec);
        {
            let j = Journal::open(&dir, "run-a").unwrap();
            assert_eq!(j.recovered(), 0);
            j.record("or4", &digest, spec, &Json::Num(1.25)).unwrap();
            // Visible immediately, same process.
            assert_eq!(j.lookup(&digest, spec), Some(Json::Num(1.25)));
        }
        let j = Journal::open(&dir, "run-a").unwrap();
        assert_eq!(j.recovered(), 1);
        assert_eq!(j.lookup(&digest, spec), Some(Json::Num(1.25)));
        // Different spec behind the same digest key ⇒ absent.
        assert_eq!(j.lookup(&digest, "some other spec"), None);
        // Different run id ⇒ separate journal, nothing recovered.
        let other = Journal::open(&dir, "run-b").unwrap();
        assert_eq!(other.recovered(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn accepted_jobs_surface_as_pending_until_completed() {
        let dir = scratch_dir("accepted");
        let (spec_a, spec_b) = ("accept-test a", "accept-test b");
        let (dig_a, dig_b) = (content_digest(spec_a), content_digest(spec_b));
        {
            let j = Journal::open(&dir, "srv").unwrap();
            j.record_accepted("a", &dig_a, spec_a).unwrap();
            j.record_accepted("b", &dig_b, spec_b).unwrap();
            assert_eq!(j.pending().len(), 2);
            // Completing clears the obligation.
            j.record("a", &dig_a, spec_a, &Json::Num(2.0)).unwrap();
            assert_eq!(j.pending().len(), 1);
        }
        // Crash + reopen: the completed job is recovered, the accepted
        // one is still owed.
        let j = Journal::open(&dir, "srv").unwrap();
        assert_eq!(j.recovered(), 1);
        assert_eq!(j.lookup(&dig_a, spec_a), Some(Json::Num(2.0)));
        assert_eq!(
            j.pending(),
            vec![("b".to_string(), dig_b.clone(), spec_b.to_string())]
        );
        // Completing after the restart clears it durably.
        j.record("b", &dig_b, spec_b, &Json::Num(3.0)).unwrap();
        drop(j);
        let j = Journal::open(&dir, "srv").unwrap();
        assert!(j.pending().is_empty());
        assert_eq!(j.recovered(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_final_line_is_quarantined_not_fatal() {
        let dir = scratch_dir("torn");
        let specs = ["torn-test a", "torn-test b"];
        {
            let j = Journal::open(&dir, "run").unwrap();
            for spec in specs {
                j.record("j", &content_digest(spec), spec, &Json::Num(7.0))
                    .unwrap();
            }
        }
        // Simulate a kill mid-append: truncate the file partway through
        // the second line.
        let path = dir.join("journal-run.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        let first_len = text.find('\n').unwrap() + 1;
        let mut torn = text[..first_len + 20].to_string();
        torn.truncate(first_len + 20);
        std::fs::write(&path, torn).unwrap();

        let j = Journal::open(&dir, "run").unwrap();
        assert_eq!(j.recovered(), 1, "only the intact line survives");
        assert_eq!(j.torn(), 1, "the torn line is counted");
        assert!(j.lookup(&content_digest(specs[0]), specs[0]).is_some());
        assert!(j.lookup(&content_digest(specs[1]), specs[1]).is_none());
        // The torn bytes are preserved for post-mortem...
        let torn_path = dir.join("journal-run.jsonl.torn");
        let quarantined = std::fs::read_to_string(&torn_path).unwrap();
        assert!(quarantined.contains("torn-test") || !quarantined.is_empty());
        // ...and the live journal is clean: a fresh append must start on
        // its own line, not glue onto the torn fragment.
        j.record("j", &content_digest(specs[1]), specs[1], &Json::Num(8.0))
            .unwrap();
        drop(j);
        let j = Journal::open(&dir, "run").unwrap();
        assert_eq!(j.recovered(), 2, "append after quarantine is intact");
        assert_eq!(j.torn(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn digest_mismatch_lines_are_quarantined() {
        let dir = scratch_dir("mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal-bad.jsonl");
        // A well-formed line whose digest does not belong to its spec.
        std::fs::write(
            &path,
            "{\"name\":\"x\",\"digest\":\"00000000000000000000000000000000\",\
             \"spec\":\"mismatch spec\",\"result\":1.0}\n",
        )
        .unwrap();
        let j = Journal::open(&dir, "bad").unwrap();
        assert_eq!(j.recovered(), 0);
        assert_eq!(j.torn(), 1);
        assert!(dir.join("journal-bad.jsonl.torn").exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_unsafe_run_ids() {
        let dir = scratch_dir("ids");
        assert!(Journal::open(&dir, "").is_err());
        assert!(Journal::open(&dir, "../escape").is_err());
        assert!(Journal::open(&dir, "a b").is_err());
        assert!(Journal::open(&dir, "ok-run_1.2").is_ok());
        let _ = std::fs::remove_dir_all(dir);
    }
}
