//! Minimal JSON value, serializer, and parser.
//!
//! The result cache persists job artifacts as JSON files; the workspace
//! builds with no registry access, so instead of `serde`/`serde_json`
//! this module implements the small subset the harness needs: a value
//! tree, a compact serializer whose `f64` formatting round-trips
//! exactly (Rust's shortest-representation float printing), and a
//! recursive-descent parser.
//!
//! Non-finite numbers cannot be represented in JSON; they serialize as
//! `null`, which makes the artifact fail decoding on reload — the cache
//! then treats it as a miss and recomputes, which is the safe behavior.
//!
//! # Example
//!
//! ```
//! use nemscmos_harness::json::Json;
//!
//! let v = Json::Obj(vec![
//!     ("delay".into(), Json::Num(1.25e-10)),
//!     ("tags".into(), Json::Arr(vec![Json::Str("or8".into())])),
//! ]);
//! let text = v.render();
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use nemscmos_numeric::stats::Summary;
use nemscmos_spice::stats::SolverStats;

/// A JSON value. Object keys keep insertion order (stable serialization
/// for content addressing).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number.
    Num(f64),
    /// An integer (counters, sizes). Kept separate from [`Num`](Json::Num)
    /// so it renders without a fractional suffix — `1039`, not `1039.0`.
    /// The parser yields `Int` for any number token without `.`/`e`/`E`
    /// that fits an `i64`, and the numeric codecs accept either form, so
    /// artifacts written before this variant existed still decode.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a finite `Num` or an `Int`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) if v.is_finite() => Some(*v),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The integer, if this is an `Int` or an integral `Num`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(v)
                if v.is_finite()
                    && v.fract() == 0.0
                    && (i64::MIN as f64..=i64::MAX as f64).contains(v) =>
            {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest string that parses back to
                    // the same f64 (always contains '.', 'e', or is integral
                    // — all valid JSON).
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => out.push_str(&format!("{i}")),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our serializer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    // Digit-only tokens become `Int`; anything fractional/exponential (or
    // too large for i64) stays a float. Old artifacts render integral
    // floats as e.g. `4.0`, so they keep parsing as `Num`.
    if !text.bytes().any(|c| matches!(c, b'.' | b'e' | b'E')) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

/// Conversion between a result type and its cached JSON artifact.
///
/// Implement this for any experiment result that should be cacheable.
/// `from_json` returns `None` on any shape mismatch — the cache treats
/// that as a miss and recomputes.
pub trait JsonCodec: Sized {
    /// Encodes `self`.
    fn to_json(&self) -> Json;
    /// Decodes a value; `None` on mismatch.
    fn from_json(v: &Json) -> Option<Self>;
}

impl JsonCodec for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
    fn from_json(v: &Json) -> Option<f64> {
        v.as_f64()
    }
}

impl JsonCodec for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
    fn from_json(v: &Json) -> Option<bool> {
        v.as_bool()
    }
}

impl JsonCodec for u64 {
    fn to_json(&self) -> Json {
        match i64::try_from(*self) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Num(*self as f64),
        }
    }
    fn from_json(v: &Json) -> Option<u64> {
        if let Json::Int(i) = v {
            return u64::try_from(*i).ok();
        }
        // Legacy form: counters were serialized as floats (`1039.0`).
        let f = v.as_f64()?;
        (f >= 0.0 && f.fract() == 0.0 && f <= 2f64.powi(53)).then_some(f as u64)
    }
}

impl JsonCodec for usize {
    fn to_json(&self) -> Json {
        (*self as u64).to_json()
    }
    fn from_json(v: &Json) -> Option<usize> {
        u64::from_json(v).map(|n| n as usize)
    }
}

impl JsonCodec for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
    fn from_json(v: &Json) -> Option<String> {
        v.as_str().map(str::to_owned)
    }
}

impl<T: JsonCodec> JsonCodec for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(JsonCodec::to_json).collect())
    }
    fn from_json(v: &Json) -> Option<Vec<T>> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<A: JsonCodec, B: JsonCodec> JsonCodec for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
    fn from_json(v: &Json) -> Option<(A, B)> {
        match v.as_arr()? {
            [a, b] => Some((A::from_json(a)?, B::from_json(b)?)),
            _ => None,
        }
    }
}

impl JsonCodec for Summary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), self.count.to_json()),
            ("mean".into(), Json::Num(self.mean)),
            ("std_dev".into(), Json::Num(self.std_dev)),
            ("min".into(), Json::Num(self.min)),
            ("max".into(), Json::Num(self.max)),
        ])
    }
    fn from_json(v: &Json) -> Option<Summary> {
        Some(Summary {
            count: usize::from_json(v.get("count")?)?,
            mean: v.get("mean")?.as_f64()?,
            std_dev: v.get("std_dev")?.as_f64()?,
            min: v.get("min")?.as_f64()?,
            max: v.get("max")?.as_f64()?,
        })
    }
}

impl JsonCodec for SolverStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("newton".into(), self.newton_iterations.to_json()),
            ("lu".into(), self.lu_factorizations.to_json()),
            ("rejected".into(), self.step_rejections.to_json()),
            ("accepted".into(), self.steps_accepted.to_json()),
            ("nonconv".into(), self.nonconvergence_events.to_json()),
            ("slot_hits".into(), self.slot_cache_hits.to_json()),
            ("sym_reuse".into(), self.symbolic_reuses.to_json()),
            ("refac_fb".into(), self.refactor_fallbacks.to_json()),
            ("bypass".into(), self.bypass_solves.to_json()),
            ("batched".into(), self.batched_evals.to_json()),
            ("eval_ns".into(), self.device_eval_ns.to_json()),
            ("solve_ns".into(), self.linear_solve_ns.to_json()),
            ("fill_nnz".into(), self.fill_nnz.to_json()),
            ("ordering_ns".into(), self.ordering_ns.to_json()),
        ])
    }
    fn from_json(v: &Json) -> Option<SolverStats> {
        // The fast-path counters default to zero so cache entries written
        // before they existed still decode.
        let opt = |key: &str| match v.get(key) {
            Some(x) => u64::from_json(x),
            None => Some(0),
        };
        Some(SolverStats {
            newton_iterations: u64::from_json(v.get("newton")?)?,
            lu_factorizations: u64::from_json(v.get("lu")?)?,
            step_rejections: u64::from_json(v.get("rejected")?)?,
            steps_accepted: u64::from_json(v.get("accepted")?)?,
            nonconvergence_events: u64::from_json(v.get("nonconv")?)?,
            slot_cache_hits: opt("slot_hits")?,
            symbolic_reuses: opt("sym_reuse")?,
            refactor_fallbacks: opt("refac_fb")?,
            bypass_solves: opt("bypass")?,
            batched_evals: opt("batched")?,
            device_eval_ns: opt("eval_ns")?,
            linear_solve_ns: opt("solve_ns")?,
            fill_nnz: opt("fill_nnz")?,
            ordering_ns: opt("ordering_ns")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.5),
            Json::Num(-1.25e-300),
            Json::Num(6.02214076e23),
            Json::Int(0),
            Json::Int(1039),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Str("hello \"world\"\n\tπ".into()),
        ] {
            assert_eq!(Json::parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn integers_render_bare_and_floats_keep_suffix() {
        assert_eq!(Json::Int(1039).render(), "1039");
        // Integral floats keep their fractional suffix, so the legacy
        // float form of a counter still round-trips as `Num` and the two
        // variants never collide in rendered output.
        assert_eq!(Json::Num(1039.0).render(), "1039.0");
        assert_eq!(Json::parse("1039.0").unwrap(), Json::Num(1039.0));
        assert_eq!(Json::parse("1039").unwrap(), Json::Int(1039));
        // Digit-only tokens too large for i64 fall back to Num.
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Num(1e20)
        );
        // Either numeric variant satisfies the numeric accessors.
        assert_eq!(Json::Int(7).as_f64(), Some(7.0));
        assert_eq!(Json::Int(7).as_i64(), Some(7));
        assert_eq!(Json::Num(7.0).as_i64(), Some(7));
        assert_eq!(Json::Num(7.5).as_i64(), None);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            (
                "b".into(),
                Json::Obj(vec![("x".into(), Json::Str(String::new()))]),
            ),
            ("c".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn float_bits_survive_round_trip() {
        let tricky = [1.0 / 3.0, f64::MIN_POSITIVE, 1e-308 * 0.5, 0.1 + 0.2];
        for &x in &tricky {
            let back = Json::parse(&Json::Num(x).render()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x:e}");
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "nul", "\"abc", "1.2.3", "{}x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "aA\n"
        );
    }

    #[test]
    fn codec_round_trips_composites() {
        let v: Vec<(f64, f64)> = vec![(0.0, 1.5), (2.5, -3.0)];
        assert_eq!(Vec::<(f64, f64)>::from_json(&v.to_json()), Some(v));

        let s = Summary {
            count: 4,
            mean: 1.0,
            std_dev: 0.5,
            min: 0.1,
            max: 2.0,
        };
        assert_eq!(Summary::from_json(&s.to_json()), Some(s));

        let st = SolverStats {
            newton_iterations: 12,
            lu_factorizations: 12,
            step_rejections: 1,
            steps_accepted: 40,
            nonconvergence_events: 0,
            slot_cache_hits: 7,
            symbolic_reuses: 6,
            refactor_fallbacks: 1,
            bypass_solves: 3,
            batched_evals: 9,
            device_eval_ns: 123_456,
            linear_solve_ns: 654_321,
            fill_nnz: 2_048,
            ordering_ns: 77,
        };
        assert_eq!(SolverStats::from_json(&st.to_json()), Some(st));

        // Counters serialize as bare integers, not floats.
        let rendered = st.to_json().render();
        assert!(rendered.contains("\"newton\":12"), "{rendered}");
        assert!(rendered.contains("\"fill_nnz\":2048"), "{rendered}");
        assert!(!rendered.contains(".0"), "{rendered}");

        // The float form written by older builds still decodes.
        let float_form = Json::parse(
            r#"{"newton":12.0,"lu":12.0,"rejected":1.0,"accepted":40.0,"nonconv":0.0}"#,
        )
        .unwrap();
        let decoded = SolverStats::from_json(&float_form).unwrap();
        assert_eq!(decoded.newton_iterations, 12);
        assert_eq!(decoded.steps_accepted, 40);

        // Entries cached before the fast-path counters existed decode
        // with those counters at zero.
        let legacy =
            Json::parse(r#"{"newton":12,"lu":12,"rejected":1,"accepted":40,"nonconv":0}"#).unwrap();
        let decoded = SolverStats::from_json(&legacy).unwrap();
        assert_eq!(decoded.newton_iterations, 12);
        assert_eq!(decoded.slot_cache_hits, 0);
        assert_eq!(decoded.bypass_solves, 0);
        assert_eq!(decoded.batched_evals, 0);
        assert_eq!(decoded.device_eval_ns, 0);
        assert_eq!(decoded.linear_solve_ns, 0);

        // Entries from the linear-algebra-fast-path era (slot/bypass keys
        // present, attribution keys absent) also default the new trio.
        let pre_attr = Json::parse(
            r#"{"newton":2,"lu":2,"rejected":0,"accepted":4,"nonconv":0,
                "slot_hits":1,"sym_reuse":1,"refac_fb":0,"bypass":1}"#,
        )
        .unwrap();
        let decoded = SolverStats::from_json(&pre_attr).unwrap();
        assert_eq!(decoded.slot_cache_hits, 1);
        assert_eq!(decoded.batched_evals, 0);
        assert_eq!(decoded.device_eval_ns, 0);
        assert_eq!(decoded.linear_solve_ns, 0);
        assert_eq!(decoded.fill_nnz, 0);
        assert_eq!(decoded.ordering_ns, 0);
    }

    #[test]
    fn codec_rejects_shape_mismatch() {
        assert_eq!(f64::from_json(&Json::Str("1.0".into())), None);
        assert_eq!(u64::from_json(&Json::Num(-1.0)), None);
        assert_eq!(u64::from_json(&Json::Num(1.5)), None);
        assert_eq!(u64::from_json(&Json::Int(-1)), None);
        assert_eq!(u64::from_json(&Json::Int(7)), Some(7));
        assert_eq!(Vec::<f64>::from_json(&Json::Arr(vec![Json::Null])), None);
    }
}
