//! Batch supervision: per-job budgets and the progress-stall watchdog.
//!
//! [`Supervision`] is the harness-level policy — a per-job wall-clock
//! deadline, iteration caps, and a stall timeout — from which the
//! [`Runner`](crate::runner::Runner) derives one
//! [`Budget`](nemscmos_spice::budget::Budget) per job. The deadline and
//! the caps are enforced *in-band* by the budget itself (the Newton loop
//! polls every iteration); the watchdog covers the failure mode polling
//! cannot see on its own: a solve that keeps iterating but stops making
//! *progress* — a timestep-rejection storm, an op retry loop that never
//! converges. Progress is defined by heartbeat ticks (accepted transient
//! steps, completed DC solves), so raw Newton churn does not count.
//!
//! The [`Watchdog`] is one background thread per batch. Each running job
//! registers its interrupt flag and heartbeat; the thread scans every
//! [`Supervision::poll`] interval and *expires* the flag of any job whose
//! progress counter has not moved for [`Supervision::stall_timeout`]. The
//! job observes the raised flag at its next Newton iteration and returns
//! a typed [`SpiceError::DeadlineExceeded`](nemscmos_spice::SpiceError)
//! carrying the partial effort spent.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nemscmos_spice::budget::{Budget, InterruptFlag};
use nemscmos_spice::stats::Heartbeat;

use crate::HarnessError;

/// Per-job resource policy for a batch.
///
/// All limits are optional; the default is fully inert (no budget
/// installed, no watchdog spawned, zero per-iteration overhead).
#[derive(Debug, Clone)]
pub struct Supervision {
    /// Per-job wall-clock deadline (covers the job's whole retry
    /// ladder). Enforced in-band by the budget.
    pub deadline: Option<Duration>,
    /// Cancel a job whose heartbeat progress counter stops moving for
    /// this long. Enforced out-of-band by the watchdog thread.
    pub stall_timeout: Option<Duration>,
    /// Watchdog scan interval.
    pub poll: Duration,
    /// Per-job Newton iteration cap.
    pub max_newton: Option<u64>,
    /// Per-job LU factorization cap.
    pub max_lu: Option<u64>,
    /// Per-job step-rejection cap.
    pub max_rejections: Option<u64>,
}

impl Default for Supervision {
    fn default() -> Supervision {
        Supervision {
            deadline: None,
            stall_timeout: None,
            poll: Duration::from_millis(5),
            max_newton: None,
            max_lu: None,
            max_rejections: None,
        }
    }
}

impl Supervision {
    /// Supervision with only a per-job wall-clock deadline.
    pub fn deadline(d: Duration) -> Supervision {
        Supervision {
            deadline: Some(d),
            ..Supervision::default()
        }
    }

    /// Supervision from the environment:
    ///
    /// - `NEMSCMOS_HARNESS_DEADLINE_MS=n` — per-job deadline;
    /// - `NEMSCMOS_HARNESS_STALL_MS=n` — stall timeout.
    ///
    /// Unset values leave the corresponding limit off. A value that is
    /// *set but malformed* (not a positive integer number of
    /// milliseconds) is a typed [`HarnessError::Config`] — a garbage
    /// knob silently running a batch unsupervised is worse than
    /// refusing to start.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Config`] naming the offending variable and value.
    pub fn from_env() -> Result<Supervision, HarnessError> {
        Ok(Supervision {
            deadline: Self::env_ms("NEMSCMOS_HARNESS_DEADLINE_MS")?,
            stall_timeout: Self::env_ms("NEMSCMOS_HARNESS_STALL_MS")?,
            ..Supervision::default()
        })
    }

    /// Parses one `*_MS` environment knob: unset ⇒ `None`, a positive
    /// integer ⇒ `Some(duration)`, anything else ⇒ typed config error.
    fn env_ms(key: &str) -> Result<Option<Duration>, HarnessError> {
        let Ok(raw) = std::env::var(key) else {
            return Ok(None);
        };
        match raw.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(Some(Duration::from_millis(ms))),
            _ => Err(HarnessError::Config(format!(
                "{key}={raw:?} is not a positive integer number of milliseconds"
            ))),
        }
    }

    /// One-line rendering of the effective policy, for startup logs
    /// (servers print this so the active limits are never a mystery).
    pub fn describe(&self) -> String {
        let show = |d: Option<Duration>| match d {
            Some(d) => format!("{}ms", d.as_millis()),
            None => "off".to_string(),
        };
        let cap = |c: Option<u64>| match c {
            Some(c) => c.to_string(),
            None => "off".to_string(),
        };
        format!(
            "deadline {} | stall {} | max-newton {} | max-lu {} | max-rejections {}",
            show(self.deadline),
            show(self.stall_timeout),
            cap(self.max_newton),
            cap(self.max_lu),
            cap(self.max_rejections),
        )
    }

    /// Sets the stall timeout.
    #[must_use]
    pub fn with_stall_timeout(mut self, d: Duration) -> Supervision {
        self.stall_timeout = Some(d);
        self
    }

    /// Sets the per-job Newton iteration cap.
    #[must_use]
    pub fn with_max_newton(mut self, cap: u64) -> Supervision {
        self.max_newton = Some(cap);
        self
    }

    /// Sets the watchdog scan interval.
    #[must_use]
    pub fn with_poll(mut self, d: Duration) -> Supervision {
        self.poll = d;
        self
    }

    /// True when no limit is configured — the runner skips budgets and
    /// the watchdog entirely.
    pub fn is_inert(&self) -> bool {
        self.deadline.is_none()
            && self.stall_timeout.is_none()
            && self.max_newton.is_none()
            && self.max_lu.is_none()
            && self.max_rejections.is_none()
    }

    /// True when the out-of-band watchdog thread is needed (a stall
    /// timeout is configured; everything else is enforced in-band).
    pub fn needs_watchdog(&self) -> bool {
        self.stall_timeout.is_some()
    }

    /// The per-job budget implementing this policy, wired to the job's
    /// interrupt flag and heartbeat.
    pub fn budget(&self, flag: InterruptFlag, heartbeat: Arc<Heartbeat>) -> Budget {
        Budget {
            deadline: self.deadline,
            max_newton: self.max_newton,
            max_lu: self.max_lu,
            max_rejections: self.max_rejections,
            flag: Some(flag),
            heartbeat: Some(heartbeat),
        }
    }
}

/// One watched job: cancel handle plus the progress bookkeeping the
/// scanner thread updates.
struct SlotState {
    flag: InterruptFlag,
    heartbeat: Arc<Heartbeat>,
    progress_seen: u64,
    last_progress: Instant,
}

struct WatchShared {
    done: AtomicBool,
    stall_timeout: Duration,
    slots: Mutex<HashMap<usize, SlotState>>,
}

/// Background scanner that expires the interrupt flag of any registered
/// job whose progress stalls. Dropping the watchdog stops and joins the
/// thread.
pub struct Watchdog {
    shared: Arc<WatchShared>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("stall_timeout", &self.shared.stall_timeout)
            .finish_non_exhaustive()
    }
}

impl Watchdog {
    /// Spawns the scanner thread for `sup` (which must have a stall
    /// timeout; see [`Supervision::needs_watchdog`]).
    pub fn spawn(sup: &Supervision) -> Watchdog {
        let stall_timeout = sup
            .stall_timeout
            .expect("watchdog spawned without a stall timeout");
        let poll = sup.poll.max(Duration::from_millis(1));
        let shared = Arc::new(WatchShared {
            done: AtomicBool::new(false),
            stall_timeout,
            slots: Mutex::new(HashMap::new()),
        });
        let scanner = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("harness-watchdog".into())
            .spawn(move || {
                while !scanner.done.load(Ordering::Acquire) {
                    scanner.scan(Instant::now());
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// Puts job `index` under watch. The returned guard unregisters it
    /// on drop (normal completion, interrupt, or panic alike).
    pub fn register(
        &self,
        index: usize,
        flag: InterruptFlag,
        heartbeat: Arc<Heartbeat>,
    ) -> WatchGuard {
        let state = SlotState {
            progress_seen: heartbeat.progress(),
            last_progress: Instant::now(),
            flag,
            heartbeat,
        };
        self.shared
            .slots
            .lock()
            .expect("watchdog slots poisoned")
            .insert(index, state);
        WatchGuard {
            shared: Arc::clone(&self.shared),
            index,
        }
    }
}

impl WatchShared {
    fn scan(&self, now: Instant) {
        let mut slots = self.slots.lock().expect("watchdog slots poisoned");
        for state in slots.values_mut() {
            let progress = state.heartbeat.progress();
            if progress != state.progress_seen {
                state.progress_seen = progress;
                state.last_progress = now;
            } else if now.duration_since(state.last_progress) >= self.stall_timeout {
                // Sticky and idempotent: only the first expire wins, so
                // re-raising on later scans is harmless.
                state.flag.expire();
            }
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.done.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Unregisters one job from the watchdog on drop.
pub struct WatchGuard {
    shared: Arc<WatchShared>,
    index: usize,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.shared
            .slots
            .lock()
            .expect("watchdog slots poisoned")
            .remove(&self.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_spice::budget::InterruptKind;

    fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn env_parsing_is_strict_and_typed() {
        // One test covers set/garbage/unset sequentially — env vars are
        // process-global, so this must not be split across parallel
        // tests.
        let key = "NEMSCMOS_HARNESS_DEADLINE_MS";
        let stall = "NEMSCMOS_HARNESS_STALL_MS";
        let old_key = std::env::var(key).ok();
        let old_stall = std::env::var(stall).ok();

        std::env::set_var(key, "250");
        std::env::remove_var(stall);
        let sup = Supervision::from_env().expect("well-formed env parses");
        assert_eq!(sup.deadline, Some(Duration::from_millis(250)));
        assert_eq!(sup.stall_timeout, None);

        for garbage in ["soon", "-5", "1.5", "", "0"] {
            std::env::set_var(key, garbage);
            let err = Supervision::from_env().expect_err("garbage env must be refused");
            assert_eq!(err.kind(), crate::FailureKind::Config);
            let msg = err.to_string();
            assert!(
                msg.contains(key) && msg.contains("milliseconds"),
                "unhelpful config error: {msg}"
            );
        }

        match old_key {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
        match old_stall {
            Some(v) => std::env::set_var(stall, v),
            None => std::env::remove_var(stall),
        }
    }

    #[test]
    fn describe_renders_effective_limits() {
        let sup = Supervision::deadline(Duration::from_millis(40)).with_max_newton(100);
        let text = sup.describe();
        assert!(text.contains("deadline 40ms"), "{text}");
        assert!(text.contains("stall off"), "{text}");
        assert!(text.contains("max-newton 100"), "{text}");
    }

    #[test]
    fn default_supervision_is_inert() {
        let sup = Supervision::default();
        assert!(sup.is_inert());
        assert!(!sup.needs_watchdog());
        let sup = Supervision::deadline(Duration::from_secs(1));
        assert!(!sup.is_inert());
        assert!(!sup.needs_watchdog(), "deadlines are enforced in-band");
        assert!(sup
            .with_stall_timeout(Duration::from_millis(10))
            .needs_watchdog());
    }

    #[test]
    fn budget_carries_the_policy() {
        let sup = Supervision::deadline(Duration::from_millis(40)).with_max_newton(100);
        let flag = InterruptFlag::new();
        let b = sup.budget(flag.clone(), Arc::new(Heartbeat::new()));
        assert_eq!(b.deadline, Some(Duration::from_millis(40)));
        assert_eq!(b.max_newton, Some(100));
        assert!(b.flag.is_some());
        assert!(b.heartbeat.is_some());
    }

    #[test]
    fn stalled_job_gets_its_flag_expired() {
        let sup = Supervision::default()
            .with_stall_timeout(Duration::from_millis(20))
            .with_poll(Duration::from_millis(2));
        let dog = Watchdog::spawn(&sup);
        let flag = InterruptFlag::new();
        let hb = Arc::new(Heartbeat::new());
        let _guard = dog.register(0, flag.clone(), Arc::clone(&hb));
        assert!(
            wait_until(Duration::from_secs(5), || flag.raised().is_some()),
            "stalled slot was never cancelled"
        );
        assert_eq!(flag.raised(), Some(InterruptKind::Deadline));
    }

    #[test]
    fn progressing_job_is_left_alone() {
        let sup = Supervision::default()
            .with_stall_timeout(Duration::from_millis(60))
            .with_poll(Duration::from_millis(2));
        let dog = Watchdog::spawn(&sup);
        let flag = InterruptFlag::new();
        let hb = Arc::new(Heartbeat::new());
        let _guard = dog.register(3, flag.clone(), Arc::clone(&hb));
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(150) {
            hb.tick_progress();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(flag.raised(), None, "progressing job must not be cancelled");
    }

    #[test]
    fn dropping_the_guard_unregisters_the_job() {
        let sup = Supervision::default()
            .with_stall_timeout(Duration::from_millis(10))
            .with_poll(Duration::from_millis(2));
        let dog = Watchdog::spawn(&sup);
        let flag = InterruptFlag::new();
        let guard = dog.register(1, flag.clone(), Arc::new(Heartbeat::new()));
        drop(guard);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(flag.raised(), None, "unregistered job must not be touched");
    }
}
