//! Dependency-free work-stealing thread pool for experiment jobs.
//!
//! Built on `std::thread::scope` and channels — no `crossbeam`, no
//! `rayon`. Jobs are indexed `0..items`; each worker owns a deque of
//! indices and steals from its neighbours when it runs dry, so a few
//! slow simulations (a stiff transient, a deep retry ladder) do not
//! serialize the whole sweep.
//!
//! # Determinism
//!
//! The pool itself introduces no nondeterminism: the job function is
//! called with the job *index* only, results are returned in index
//! order, and any randomness must come from a per-index seed (see
//! [`nemscmos_numeric::rng::Xoshiro256pp::for_stream`]). A sweep run
//! with 1 thread and with N threads therefore produces bitwise-identical
//! results.
//!
//! # Telemetry
//!
//! Solver counters ([`nemscmos_spice::stats`]) are thread-local; the
//! pool measures the per-job delta on each worker and folds the total
//! back into the *calling* thread, so a parent scope (e.g. a harness
//! job that fans out a Monte Carlo) still observes all nested work.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use nemscmos_spice::stats::{self, SolverStats};

/// Worker-thread count from the environment, defaulting to the machine's
/// available parallelism.
///
/// `NEMSCMOS_HARNESS_THREADS=n` (n ≥ 1) overrides.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("NEMSCMOS_HARNESS_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Extracts a human-readable message from a caught panic payload.
///
/// `panic!("...")` payloads are `&str` or `String`; anything else (a
/// custom `panic_any` value) degrades to a placeholder rather than
/// losing the event.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pops a job index for worker `w`: its own queue first (back, LIFO),
/// then stealing from the other queues (front, FIFO).
fn pop_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue poisoned").pop_back() {
        return Some(i);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(i) = queues[victim].lock().expect("queue poisoned").pop_front() {
            return Some(i);
        }
    }
    None
}

/// Like [`parallel_map`], but panics from `f` are *returned* per slot as
/// `Err(payload)` instead of re-raised, so a panicking job cannot abort
/// the batch: every queued job still runs, the pool shuts down cleanly,
/// and the caller decides how to degrade each failed slot (the harness
/// `Runner` turns them into per-job `Panicked` records).
///
/// Every job runs even with one worker; solver-telemetry deltas from all
/// non-panicking jobs are folded back into the calling thread.
pub fn try_parallel_map<T, F>(threads: usize, items: usize, f: F) -> Vec<std::thread::Result<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if items == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, items);
    if threads == 1 {
        return (0..items)
            .map(|i| std::panic::catch_unwind(AssertUnwindSafe(|| f(i))))
            .collect();
    }

    // Contiguous blocks keep neighbouring jobs (often similar circuits)
    // on the same worker until stealing kicks in.
    let chunk = items.div_ceil(threads);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(items);
            // Own-queue pops are LIFO from the back; seed reversed so the
            // worker consumes its block in ascending index order.
            Mutex::new((lo..hi).rev().collect())
        })
        .collect();
    let completed = AtomicUsize::new(0);
    type Caught = Box<dyn std::any::Any + Send>;
    let (tx, rx) = mpsc::channel::<(usize, Result<T, Caught>, SolverStats)>();

    let mut slots: Vec<Option<std::thread::Result<T>>> = Vec::with_capacity(items);
    slots.resize_with(items, || None);
    let mut folded = SolverStats::default();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let tx = tx.clone();
            let queues = &queues;
            let completed = &completed;
            let f = &f;
            scope.spawn(move || loop {
                match pop_job(queues, w) {
                    Some(i) => {
                        // Catch the panic here and ship the payload to the
                        // caller as that slot's value, so the original
                        // payload (not `thread::scope`'s generic one) is
                        // preserved — and a panicking job still counts as
                        // completed, letting the other workers drain and
                        // terminate.
                        let outcome =
                            std::panic::catch_unwind(AssertUnwindSafe(|| stats::measure(|| f(i))));
                        completed.fetch_add(1, Ordering::SeqCst);
                        // Receiver outlives the workers, so the sends
                        // cannot fail.
                        match outcome {
                            Ok((result, delta)) => {
                                let _ = tx.send((i, Ok(result), delta));
                            }
                            Err(payload) => {
                                let _ = tx.send((i, Err(payload), SolverStats::default()));
                            }
                        }
                    }
                    None => {
                        if completed.load(Ordering::SeqCst) >= items {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
        drop(tx);
        for (i, result, delta) in rx {
            slots[i] = Some(result);
            folded += delta;
        }
    });

    stats::add(folded);
    slots
        .into_iter()
        .map(|s| s.expect("every job index completed"))
        .collect()
}

/// Runs `f(0..items)` across `threads` workers with work stealing and
/// returns the results in index order.
///
/// `threads` is clamped to `[1, items]`; with one worker (or one item)
/// everything runs inline on the calling thread. Solver-telemetry deltas
/// from all workers are folded back into the calling thread.
///
/// # Panics
///
/// Propagates a panic from `f` after all queued jobs finish (the
/// lowest-index panic payload is re-raised; see [`try_parallel_map`] to
/// receive panics as values instead).
pub fn parallel_map<T, F>(threads: usize, items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(items);
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for slot in try_parallel_map(threads, items, f) {
        match slot {
            Ok(v) => out.push(v),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let out = parallel_map(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads| {
            parallel_map(threads, 33, |i| {
                use nemscmos_numeric::rng::{Rand64, Xoshiro256pp};
                let mut rng = Xoshiro256pp::for_stream(7, i as u64);
                rng.next_f64()
            })
        };
        let one = run(1);
        for n in [2, 3, 8] {
            assert_eq!(run(n), one, "thread count {n} diverged");
        }
    }

    #[test]
    fn empty_and_single_item_work() {
        assert_eq!(parallel_map(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn stealing_covers_unbalanced_loads() {
        // One pathologically slow job at index 0; the rest must be stolen
        // and the whole map still completes with correct results.
        let out = parallel_map(4, 64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_stats_fold_into_caller() {
        let before = stats::snapshot();
        parallel_map(4, 16, |_| {
            stats::add(SolverStats {
                newton_iterations: 2,
                ..Default::default()
            })
        });
        let d = stats::snapshot().delta_since(&before);
        assert_eq!(d.newton_iterations, 32);
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let from_str = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(&*from_str), "static str");
        let from_string = std::panic::catch_unwind(|| panic!("formatted {}", 42)).unwrap_err();
        assert_eq!(panic_message(&*from_string), "formatted 42");
        let from_any = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(panic_message(&*from_any), "non-string panic payload");
    }

    #[test]
    #[should_panic(expected = "job 7 exploded")]
    fn job_panics_propagate() {
        parallel_map(4, 16, |i| {
            if i == 7 {
                panic!("job 7 exploded");
            }
            i
        });
    }

    #[test]
    fn try_map_drains_every_job_despite_panics() {
        // Regression for the resume_unwind panic path: multiple panicking
        // jobs must not stop the queue — every job runs, the pool joins
        // cleanly, and each payload lands in its own slot.
        let ran = AtomicUsize::new(0);
        let slots = try_parallel_map(4, 32, |i| {
            ran.fetch_add(1, Ordering::SeqCst);
            if i % 8 == 3 {
                panic!("job {i} exploded");
            }
            i
        });
        assert_eq!(ran.load(Ordering::SeqCst), 32, "queued jobs must drain");
        assert_eq!(slots.len(), 32);
        for (i, slot) in slots.iter().enumerate() {
            if i % 8 == 3 {
                let payload = slot.as_ref().expect_err("job should have panicked");
                assert_eq!(panic_message(&**payload), format!("job {i} exploded"));
            } else {
                assert_eq!(*slot.as_ref().expect("job should have succeeded"), i);
            }
        }
    }

    #[test]
    fn try_map_catches_panics_single_threaded_too() {
        let slots = try_parallel_map(1, 4, |i| {
            if i == 1 {
                panic!("inline boom");
            }
            i * 10
        });
        assert!(slots[1].is_err());
        assert_eq!(*slots[3].as_ref().unwrap(), 30);
    }

    #[test]
    fn try_map_still_folds_stats_from_surviving_jobs() {
        let before = stats::snapshot();
        let _ = try_parallel_map(4, 16, |i| {
            stats::add(SolverStats {
                newton_iterations: 2,
                ..Default::default()
            });
            if i == 5 {
                panic!("after counting");
            }
        });
        let d = stats::snapshot().delta_since(&before);
        // The panicking job's delta is lost (its measure never returned),
        // but every surviving job's work is folded back.
        assert_eq!(d.newton_iterations, 30);
    }
}
