//! Retry-on-nonconvergence with an escalation ladder.
//!
//! Newton non-convergence in a stiff hybrid NEMS-CMOS circuit is
//! usually rescued by a more conservative solve, at the cost of speed.
//! The ladder escalates through the classical SPICE arsenal, one rung
//! per attempt:
//!
//! 1. [`Rung::Direct`] — the job's own options, untouched.
//! 2. [`Rung::TightGmin`] — raise the convergence shunt floor and use a
//!    finer g_min-stepping ladder, with a larger Newton budget.
//! 3. [`Rung::SourceStepping`] — skip the direct solve and ramp the
//!    sources up in fine increments.
//! 4. [`Rung::BackwardEuler`] — all of the above, plus backward-Euler-only
//!    transient integration (maximum damping).
//!
//! The rung that finally succeeded is recorded in the job's
//! [`JobRecord`](crate::report::JobRecord) so sweeps can report which
//! circuits are near the edge of convergence.

use nemscmos_spice::profile::{self, SolveProfile};

use crate::HarnessError;

/// One rung of the escalation ladder (ordered, mildest first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The job's own solver options.
    Direct,
    /// Raised g_min floor + finer g_min stepping + bigger Newton budget.
    TightGmin,
    /// Forced fine-grained source stepping (plus the g_min floor).
    SourceStepping,
    /// Backward-Euler-only integration (plus everything above).
    BackwardEuler,
}

impl Rung {
    /// All rungs, mildest first.
    pub const ALL: [Rung; 4] = [
        Rung::Direct,
        Rung::TightGmin,
        Rung::SourceStepping,
        Rung::BackwardEuler,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Rung::Direct => "direct",
            Rung::TightGmin => "gmin",
            Rung::SourceStepping => "src-step",
            Rung::BackwardEuler => "be-only",
        }
    }

    /// The next, more conservative rung.
    pub fn next(self) -> Option<Rung> {
        match self {
            Rung::Direct => Some(Rung::TightGmin),
            Rung::TightGmin => Some(Rung::SourceStepping),
            Rung::SourceStepping => Some(Rung::BackwardEuler),
            Rung::BackwardEuler => None,
        }
    }

    /// The solver-profile overrides this rung installs.
    pub fn profile(self) -> SolveProfile {
        match self {
            Rung::Direct => SolveProfile::default(),
            Rung::TightGmin => SolveProfile {
                gmin_floor: Some(1e-9),
                newton_min_iter: Some(400),
                ..SolveProfile::default()
            },
            Rung::SourceStepping => SolveProfile {
                gmin_floor: Some(1e-9),
                newton_min_iter: Some(400),
                force_source_stepping: true,
                ..SolveProfile::default()
            },
            Rung::BackwardEuler => SolveProfile {
                gmin_floor: Some(1e-9),
                newton_min_iter: Some(400),
                force_source_stepping: true,
                force_backward_euler: true,
                ..SolveProfile::default()
            },
        }
    }
}

/// How far the ladder may escalate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Highest rung to try (inclusive). [`Rung::Direct`] disables retries.
    pub max_rung: Rung,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_rung: Rung::BackwardEuler,
        }
    }
}

/// Context handed to a job body for one attempt.
#[derive(Debug, Clone, Copy)]
pub struct Attempt {
    /// The active escalation rung. The matching [`SolveProfile`] is
    /// already installed for the calling thread, so circuit APIs pick it
    /// up automatically; jobs may also branch on it directly.
    pub rung: Rung,
    /// 0-based attempt counter.
    pub index: u32,
    /// Deterministic master seed for this job (same on every attempt, so
    /// a retried Monte Carlo redraws the identical samples).
    pub seed: u64,
}

/// Runs `f` under the ladder: each attempt installs the rung's solver
/// profile for the current thread; any retryable error
/// ([`HarnessError::is_retryable`] — non-convergence and the typed
/// numerical-health diagnostics) escalates to the next rung, any other
/// error (or rung exhaustion) propagates.
///
/// On success returns the value, the rung that succeeded, and the number
/// of attempts made.
///
/// # Errors
///
/// Once the ladder is exhausted, the last non-convergence error wrapped
/// with the attempt history, or the last typed health diagnostic
/// unchanged (so its structure reaches the failure taxonomy); a
/// non-retryable error propagates on first occurrence.
pub fn run_with_retries<T>(
    policy: RetryPolicy,
    seed: u64,
    f: impl Fn(&Attempt) -> Result<T, HarnessError>,
) -> Result<(T, Rung, u32), HarnessError> {
    let mut rung = Rung::Direct;
    let mut attempts = 0u32;
    loop {
        let attempt = Attempt {
            rung,
            index: attempts,
            seed,
        };
        attempts += 1;
        match profile::with(rung.profile(), || f(&attempt)) {
            Ok(value) => return Ok((value, rung, attempts)),
            Err(e) if e.is_retryable() => match rung.next().filter(|r| *r <= policy.max_rung) {
                Some(next) => rung = next,
                None => {
                    return Err(match e {
                        HarnessError::NonConvergence(detail) => {
                            HarnessError::NonConvergence(format!(
                                "ladder exhausted after {attempts} attempts \
                                 (last rung `{}`): {detail}",
                                rung.label()
                            ))
                        }
                        typed => typed,
                    })
                }
            },
            Err(other) => return Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_success_stays_on_direct() {
        let (v, rung, attempts) =
            run_with_retries(RetryPolicy::default(), 1, |a| Ok::<_, HarnessError>(a.seed)).unwrap();
        assert_eq!(v, 1);
        assert_eq!(rung, Rung::Direct);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn ladder_escalates_and_records_rung() {
        // Fails until source stepping is active.
        let (v, rung, attempts) = run_with_retries(RetryPolicy::default(), 9, |a| {
            if a.rung < Rung::SourceStepping {
                Err(HarnessError::NonConvergence("too stiff".into()))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(v, 42);
        assert_eq!(rung, Rung::SourceStepping);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn profiles_are_installed_per_attempt() {
        let seen = std::cell::RefCell::new(Vec::new());
        let _ = run_with_retries(RetryPolicy::default(), 0, |_| {
            seen.borrow_mut().push(profile::current());
            Err::<(), _>(HarnessError::NonConvergence("never".into()))
        });
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 4);
        assert!(seen[0].is_neutral());
        assert_eq!(seen[1].gmin_floor, Some(1e-9));
        assert!(seen[2].force_source_stepping);
        assert!(seen[3].force_backward_euler);
        // Ladder restored neutrality afterwards.
        assert!(profile::current().is_neutral());
    }

    #[test]
    fn exhaustion_reports_last_rung() {
        let err = run_with_retries(RetryPolicy::default(), 0, |_| {
            Err::<(), _>(HarnessError::NonConvergence("stuck".into()))
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("be-only") && msg.contains("stuck"), "{msg}");
    }

    #[test]
    fn policy_caps_escalation() {
        let policy = RetryPolicy {
            max_rung: Rung::TightGmin,
        };
        let calls = std::cell::Cell::new(0);
        let err = run_with_retries(policy, 0, |_| {
            calls.set(calls.get() + 1);
            Err::<(), _>(HarnessError::NonConvergence("x".into()))
        })
        .unwrap_err();
        assert!(matches!(err, HarnessError::NonConvergence(_)));
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn typed_health_errors_escalate_and_survive_exhaustion() {
        use nemscmos_spice::SpiceError;
        let singular = SpiceError::SingularSystem {
            column: 0,
            unknown: "node 'x'".into(),
            pivot: 0.0,
            time: 0.0,
        };
        let calls = std::cell::Cell::new(0);
        let err = run_with_retries(RetryPolicy::default(), 0, |_| {
            calls.set(calls.get() + 1);
            Err::<(), _>(HarnessError::Spice(singular.clone()))
        })
        .unwrap_err();
        // All four rungs tried; the structured diagnostic comes back
        // unwrapped so the taxonomy can classify it.
        assert_eq!(calls.get(), 4);
        assert_eq!(err, HarnessError::Spice(singular));
    }

    #[test]
    fn non_retryable_errors_pass_through() {
        let calls = std::cell::Cell::new(0);
        let err = run_with_retries(RetryPolicy::default(), 0, |_| {
            calls.set(calls.get() + 1);
            Err::<(), _>(HarnessError::Failed("bad circuit".into()))
        })
        .unwrap_err();
        assert!(matches!(err, HarnessError::Failed(_)));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn seed_is_stable_across_attempts() {
        let seeds = std::cell::RefCell::new(Vec::new());
        let _ = run_with_retries(RetryPolicy::default(), 1234, |a| {
            seeds.borrow_mut().push(a.seed);
            if a.index < 2 {
                Err(HarnessError::NonConvergence("again".into()))
            } else {
                Ok(())
            }
        });
        assert_eq!(seeds.into_inner(), vec![1234, 1234, 1234]);
    }
}
