//! # nemscmos-harness
//!
//! Parallel experiment orchestration for the NEMS-CMOS workspace:
//! caching, retry-on-nonconvergence, and solver telemetry.
//!
//! Reproducing the paper's figures means running hundreds of circuit
//! simulations — fan-in sweeps, SRAM corners, Monte Carlo variation
//! studies. This crate turns each of those into a *job* with a canonical
//! spec string and runs batches of jobs through four cooperating layers:
//!
//! - [`pool`] — a dependency-free work-stealing thread pool
//!   (`std::thread::scope` + channels, no `crossbeam`/`rayon`) with
//!   deterministic per-job seeding: results are bitwise identical at any
//!   thread count.
//! - [`cache`] — a content-addressed on-disk result cache keyed by a
//!   128-bit digest of the spec string, persisting JSON artifacts under
//!   `target/harness-cache/`.
//! - [`retry`] — a robustness ladder that catches Newton
//!   non-convergence and retries with progressively more conservative
//!   solver settings (tight g_min stepping → source stepping →
//!   backward-Euler-only), recording which rung succeeded.
//! - [`report`] — per-job solver counters (Newton iterations, LU
//!   factorizations, timestep rejections, wall time) aggregated into a
//!   [`RunReport`] and published to a process-global sink.
//! - [`watchdog`] — per-job [`Supervision`]: wall-clock deadlines and
//!   iteration caps enforced in-band by a solve budget, plus a stall
//!   watchdog that cancels jobs whose heartbeat stops progressing.
//! - [`journal`] — crash-safe checkpoint/resume: completed jobs are
//!   fsync'd to an append-only JSONL journal, and [`Runner::resume`]
//!   re-executes only the jobs a killed run never finished.
//!
//! The [`Runner`] ties the layers together:
//!
//! ```
//! use nemscmos_harness::{HarnessError, JobSpec, Runner};
//!
//! let runner = Runner::with_config(2, None, Default::default());
//! let jobs: Vec<JobSpec> = (1..=4)
//!     .map(|n| JobSpec::new(format!("or{n}"), format!("doc-or fan_in={n}")))
//!     .collect();
//! let (results, report) = runner.run_collect("doc sweep", &jobs, |i, attempt| {
//!     // a real job would build and simulate circuit `i` here, seeding
//!     // any randomness from `attempt.seed`
//!     Ok::<f64, HarnessError>(attempt.seed as f64 % 10.0 + i as f64)
//! });
//! assert_eq!(results.len(), 4);
//! println!("{}", report.render());
//! ```
//!
//! ## Environment knobs
//!
//! - `NEMSCMOS_HARNESS_THREADS=n` — worker count;
//! - `NEMSCMOS_HARNESS_CACHE=off` — disable the result cache;
//! - `NEMSCMOS_HARNESS_CACHE_DIR=path` — cache directory override;
//! - `NEMSCMOS_HARNESS_DEADLINE_MS=n` — per-job wall-clock deadline;
//! - `NEMSCMOS_HARNESS_STALL_MS=n` — cancel jobs whose progress stalls
//!   for `n` milliseconds.
//!
//! Like the rest of the workspace, this crate builds fully offline: no
//! external dependencies (the JSON layer and the PRNG are vendored).

pub mod cache;
pub mod journal;
pub mod json;
pub mod pool;
pub mod report;
pub mod retry;
pub mod runner;
pub mod watchdog;

use std::error::Error;
use std::fmt;

use nemscmos_spice::SpiceError;

pub use cache::{content_digest, spec_seed, Cache};
pub use journal::Journal;
pub use json::{Json, JsonCodec};
pub use pool::{default_threads, panic_message, parallel_map, try_parallel_map};
pub use report::{
    drain as drain_reports, publish as publish_report, supervision_totals, JobOutcome, JobRecord,
    RunReport,
};
pub use retry::{run_with_retries, Attempt, RetryPolicy, Rung};
pub use runner::{FaultSource, JobSpec, Runner};
pub use watchdog::{Supervision, Watchdog};

/// Errors produced by harness jobs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HarnessError {
    /// The solver failed to converge — the retry ladder escalates on
    /// this variant.
    NonConvergence(String),
    /// A typed numerical-health diagnostic from the solver (singular
    /// system, non-finite stamp, KCL-audit violation). Retains the full
    /// structured error so the failure taxonomy can classify it; the
    /// retry ladder escalates on these too, since a more conservative
    /// solve often cures them.
    Spice(SpiceError),
    /// The job body panicked; the payload message is preserved. Never
    /// retried — a panic means a bug, not a stiff circuit.
    Panicked(String),
    /// The job failed for a non-retryable reason (invalid circuit,
    /// analysis error, ...).
    Failed(String),
    /// The result cache could not be written or read.
    Cache(String),
    /// A cached artifact could not be decoded into the expected type.
    Codec(String),
    /// Malformed harness configuration (garbage environment knobs).
    /// Long-running services refuse to start on this instead of
    /// silently running unsupervised.
    Config(String),
}

/// Coarse failure classification for run-report taxonomies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum FailureKind {
    /// Newton/timestep non-convergence after the full ladder.
    NonConvergence,
    /// Singular system (structurally or numerically collapsed pivot).
    Singular,
    /// Non-finite value detected during assembly or solve.
    NonFinite,
    /// Post-solve KCL residual audit failure.
    Kcl,
    /// Job panic caught at the harness boundary.
    Panic,
    /// Cache I/O failure.
    Cache,
    /// Artifact decode failure.
    Codec,
    /// Malformed configuration rejected at startup.
    Config,
    /// Deadline, iteration-cap, or watchdog-stall abort
    /// ([`SpiceError::DeadlineExceeded`]).
    Deadline,
    /// Cooperative external cancellation ([`SpiceError::Cancelled`]).
    Cancelled,
    /// Anything else (invalid circuit, domain errors, ...).
    Other,
}

impl FailureKind {
    /// Short display label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::NonConvergence => "nonconv",
            FailureKind::Singular => "singular",
            FailureKind::NonFinite => "nonfinite",
            FailureKind::Kcl => "kcl",
            FailureKind::Panic => "panic",
            FailureKind::Cache => "cache",
            FailureKind::Codec => "codec",
            FailureKind::Config => "config",
            FailureKind::Deadline => "deadline",
            FailureKind::Cancelled => "cancelled",
            FailureKind::Other => "other",
        }
    }
}

impl HarnessError {
    /// Classifies this error for the failure taxonomy.
    pub fn kind(&self) -> FailureKind {
        match self {
            HarnessError::NonConvergence(_) => FailureKind::NonConvergence,
            HarnessError::Spice(SpiceError::SingularSystem { .. }) => FailureKind::Singular,
            HarnessError::Spice(SpiceError::NonFinite { .. }) => FailureKind::NonFinite,
            HarnessError::Spice(SpiceError::KclViolation { .. }) => FailureKind::Kcl,
            HarnessError::Spice(SpiceError::DeadlineExceeded { .. }) => FailureKind::Deadline,
            HarnessError::Spice(SpiceError::Cancelled { .. }) => FailureKind::Cancelled,
            HarnessError::Spice(_) => FailureKind::Other,
            HarnessError::Panicked(_) => FailureKind::Panic,
            HarnessError::Failed(_) => FailureKind::Other,
            HarnessError::Cache(_) => FailureKind::Cache,
            HarnessError::Codec(_) => FailureKind::Codec,
            HarnessError::Config(_) => FailureKind::Config,
        }
    }

    /// Whether the retry ladder should escalate on this error.
    ///
    /// Non-convergence and the numerical-health diagnostics are
    /// retryable — a raised g_min floor or source ramp frequently cures
    /// a collapsed pivot or an overflowing Newton iterate. Panics,
    /// invalid circuits, and infrastructure errors are not; neither are
    /// budget interrupts ([`SpiceError::DeadlineExceeded`] /
    /// [`SpiceError::Cancelled`]) — the job was *stopped*, and retrying
    /// against an expired deadline or a raised cancellation flag could
    /// only fail again.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            HarnessError::NonConvergence(_)
                | HarnessError::Spice(
                    SpiceError::SingularSystem { .. }
                        | SpiceError::NonFinite { .. }
                        | SpiceError::KclViolation { .. }
                )
        )
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::NonConvergence(msg) => write!(f, "non-convergence: {msg}"),
            HarnessError::Spice(e) => write!(f, "solver health: {e}"),
            HarnessError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            HarnessError::Failed(msg) => write!(f, "job failed: {msg}"),
            HarnessError::Cache(msg) => write!(f, "cache error: {msg}"),
            HarnessError::Codec(msg) => write!(f, "codec error: {msg}"),
            HarnessError::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl Error for HarnessError {}

impl From<SpiceError> for HarnessError {
    fn from(e: SpiceError) -> Self {
        match e {
            SpiceError::NoConvergence { .. } => HarnessError::NonConvergence(e.to_string()),
            typed @ (SpiceError::SingularSystem { .. }
            | SpiceError::NonFinite { .. }
            | SpiceError::KclViolation { .. }
            | SpiceError::DeadlineExceeded { .. }
            | SpiceError::Cancelled { .. }) => HarnessError::Spice(typed),
            other => HarnessError::Failed(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spice_nonconvergence_maps_to_retryable() {
        let e = SpiceError::NoConvergence {
            analysis: "op",
            time: 0.0,
            detail: "x".into(),
        };
        assert!(matches!(
            HarnessError::from(e),
            HarnessError::NonConvergence(_)
        ));
        let e = SpiceError::InvalidCircuit("bad".into());
        assert!(matches!(HarnessError::from(e), HarnessError::Failed(_)));
    }

    #[test]
    fn health_diagnostics_stay_typed_and_retryable() {
        let singular = SpiceError::SingularSystem {
            column: 3,
            unknown: "node 'x'".into(),
            pivot: 0.0,
            time: 0.0,
        };
        let e = HarnessError::from(singular);
        assert!(matches!(e, HarnessError::Spice(_)));
        assert_eq!(e.kind(), FailureKind::Singular);
        assert!(e.is_retryable());

        let nonfinite = SpiceError::NonFinite {
            device: "device 'm1'".into(),
            node: "node 'd'".into(),
            stage: "jacobian",
            time: 1e-9,
        };
        let e = HarnessError::from(nonfinite);
        assert_eq!(e.kind(), FailureKind::NonFinite);
        assert!(e.is_retryable());

        let kcl = SpiceError::KclViolation {
            node: "node 'b'".into(),
            residual: 1e-3,
            tol: 1e-9,
            time: 0.0,
        };
        let e = HarnessError::from(kcl);
        assert_eq!(e.kind(), FailureKind::Kcl);
        assert!(e.is_retryable());
    }

    #[test]
    fn interrupts_stay_typed_but_are_not_retryable() {
        let deadline = SpiceError::DeadlineExceeded {
            limit: "wall-clock deadline of 250ms".into(),
            time: 1e-9,
            spent: Box::default(),
        };
        let e = HarnessError::from(deadline);
        assert!(matches!(e, HarnessError::Spice(_)));
        assert_eq!(e.kind(), FailureKind::Deadline);
        assert!(!e.is_retryable(), "expired deadlines must not escalate");

        let cancelled = SpiceError::Cancelled {
            time: 0.0,
            spent: Box::default(),
        };
        let e = HarnessError::from(cancelled);
        assert_eq!(e.kind(), FailureKind::Cancelled);
        assert!(!e.is_retryable());
        assert_eq!(FailureKind::Deadline.label(), "deadline");
        assert_eq!(FailureKind::Cancelled.label(), "cancelled");
    }

    #[test]
    fn infrastructure_errors_are_not_retryable() {
        for (e, kind) in [
            (HarnessError::Panicked("boom".into()), FailureKind::Panic),
            (HarnessError::Failed("bad".into()), FailureKind::Other),
            (HarnessError::Cache("io".into()), FailureKind::Cache),
            (HarnessError::Codec("shape".into()), FailureKind::Codec),
            (HarnessError::Config("bad env".into()), FailureKind::Config),
        ] {
            assert_eq!(e.kind(), kind);
            assert!(!e.is_retryable(), "{e} must not be retryable");
        }
    }

    #[test]
    fn display_is_nonempty() {
        for e in [
            HarnessError::NonConvergence("a".into()),
            HarnessError::Failed("b".into()),
            HarnessError::Cache("c".into()),
            HarnessError::Codec("d".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
