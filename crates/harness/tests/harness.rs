//! Integration tests of the harness acceptance criteria: bitwise
//! determinism across thread counts, cache round-trips through the
//! runner, and the retry ladder rescuing a real non-convergent solve.

use nemscmos_harness::{Cache, HarnessError, JobSpec, RetryPolicy, Rung, Runner};
use nemscmos_numeric::newton::NewtonOptions;
use nemscmos_numeric::rng::{Rand64, Xoshiro256pp};
use nemscmos_spice::analysis::op::{op_with, OpOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::waveform::Waveform;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nemscmos-harness-itest-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sweep_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec::new(format!("job{i}"), format!("itest-sweep v1 item={i}")))
        .collect()
}

/// A pseudo-simulation: results depend only on the job's spec-derived
/// seed, never on which worker thread runs it.
fn pseudo_sim(seed: u64) -> Result<Vec<f64>, HarnessError> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Ok((0..32).map(|_| rng.next_f64()).collect())
}

#[test]
fn multi_threaded_run_is_bitwise_identical_to_single_threaded() {
    let jobs = sweep_jobs(40);
    let run = |threads: usize| {
        let runner = Runner::with_config(threads, None, RetryPolicy::default());
        let (results, _) = runner.run_collect("determinism", &jobs, |_, a| pseudo_sim(a.seed));
        results
            .into_iter()
            .map(Result::unwrap)
            .collect::<Vec<Vec<f64>>>()
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        let out = run(threads);
        // Bitwise, not approximate: compare the raw f64 bits.
        for (a, b) in reference.iter().flatten().zip(out.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{threads}-thread run diverged");
        }
    }
}

#[test]
fn second_run_is_served_from_the_cache() {
    let dir = scratch_dir("roundtrip");
    let jobs = sweep_jobs(10);

    let first_runner = Runner::with_config(4, Some(Cache::at(&dir)), RetryPolicy::default());
    let (results, report) = first_runner.run_collect("warm-up", &jobs, |_, a| pseudo_sim(a.seed));
    let first: Vec<Vec<f64>> = results.into_iter().map(Result::unwrap).collect();
    assert_eq!(report.cache_hits(), 0, "cold cache cannot hit");

    // A fresh runner on the same directory — as a second process run
    // would see it — must serve every job from disk without recomputing.
    let second_runner = Runner::with_config(4, Some(Cache::at(&dir)), RetryPolicy::default());
    let (results, report) =
        second_runner.run_collect("cached", &jobs, |_, _| -> Result<Vec<f64>, HarnessError> {
            panic!("cache miss: job recomputed")
        });
    let second: Vec<Vec<f64>> = results.into_iter().map(Result::unwrap).collect();
    assert_eq!(report.cache_hits(), jobs.len());
    for (a, b) in first.iter().flatten().zip(second.iter().flatten()) {
        assert_eq!(a.to_bits(), b.to_bits(), "cached result changed bits");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The op.rs "starved Newton" fixture: a trivially solvable divider given
/// an iteration budget so small the direct solve cannot converge. The
/// `TightGmin` rung raises the Newton budget through the thread-local
/// solve profile, so the harness rescues the job and records the rung.
#[test]
fn retry_ladder_rescues_a_real_nonconvergent_solve() {
    let jobs = [JobSpec::new(
        "starved-divider",
        "itest-retry starved divider v1",
    )];
    let runner = Runner::with_config(1, None, RetryPolicy::default());
    let (results, report) = runner.run_collect("retry", &jobs, |_, _| {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(5.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);
        // Damped so hard that the direct solve — internal g_min and
        // source-stepping fallbacks included — runs out of iterations;
        // only the ladder's Newton-budget boost can reach 2.5 V.
        let opts = OpOptions {
            newton: NewtonOptions {
                max_iter: 12,
                max_step: 1e-3,
                ..Default::default()
            },
            ..Default::default()
        };
        let res = op_with(&mut ckt, &opts).map_err(HarnessError::from)?;
        Ok(res.voltage(b))
    });
    let v = results
        .into_iter()
        .next()
        .unwrap()
        .expect("ladder rescues the job");
    assert!((v - 2.5).abs() < 1e-3, "wrong solution: {v}");
    let job = &report.jobs[0];
    assert!(
        job.rung >= Rung::TightGmin,
        "expected an escalated rung, got {:?}",
        job.rung
    );
    assert!(
        job.attempts >= 2,
        "expected at least one retry, got {}",
        job.attempts
    );
    // The failed direct attempt left telemetry behind.
    assert!(job.stats.newton_iterations > 0);
    assert!(job.stats.lu_factorizations > 0);
    assert!(job.stats.nonconvergence_events >= 1);
    assert_eq!(report.retried_jobs(), 1);
}

#[test]
fn exhausted_ladder_reports_nonconvergence() {
    let jobs = [JobSpec::new("hopeless", "itest-retry hopeless v1")];
    let runner = Runner::with_config(1, None, RetryPolicy::default());
    let (results, report) = runner.run_collect("exhaust", &jobs, |_, _| {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(100.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        // An impossible budget: every rung fails.
        let opts = OpOptions {
            newton: NewtonOptions {
                max_iter: 2,
                max_step: 1e-6,
                ..Default::default()
            },
            ..Default::default()
        };
        op_with(&mut ckt, &opts)
            .map(|res| res.voltage(a))
            .map_err(HarnessError::from)
    });
    let err = results.into_iter().next().unwrap().unwrap_err();
    assert!(matches!(err, HarnessError::NonConvergence(_)), "{err}");
    assert!(err.to_string().contains("ladder exhausted"), "{err}");
    assert!(report.jobs[0].stats.nonconvergence_events >= 1);
}
