//! Integration tests for batch supervision and crash-safe resume: the
//! stall watchdog cancelling a wedged solve as a typed error, per-job
//! deadlines with recorded margins, journal-based resume re-executing
//! only unfinished jobs, and panics escaping the per-job body guard
//! degrading to records instead of aborting the batch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use nemscmos_harness::{
    Cache, FailureKind, HarnessError, JobOutcome, JobSpec, Json, JsonCodec, RetryPolicy, Runner,
    Supervision,
};
use nemscmos_numeric::newton::NewtonOptions;
use nemscmos_numeric::rng::{Rand64, Xoshiro256pp};
use nemscmos_spice::analysis::op::{op_with, OpOptions};
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::budget::{self, Budget, InterruptFlag};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::stats;
use nemscmos_spice::waveform::Waveform;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nemscmos-supervision-itest-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One attempt at a solve that cannot converge under these options (5 V
/// target, 1 mV damping, 12 iterations) but fails *fast* — the raw
/// material for a wedged job that burns Newton iterations forever
/// without ever making progress.
fn starved_op() -> Result<f64, nemscmos_spice::SpiceError> {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(5.0));
    ckt.resistor(a, b, 1e3);
    ckt.resistor(b, Circuit::GROUND, 1e3);
    let opts = OpOptions {
        newton: NewtonOptions {
            max_iter: 12,
            max_step: 1e-3,
            ..Default::default()
        },
        ..Default::default()
    };
    op_with(&mut ckt, &opts).map(|res| res.voltage(b))
}

#[test]
fn stall_watchdog_cancels_a_wedged_job_with_a_typed_error() {
    let sup = Supervision::default()
        .with_stall_timeout(Duration::from_millis(40))
        .with_poll(Duration::from_millis(5));
    let runner = Runner::with_config(2, None, RetryPolicy::default()).with_supervision(sup);
    let jobs = [JobSpec::new("wedged", "supervision-wedged v1")];
    let (results, report) =
        runner.run_collect("wedge", &jobs, |_, _| -> Result<f64, HarnessError> {
            // Retry the doomed solve forever: no accepted steps, no completed
            // DC solves, so the heartbeat's progress counter never moves.
            // Only the supervisor can end this loop.
            loop {
                match starved_op() {
                    Err(e) if e.is_interrupt() => return Err(e.into()),
                    _ => continue,
                }
            }
        });
    assert!(results[0].is_err(), "wedged job must not succeed");
    assert_eq!(report.deadline_exceeded_jobs(), 1);
    assert_eq!(report.panicked_jobs(), 0, "cancellation must not panic");
    match &report.jobs[0].outcome {
        JobOutcome::Failed { kind, message } => {
            assert_eq!(*kind, FailureKind::Deadline);
            assert!(message.contains("cancelled by supervisor"), "{message}");
        }
        other => panic!("expected a typed failure, got {other:?}"),
    }
    // Partial telemetry from the interrupted solve survives.
    assert!(report.jobs[0].stats.newton_iterations > 0);
}

#[test]
fn per_job_deadline_interrupts_a_long_transient_and_records_the_margin() {
    let sup = Supervision::deadline(Duration::from_millis(30));
    let runner = Runner::with_config(1, None, RetryPolicy::default()).with_supervision(sup);
    let jobs = [JobSpec::new("slow-tran", "supervision-slow-tran v1")];
    let (results, report) =
        runner.run_collect("deadline", &jobs, |_, _| -> Result<f64, HarnessError> {
            // An open-ended workload (re-simulate until told to stop):
            // however fast one transient is, the job outlives 30 ms and
            // the in-band deadline interrupts it mid-solve.
            loop {
                let mut ckt = Circuit::new();
                let vin = ckt.node("in");
                let out = ckt.node("out");
                ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
                ckt.resistor(vin, out, 1e3);
                ckt.capacitor(out, Circuit::GROUND, 1e-9);
                match transient(&mut ckt, 1e-2, &TranOptions::default()) {
                    Err(e) if e.is_interrupt() => return Err(e.into()),
                    _ => continue,
                }
            }
        });
    assert!(results[0].is_err());
    let job = &report.jobs[0];
    assert_eq!(job.outcome.failure_kind(), Some(FailureKind::Deadline));
    let margin = job.deadline_margin.expect("deadline runs record a margin");
    assert!(margin < 0.0, "an overrun job has negative margin: {margin}");
    assert!(job.stats.newton_iterations > 0, "partial telemetry missing");

    // A fast job under the same policy finishes with margin to spare.
    let (results, report) = runner.run_collect(
        "deadline-fast",
        &[JobSpec::new("fast", "supervision-fast v1")],
        |_, _| Ok(1.0),
    );
    assert!(results[0].is_ok());
    assert!(report.jobs[0].deadline_margin.unwrap() > 0.0);
}

/// The deterministic pseudo-simulation used by the resume tests: depends
/// only on the spec-derived seed, so an uninterrupted run and a
/// kill-and-resume run must agree bitwise.
fn pseudo_sim(seed: u64) -> f64 {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    rng.next_f64()
}

#[test]
fn resumed_run_reexecutes_only_unfinished_jobs_bitwise_identically() {
    let dir = scratch_dir("resume");
    let jobs: Vec<JobSpec> = (0..8)
        .map(|i| JobSpec::new(format!("j{i}"), format!("supervision-resume v1 item={i}")))
        .collect();

    // Baseline: a clean uninterrupted run with no cache or journal.
    let baseline: Vec<f64> = Runner::with_config(4, None, RetryPolicy::default())
        .run_collect("baseline", &jobs, |_, a| Ok(pseudo_sim(a.seed)))
        .0
        .into_iter()
        .map(Result::unwrap)
        .collect();

    // Pass 1: journaled run "killed" partway — job 5 fails, the other
    // seven land in the journal.
    let runner = Runner::with_config(4, Some(Cache::at(&dir)), RetryPolicy::default())
        .with_journal("itest-resume")
        .unwrap();
    let (results, report) = runner.run_collect("pass1", &jobs, |i, a| {
        if i == 5 {
            return Err(HarnessError::Failed("killed before finishing".into()));
        }
        Ok(pseudo_sim(a.seed))
    });
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 7);
    assert_eq!(report.resumed_jobs(), 0, "a fresh run resumes nothing");

    // Pass 2: resume the same run id with a fresh runner. Exactly one
    // job (the unfinished one) re-executes; the rest come back from the
    // journal.
    let runner = Runner::with_config(4, Some(Cache::at(&dir)), RetryPolicy::default())
        .with_journal("itest-resume")
        .unwrap();
    assert_eq!(runner.journal().unwrap().recovered(), 7);
    let executed = AtomicUsize::new(0);
    let (results, report) = runner.run_collect("pass2", &jobs, |_, a| {
        executed.fetch_add(1, Ordering::SeqCst);
        Ok(pseudo_sim(a.seed))
    });
    assert_eq!(
        executed.load(Ordering::SeqCst),
        1,
        "journaled jobs must not re-run"
    );
    assert_eq!(report.resumed_jobs(), 7);
    assert_eq!(report.failed_jobs(), 0);
    let resumed: Vec<f64> = results.into_iter().map(Result::unwrap).collect();
    for (i, (a, b)) in baseline.iter().zip(&resumed).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "job {i} diverged after resume");
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// A result type whose encoder explodes — `to_json` runs during the
/// cache store, *outside* the per-job body guard.
#[derive(Debug)]
struct Bomb {
    value: f64,
    explode: bool,
}

impl JsonCodec for Bomb {
    fn to_json(&self) -> Json {
        if self.explode {
            panic!("codec exploded");
        }
        Json::Num(self.value)
    }
    fn from_json(v: &Json) -> Option<Bomb> {
        Some(Bomb {
            value: v.as_f64()?,
            explode: false,
        })
    }
}

#[test]
fn panic_outside_the_job_guard_degrades_to_a_record_not_a_batch_abort() {
    let dir = scratch_dir("bomb");
    let runner = Runner::with_config(2, Some(Cache::at(&dir)), RetryPolicy::default());
    let jobs: Vec<JobSpec> = (0..3)
        .map(|i| JobSpec::new(format!("b{i}"), format!("supervision-bomb v1 item={i}")))
        .collect();
    let (results, report) = runner.run_collect("bomb", &jobs, |i, _| {
        Ok::<Bomb, HarnessError>(Bomb {
            value: i as f64,
            explode: i == 1,
        })
    });
    assert_eq!(report.jobs.len(), 3, "the batch must complete");
    assert_eq!(report.panicked_jobs(), 1);
    assert!(results[0].is_ok() && results[2].is_ok());
    match &results[1] {
        Err(HarnessError::Panicked(msg)) => assert!(msg.contains("codec exploded"), "{msg}"),
        other => panic!("expected a panicked slot, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// Retries the doomed solve under the installed budget, raising `flag`
/// in the gap after the first rung returns. Attempt 1 fails with a
/// *retryable* non-convergence, the ladder escalates, and attempt 2's
/// very first Newton poll sees the sticky flag — the interrupt is typed,
/// non-retryable, and must stop the ladder cold.
fn interrupted_ladder(flag: &InterruptFlag, raise: impl Fn(&InterruptFlag)) -> (HarnessError, u32) {
    let attempts = AtomicUsize::new(0);
    let err = nemscmos_harness::run_with_retries(RetryPolicy::default(), 7, |attempt| {
        attempts.fetch_add(1, Ordering::SeqCst);
        let result = starved_op().map(|_| ()).map_err(HarnessError::from);
        if attempt.index == 0 {
            assert!(
                result.as_ref().is_err_and(HarnessError::is_retryable),
                "rung 1 must fail retryably for the drill to be meaningful"
            );
            raise(flag); // the supervisor fires between rungs
        }
        result
    })
    .unwrap_err();
    (err, attempts.load(Ordering::SeqCst) as u32)
}

#[test]
fn cancellation_between_rungs_stops_the_ladder_with_partial_telemetry() {
    let flag = InterruptFlag::new();
    let budget = Budget {
        flag: Some(flag.clone()),
        ..Budget::unbounded()
    };
    let ((err, attempts), spent) = stats::measure(|| {
        budget::with(budget, || interrupted_ladder(&flag, InterruptFlag::cancel))
    });
    // Exactly the escalation attempt that hit the flag — no third rung.
    assert_eq!(attempts, 2, "cancellation must not buy another rung");
    assert_eq!(err.kind(), FailureKind::Cancelled);
    assert!(!err.is_retryable(), "an interrupt is never retryable");
    // The effort of the interrupted attempts is still accounted for.
    assert!(
        spent.newton_iterations > 0,
        "partial telemetry lost: {spent:?}"
    );
}

#[test]
fn deadline_between_rungs_stops_the_ladder_with_partial_telemetry() {
    let flag = InterruptFlag::new();
    let budget = Budget {
        flag: Some(flag.clone()),
        ..Budget::unbounded()
    };
    let ((err, attempts), spent) = stats::measure(|| {
        budget::with(budget, || interrupted_ladder(&flag, InterruptFlag::expire))
    });
    assert_eq!(attempts, 2, "deadline expiry must not buy another rung");
    assert_eq!(err.kind(), FailureKind::Deadline);
    assert!(!err.is_retryable(), "an interrupt is never retryable");
    assert!(
        spent.newton_iterations > 0,
        "partial telemetry lost: {spent:?}"
    );
}
