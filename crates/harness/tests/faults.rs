//! Integration tests of the fault-injection degradation contract:
//! profile-keyed faults are rescued by exactly the targeted retry rung,
//! never-disarming faults surface as typed diagnostics, panicking jobs
//! degrade to a recorded outcome without aborting the batch, and
//! unfaulted jobs stay bitwise identical whether or not a fault source
//! is installed.

use nemscmos_harness::{
    Cache, FailureKind, HarnessError, JobOutcome, JobSpec, RetryPolicy, Rung, Runner,
};
use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::faults::{Disarm, FaultKind, FaultPlan};
use nemscmos_spice::waveform::Waveform;
use nemscmos_spice::SpiceError;

/// 2 V through 1 kΩ / 3 kΩ: v(b) = 1.5 V.
fn divider_voltage() -> Result<f64, HarnessError> {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
    ckt.resistor(a, b, 1e3);
    ckt.resistor(b, Circuit::GROUND, 3e3);
    let res = op(&mut ckt).map_err(HarnessError::from)?;
    Ok(res.voltage(b))
}

/// RC low-pass step response, final output voltage after 10 τ.
fn rc_final_voltage() -> Result<f64, HarnessError> {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, out, 1e3);
    ckt.capacitor(out, Circuit::GROUND, 1e-9);
    let res = transient(&mut ckt, 10e-6, &TranOptions::default()).map_err(HarnessError::from)?;
    Ok(res.voltage(out).last_value())
}

/// Runs one faulted job through a single-threaded runner and returns the
/// result plus its report record.
fn run_faulted(
    name: &str,
    plan: FaultPlan,
    body: impl Fn() -> Result<f64, HarnessError> + Sync,
) -> (Result<f64, HarnessError>, nemscmos_harness::RunReport) {
    let runner = Runner::with_config(1, None, RetryPolicy::default())
        .with_fault_source(Box::new(move |_, _| Some(plan)));
    let jobs = [JobSpec::new(name, format!("faults-itest {name} v1"))];
    let (results, report) = runner.run_collect(name, &jobs, |_, _| body());
    (results.into_iter().next().unwrap(), report)
}

#[test]
fn gmin_keyed_fault_is_rescued_by_the_tight_gmin_rung() {
    let plan = FaultPlan::immediate(FaultKind::NanResidual, Disarm::WhenGminFloor, 21);
    let (result, report) = run_faulted("gmin-rescue", plan, divider_voltage);
    let v = result.expect("TightGmin disarms the fault");
    assert!((v - 1.5).abs() < 1e-4, "wrong solution: {v}");
    let job = &report.jobs[0];
    assert_eq!(job.rung, Rung::TightGmin);
    assert_eq!(job.attempts, 2);
    assert_eq!(job.outcome, JobOutcome::Recovered(Rung::TightGmin));
    assert_eq!(report.failed_jobs(), 0);
}

#[test]
fn source_stepping_keyed_fault_is_rescued_third() {
    let plan = FaultPlan::immediate(FaultKind::NanResidual, Disarm::WhenSourceStepping, 22);
    let (result, report) = run_faulted("src-rescue", plan, divider_voltage);
    let v = result.expect("SourceStepping disarms the fault");
    assert!((v - 1.5).abs() < 1e-4, "wrong solution: {v}");
    let job = &report.jobs[0];
    assert_eq!(job.rung, Rung::SourceStepping);
    assert_eq!(job.attempts, 3);
    assert_eq!(job.outcome, JobOutcome::Recovered(Rung::SourceStepping));
}

#[test]
fn backward_euler_keyed_storm_is_rescued_last() {
    let plan = FaultPlan::immediate(FaultKind::TimestepStorm, Disarm::WhenBackwardEuler, 23);
    let (result, report) = run_faulted("be-rescue", plan, rc_final_voltage);
    let v = result.expect("BackwardEuler disarms the storm");
    assert!((v - 1.0).abs() < 1e-3, "wrong solution: {v}");
    let job = &report.jobs[0];
    assert_eq!(job.rung, Rung::BackwardEuler);
    assert_eq!(job.attempts, 4);
    assert_eq!(job.outcome, JobOutcome::Recovered(Rung::BackwardEuler));
}

#[test]
fn never_disarming_fault_fails_typed_after_the_full_ladder() {
    let plan = FaultPlan::immediate(FaultKind::NanResidual, Disarm::Never, 24);
    let (result, report) = run_faulted("hopeless", plan, divider_voltage);
    let err = result.unwrap_err();
    assert!(
        matches!(err, HarnessError::Spice(SpiceError::NonFinite { .. })),
        "expected a typed NonFinite, got: {err}"
    );
    let job = &report.jobs[0];
    assert!(matches!(
        job.outcome,
        JobOutcome::Failed {
            kind: FailureKind::NonFinite,
            ..
        }
    ));
    assert_eq!(report.failure_taxonomy(), vec![(FailureKind::NonFinite, 1)]);
    let rendered = report.render();
    assert!(
        rendered.contains("failure taxonomy: nonfinite 1"),
        "{rendered}"
    );
}

#[test]
fn panicking_job_degrades_to_an_outcome_without_aborting_the_batch() {
    let runner = Runner::with_config(2, None, RetryPolicy::default());
    let jobs = [
        JobSpec::new("fine", "faults-itest panic fine v1"),
        JobSpec::new("buggy", "faults-itest panic buggy v1"),
    ];
    let (results, report) = runner.run_collect("panic-isolation", &jobs, |i, _| {
        if i == 1 {
            panic!("job body bug: index out of bounds");
        }
        divider_voltage()
    });
    assert!((results[0].as_ref().unwrap() - 1.5).abs() < 1e-6);
    let err = results[1].as_ref().unwrap_err();
    assert!(matches!(err, HarnessError::Panicked(_)), "{err}");
    assert!(err.to_string().contains("index out of bounds"), "{err}");
    assert!(matches!(
        report.jobs[1].outcome,
        JobOutcome::Panicked { .. }
    ));
    assert_eq!(report.panicked_jobs(), 1);
    assert_eq!(report.failure_taxonomy(), vec![(FailureKind::Panic, 1)]);
}

#[test]
fn unfaulted_jobs_are_bitwise_identical_with_a_fault_source_installed() {
    let jobs = [
        JobSpec::new("clean", "faults-itest bitwise clean v1"),
        JobSpec::new("faulted", "faults-itest bitwise faulted v1"),
    ];
    let baseline = {
        let runner = Runner::with_config(1, None, RetryPolicy::default());
        let (results, _) = runner.run_collect("baseline", &jobs, |_, _| divider_voltage());
        results.into_iter().map(Result::unwrap).collect::<Vec<_>>()
    };
    // Same jobs, but job 1 runs under an injected (and rescued) fault.
    let runner =
        Runner::with_config(1, None, RetryPolicy::default()).with_fault_source(Box::new(|i, _| {
            (i == 1).then(|| FaultPlan::immediate(FaultKind::NanResidual, Disarm::WhenGminFloor, 5))
        }));
    let (results, report) = runner.run_collect("chaos", &jobs, |_, _| divider_voltage());
    let chaos: Vec<f64> = results.into_iter().map(Result::unwrap).collect();
    // The unfaulted job is untouched down to the last bit; the faulted
    // one was rescued (its rescued-rung solve may legitimately differ).
    assert_eq!(baseline[0].to_bits(), chaos[0].to_bits());
    assert_eq!(report.jobs[0].outcome, JobOutcome::Ok);
    assert_eq!(
        report.jobs[1].outcome,
        JobOutcome::Recovered(Rung::TightGmin)
    );
}

#[test]
fn faulted_jobs_bypass_the_cache_in_both_directions() {
    let dir = std::env::temp_dir().join(format!(
        "nemscmos-faults-itest-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let job = JobSpec::new("cacheable", "faults-itest cache v1");
    let plan = FaultPlan::immediate(FaultKind::NanResidual, Disarm::WhenGminFloor, 6);

    // A faulted (rescued) run must not store its artifact.
    let runner = Runner::with_config(1, Some(Cache::at(&dir)), RetryPolicy::default())
        .with_fault_source(Box::new(move |_, _| Some(plan)));
    let (results, _) = runner.run_collect("store-bypass", std::slice::from_ref(&job), |_, _| {
        divider_voltage()
    });
    assert!(results[0].is_ok());
    let cache = Cache::at(&dir);
    assert!(
        cache.load(&job.digest(), &job.spec).is_none(),
        "fault-perturbed run must not populate the cache"
    );

    // Conversely a clean cached artifact must not mask an injected fault:
    // warm the cache, then re-run faulted with Disarm::Never and expect
    // the typed failure, not a cache hit.
    let clean = Runner::with_config(1, Some(Cache::at(&dir)), RetryPolicy::default());
    let (results, _) =
        clean.run_collect("warm", std::slice::from_ref(&job), |_, _| divider_voltage());
    assert!(results[0].is_ok());
    assert!(cache.load(&job.digest(), &job.spec).is_some());

    let hopeless = FaultPlan::immediate(FaultKind::NanResidual, Disarm::Never, 7);
    let faulted = Runner::with_config(1, Some(Cache::at(&dir)), RetryPolicy::default())
        .with_fault_source(Box::new(move |_, _| Some(hopeless)));
    let (results, report) =
        faulted.run_collect("load-bypass", std::slice::from_ref(&job), |_, _| {
            divider_voltage()
        });
    assert!(results[0].is_err(), "cached artifact masked the fault");
    assert_eq!(report.cache_hits(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
