//! `nemscmos-server` — the resident simulation job server binary.
//!
//! ```sh
//! nemscmos-server --socket /tmp/nemscmos.sock --dir target/server-run \
//!     --run-id nightly --workers 4
//! ```
//!
//! Supervision comes from the environment (`NEMSCMOS_HARNESS_DEADLINE_MS`,
//! `NEMSCMOS_HARNESS_STALL_MS`); a malformed knob is a *refusal to
//! start* (exit 2), never a silently-unsupervised server. The effective
//! policy and admission caps are logged at startup so the active limits
//! are never a mystery.

use std::process::ExitCode;
use std::time::Duration;

use nemscmos_harness::Supervision;
use nemscmos_server::{serve, AdmissionConfig, ServerConfig};

const USAGE: &str = "usage: nemscmos-server [options]

options:
  --socket PATH     unix socket to listen on      [default: <dir>/server.sock]
  --dir PATH        run directory (journal+cache) [default: target/server-run]
  --run-id ID       journal run id; reuse to resume a run  [default: server]
  --workers N       worker threads                [default: 2]
  --queue N         queue capacity                [default: 64]
  --watermark N     degrade queued MC decks at this depth  [default: 48]
  --min-trials N    degraded Monte-Carlo floor    [default: 16]
  --quota N         per-client newton-iteration grant      [default: 50000000]
  --heartbeat-ms N  heartbeat streaming interval  [default: 250]
  --help            print this help

environment:
  NEMSCMOS_HARNESS_DEADLINE_MS  per-job wall-clock deadline
  NEMSCMOS_HARNESS_STALL_MS     per-job stall watchdog timeout
(malformed values refuse to start: exit 2)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = String::from("target/server-run");
    let mut socket: Option<String> = None;
    let mut run_id = String::from("server");
    let mut workers: usize = 2;
    let mut admission = AdmissionConfig::default();
    let mut heartbeat_ms: u64 = 250;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        let Some(value) = it.next() else {
            eprintln!("nemscmos-server: {flag} needs a value\n{USAGE}");
            return ExitCode::from(2);
        };
        let parse_num = |what: &str| -> Result<u64, String> {
            value
                .parse::<u64>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or(format!("{what} {value:?} is not a positive integer"))
        };
        let result = match flag.as_str() {
            "--socket" => {
                socket = Some(value.clone());
                Ok(())
            }
            "--dir" => {
                dir = value.clone();
                Ok(())
            }
            "--run-id" => {
                run_id = value.clone();
                Ok(())
            }
            "--workers" => parse_num("--workers").map(|n| workers = n as usize),
            "--queue" => parse_num("--queue").map(|n| admission.queue_cap = n as usize),
            "--watermark" => {
                parse_num("--watermark").map(|n| admission.degrade_watermark = n as usize)
            }
            "--min-trials" => parse_num("--min-trials").map(|n| admission.min_trials = n as usize),
            "--quota" => parse_num("--quota").map(|n| admission.quota_newton = n),
            "--heartbeat-ms" => parse_num("--heartbeat-ms").map(|n| heartbeat_ms = n),
            unknown => Err(format!("unknown flag {unknown:?}")),
        };
        if let Err(e) = result {
            eprintln!("nemscmos-server: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    // Satellite contract: a garbage supervision knob refuses to start
    // with a typed config error instead of running unsupervised.
    let supervision = match Supervision::from_env() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("nemscmos-server: refusing to start: {e}");
            return ExitCode::from(2);
        }
    };

    let socket = socket.unwrap_or_else(|| format!("{dir}/server.sock"));
    let config = ServerConfig {
        socket: socket.clone().into(),
        dir: dir.clone().into(),
        run_id: run_id.clone(),
        workers,
        admission: admission.clone(),
        supervision: supervision.clone(),
        heartbeat_every: Duration::from_millis(heartbeat_ms),
    };
    println!("nemscmos-server: run {run_id:?} in {dir:?} on {socket:?}");
    println!(
        "nemscmos-server: {workers} worker(s) | queue {} | watermark {} | \
         mc floor {} | quota {} newton/client",
        admission.queue_cap,
        admission.degrade_watermark,
        admission.min_trials,
        admission.quota_newton
    );
    println!("nemscmos-server: supervision {}", supervision.describe());

    match serve(config) {
        Ok(()) => {
            println!("nemscmos-server: drained, bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("nemscmos-server: {e}");
            ExitCode::FAILURE
        }
    }
}
