//! `ServerClient`: a blocking NDJSON client with reconnect/backoff.
//!
//! One client owns one connection. Requests are issued one at a time,
//! but the server interleaves asynchronous lines (heartbeats, terminal
//! results of earlier submissions, shed notices) onto the same socket —
//! the client buffers whatever it reads past, so nothing is lost while
//! waiting for a specific answer.
//!
//! [`ServerClient::connect_with_retry`] exponentially backs off while
//! the server is down, which is exactly the window a crash/restart
//! drill needs to ride through.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use nemscmos_harness::{content_digest, Json};

use crate::proto::{RejectReason, Request, Response};

/// Blocking client for one server connection.
#[derive(Debug)]
pub struct ServerClient {
    reader: BufReader<UnixStream>,
    /// Responses read past while waiting for something else.
    pending: Vec<Response>,
}

/// How long one blocking read may wait before the client reports the
/// server unresponsive. Generous: a cold domino transient takes real
/// solver time.
const READ_TIMEOUT: Duration = Duration::from_secs(300);

impl ServerClient {
    /// Connects once.
    ///
    /// # Errors
    ///
    /// The rendered I/O error.
    pub fn connect(socket: impl AsRef<Path>) -> Result<ServerClient, String> {
        let socket = socket.as_ref();
        let stream = UnixStream::connect(socket).map_err(|e| format!("connect {socket:?}: {e}"))?;
        stream
            .set_read_timeout(Some(READ_TIMEOUT))
            .map_err(|e| format!("set read timeout: {e}"))?;
        Ok(ServerClient {
            reader: BufReader::new(stream),
            pending: Vec::new(),
        })
    }

    /// Connects with exponential backoff — `attempts` tries, starting
    /// at `backoff` and doubling. Rides through a server restart.
    ///
    /// # Errors
    ///
    /// The last connection error once the attempts are spent.
    pub fn connect_with_retry(
        socket: impl Into<PathBuf>,
        attempts: u32,
        backoff: Duration,
    ) -> Result<ServerClient, String> {
        let socket = socket.into();
        let mut wait = backoff;
        let mut last = String::from("no attempts configured");
        for attempt in 0..attempts.max(1) {
            match Self::connect(&socket) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(wait);
                wait = wait.saturating_mul(2).min(Duration::from_secs(2));
            }
        }
        Err(last)
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        let stream = self.reader.get_mut();
        stream
            .write_all(format!("{}\n", req.render()).as_bytes())
            .map_err(|e| format!("send: {e}"))
    }

    fn read_response(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => return Err("connection closed by server".into()),
                Ok(_) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        line.clear();
                        continue;
                    }
                    return Response::parse(trimmed);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // A timeout mid-line keeps the partial content in
                    // `line`; but a full timeout window with no bytes at
                    // all means the server is wedged or gone.
                    if line.is_empty() {
                        return Err("timed out waiting for server response".into());
                    }
                }
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }

    /// Reads (pending buffer first) until `want` matches; everything
    /// else job-tagged is buffered for a later [`ServerClient::wait`].
    fn read_until(&mut self, mut want: impl FnMut(&Response) -> bool) -> Result<Response, String> {
        if let Some(i) = self.pending.iter().position(&mut want) {
            return Ok(self.pending.remove(i));
        }
        loop {
            let resp = self.read_response()?;
            if want(&resp) {
                return Ok(resp);
            }
            // Heartbeats are progress noise once we're waiting on
            // something else; terminal/job responses must be kept.
            if !matches!(resp, Response::Heartbeat { .. }) {
                self.pending.push(resp);
            }
        }
    }

    /// Submits one deck and returns the admission decision
    /// ([`Response::Accepted`] or [`Response::Rejected`]).
    ///
    /// # Errors
    ///
    /// Transport failure or a malformed server line.
    pub fn submit(&mut self, client: &str, deck: &str, priority: u8) -> Result<Response, String> {
        self.send(&Request::Submit {
            client: client.into(),
            deck: deck.into(),
            priority,
        })?;
        self.read_until(|r| matches!(r, Response::Accepted { .. } | Response::Rejected { .. }))
    }

    /// Blocks until the terminal response (`done` / `failed` / `shed`)
    /// for `digest` arrives. Heartbeats for the job are counted and
    /// folded into the return.
    ///
    /// # Errors
    ///
    /// Transport failure or a malformed server line.
    pub fn wait(&mut self, digest: &str) -> Result<(Response, u64), String> {
        let mut heartbeats = 0u64;
        if let Some(i) = self
            .pending
            .iter()
            .position(|r| r.is_terminal() && r.digest() == Some(digest))
        {
            return Ok((self.pending.remove(i), 0));
        }
        loop {
            let resp = self.read_response()?;
            if resp.is_terminal() && resp.digest() == Some(digest) {
                return Ok((resp, heartbeats));
            }
            match resp {
                Response::Heartbeat { digest: d, .. } => {
                    if d == digest {
                        heartbeats += 1;
                    }
                }
                other => self.pending.push(other),
            }
        }
    }

    /// Probes the durable outcome of a canonical `deck` spec: `done`,
    /// `failed`, `shed`, `running`, or a `not-found` rejection.
    ///
    /// # Errors
    ///
    /// Transport failure or a malformed server line.
    pub fn result(&mut self, deck: &str) -> Result<Response, String> {
        let digest = content_digest(deck);
        self.send(&Request::Result { deck: deck.into() })?;
        self.read_until(move |r| match r {
            Response::Rejected { .. } => true,
            Response::Heartbeat { .. } => false,
            other => other.digest() == Some(digest.as_str()),
        })
    }

    /// Fetches the health/statistics snapshot.
    ///
    /// # Errors
    ///
    /// Transport failure or a malformed server line.
    pub fn health(&mut self) -> Result<Json, String> {
        self.send(&Request::Health)?;
        match self.read_until(|r| matches!(r, Response::Health { .. }))? {
            Response::Health { stats } => Ok(stats),
            _ => unreachable!("read_until matched health"),
        }
    }

    /// Requests a graceful drain; returns `(queued, running)` at the
    /// flip.
    ///
    /// # Errors
    ///
    /// Transport failure or a malformed server line.
    pub fn shutdown(&mut self) -> Result<(u64, u64), String> {
        self.send(&Request::Shutdown)?;
        match self.read_until(|r| matches!(r, Response::Draining { .. }))? {
            Response::Draining { queued, running } => Ok((queued, running)),
            _ => unreachable!("read_until matched draining"),
        }
    }

    /// Convenience for drills: true if a rejection carries `reason`.
    pub fn rejected_with(resp: &Response, reason: RejectReason) -> bool {
        matches!(resp, Response::Rejected { reason: r, .. } if *r == reason)
    }
}
