//! Admission control and backpressure: the bounded, priority-ordered
//! job queue behind the server.
//!
//! Every decision is made under one lock, in a fixed order, and every
//! refusal is *typed* (a [`RejectReason`]) and counted:
//!
//! 1. **Draining** — a server winding down admits nothing new.
//! 2. **Parse / size** — malformed specs and over-limit decks are
//!    rejected before they can cost anything.
//! 3. **Quota** — each client draws from a [`QuotaPool`] of Newton
//!    iterations; an exhausted pool refuses further admissions until
//!    the server restarts (quotas are per-run).
//! 4. **Queue bound + shedding** — the queue holds at most `queue_cap`
//!    jobs. When full, a newcomer that outranks the lowest-priority
//!    queued job *evicts* it (the victim is notified with a terminal
//!    `shed` response and tombstoned in the journal); otherwise the
//!    newcomer is refused `queue-full`.
//! 5. **Degradation** — once the queue reaches the high watermark,
//!    degradable decks (Monte Carlo) are admitted at reduced fidelity,
//!    marked `degraded: true`, under their *own* digest.
//!
//! Acceptance is journaled (`record_accepted`, fsync'd) before this
//! module returns, so the caller can ack the client knowing a crash
//! can no longer lose the job.

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

use nemscmos_harness::{content_digest, Journal};
use nemscmos_spice::budget::QuotaPool;

use crate::deck::{Deck, Limits};
use crate::proto::{RejectReason, Response};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum queued (not yet running) jobs.
    pub queue_cap: usize,
    /// Queue depth at which degradable decks are admitted degraded.
    pub degrade_watermark: usize,
    /// Floor for degraded Monte-Carlo trial counts.
    pub min_trials: usize,
    /// Per-client Newton-iteration grant for this run.
    pub quota_newton: u64,
    /// Deck size limits.
    pub limits: Limits,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_cap: 64,
            degrade_watermark: 48,
            min_trials: 16,
            quota_newton: 50_000_000,
            limits: Limits::default(),
        }
    }
}

/// One admitted job waiting for (or owed to) a worker.
#[derive(Debug)]
pub struct QueuedJob {
    /// Admission order, for FIFO within a priority class.
    pub seq: u64,
    /// 0–9, higher runs first.
    pub priority: u8,
    /// Submitting client (quota account); `"__resume"` for jobs
    /// re-enqueued from the journal after a restart.
    pub client: String,
    /// Digest of the effective spec.
    pub digest: String,
    /// The effective canonical spec.
    pub spec: String,
    /// Parsed effective deck.
    pub deck: Deck,
    /// True when backpressure reduced this job.
    pub degraded: bool,
    /// The client's quota pool (absent for resumed orphans).
    pub quota: Option<QuotaPool>,
    /// Where responses go; `None` for resumed orphans (results are
    /// recovered via the journal and the `result` op).
    pub reply: Option<Sender<Response>>,
}

/// Monotonic counters surfaced by the health op.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counters {
    /// Jobs journaled and acked.
    pub accepted: u64,
    /// Jobs admitted at reduced fidelity.
    pub degraded: u64,
    /// Acked jobs evicted by higher-priority arrivals.
    pub shed: u64,
    /// Terminal successes (any source).
    pub completed: u64,
    /// Replayed from the journal without execution.
    pub replayed_journal: u64,
    /// Served from the content-addressed cache.
    pub replayed_cache: u64,
    /// Terminal typed failures.
    pub failed: u64,
    /// Failures classified deadline/stall.
    pub deadline_exceeded: u64,
    /// Failures classified cancelled.
    pub cancelled: u64,
    /// Successes that needed more than one ladder attempt.
    pub retried: u64,
    /// Refusals by reason.
    pub rejected_queue_full: u64,
    /// Quota refusals.
    pub rejected_quota: u64,
    /// Size-limit refusals.
    pub rejected_too_large: u64,
    /// Malformed-request refusals.
    pub rejected_bad_request: u64,
    /// Refusals because the server was draining.
    pub rejected_draining: u64,
}

impl Counters {
    /// Bumps the counter matching a refusal reason.
    fn count_reject(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::QueueFull => self.rejected_queue_full += 1,
            RejectReason::QuotaExhausted => self.rejected_quota += 1,
            RejectReason::DeckTooLarge => self.rejected_too_large += 1,
            RejectReason::BadRequest => self.rejected_bad_request += 1,
            RejectReason::Draining => self.rejected_draining += 1,
            RejectReason::NotFound => {}
        }
    }
}

#[derive(Debug, Default)]
struct State {
    queue: Vec<QueuedJob>,
    seq: u64,
    running: u64,
    draining: bool,
    clients: HashMap<String, QuotaPool>,
    counters: Counters,
}

/// The outcome of one submission attempt.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Journaled, queued, safe to ack.
    Accepted {
        /// Digest of the effective spec.
        digest: String,
        /// The effective canonical spec.
        effective: String,
        /// True when admitted at reduced fidelity.
        degraded: bool,
        /// The job evicted to make room, if shedding occurred. The
        /// caller notifies it and journals its tombstone.
        shed: Option<QueuedJob>,
    },
    /// Typed refusal, already counted.
    Rejected {
        /// Refusal class.
        reason: RejectReason,
        /// Human-readable detail.
        detail: String,
    },
}

/// The shared admission state: bounded queue, quota registry, counters.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    state: Mutex<State>,
    wake: Condvar,
}

impl Admission {
    /// Creates an empty queue under `config`.
    pub fn new(config: AdmissionConfig) -> Admission {
        Admission {
            config,
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("admission state poisoned")
    }

    /// Runs the full admission pipeline for one submission. On success
    /// the acceptance is already fsync'd to `journal` — the caller may
    /// ack immediately — and the job is queued. A shed victim, if any,
    /// is returned for notification; its tombstone is already journaled.
    pub fn submit(
        &self,
        client: &str,
        deck_spec: &str,
        priority: u8,
        reply: Option<Sender<Response>>,
        journal: &Journal,
    ) -> SubmitOutcome {
        let mut st = self.lock();
        if st.draining {
            st.counters.count_reject(RejectReason::Draining);
            return SubmitOutcome::Rejected {
                reason: RejectReason::Draining,
                detail: "server is draining for shutdown".into(),
            };
        }
        let deck = match Deck::parse(deck_spec) {
            Ok(d) => d,
            Err(e) => {
                st.counters.count_reject(RejectReason::BadRequest);
                return SubmitOutcome::Rejected {
                    reason: RejectReason::BadRequest,
                    detail: e,
                };
            }
        };
        if let Some(why) = deck.too_large(&self.config.limits) {
            st.counters.count_reject(RejectReason::DeckTooLarge);
            return SubmitOutcome::Rejected {
                reason: RejectReason::DeckTooLarge,
                detail: why,
            };
        }
        let grant = self.config.quota_newton;
        let quota = st
            .clients
            .entry(client.to_string())
            .or_insert_with(|| QuotaPool::new(grant))
            .clone();
        if quota.exhausted() {
            st.counters.count_reject(RejectReason::QuotaExhausted);
            return SubmitOutcome::Rejected {
                reason: RejectReason::QuotaExhausted,
                detail: format!(
                    "client {client:?} spent its grant of {} newton iterations",
                    quota.granted()
                ),
            };
        }
        // Shedding: a full queue only admits a newcomer that strictly
        // outranks its weakest member — the lowest-priority job (newest
        // arrival among equals) is evicted to make room.
        let mut shed = None;
        if st.queue.len() >= self.config.queue_cap {
            let victim_at = st
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.priority, u64::MAX - j.seq))
                .map(|(i, _)| i);
            match victim_at {
                Some(i) if st.queue[i].priority < priority => {
                    shed = Some(st.queue.remove(i));
                }
                _ => {
                    st.counters.count_reject(RejectReason::QueueFull);
                    return SubmitOutcome::Rejected {
                        reason: RejectReason::QueueFull,
                        detail: format!(
                            "queue at its cap of {} with no lower-priority job to shed",
                            self.config.queue_cap
                        ),
                    };
                }
            }
        }
        // Backpressure degradation: past the watermark, degradable
        // decks run reduced. The effective spec gets its own digest so
        // degraded artifacts never pollute full-fidelity ones.
        let mut degraded = false;
        let effective_deck = if st.queue.len() >= self.config.degrade_watermark {
            match deck.degrade(self.config.min_trials) {
                Some(d) => {
                    degraded = true;
                    d
                }
                None => deck,
            }
        } else {
            deck
        };
        let effective = effective_deck.canonical();
        let digest = content_digest(&effective);
        // Journal-before-ack: the fsync happens here, inside the lock,
        // so an accepted job is durable before anyone hears about it. A
        // journal I/O failure demotes the submission to a rejection —
        // acking a job we cannot make durable would break the
        // zero-lost-acks contract.
        if let Err(e) = journal.record_accepted(client, &digest, &effective) {
            // Put the victim back: its eviction is only valid if the
            // newcomer actually lands.
            if let Some(v) = shed.take() {
                st.queue.push(v);
            }
            st.counters.count_reject(RejectReason::BadRequest);
            return SubmitOutcome::Rejected {
                reason: RejectReason::BadRequest,
                detail: format!("journal append failed: {e}"),
            };
        }
        if let Some(victim) = &shed {
            st.counters.shed += 1;
            let _ = journal.record(
                &victim.client,
                &victim.digest,
                &victim.spec,
                &crate::server::shed_marker(),
            );
        }
        st.counters.accepted += 1;
        if degraded {
            st.counters.degraded += 1;
        }
        st.seq += 1;
        let job = QueuedJob {
            seq: st.seq,
            priority,
            client: client.to_string(),
            digest: digest.clone(),
            spec: effective.clone(),
            deck: effective_deck,
            degraded,
            quota: Some(quota),
            reply,
        };
        st.queue.push(job);
        self.wake.notify_all();
        SubmitOutcome::Accepted {
            digest,
            effective,
            degraded,
            shed,
        }
    }

    /// Re-enqueues a journal obligation after a restart, bypassing the
    /// admission pipeline (it was already admitted by a previous
    /// incarnation; refusing it now would lose an acked job).
    pub fn enqueue_resumed(&self, client: &str, digest: &str, spec: &str, deck: Deck) {
        let mut st = self.lock();
        st.seq += 1;
        let job = QueuedJob {
            seq: st.seq,
            priority: 5,
            client: client.to_string(),
            digest: digest.to_string(),
            spec: spec.to_string(),
            deck,
            degraded: false,
            quota: None,
            reply: None,
        };
        st.queue.push(job);
        self.wake.notify_all();
    }

    /// Blocks until a job is available (highest priority first, FIFO
    /// within a class) or the server is draining with an empty queue —
    /// then `None`, telling the worker to exit.
    pub fn take(&self) -> Option<QueuedJob> {
        let mut st = self.lock();
        loop {
            if let Some(best) = st
                .queue
                .iter()
                .enumerate()
                .max_by_key(|(_, j)| (j.priority, u64::MAX - j.seq))
                .map(|(i, _)| i)
            {
                let job = st.queue.remove(best);
                st.running += 1;
                self.wake.notify_all();
                return Some(job);
            }
            if st.draining {
                return None;
            }
            st = self.wake.wait(st).expect("admission state poisoned");
        }
    }

    /// Marks a taken job finished and folds its terminal outcome into
    /// the counters.
    pub fn job_done(&self, update: impl FnOnce(&mut Counters)) {
        let mut st = self.lock();
        st.running -= 1;
        update(&mut st.counters);
        self.wake.notify_all();
    }

    /// Applies a counter update outside the job lifecycle (replays
    /// served by the `result` op, startup bookkeeping).
    pub fn count(&self, update: impl FnOnce(&mut Counters)) {
        update(&mut self.lock().counters);
    }

    /// Flips into draining mode: no new admissions, workers exit once
    /// the queue empties. Returns `(queued, running)` at the flip.
    pub fn drain(&self) -> (u64, u64) {
        let mut st = self.lock();
        st.draining = true;
        self.wake.notify_all();
        (st.queue.len() as u64, st.running)
    }

    /// True once draining and fully idle — the accept loop's exit test.
    pub fn drained(&self) -> bool {
        let st = self.lock();
        st.draining && st.queue.is_empty() && st.running == 0
    }

    /// Point-in-time `(queue_depth, running, draining, clients)` plus a
    /// copy of the counters.
    pub fn snapshot(&self) -> (u64, u64, bool, u64, Counters) {
        let st = self.lock();
        (
            st.queue.len() as u64,
            st.running,
            st.draining,
            st.clients.len() as u64,
            st.counters,
        )
    }

    /// Whether `digest` is currently waiting in the queue — the
    /// `result` op combines this with the running registry to answer
    /// `running` instead of `not-found`.
    pub fn is_queued(&self, digest: &str) -> bool {
        self.lock().queue.iter().any(|j| j.digest == digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_journal(tag: &str) -> (std::path::PathBuf, Journal) {
        let dir = std::env::temp_dir().join(format!(
            "nemscmos-admission-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = Journal::open(&dir, "adm").unwrap();
        (dir, journal)
    }

    fn mc_spec(seed: u64) -> String {
        format!("deck v1 mc trials=64 seed={seed} sigma=0.05")
    }

    #[test]
    fn accepts_then_takes_in_priority_order() {
        let (dir, journal) = scratch_journal("order");
        let adm = Admission::new(AdmissionConfig::default());
        for (seed, priority) in [(1, 2), (2, 8), (3, 2)] {
            let out = adm.submit("c", &mc_spec(seed), priority, None, &journal);
            assert!(matches!(out, SubmitOutcome::Accepted { .. }), "{out:?}");
        }
        // Highest priority first, then FIFO among the rest.
        let first = adm.take().unwrap();
        assert_eq!(first.priority, 8);
        assert_eq!(adm.take().unwrap().spec, mc_spec(1));
        assert_eq!(adm.take().unwrap().spec, mc_spec(3));
        // Acceptance was journaled before the ack.
        assert_eq!(journal.pending().len(), 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_and_oversized_decks_are_typed_rejections() {
        let (dir, journal) = scratch_journal("typed");
        let adm = Admission::new(AdmissionConfig {
            limits: Limits {
                max_fan_in: 8,
                max_trials: 100,
            },
            ..AdmissionConfig::default()
        });
        match adm.submit("c", "deck v1 warp", 5, None, &journal) {
            SubmitOutcome::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::BadRequest);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        match adm.submit("c", "deck v1 domino fan_in=9 fan_out=1", 5, None, &journal) {
            SubmitOutcome::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::DeckTooLarge);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        let (.., counters) = adm.snapshot();
        assert_eq!(counters.rejected_bad_request, 1);
        assert_eq!(counters.rejected_too_large, 1);
        assert!(journal.pending().is_empty(), "rejections must not journal");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn full_queue_rejects_peers_but_sheds_lower_priority() {
        let (dir, journal) = scratch_journal("shed");
        let adm = Admission::new(AdmissionConfig {
            queue_cap: 2,
            ..AdmissionConfig::default()
        });
        assert!(matches!(
            adm.submit("c", &mc_spec(1), 3, None, &journal),
            SubmitOutcome::Accepted { .. }
        ));
        assert!(matches!(
            adm.submit("c", &mc_spec(2), 5, None, &journal),
            SubmitOutcome::Accepted { .. }
        ));
        // Same priority as the weakest queued job: refused.
        match adm.submit("c", &mc_spec(3), 3, None, &journal) {
            SubmitOutcome::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::QueueFull);
            }
            other => panic!("expected queue-full, got {other:?}"),
        }
        // Outranks the priority-3 job: that job is shed.
        match adm.submit("c", &mc_spec(4), 7, None, &journal) {
            SubmitOutcome::Accepted { shed: Some(v), .. } => {
                assert_eq!(v.spec, mc_spec(1));
                // The tombstone cleared the victim's journal obligation.
                assert!(!journal.pending().iter().any(|(_, d, _)| *d == v.digest));
            }
            other => panic!("expected accept-with-shed, got {other:?}"),
        }
        let (queue_depth, _, _, _, counters) = adm.snapshot();
        assert_eq!(queue_depth, 2);
        assert_eq!(counters.shed, 1);
        assert_eq!(counters.rejected_queue_full, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn quota_exhaustion_is_a_typed_rejection() {
        let (dir, journal) = scratch_journal("quota");
        let adm = Admission::new(AdmissionConfig {
            quota_newton: 10,
            ..AdmissionConfig::default()
        });
        let out = adm.submit("tenant", &mc_spec(1), 5, None, &journal);
        assert!(matches!(out, SubmitOutcome::Accepted { .. }));
        // Burn the whole grant, as a worker settling a job would.
        let job = adm.take().unwrap();
        let spent = nemscmos_spice::stats::SolverStats {
            newton_iterations: 10,
            ..Default::default()
        };
        job.quota.as_ref().unwrap().settle(&spent);
        adm.job_done(|c| c.completed += 1);
        match adm.submit("tenant", &mc_spec(2), 5, None, &journal) {
            SubmitOutcome::Rejected { reason, detail } => {
                assert_eq!(reason, RejectReason::QuotaExhausted);
                assert!(detail.contains("tenant"), "{detail}");
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // A different client has its own pool.
        assert!(matches!(
            adm.submit("other", &mc_spec(2), 5, None, &journal),
            SubmitOutcome::Accepted { .. }
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn watermark_degrades_monte_carlo_only() {
        let (dir, journal) = scratch_journal("degrade");
        let adm = Admission::new(AdmissionConfig {
            queue_cap: 8,
            degrade_watermark: 1,
            min_trials: 16,
            ..AdmissionConfig::default()
        });
        // First job: queue below the watermark, full fidelity.
        match adm.submit("c", &mc_spec(1), 5, None, &journal) {
            SubmitOutcome::Accepted { degraded, .. } => assert!(!degraded),
            other => panic!("{other:?}"),
        }
        // Second: past the watermark, degraded to trials/4 = 16.
        match adm.submit("c", &mc_spec(2), 5, None, &journal) {
            SubmitOutcome::Accepted {
                degraded,
                effective,
                digest,
                ..
            } => {
                assert!(degraded);
                assert_eq!(effective, "deck v1 mc trials=16 seed=2 sigma=0.05");
                assert_eq!(digest, content_digest(&effective));
            }
            other => panic!("{other:?}"),
        }
        // Non-degradable decks are admitted untouched past the watermark.
        match adm.submit("c", "deck v1 verify name=rlc-tank", 5, None, &journal) {
            SubmitOutcome::Accepted {
                degraded,
                effective,
                ..
            } => {
                assert!(!degraded);
                assert_eq!(effective, "deck v1 verify name=rlc-tank");
            }
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn draining_refuses_and_unblocks_workers() {
        let (dir, journal) = scratch_journal("drain");
        let adm = Admission::new(AdmissionConfig::default());
        assert!(matches!(
            adm.submit("c", &mc_spec(1), 5, None, &journal),
            SubmitOutcome::Accepted { .. }
        ));
        let (queued, running) = adm.drain();
        assert_eq!((queued, running), (1, 0));
        match adm.submit("c", &mc_spec(2), 5, None, &journal) {
            SubmitOutcome::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::Draining);
            }
            other => panic!("{other:?}"),
        }
        // The queued job still drains.
        let job = adm.take().unwrap();
        assert!(!adm.drained(), "running job holds off idle");
        adm.job_done(|c| c.completed += 1);
        drop(job);
        assert!(adm.drained());
        // Workers now see the exit signal.
        assert!(adm.take().is_none());
        let _ = std::fs::remove_dir_all(dir);
    }
}
