//! The wire protocol: newline-delimited JSON over a local socket.
//!
//! One request or response per line, encoded with the workspace's
//! vendored [`Json`] layer (no `serde`). Every message is a JSON object
//! whose discriminant key is `"op"` for requests and `"resp"` for
//! responses; unknown or malformed lines decode to an error the server
//! answers with a typed [`RejectReason::BadRequest`] rejection instead
//! of dropping the connection.
//!
//! Responses to a `submit` arrive on the same connection, tagged with
//! the job's content digest: first `accepted` (sent only *after* the
//! acceptance is fsync'd to the journal) or `rejected`, then zero or
//! more `heartbeat` progress lines, then exactly one terminal line —
//! `done`, `failed`, or `shed`.

use nemscmos_harness::Json;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one deck for execution. `client` names the quota account;
    /// `priority` orders the queue (higher runs first, lowest is shed
    /// first under overload).
    Submit {
        /// Quota account / client identity.
        client: String,
        /// Canonical deck spec string (see [`crate::deck::Deck`]).
        deck: String,
        /// 0–9, higher is more important.
        priority: u8,
    },
    /// Fetch the outcome of a previously accepted deck (by spec, from
    /// which the server recomputes the digest) — how a client recovers
    /// results after a server restart.
    Result {
        /// Canonical deck spec string.
        deck: String,
    },
    /// Queue/supervision statistics.
    Health,
    /// Graceful drain: stop admitting, finish queued work, exit.
    Shutdown,
}

impl Request {
    /// Encodes to one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let obj = match self {
            Request::Submit {
                client,
                deck,
                priority,
            } => vec![
                ("op".into(), Json::Str("submit".into())),
                ("client".into(), Json::Str(client.clone())),
                ("deck".into(), Json::Str(deck.clone())),
                ("priority".into(), Json::Num(f64::from(*priority))),
            ],
            Request::Result { deck } => vec![
                ("op".into(), Json::Str("result".into())),
                ("deck".into(), Json::Str(deck.clone())),
            ],
            Request::Health => vec![("op".into(), Json::Str("health".into()))],
            Request::Shutdown => vec![("op".into(), Json::Str("shutdown".into()))],
        };
        Json::Obj(obj).render()
    }

    /// Decodes one line.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("not JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        match op {
            "submit" => {
                let client = v
                    .get("client")
                    .and_then(Json::as_str)
                    .ok_or("submit: missing string field `client`")?;
                let deck = v
                    .get("deck")
                    .and_then(Json::as_str)
                    .ok_or("submit: missing string field `deck`")?;
                let priority = match v.get("priority") {
                    None => 5.0,
                    Some(p) => p.as_f64().ok_or("submit: `priority` must be a number")?,
                };
                if !(0.0..=9.0).contains(&priority) || priority.fract() != 0.0 {
                    return Err(format!(
                        "submit: priority {priority} not an integer in 0..=9"
                    ));
                }
                Ok(Request::Submit {
                    client: client.to_string(),
                    deck: deck.to_string(),
                    priority: priority as u8,
                })
            }
            "result" => {
                let deck = v
                    .get("deck")
                    .and_then(Json::as_str)
                    .ok_or("result: missing string field `deck`")?;
                Ok(Request::Result {
                    deck: deck.to_string(),
                })
            }
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Why an admission was refused. Every variant is visible to clients as
/// a stable label and counted separately in the health stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Bounded queue is full and the newcomer does not outrank any
    /// queued job.
    QueueFull,
    /// The client's solver-effort quota is spent.
    QuotaExhausted,
    /// The deck exceeds the server's configured size limits.
    DeckTooLarge,
    /// Malformed request or unparseable deck spec.
    BadRequest,
    /// The server is draining for shutdown.
    Draining,
    /// `result` probe for a deck this run never completed.
    NotFound,
}

impl RejectReason {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::QuotaExhausted => "quota-exhausted",
            RejectReason::DeckTooLarge => "deck-too-large",
            RejectReason::BadRequest => "bad-request",
            RejectReason::Draining => "draining",
            RejectReason::NotFound => "not-found",
        }
    }

    /// Inverse of [`RejectReason::label`].
    pub fn from_label(label: &str) -> Option<RejectReason> {
        [
            RejectReason::QueueFull,
            RejectReason::QuotaExhausted,
            RejectReason::DeckTooLarge,
            RejectReason::BadRequest,
            RejectReason::Draining,
            RejectReason::NotFound,
        ]
        .into_iter()
        .find(|r| r.label() == label)
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job is journaled and queued; `digest` identifies it from now
    /// on. `effective` is the spec actually queued — it differs from the
    /// submitted deck exactly when `degraded` is true.
    Accepted {
        /// Content digest of the effective spec.
        digest: String,
        /// True when backpressure reduced the job (fewer MC samples).
        degraded: bool,
        /// The effective (possibly degraded) canonical spec.
        effective: String,
    },
    /// The job was refused with a typed reason.
    Rejected {
        /// Typed refusal class.
        reason: RejectReason,
        /// Human-readable detail.
        detail: String,
    },
    /// Periodic progress while the job runs.
    Heartbeat {
        /// Which job.
        digest: String,
        /// Newton iterations spent so far.
        newton: u64,
        /// Coarse progress ticks (accepted steps / completed solves).
        progress: u64,
    },
    /// Terminal: the job completed. `source` is `run`, `cache`, or
    /// `journal` (replayed).
    Done {
        /// Which job.
        digest: String,
        /// True when the executed spec was a degraded variant.
        degraded: bool,
        /// `run` | `cache` | `journal`.
        source: String,
        /// Retry-ladder rung that succeeded (empty for replays).
        rung: String,
        /// The result artifact.
        result: Json,
    },
    /// Terminal: the job failed with a typed taxonomy kind.
    Failed {
        /// Which job.
        digest: String,
        /// [`FailureKind`](nemscmos_harness::FailureKind) label.
        kind: String,
        /// Rendered error.
        error: String,
    },
    /// Terminal: the job was evicted by a higher-priority arrival.
    Shed {
        /// Which job.
        digest: String,
    },
    /// A probed job is still queued or running.
    Running {
        /// Which job.
        digest: String,
    },
    /// Health statistics snapshot.
    Health {
        /// Structured counters (see `server::health_json`).
        stats: Json,
    },
    /// Acknowledges a shutdown request; the server exits once idle.
    Draining {
        /// Jobs still queued.
        queued: u64,
        /// Jobs currently executing.
        running: u64,
    },
}

impl Response {
    /// Encodes to one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let obj = match self {
            Response::Accepted {
                digest,
                degraded,
                effective,
            } => vec![
                ("resp".into(), Json::Str("accepted".into())),
                ("digest".into(), Json::Str(digest.clone())),
                ("degraded".into(), Json::Bool(*degraded)),
                ("effective".into(), Json::Str(effective.clone())),
            ],
            Response::Rejected { reason, detail } => vec![
                ("resp".into(), Json::Str("rejected".into())),
                ("reason".into(), Json::Str(reason.label().into())),
                ("detail".into(), Json::Str(detail.clone())),
            ],
            Response::Heartbeat {
                digest,
                newton,
                progress,
            } => vec![
                ("resp".into(), Json::Str("heartbeat".into())),
                ("digest".into(), Json::Str(digest.clone())),
                ("newton".into(), Json::Num(*newton as f64)),
                ("progress".into(), Json::Num(*progress as f64)),
            ],
            Response::Done {
                digest,
                degraded,
                source,
                rung,
                result,
            } => vec![
                ("resp".into(), Json::Str("done".into())),
                ("digest".into(), Json::Str(digest.clone())),
                ("degraded".into(), Json::Bool(*degraded)),
                ("source".into(), Json::Str(source.clone())),
                ("rung".into(), Json::Str(rung.clone())),
                ("result".into(), result.clone()),
            ],
            Response::Failed {
                digest,
                kind,
                error,
            } => vec![
                ("resp".into(), Json::Str("failed".into())),
                ("digest".into(), Json::Str(digest.clone())),
                ("kind".into(), Json::Str(kind.clone())),
                ("error".into(), Json::Str(error.clone())),
            ],
            Response::Shed { digest } => vec![
                ("resp".into(), Json::Str("shed".into())),
                ("digest".into(), Json::Str(digest.clone())),
            ],
            Response::Running { digest } => vec![
                ("resp".into(), Json::Str("running".into())),
                ("digest".into(), Json::Str(digest.clone())),
            ],
            Response::Health { stats } => vec![
                ("resp".into(), Json::Str("health".into())),
                ("stats".into(), stats.clone()),
            ],
            Response::Draining { queued, running } => vec![
                ("resp".into(), Json::Str("draining".into())),
                ("queued".into(), Json::Num(*queued as f64)),
                ("running".into(), Json::Num(*running as f64)),
            ],
        };
        Json::Obj(obj).render()
    }

    /// Decodes one line.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| format!("not JSON: {e}"))?;
        let resp = v
            .get("resp")
            .and_then(Json::as_str)
            .ok_or("missing string field `resp`")?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("{resp}: missing string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .ok_or(format!("{resp}: missing number field `{key}`"))
        };
        let bool_field = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(Json::as_bool)
                .ok_or(format!("{resp}: missing bool field `{key}`"))
        };
        match resp {
            "accepted" => Ok(Response::Accepted {
                digest: str_field("digest")?,
                degraded: bool_field("degraded")?,
                effective: str_field("effective")?,
            }),
            "rejected" => Ok(Response::Rejected {
                reason: RejectReason::from_label(&str_field("reason")?)
                    .ok_or("rejected: unknown reason label")?,
                detail: str_field("detail")?,
            }),
            "heartbeat" => Ok(Response::Heartbeat {
                digest: str_field("digest")?,
                newton: num_field("newton")?,
                progress: num_field("progress")?,
            }),
            "done" => Ok(Response::Done {
                digest: str_field("digest")?,
                degraded: bool_field("degraded")?,
                source: str_field("source")?,
                rung: str_field("rung")?,
                result: v.get("result").cloned().ok_or("done: missing `result`")?,
            }),
            "failed" => Ok(Response::Failed {
                digest: str_field("digest")?,
                kind: str_field("kind")?,
                error: str_field("error")?,
            }),
            "shed" => Ok(Response::Shed {
                digest: str_field("digest")?,
            }),
            "running" => Ok(Response::Running {
                digest: str_field("digest")?,
            }),
            "health" => Ok(Response::Health {
                stats: v.get("stats").cloned().ok_or("health: missing `stats`")?,
            }),
            "draining" => Ok(Response::Draining {
                queued: num_field("queued")?,
                running: num_field("running")?,
            }),
            other => Err(format!("unknown resp {other:?}")),
        }
    }

    /// The digest a job-scoped response refers to, if any.
    pub fn digest(&self) -> Option<&str> {
        match self {
            Response::Accepted { digest, .. }
            | Response::Heartbeat { digest, .. }
            | Response::Done { digest, .. }
            | Response::Failed { digest, .. }
            | Response::Shed { digest }
            | Response::Running { digest } => Some(digest),
            _ => None,
        }
    }

    /// True for `done` / `failed` / `shed` — the last message a job
    /// produces.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Response::Done { .. } | Response::Failed { .. } | Response::Shed { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let all = [
            Request::Submit {
                client: "c1".into(),
                deck: "deck v1 mc trials=64 seed=7 sigma=0.05".into(),
                priority: 8,
            },
            Request::Result {
                deck: "deck v1 verify name=rlc-tank".into(),
            },
            Request::Health,
            Request::Shutdown,
        ];
        for req in all {
            let line = req.render();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn submit_priority_defaults_and_validates() {
        let req = Request::parse(r#"{"op":"submit","client":"a","deck":"d"}"#).unwrap();
        assert!(matches!(req, Request::Submit { priority: 5, .. }));
        assert!(
            Request::parse(r#"{"op":"submit","client":"a","deck":"d","priority":11}"#).is_err()
        );
        assert!(
            Request::parse(r#"{"op":"submit","client":"a","deck":"d","priority":1.5}"#).is_err()
        );
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"warp"}"#).is_err());
        assert!(Request::parse(r#"{"op":"submit","client":"a"}"#).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let all = [
            Response::Accepted {
                digest: "abc".into(),
                degraded: true,
                effective: "deck v1 mc trials=16 seed=7 sigma=0.05".into(),
            },
            Response::Rejected {
                reason: RejectReason::QueueFull,
                detail: "queue at 64".into(),
            },
            Response::Heartbeat {
                digest: "abc".into(),
                newton: 120,
                progress: 12,
            },
            Response::Done {
                digest: "abc".into(),
                degraded: false,
                source: "run".into(),
                rung: "direct".into(),
                result: Json::Obj(vec![("v".into(), Json::Num(1.5))]),
            },
            Response::Failed {
                digest: "abc".into(),
                kind: "deadline".into(),
                error: "wall-clock deadline of 250ms".into(),
            },
            Response::Shed {
                digest: "abc".into(),
            },
            Response::Running {
                digest: "abc".into(),
            },
            Response::Health {
                stats: Json::Obj(vec![("queue_depth".into(), Json::Num(3.0))]),
            },
            Response::Draining {
                queued: 2,
                running: 1,
            },
        ];
        for resp in all {
            let line = resp.render();
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn reject_labels_are_stable() {
        for r in [
            RejectReason::QueueFull,
            RejectReason::QuotaExhausted,
            RejectReason::DeckTooLarge,
            RejectReason::BadRequest,
            RejectReason::Draining,
            RejectReason::NotFound,
        ] {
            assert_eq!(RejectReason::from_label(r.label()), Some(r));
        }
        assert_eq!(RejectReason::from_label("nope"), None);
    }

    #[test]
    fn terminality_and_digest_tagging() {
        let done = Response::Done {
            digest: "d".into(),
            degraded: false,
            source: "cache".into(),
            rung: String::new(),
            result: Json::Null,
        };
        assert!(done.is_terminal());
        assert_eq!(done.digest(), Some("d"));
        let hb = Response::Heartbeat {
            digest: "d".into(),
            newton: 0,
            progress: 0,
        };
        assert!(!hb.is_terminal());
        assert!(Response::Health { stats: Json::Null }.digest().is_none());
    }
}
