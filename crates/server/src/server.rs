//! The resident job server: socket loop, worker pool, heartbeat pump,
//! and crash-tolerant restart.
//!
//! # Lifecycle of one submission
//!
//! 1. A connection's reader thread parses the request and runs it
//!    through [`Admission::submit`], which journals the acceptance
//!    (fsync) *before* the `accepted` line is written back — the
//!    zero-lost-acks invariant.
//! 2. A worker takes the job (highest priority first) and resolves it
//!    cheapest-first: journal replay → content-addressed cache → real
//!    execution under the retry ladder, a per-job [`Budget`] wired to
//!    the supervision policy and the client's [`QuotaPool`], and (when
//!    configured) the stall watchdog.
//! 3. Every terminal outcome — success, typed failure, or shed — is
//!    journaled as a marker object, so a restarted server can answer
//!    `result` probes for the whole run without re-executing anything.
//!
//! # Crash tolerance
//!
//! [`serve`] opens the run's [`Journal`] first thing. Completed jobs
//! replay into memory; accepted-but-unfinished jobs (the obligations a
//! `kill -9` leaves behind) are re-enqueued as orphans before the
//! socket is even bound. Because deck execution is deterministic from
//! the spec alone, the re-run results are bitwise identical to what the
//! dead process would have produced.
//!
//! [`Budget`]: nemscmos_spice::budget::Budget
//! [`QuotaPool`]: nemscmos_spice::budget::QuotaPool

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nemscmos_harness::{
    content_digest, run_with_retries, spec_seed, Cache, HarnessError, Journal, Json, RetryPolicy,
    Supervision, Watchdog,
};
use nemscmos_spice::budget::{self, InterruptFlag};
use nemscmos_spice::stats::{self, Heartbeat};

use crate::admission::{Admission, AdmissionConfig, QueuedJob, SubmitOutcome};
use crate::deck::Deck;
use crate::proto::{RejectReason, Request, Response};

/// Everything one [`serve`] call needs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on (stale files are unlinked).
    pub socket: PathBuf,
    /// Run directory holding the journal and result cache.
    pub dir: PathBuf,
    /// Journal run id — restarting with the same id resumes the run.
    pub run_id: String,
    /// Worker thread count.
    pub workers: usize,
    /// Queue, quota, and size-limit policy.
    pub admission: AdmissionConfig,
    /// Per-job deadline/stall/iteration-cap policy.
    pub supervision: Supervision,
    /// Heartbeat streaming interval.
    pub heartbeat_every: Duration,
}

impl ServerConfig {
    /// A config with default policies rooted at `dir`.
    pub fn new(socket: impl Into<PathBuf>, dir: impl Into<PathBuf>, run_id: &str) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            dir: dir.into(),
            run_id: run_id.to_string(),
            workers: 2,
            admission: AdmissionConfig::default(),
            supervision: Supervision::default(),
            heartbeat_every: Duration::from_millis(250),
        }
    }
}

/// Journal marker for a successful result. Markers (rather than raw
/// results) let a restarted server distinguish success, typed failure,
/// and shed tombstones when replaying.
pub(crate) fn ok_marker(result: &Json, degraded: bool, rung: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), result.clone()),
        ("degraded".into(), Json::Bool(degraded)),
        ("rung".into(), Json::Str(rung.into())),
    ])
}

/// Journal marker for a typed failure.
pub(crate) fn failed_marker(kind: &str, error: &str) -> Json {
    Json::Obj(vec![
        ("failed".into(), Json::Str(kind.into())),
        ("error".into(), Json::Str(error.into())),
    ])
}

/// Journal tombstone for a shed job.
pub(crate) fn shed_marker() -> Json {
    Json::Obj(vec![("shed".into(), Json::Bool(true))])
}

/// A decoded journal marker.
pub(crate) enum Recorded {
    /// The job completed; the payload is the result artifact.
    Ok {
        /// The result artifact.
        result: Json,
        /// Whether the recorded run was a degraded variant.
        degraded: bool,
        /// Ladder rung that succeeded (empty for replays).
        rung: String,
    },
    /// The job failed with a typed taxonomy kind.
    Failed {
        /// [`FailureKind`](nemscmos_harness::FailureKind) label.
        kind: String,
        /// Rendered error.
        error: String,
    },
    /// The job was shed before running.
    Shed,
}

pub(crate) fn decode_marker(v: &Json) -> Recorded {
    if let Some(result) = v.get("ok") {
        return Recorded::Ok {
            result: result.clone(),
            degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
            rung: v
                .get("rung")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        };
    }
    if let Some(kind) = v.get("failed").and_then(Json::as_str) {
        return Recorded::Failed {
            kind: kind.to_string(),
            error: v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        };
    }
    if v.get("shed").and_then(Json::as_bool) == Some(true) {
        return Recorded::Shed;
    }
    // Marker-less payload (foreign journal): treat as a plain success.
    Recorded::Ok {
        result: v.clone(),
        degraded: false,
        rung: String::new(),
    }
}

/// One executing job, visible to the heartbeat pump.
struct RunningEntry {
    digest: String,
    hb: Arc<Heartbeat>,
    reply: Option<Sender<Response>>,
}

struct Shared {
    admission: Admission,
    journal: Journal,
    cache: Cache,
    supervision: Supervision,
    watchdog: Option<Watchdog>,
    running: Mutex<HashMap<u64, RunningEntry>>,
    stopping: AtomicBool,
}

impl Shared {
    fn send(reply: &Option<Sender<Response>>, resp: Response) {
        if let Some(tx) = reply {
            // A gone client (dropped connection) is not an error; the
            // journal still holds the outcome for a later `result` probe.
            let _ = tx.send(resp);
        }
    }

    /// Resolves one taken job: journal replay, cache replay, or real
    /// execution under budget + ladder. Always journals the terminal
    /// outcome before notifying.
    fn run_job(&self, job: QueuedJob) {
        if let Some(marker) = self.journal.lookup(&job.digest, &job.spec) {
            if let Recorded::Ok {
                result,
                degraded,
                rung,
            } = decode_marker(&marker)
            {
                Self::send(
                    &job.reply,
                    Response::Done {
                        digest: job.digest,
                        degraded,
                        source: "journal".into(),
                        rung,
                        result,
                    },
                );
                self.admission.job_done(|c| {
                    c.completed += 1;
                    c.replayed_journal += 1;
                });
                return;
            }
            // Failed/shed tombstone: a resubmission is a fresh request —
            // fall through and execute.
        }
        if let Some(result) = self.cache.load(&job.digest, &job.spec) {
            let _ = self.journal.record(
                &job.client,
                &job.digest,
                &job.spec,
                &ok_marker(&result, job.degraded, ""),
            );
            Self::send(
                &job.reply,
                Response::Done {
                    digest: job.digest,
                    degraded: job.degraded,
                    source: "cache".into(),
                    rung: String::new(),
                    result,
                },
            );
            self.admission.job_done(|c| {
                c.completed += 1;
                c.replayed_cache += 1;
            });
            return;
        }

        let flag = InterruptFlag::new();
        let hb = Arc::new(Heartbeat::new());
        let mut job_budget = self.supervision.budget(flag.clone(), Arc::clone(&hb));
        if let Some(quota) = &job.quota {
            // The client's remaining grant caps this job in-band: a
            // runaway deck is stopped mid-run with a typed `deadline`
            // failure, not merely billed afterwards. A just-exhausted
            // pool (admission raced a settle) still gets 1 iteration so
            // the trip is typed rather than a zero-division oddity.
            let remaining = quota.remaining().max(1);
            job_budget.max_newton = Some(
                job_budget
                    .max_newton
                    .map_or(remaining, |m| m.min(remaining)),
            );
        }
        self.running
            .lock()
            .expect("running registry poisoned")
            .insert(
                job.seq,
                RunningEntry {
                    digest: job.digest.clone(),
                    hb: Arc::clone(&hb),
                    reply: job.reply.clone(),
                },
            );
        let guard = self
            .watchdog
            .as_ref()
            .map(|w| w.register(job.seq as usize, flag.clone(), Arc::clone(&hb)));
        let before = stats::snapshot();
        // The budget wraps the *whole* ladder: one allowance covers all
        // rungs, and a flag raised on rung N fails rung N+1 on its first
        // poll instead of burning the remaining escalations.
        let outcome = budget::with(job_budget, || {
            run_with_retries(RetryPolicy::default(), spec_seed(&job.spec), |_| {
                job.deck.execute()
            })
        });
        let spent = stats::snapshot().delta_since(&before);
        drop(guard);
        self.running
            .lock()
            .expect("running registry poisoned")
            .remove(&job.seq);
        if let Some(quota) = &job.quota {
            quota.settle(&spent);
        }
        match outcome {
            Ok((result, rung, attempts)) => {
                let _ = self.cache.store(&job.digest, &job.spec, &result);
                let _ = self.journal.record(
                    &job.client,
                    &job.digest,
                    &job.spec,
                    &ok_marker(&result, job.degraded, rung.label()),
                );
                Self::send(
                    &job.reply,
                    Response::Done {
                        digest: job.digest,
                        degraded: job.degraded,
                        source: "run".into(),
                        rung: rung.label().into(),
                        result,
                    },
                );
                self.admission.job_done(|c| {
                    c.completed += 1;
                    if attempts > 1 {
                        c.retried += 1;
                    }
                });
            }
            Err(e) => {
                let kind = e.kind();
                let error = e.to_string();
                let _ = self.journal.record(
                    &job.client,
                    &job.digest,
                    &job.spec,
                    &failed_marker(kind.label(), &error),
                );
                Self::send(
                    &job.reply,
                    Response::Failed {
                        digest: job.digest,
                        kind: kind.label().into(),
                        error,
                    },
                );
                self.admission.job_done(|c| {
                    c.failed += 1;
                    match kind {
                        nemscmos_harness::FailureKind::Deadline => c.deadline_exceeded += 1,
                        nemscmos_harness::FailureKind::Cancelled => c.cancelled += 1,
                        _ => {}
                    }
                });
            }
        }
    }

    /// Whether `digest` is currently executing.
    fn is_running(&self, digest: &str) -> bool {
        self.running
            .lock()
            .expect("running registry poisoned")
            .values()
            .any(|e| e.digest == digest)
    }

    /// The health snapshot: queue state, typed-outcome counters, and
    /// durability totals.
    fn health_json(&self) -> Json {
        let (queue_depth, running, draining, clients, c) = self.admission.snapshot();
        let n = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("queue_depth".into(), n(queue_depth)),
            ("running".into(), n(running)),
            ("draining".into(), Json::Bool(draining)),
            ("clients".into(), n(clients)),
            ("accepted".into(), n(c.accepted)),
            ("degraded".into(), n(c.degraded)),
            ("shed".into(), n(c.shed)),
            ("completed".into(), n(c.completed)),
            ("replayed_journal".into(), n(c.replayed_journal)),
            ("replayed_cache".into(), n(c.replayed_cache)),
            ("failed".into(), n(c.failed)),
            ("deadline_exceeded".into(), n(c.deadline_exceeded)),
            ("cancelled".into(), n(c.cancelled)),
            ("retried".into(), n(c.retried)),
            (
                "rejected".into(),
                Json::Obj(vec![
                    ("queue-full".into(), n(c.rejected_queue_full)),
                    ("quota-exhausted".into(), n(c.rejected_quota)),
                    ("deck-too-large".into(), n(c.rejected_too_large)),
                    ("bad-request".into(), n(c.rejected_bad_request)),
                    ("draining".into(), n(c.rejected_draining)),
                ]),
            ),
            (
                "journal".into(),
                Json::Obj(vec![
                    ("recovered".into(), n(self.journal.recovered() as u64)),
                    ("torn".into(), n(self.journal.torn() as u64)),
                    ("pending".into(), n(self.journal.pending().len() as u64)),
                ]),
            ),
            ("cache_quarantined".into(), n(self.cache.quarantined())),
            ("supervision".into(), Json::Str(self.supervision.describe())),
        ])
    }

    /// Answers a `result` probe for `spec` from durable state.
    fn probe(&self, spec: &str) -> Response {
        let deck = match Deck::parse(spec) {
            Ok(d) => d,
            Err(e) => {
                self.admission.count(|c| c.rejected_bad_request += 1);
                return Response::Rejected {
                    reason: RejectReason::BadRequest,
                    detail: e,
                };
            }
        };
        let canonical = deck.canonical();
        let digest = content_digest(&canonical);
        if let Some(marker) = self.journal.lookup(&digest, &canonical) {
            return match decode_marker(&marker) {
                Recorded::Ok {
                    result,
                    degraded,
                    rung,
                } => {
                    self.admission.count(|c| c.replayed_journal += 1);
                    Response::Done {
                        digest,
                        degraded,
                        source: "journal".into(),
                        rung,
                        result,
                    }
                }
                Recorded::Failed { kind, error } => Response::Failed {
                    digest,
                    kind,
                    error,
                },
                Recorded::Shed => Response::Shed { digest },
            };
        }
        if self.is_running(&digest) || self.admission.is_queued(&digest) {
            return Response::Running { digest };
        }
        // An accepted-but-unfinished obligation from a previous
        // incarnation that a worker has not reached yet.
        if self
            .journal
            .pending()
            .iter()
            .any(|(_, d, s)| *d == digest && *s == canonical)
        {
            return Response::Running { digest };
        }
        if let Some(result) = self.cache.load(&digest, &canonical) {
            self.admission.count(|c| c.replayed_cache += 1);
            return Response::Done {
                digest,
                degraded: false,
                source: "cache".into(),
                rung: String::new(),
                result,
            };
        }
        Response::Rejected {
            reason: RejectReason::NotFound,
            detail: format!("no outcome for digest {digest} in this run"),
        }
    }

    /// Dispatches one parsed request from a connection.
    fn handle(&self, req: Request, tx: &Sender<Response>) {
        match req {
            Request::Submit {
                client,
                deck,
                priority,
            } => match self.admission.submit(
                &client,
                &deck,
                priority,
                Some(tx.clone()),
                &self.journal,
            ) {
                SubmitOutcome::Accepted {
                    digest,
                    effective,
                    degraded,
                    shed,
                } => {
                    if let Some(victim) = shed {
                        Self::send(
                            &victim.reply,
                            Response::Shed {
                                digest: victim.digest,
                            },
                        );
                    }
                    let _ = tx.send(Response::Accepted {
                        digest,
                        degraded,
                        effective,
                    });
                }
                SubmitOutcome::Rejected { reason, detail } => {
                    let _ = tx.send(Response::Rejected { reason, detail });
                }
            },
            Request::Result { deck } => {
                let _ = tx.send(self.probe(&deck));
            }
            Request::Health => {
                let _ = tx.send(Response::Health {
                    stats: self.health_json(),
                });
            }
            Request::Shutdown => {
                let (queued, running) = self.admission.drain();
                let _ = tx.send(Response::Draining { queued, running });
            }
        }
    }
}

/// How long a connection reader sleeps per poll while checking for
/// server shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

fn handle_connection(shared: Arc<Shared>, stream: UnixStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<Response>();
    let writer = std::thread::Builder::new()
        .name("server-conn-writer".into())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            while let Ok(resp) = rx.recv() {
                if writeln!(out, "{}", resp.render()).is_err() || out.flush().is_err() {
                    break;
                }
            }
        })
        .expect("spawn connection writer");
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    match Request::parse(trimmed) {
                        Ok(req) => shared.handle(req, &tx),
                        Err(detail) => {
                            shared.admission.count(|c| c.rejected_bad_request += 1);
                            let _ = tx.send(Response::Rejected {
                                reason: RejectReason::BadRequest,
                                detail,
                            });
                        }
                    }
                }
                line.clear();
            }
            // Timeout polls keep any partial line in `line` and try
            // again, so slow writers are never corrupted.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stopping.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Runs the server until a graceful drain completes. Blocks the calling
/// thread; spawn it when embedding (see the integration tests).
///
/// # Errors
///
/// [`HarnessError`] when the journal cannot be opened or the socket
/// cannot be bound.
pub fn serve(config: ServerConfig) -> Result<(), HarnessError> {
    let journal = Journal::open(&config.dir, &config.run_id)?;
    let cache = Cache::at(config.dir.join("cache"));
    let watchdog = config
        .supervision
        .needs_watchdog()
        .then(|| Watchdog::spawn(&config.supervision));
    let shared = Arc::new(Shared {
        admission: Admission::new(config.admission.clone()),
        journal,
        cache,
        supervision: config.supervision.clone(),
        watchdog,
        running: Mutex::new(HashMap::new()),
        stopping: AtomicBool::new(false),
    });

    // Restart obligations first: every accepted-but-unfinished job from
    // a previous incarnation is re-enqueued before the socket opens, so
    // no client can observe a lost ack.
    for (client, digest, spec) in shared.journal.pending() {
        match Deck::parse(&spec) {
            Ok(deck) => shared
                .admission
                .enqueue_resumed(&client, &digest, &spec, deck),
            Err(e) => {
                // A journaled spec that no longer parses cannot be
                // re-run; close it out as a typed failure rather than
                // carrying the obligation forever.
                let _ = shared.journal.record(
                    &client,
                    &digest,
                    &spec,
                    &failed_marker("config", &format!("unreplayable journaled spec: {e}")),
                );
            }
        }
    }

    // A kill -9 leaves the old socket file behind; a fresh bind needs
    // it gone.
    if config.socket.exists() {
        let _ = std::fs::remove_file(&config.socket);
    }
    let listener = UnixListener::bind(&config.socket)
        .map_err(|e| HarnessError::Config(format!("bind {:?}: {e}", config.socket)))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| HarnessError::Config(format!("nonblocking listener: {e}")))?;

    let mut workers = Vec::new();
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("server-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = shared.admission.take() {
                        shared.run_job(job);
                    }
                })
                .expect("spawn worker"),
        );
    }
    let pump = {
        let shared = Arc::clone(&shared);
        let every = config.heartbeat_every;
        std::thread::Builder::new()
            .name("server-heartbeat-pump".into())
            .spawn(move || {
                while !shared.stopping.load(Ordering::Acquire) {
                    std::thread::sleep(every);
                    let running = shared.running.lock().expect("running registry poisoned");
                    for entry in running.values() {
                        let snap = entry.hb.snapshot();
                        Shared::send(
                            &entry.reply,
                            Response::Heartbeat {
                                digest: entry.digest.clone(),
                                newton: snap.newton_iterations,
                                progress: entry.hb.progress(),
                            },
                        );
                    }
                }
            })
            .expect("spawn heartbeat pump")
    };

    let mut connections = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                connections.push(
                    std::thread::Builder::new()
                        .name("server-conn".into())
                        .spawn(move || handle_connection(shared, stream))
                        .expect("spawn connection handler"),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if shared.admission.drained() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    shared.stopping.store(true, Ordering::Release);
    for w in workers {
        let _ = w.join();
    }
    let _ = pump.join();
    for c in connections {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}
