//! Resident simulation job server for the nemscmos workspace.
//!
//! A long-lived process that accepts simulation *decks* over a local
//! Unix socket (newline-delimited JSON, vendored codec — std only) and
//! runs them on the workspace's SPICE engine under the full harness
//! discipline:
//!
//! * **Admission control** ([`admission`]) — a bounded, priority-ordered
//!   queue; per-client solver-effort quotas drawn from a shared
//!   [`QuotaPool`](nemscmos_spice::budget::QuotaPool); typed
//!   [`RejectReason`]s for every refusal (`queue-full`,
//!   `quota-exhausted`, `deck-too-large`, `bad-request`, `draining`).
//! * **Backpressure** — under overload the lowest-priority queued job is
//!   shed first, and degradable workloads (Monte Carlo) are admitted at
//!   reduced sample counts with an explicit `degraded: true` flag and
//!   their own content digest.
//! * **Crash tolerance** — every acceptance is fsync'd to the
//!   [`Journal`](nemscmos_harness::Journal) *before* the ack; a
//!   `kill -9` and restart with the same run id re-runs the orphans
//!   bitwise-identically (deck execution is deterministic from the spec
//!   alone) and replays completed results from the journal and the
//!   content-addressed cache.
//! * **Lifecycle** — graceful drain on the `shutdown` op, a `health` op
//!   exposing queue depth, shed/degraded/rejection counters and
//!   supervision totals, and a retrying [`ServerClient`].
//!
//! The binary (`nemscmos-server`) wires [`server::serve`] to CLI flags
//! and refuses to start on malformed supervision environment knobs. The
//! matching chaos drill lives in `nemscmos-bench` as `bin/chaos`.

pub mod admission;
pub mod client;
pub mod deck;
pub mod proto;
pub mod server;

pub use admission::{Admission, AdmissionConfig, Counters, SubmitOutcome};
pub use client::ServerClient;
pub use deck::{Deck, Limits};
pub use proto::{RejectReason, Request, Response};
pub use server::{serve, ServerConfig};
