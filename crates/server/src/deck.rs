//! Deck specs: the canonical, content-addressable job language.
//!
//! A deck is submitted as a single spec string — the same canonical
//! rendering the harness cache keys on, so a deck's digest *is* its
//! cache/journal identity. Four families cover the chaos-drill mix:
//!
//! | spec | workload |
//! |------|----------|
//! | `deck v1 verify name=<deck>`                     | one transient of a [`nemscmos_verify::diff`] differential deck |
//! | `deck v1 domino fan_in=N fan_out=M`              | one clock period of the paper's hybrid dynamic OR gate |
//! | `deck v1 mc trials=N seed=S sigma=F`             | Monte-Carlo divider variation study (the degradable family) |
//! | `deck v1 fault kind=K disarm=D seed=S`           | a solve under a seeded injected fault ([`nemscmos_spice::faults`]) |
//!
//! Parsing is strict (unknown kinds, missing or duplicate keys, and
//! out-of-range values are typed errors) and [`Deck::canonical`]
//! re-renders the normalized form, so equivalent submissions always
//! collapse to one digest. Execution is deterministic from the spec
//! alone — seeds live *in* the spec, never in wall-clock or scheduler
//! state — which is what makes journal replay bitwise-exact.
//!
//! Backpressure degrades only the Monte-Carlo family
//! ([`Deck::degrade`]): fewer trials is still a statistically valid
//! (noisier) answer, whereas a truncated transient is simply a
//! different experiment. A degraded deck is a *different spec* with its
//! own digest, so degraded artifacts can never shadow full-fidelity
//! ones in the cache.

use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::tech::Technology;
use nemscmos_analysis::montecarlo::Normal;
use nemscmos_harness::{HarnessError, Json};
use nemscmos_numeric::rng::Xoshiro256pp;
use nemscmos_numeric::stats::Summary;
use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::faults::{self, Disarm, FaultKind, FaultPlan};
use nemscmos_spice::waveform::Waveform;
use nemscmos_verify::diff;

/// Size limits enforced at admission (`deck-too-large` rejections).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest admissible domino fan-in.
    pub max_fan_in: usize,
    /// Largest admissible Monte-Carlo trial count.
    pub max_trials: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_fan_in: 64,
            max_trials: 100_000,
        }
    }
}

/// Fault families a deck may arm (wire subset of [`FaultKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// NaN-poisoned residual.
    Nan,
    /// Forced singular pivot.
    Singular,
    /// Jacobian corruption strong enough to break Newton.
    Jacobian,
    /// Timestep-rejection storm (transient base deck).
    Storm,
}

impl FaultSpec {
    fn label(self) -> &'static str {
        match self {
            FaultSpec::Nan => "nan",
            FaultSpec::Singular => "singular",
            FaultSpec::Jacobian => "jacobian",
            FaultSpec::Storm => "storm",
        }
    }

    fn kind(self) -> FaultKind {
        match self {
            FaultSpec::Nan => FaultKind::NanResidual,
            FaultSpec::Singular => FaultKind::SingularPivot,
            FaultSpec::Jacobian => FaultKind::JacobianPerturb { relative: 1e3 },
            FaultSpec::Storm => FaultKind::TimestepStorm,
        }
    }
}

/// Disarm policies a deck may request (wire subset of [`Disarm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisarmSpec {
    /// Rescued at the `TightGmin` rung.
    Gmin,
    /// Rescued at the `SourceStepping` rung.
    SrcStep,
    /// Rescued at the `BackwardEuler` rung.
    BeOnly,
    /// Never rescued: must surface a typed diagnostic.
    Never,
}

impl DisarmSpec {
    fn label(self) -> &'static str {
        match self {
            DisarmSpec::Gmin => "gmin",
            DisarmSpec::SrcStep => "src-step",
            DisarmSpec::BeOnly => "be-only",
            DisarmSpec::Never => "never",
        }
    }

    fn disarm(self) -> Disarm {
        match self {
            DisarmSpec::Gmin => Disarm::WhenGminFloor,
            DisarmSpec::SrcStep => Disarm::WhenSourceStepping,
            DisarmSpec::BeOnly => Disarm::WhenBackwardEuler,
            DisarmSpec::Never => Disarm::Never,
        }
    }
}

/// One parsed, validated deck.
#[derive(Debug, Clone, PartialEq)]
pub enum Deck {
    /// A differential-fleet verify deck by name.
    Verify {
        /// Name from [`diff::decks`].
        name: String,
    },
    /// The paper's hybrid dynamic OR gate, one worst-case clock period.
    Domino {
        /// Pull-down network width.
        fan_in: usize,
        /// Output load gates.
        fan_out: usize,
    },
    /// Monte-Carlo resistor-variation study of a divider.
    MonteCarlo {
        /// Sample count (the degradation knob).
        trials: usize,
        /// RNG master seed (spec-owned: replay-safe).
        seed: u64,
        /// Relative sigma of the varied resistor.
        sigma: f64,
    },
    /// A solve under a seeded injected fault.
    Fault {
        /// Fault family.
        kind: FaultSpec,
        /// Rescue policy.
        disarm: DisarmSpec,
        /// Fault-plan seed (spec-owned: replay-safe).
        seed: u64,
    },
}

fn parse_kv<'a>(tokens: &'a [&str], keys: &[&str]) -> Result<Vec<&'a str>, String> {
    if tokens.len() != keys.len() {
        return Err(format!(
            "expected exactly the keys {keys:?}, got {} token(s)",
            tokens.len()
        ));
    }
    keys.iter()
        .zip(tokens)
        .map(|(key, tok)| {
            tok.strip_prefix(&format!("{key}="))
                .ok_or(format!("expected `{key}=<value>`, got {tok:?}"))
        })
        .collect()
}

fn parse_num<T: std::str::FromStr>(key: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("`{key}={raw}` is not a valid number"))
}

impl Deck {
    /// Parses a canonical spec string.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformation — surfaced to
    /// clients as a `bad-request` rejection.
    pub fn parse(spec: &str) -> Result<Deck, String> {
        let tokens: Vec<&str> = spec.split_whitespace().collect();
        let rest = match tokens.as_slice() {
            ["deck", "v1", rest @ ..] if !rest.is_empty() => rest,
            _ => return Err("spec must start with `deck v1 <kind>`".into()),
        };
        match rest[0] {
            "verify" => {
                let vals = parse_kv(&rest[1..], &["name"])?;
                let name = vals[0].to_string();
                if !diff::decks().iter().any(|d| d.name == name) {
                    return Err(format!("unknown verify deck {name:?}"));
                }
                Ok(Deck::Verify { name })
            }
            "domino" => {
                let vals = parse_kv(&rest[1..], &["fan_in", "fan_out"])?;
                let fan_in: usize = parse_num("fan_in", vals[0])?;
                let fan_out: usize = parse_num("fan_out", vals[1])?;
                if fan_in == 0 || fan_out == 0 {
                    return Err("domino fan_in/fan_out must be positive".into());
                }
                Ok(Deck::Domino { fan_in, fan_out })
            }
            "mc" => {
                let vals = parse_kv(&rest[1..], &["trials", "seed", "sigma"])?;
                let trials: usize = parse_num("trials", vals[0])?;
                let seed: u64 = parse_num("seed", vals[1])?;
                let sigma: f64 = parse_num("sigma", vals[2])?;
                if trials == 0 {
                    return Err("mc trials must be positive".into());
                }
                if !(0.0..=1.0).contains(&sigma) {
                    return Err(format!("mc sigma {sigma} outside [0, 1]"));
                }
                Ok(Deck::MonteCarlo {
                    trials,
                    seed,
                    sigma,
                })
            }
            "fault" => {
                let vals = parse_kv(&rest[1..], &["kind", "disarm", "seed"])?;
                let kind = [
                    FaultSpec::Nan,
                    FaultSpec::Singular,
                    FaultSpec::Jacobian,
                    FaultSpec::Storm,
                ]
                .into_iter()
                .find(|k| k.label() == vals[0])
                .ok_or(format!("unknown fault kind {:?}", vals[0]))?;
                let disarm = [
                    DisarmSpec::Gmin,
                    DisarmSpec::SrcStep,
                    DisarmSpec::BeOnly,
                    DisarmSpec::Never,
                ]
                .into_iter()
                .find(|d| d.label() == vals[1])
                .ok_or(format!("unknown disarm policy {:?}", vals[1]))?;
                let seed: u64 = parse_num("seed", vals[2])?;
                Ok(Deck::Fault { kind, disarm, seed })
            }
            other => Err(format!("unknown deck kind {other:?}")),
        }
    }

    /// The normalized spec string — the exact bytes that get digested,
    /// journaled, and cached.
    pub fn canonical(&self) -> String {
        match self {
            Deck::Verify { name } => format!("deck v1 verify name={name}"),
            Deck::Domino { fan_in, fan_out } => {
                format!("deck v1 domino fan_in={fan_in} fan_out={fan_out}")
            }
            Deck::MonteCarlo {
                trials,
                seed,
                sigma,
            } => format!("deck v1 mc trials={trials} seed={seed} sigma={sigma:?}"),
            Deck::Fault { kind, disarm, seed } => format!(
                "deck v1 fault kind={} disarm={} seed={seed}",
                kind.label(),
                disarm.label()
            ),
        }
    }

    /// Why this deck exceeds `limits`, if it does.
    pub fn too_large(&self, limits: &Limits) -> Option<String> {
        match self {
            Deck::Domino { fan_in, .. } if *fan_in > limits.max_fan_in => Some(format!(
                "domino fan_in {fan_in} exceeds the cap of {}",
                limits.max_fan_in
            )),
            Deck::MonteCarlo { trials, .. } if *trials > limits.max_trials => Some(format!(
                "mc trials {trials} exceeds the cap of {}",
                limits.max_trials
            )),
            _ => None,
        }
    }

    /// The reduced-fidelity variant run under overload, if this family
    /// degrades: a Monte-Carlo deck drops to a quarter of its samples
    /// (never below `min_trials`). `None` means the deck is already at
    /// or below the floor, or its family does not degrade.
    pub fn degrade(&self, min_trials: usize) -> Option<Deck> {
        match self {
            Deck::MonteCarlo {
                trials,
                seed,
                sigma,
            } if *trials > min_trials => Some(Deck::MonteCarlo {
                trials: (*trials / 4).max(min_trials),
                seed: *seed,
                sigma: *sigma,
            }),
            _ => None,
        }
    }

    /// Runs the deck to completion. Called once per retry-ladder
    /// attempt: fault decks re-arm their plan on every call so the
    /// rung-keyed disarm policies see each escalation.
    ///
    /// # Errors
    ///
    /// Typed [`HarnessError`] (solver health, non-convergence, or a
    /// budget interrupt raised by the installed supervision scope).
    pub fn execute(&self) -> Result<Json, HarnessError> {
        match self {
            Deck::Verify { name } => {
                let deck = diff::decks()
                    .into_iter()
                    .find(|d| d.name == *name)
                    .ok_or_else(|| HarnessError::Failed(format!("verify deck {name:?} gone")))?;
                let (mut ckt, watch) = deck.build();
                let res = transient(&mut ckt, deck.tstop, &TranOptions::default())?;
                Ok(Json::Obj(
                    watch
                        .iter()
                        .map(|(label, node)| {
                            (label.clone(), Json::Num(res.voltage(*node).last_value()))
                        })
                        .collect(),
                ))
            }
            Deck::Domino { fan_in, fan_out } => {
                let tech = Technology::n90();
                let params = DynamicOrParams::new(*fan_in, *fan_out, PdnStyle::HybridNems);
                let mut built = DynamicOrGate::build(&tech, &params);
                let opts = TranOptions {
                    dt_max: Some(built.period / 400.0),
                    ..Default::default()
                };
                let res = transient(&mut built.circuit, built.period, &opts)?;
                Ok(Json::Obj(vec![
                    (
                        "dyn".into(),
                        Json::Num(res.voltage(built.dyn_node).last_value()),
                    ),
                    (
                        "out".into(),
                        Json::Num(res.voltage(built.out_node).last_value()),
                    ),
                ]))
            }
            Deck::MonteCarlo {
                trials,
                seed,
                sigma,
            } => {
                let mut samples = Vec::with_capacity(*trials);
                for trial in 0..*trials {
                    // One deterministic stream per trial index, so a
                    // degraded run's samples are a strict prefix family
                    // of the full run's.
                    let mut rng = Xoshiro256pp::for_stream(*seed, trial as u64);
                    let draw = Normal::new(0.0, 1.0).sample(&mut rng);
                    let r2 = 1e3 * (1.0 + sigma * draw).max(0.05);
                    let mut ckt = Circuit::new();
                    let a = ckt.node("a");
                    let b = ckt.node("b");
                    ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.2));
                    ckt.resistor(a, b, 1e3);
                    ckt.resistor(b, Circuit::GROUND, r2);
                    let res = op(&mut ckt)?;
                    samples.push(res.voltage(b));
                }
                let s = Summary::of(&samples)
                    .map_err(|e| HarnessError::Failed(format!("mc summary: {e}")))?;
                Ok(Json::Obj(vec![
                    ("trials".into(), Json::Num(*trials as f64)),
                    ("mean".into(), Json::Num(s.mean)),
                    ("std_dev".into(), Json::Num(s.std_dev)),
                    ("min".into(), Json::Num(s.min)),
                    ("max".into(), Json::Num(s.max)),
                ]))
            }
            Deck::Fault { kind, disarm, seed } => {
                let plan = FaultPlan::immediate(kind.kind(), disarm.disarm(), *seed);
                faults::with(plan, || match kind {
                    FaultSpec::Storm => {
                        // Storms only fire on transients.
                        let mut ckt = Circuit::new();
                        let vin = ckt.node("in");
                        let out = ckt.node("out");
                        ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
                        ckt.resistor(vin, out, 1e3);
                        ckt.capacitor(out, Circuit::GROUND, 1e-9);
                        let res = transient(&mut ckt, 5e-6, &TranOptions::default())?;
                        Ok(Json::Obj(vec![(
                            "out".into(),
                            Json::Num(res.voltage(out).last_value()),
                        )]))
                    }
                    _ => {
                        let mut ckt = Circuit::new();
                        let a = ckt.node("a");
                        let b = ckt.node("b");
                        let c = ckt.node("c");
                        ckt.vsource(a, Circuit::GROUND, Waveform::dc(3.0));
                        ckt.resistor(a, b, 1e3);
                        ckt.resistor(b, c, 2e3);
                        ckt.resistor(c, Circuit::GROUND, 3e3);
                        let res = op(&mut ckt)?;
                        Ok(Json::Obj(vec![
                            ("b".into(), Json::Num(res.voltage(b))),
                            ("c".into(), Json::Num(res.voltage(c))),
                        ]))
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_canonically() {
        for spec in [
            "deck v1 verify name=rlc-tank",
            "deck v1 domino fan_in=4 fan_out=2",
            "deck v1 mc trials=64 seed=7 sigma=0.05",
            "deck v1 fault kind=nan disarm=gmin seed=11",
            "deck v1 fault kind=storm disarm=never seed=3",
        ] {
            let deck = Deck::parse(spec).unwrap();
            assert_eq!(deck.canonical(), spec);
            assert_eq!(Deck::parse(&deck.canonical()).unwrap(), deck);
        }
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "",
            "deck v2 mc trials=1 seed=1 sigma=0.1",
            "deck v1 warp factor=9",
            "deck v1 verify name=no-such-deck",
            "deck v1 domino fan_in=0 fan_out=1",
            "deck v1 domino fan_in=4",
            "deck v1 mc trials=64 seed=7 sigma=1.5",
            "deck v1 mc trials=64 sigma=0.1 seed=7",
            "deck v1 fault kind=cosmic disarm=never seed=1",
            "deck v1 fault kind=nan disarm=maybe seed=1",
        ] {
            assert!(Deck::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn size_limits_are_enforced() {
        let limits = Limits {
            max_fan_in: 8,
            max_trials: 100,
        };
        let ok = Deck::parse("deck v1 domino fan_in=8 fan_out=2").unwrap();
        assert!(ok.too_large(&limits).is_none());
        let wide = Deck::parse("deck v1 domino fan_in=9 fan_out=2").unwrap();
        assert!(wide.too_large(&limits).is_some());
        let heavy = Deck::parse("deck v1 mc trials=101 seed=1 sigma=0.1").unwrap();
        assert!(heavy.too_large(&limits).is_some());
    }

    #[test]
    fn only_monte_carlo_degrades_and_respects_the_floor() {
        let mc = Deck::parse("deck v1 mc trials=64 seed=7 sigma=0.05").unwrap();
        let degraded = mc.degrade(8).unwrap();
        assert_eq!(
            degraded.canonical(),
            "deck v1 mc trials=16 seed=7 sigma=0.05"
        );
        // Already at the floor: nothing left to shed.
        assert!(degraded.degrade(16).is_none());
        // Floor clamping.
        assert_eq!(
            mc.degrade(32).unwrap().canonical(),
            "deck v1 mc trials=32 seed=7 sigma=0.05"
        );
        for fixed in [
            "deck v1 verify name=rlc-tank",
            "deck v1 domino fan_in=4 fan_out=2",
            "deck v1 fault kind=nan disarm=never seed=1",
        ] {
            assert!(Deck::parse(fixed).unwrap().degrade(8).is_none());
        }
    }

    #[test]
    fn execution_is_deterministic_from_the_spec() {
        let mc = Deck::parse("deck v1 mc trials=12 seed=42 sigma=0.08").unwrap();
        let a = mc.execute().unwrap().render();
        let b = mc.execute().unwrap().render();
        assert_eq!(a, b);
        let other = Deck::parse("deck v1 mc trials=12 seed=43 sigma=0.08").unwrap();
        assert_ne!(a, other.execute().unwrap().render());
    }

    #[test]
    fn never_disarmed_faults_surface_typed() {
        let deck = Deck::parse("deck v1 fault kind=nan disarm=never seed=5").unwrap();
        let err = deck.execute().unwrap_err();
        assert_eq!(err.kind(), nemscmos_harness::FailureKind::NonFinite);
    }

    #[test]
    fn verify_deck_executes() {
        let deck = Deck::parse("deck v1 verify name=rlc-tank").unwrap();
        let out = deck.execute().unwrap();
        assert!(out.get("out").and_then(Json::as_f64).is_some());
    }
}
