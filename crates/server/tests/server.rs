//! End-to-end tests: a real server on a real Unix socket, driven by
//! [`ServerClient`]. Each test gets its own scratch run directory and
//! socket; the server is spawned in-process on a thread and shut down
//! through the protocol's graceful drain.

use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

use nemscmos_harness::{content_digest, Journal, Json};
use nemscmos_server::{serve, Deck, Limits, RejectReason, Response, ServerClient, ServerConfig};

struct TestServer {
    dir: PathBuf,
    socket: PathBuf,
    handle: Option<JoinHandle<()>>,
}

impl TestServer {
    /// Starts a server with `config(base)` in a fresh scratch dir.
    fn start(tag: &str, config: impl FnOnce(ServerConfig) -> ServerConfig) -> TestServer {
        let dir =
            std::env::temp_dir().join(format!("nemscmos-server-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TestServer::start_in(dir, config)
    }

    /// Starts (or restarts) a server in an existing run dir.
    fn start_in(dir: PathBuf, config: impl FnOnce(ServerConfig) -> ServerConfig) -> TestServer {
        let socket = dir.join("server.sock");
        let cfg = config(ServerConfig::new(&socket, &dir, "e2e"));
        let handle = std::thread::spawn(move || serve(cfg).expect("server runs"));
        TestServer {
            dir,
            socket,
            handle: Some(handle),
        }
    }

    fn client(&self) -> ServerClient {
        ServerClient::connect_with_retry(&self.socket, 50, Duration::from_millis(20))
            .expect("server comes up")
    }

    /// Graceful drain + join; asserts the serve loop exits.
    fn stop(mut self, client: &mut ServerClient) {
        client.shutdown().expect("drain acknowledged");
        self.handle.take().unwrap().join().expect("clean exit");
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn done_result(resp: &Response) -> (&str, &Json) {
    match resp {
        Response::Done { source, result, .. } => (source.as_str(), result),
        other => panic!("expected done, got {other:?}"),
    }
}

#[test]
fn submit_runs_replays_and_reports_health() {
    let server = TestServer::start("basic", |c| c);
    let mut client = server.client();
    let spec = "deck v1 mc trials=24 seed=9 sigma=0.05";

    let accepted = client.submit("alice", spec, 5).unwrap();
    let digest = match &accepted {
        Response::Accepted {
            digest,
            degraded,
            effective,
        } => {
            assert!(!degraded, "below the watermark nothing degrades");
            assert_eq!(effective, spec);
            digest.clone()
        }
        other => panic!("expected accepted, got {other:?}"),
    };
    let (terminal, _) = client.wait(&digest).unwrap();
    let (source, result) = done_result(&terminal);
    assert_eq!(source, "run");
    let mean = result.get("mean").and_then(Json::as_f64).unwrap();
    assert!(mean.is_finite() && mean > 0.0, "divider mean sane: {mean}");

    // Resubmitting the same spec replays from the journal, bitwise.
    let again = client.submit("alice", spec, 5).unwrap();
    let digest2 = match &again {
        Response::Accepted { digest, .. } => digest.clone(),
        other => panic!("{other:?}"),
    };
    assert_eq!(digest2, digest);
    let (replayed, _) = client.wait(&digest).unwrap();
    let (source, replay_result) = done_result(&replayed);
    assert_eq!(source, "journal");
    assert_eq!(replay_result.render(), result.render(), "bitwise replay");

    // The result op answers from durable state too.
    let probed = client.result(spec).unwrap();
    assert_eq!(done_result(&probed).1.render(), result.render());

    // Health reflects all of it.
    let health = client.health().unwrap();
    let n = |k: &str| health.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(n("accepted"), 2);
    assert_eq!(n("completed"), 2);
    assert!(n("replayed_journal") >= 1);
    assert_eq!(n("failed"), 0);
    assert!(health.get("supervision").and_then(Json::as_str).is_some());

    // Unknown specs are a typed not-found.
    let missing = client
        .result("deck v1 mc trials=5 seed=77 sigma=0.1")
        .unwrap();
    assert!(ServerClient::rejected_with(
        &missing,
        RejectReason::NotFound
    ));

    server.stop(&mut client);
}

#[test]
fn typed_rejections_for_bad_oversized_and_draining() {
    let server = TestServer::start("reject", |mut c| {
        c.admission.limits = Limits {
            max_fan_in: 4,
            max_trials: 50,
        };
        c
    });
    let mut client = server.client();

    let bad = client.submit("bob", "deck v1 warp factor=9", 5).unwrap();
    assert!(ServerClient::rejected_with(&bad, RejectReason::BadRequest));
    let wide = client
        .submit("bob", "deck v1 domino fan_in=5 fan_out=1", 5)
        .unwrap();
    assert!(ServerClient::rejected_with(
        &wide,
        RejectReason::DeckTooLarge
    ));
    let heavy = client
        .submit("bob", "deck v1 mc trials=51 seed=1 sigma=0.1", 5)
        .unwrap();
    assert!(ServerClient::rejected_with(
        &heavy,
        RejectReason::DeckTooLarge
    ));

    // Raw protocol garbage is also a typed rejection, not a hangup.
    let garbage = client.submit("bob", "", 5).unwrap();
    assert!(ServerClient::rejected_with(
        &garbage,
        RejectReason::BadRequest
    ));

    let health = client.health().unwrap();
    let rejected = health.get("rejected").unwrap();
    let n = |k: &str| rejected.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(n("bad-request"), 2);
    assert_eq!(n("deck-too-large"), 2);

    // After the drain flips, submissions are refused as draining.
    client.shutdown().unwrap();
    let late = client.submit("bob", "deck v1 mc trials=5 seed=1 sigma=0.1", 5);
    if let Ok(resp) = late {
        assert!(ServerClient::rejected_with(&resp, RejectReason::Draining));
    } // a closed socket is also an acceptable refusal during shutdown

    if let Some(h) = server.handle {
        h.join().expect("clean exit");
    }
    let _ = std::fs::remove_dir_all(&server.dir);
}

#[test]
fn quota_kills_runaway_clients_in_band_and_refuses_further_work() {
    let server = TestServer::start("quota", |mut c| {
        c.admission.quota_newton = 10;
        c
    });
    let mut client = server.client();

    // 60 trials cost well over 10 Newton iterations: the budget stops
    // the job mid-run with a typed deadline failure.
    let spec = "deck v1 mc trials=60 seed=3 sigma=0.05";
    let accepted = client.submit("greedy", spec, 5).unwrap();
    let digest = match &accepted {
        Response::Accepted { digest, .. } => digest.clone(),
        other => panic!("{other:?}"),
    };
    let (terminal, _) = client.wait(&digest).unwrap();
    match &terminal {
        Response::Failed { kind, .. } => assert_eq!(kind, "deadline"),
        other => panic!("expected an in-band budget kill, got {other:?}"),
    }

    // The pool is spent: the next submission is refused outright.
    let refused = client.submit("greedy", spec, 5).unwrap();
    assert!(ServerClient::rejected_with(
        &refused,
        RejectReason::QuotaExhausted
    ));
    // A different client has its own pool; a 2-trial deck (~2-3 Newton
    // iterations per trial) fits comfortably inside a fresh grant of 10.
    let ok = client
        .submit("frugal", "deck v1 mc trials=2 seed=3 sigma=0.05", 5)
        .unwrap();
    let digest = match &ok {
        Response::Accepted { digest, .. } => digest.clone(),
        other => panic!("{other:?}"),
    };
    let (terminal, _) = client.wait(&digest).unwrap();
    assert!(matches!(terminal, Response::Done { .. }), "{terminal:?}");

    let health = client.health().unwrap();
    let rejected = health.get("rejected").unwrap();
    assert_eq!(
        rejected
            .get("quota-exhausted")
            .and_then(Json::as_f64)
            .unwrap() as u64,
        1
    );
    assert_eq!(
        health
            .get("deadline_exceeded")
            .and_then(Json::as_f64)
            .unwrap() as u64,
        1
    );

    server.stop(&mut client);
}

#[test]
fn faulted_decks_escalate_the_ladder_or_surface_typed() {
    let server = TestServer::start("fault", |c| c);
    let mut client = server.client();

    // Rescued at the gmin rung: completes, and the rung is reported.
    let rescued_spec = "deck v1 fault kind=nan disarm=gmin seed=11";
    let resp = client.submit("f", rescued_spec, 5).unwrap();
    let digest = match &resp {
        Response::Accepted { digest, .. } => digest.clone(),
        other => panic!("{other:?}"),
    };
    let (terminal, _) = client.wait(&digest).unwrap();
    match &terminal {
        Response::Done { rung, source, .. } => {
            assert_eq!(source, "run");
            assert_eq!(rung, "gmin");
        }
        other => panic!("expected ladder rescue, got {other:?}"),
    }

    // Never disarmed: the full ladder fails with the typed kind.
    let doomed_spec = "deck v1 fault kind=nan disarm=never seed=12";
    let resp = client.submit("f", doomed_spec, 5).unwrap();
    let digest = match &resp {
        Response::Accepted { digest, .. } => digest.clone(),
        other => panic!("{other:?}"),
    };
    let (terminal, _) = client.wait(&digest).unwrap();
    match &terminal {
        Response::Failed { kind, .. } => assert_eq!(kind, "nonfinite"),
        other => panic!("expected typed failure, got {other:?}"),
    }
    // The failure is tombstoned: a result probe replays it.
    let probed = client.result(doomed_spec).unwrap();
    assert!(matches!(probed, Response::Failed { .. }), "{probed:?}");

    let health = client.health().unwrap();
    assert!(health.get("retried").and_then(Json::as_f64).unwrap() as u64 >= 1);

    server.stop(&mut client);
}

#[test]
fn restart_resumes_orphans_bitwise_identically() {
    // Phase 1: fabricate the crash aftermath — a journal holding one
    // completed job and one accepted-but-unfinished orphan, exactly
    // what journal-before-ack leaves behind after a kill -9.
    let dir = std::env::temp_dir().join(format!(
        "nemscmos-server-test-{}-restart",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let orphan_spec = "deck v1 mc trials=16 seed=21 sigma=0.07";
    let orphan_digest = content_digest(orphan_spec);
    {
        let journal = Journal::open(&dir, "e2e").unwrap();
        journal
            .record_accepted("alice", &orphan_digest, orphan_spec)
            .unwrap();
    }
    let expected = Deck::parse(orphan_spec)
        .unwrap()
        .execute()
        .unwrap()
        .render();

    // Phase 2: a server restarted on that dir must re-run the orphan
    // without any client asking, and the answer must be bitwise what
    // the dead process would have produced.
    let server = TestServer::start_in(dir, |c| c);
    let mut client = server.client();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let result = loop {
        match client.result(orphan_spec).unwrap() {
            Response::Done { result, .. } => break result,
            Response::Running { .. } => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "orphan never finished"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("unexpected probe answer: {other:?}"),
        }
    };
    assert_eq!(result.render(), expected, "bitwise-identical re-run");

    let health = client.health().unwrap();
    let journal = health.get("journal").unwrap();
    assert_eq!(
        journal.get("pending").and_then(Json::as_f64).unwrap() as u64,
        0,
        "the restart obligation is discharged"
    );

    server.stop(&mut client);
}

#[test]
fn overload_sheds_lowest_priority_and_degrades_under_watermark() {
    let server = TestServer::start("overload", |mut c| {
        // One deliberately slow lane so the queue can actually fill.
        c.workers = 1;
        c.admission.queue_cap = 3;
        c.admission.degrade_watermark = 2;
        c.admission.min_trials = 8;
        c
    });
    let mut client = server.client();

    // A slow job occupies the worker while we pile up the queue.
    let blocker = client
        .submit("load", "deck v1 domino fan_in=4 fan_out=2", 9)
        .unwrap();
    let blocker_digest = match &blocker {
        Response::Accepted { digest, .. } => digest.clone(),
        other => panic!("{other:?}"),
    };

    let mut accepted = Vec::new();
    let mut saw_degraded = false;
    let mut low_digest = None;
    for (i, priority) in [(0u64, 2u8), (1, 5), (2, 5)] {
        let spec = format!("deck v1 mc trials=64 seed={i} sigma=0.05");
        match client.submit("load", &spec, priority).unwrap() {
            Response::Accepted {
                digest, degraded, ..
            } => {
                if degraded {
                    saw_degraded = true;
                }
                if priority == 2 {
                    low_digest = Some(digest.clone());
                }
                accepted.push(digest);
            }
            other => panic!("{other:?}"),
        }
    }
    assert!(saw_degraded, "past the watermark MC decks must degrade");

    // Queue is now at cap 3. Equal priority: refused queue-full.
    let full = client
        .submit("load", "deck v1 mc trials=64 seed=90 sigma=0.05", 2)
        .unwrap();
    assert!(ServerClient::rejected_with(&full, RejectReason::QueueFull));

    // Higher priority: admitted by shedding the priority-2 job.
    let vip = client
        .submit("load", "deck v1 mc trials=64 seed=91 sigma=0.05", 8)
        .unwrap();
    let vip_digest = match &vip {
        Response::Accepted { digest, .. } => digest.clone(),
        other => panic!("{other:?}"),
    };
    let (shed_notice, _) = client.wait(low_digest.as_deref().unwrap()).unwrap();
    assert!(
        matches!(shed_notice, Response::Shed { .. }),
        "{shed_notice:?}"
    );

    // Everything still admitted must reach a terminal state.
    for digest in accepted
        .iter()
        .filter(|d| Some(d.as_str()) != low_digest.as_deref())
        .chain([&blocker_digest, &vip_digest])
    {
        let (terminal, _) = client.wait(digest).unwrap();
        assert!(matches!(terminal, Response::Done { .. }), "{terminal:?}");
    }

    let health = client.health().unwrap();
    let n = |k: &str| health.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(n("shed"), 1);
    assert!(n("degraded") >= 1);
    assert_eq!(
        health
            .get("rejected")
            .unwrap()
            .get("queue-full")
            .and_then(Json::as_f64)
            .unwrap() as u64,
        1
    );

    server.stop(&mut client);
}

#[test]
fn heartbeats_stream_while_a_job_runs() {
    let server = TestServer::start("heartbeat", |mut c| {
        c.heartbeat_every = Duration::from_millis(20);
        c
    });
    let mut client = server.client();
    // A domino transient is slow enough to straddle several 20 ms pump
    // ticks.
    let resp = client
        .submit("hb", "deck v1 domino fan_in=8 fan_out=4", 5)
        .unwrap();
    let digest = match &resp {
        Response::Accepted { digest, .. } => digest.clone(),
        other => panic!("{other:?}"),
    };
    let (terminal, heartbeats) = client.wait(&digest).unwrap();
    assert!(matches!(terminal, Response::Done { .. }), "{terminal:?}");
    assert!(heartbeats >= 1, "expected streamed progress, got none");
    server.stop(&mut client);
}
