//! Static noise margin: butterfly curves and the maximum-inscribed-square
//! method (Figure 14 of the paper).

use crate::{AnalysisError, Result};

/// A sampled voltage transfer curve `v_out = f(v_in)`, with strictly
/// increasing inputs and (weakly) decreasing outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Vtc {
    points: Vec<(f64, f64)>,
}

impl Vtc {
    /// Creates a VTC from `(v_in, v_out)` samples.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidInput`] if fewer than two samples
    /// are given, inputs are not strictly increasing, or outputs increase
    /// by more than 1 mV anywhere (not an inverting characteristic).
    pub fn new(points: Vec<(f64, f64)>) -> Result<Vtc> {
        if points.len() < 2 {
            return Err(AnalysisError::InvalidInput(
                "VTC needs at least two samples".into(),
            ));
        }
        for w in points.windows(2) {
            let increasing = w[1].0 > w[0].0; // also rejects NaN inputs
            if !increasing {
                return Err(AnalysisError::InvalidInput(
                    "VTC inputs must be strictly increasing".into(),
                ));
            }
            if w[1].1 > w[0].1 + 1e-3 {
                return Err(AnalysisError::InvalidInput(
                    "VTC output rises: not an inverting transfer curve".into(),
                ));
            }
        }
        Ok(Vtc { points })
    }

    /// The samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Linear interpolation, clamped to the end values.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let idx = pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The inverse curve `v_in = f⁻¹(v_out)` as a function of its output,
    /// usable via [`Vtc::eval`] on the swapped axes. Near-vertical
    /// segments of idealized curves create duplicate abscissae; among
    /// duplicates the point closest to mid-swing is kept — that is the
    /// transition branch, which bounds the butterfly lobes (rail-segment
    /// endpoints bound nothing).
    fn inverse_as_function_of_x(&self) -> Vec<(f64, f64)> {
        let y_lo = self
            .points
            .iter()
            .map(|&(a, _)| a)
            .fold(f64::INFINITY, f64::min);
        let y_hi = self
            .points
            .iter()
            .map(|&(a, _)| a)
            .fold(f64::NEG_INFINITY, f64::max);
        let y_mid = 0.5 * (y_lo + y_hi);
        // Swap (vin, vout) → (vout, vin), sort ascending in the new x.
        let mut swapped: Vec<(f64, f64)> = self.points.iter().map(|&(a, b)| (b, a)).collect();
        swapped.sort_by(|p, q| p.0.partial_cmp(&q.0).expect("finite VTC"));
        // Collapse duplicate abscissae, keeping the transition branch.
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(swapped.len());
        for (x, y) in swapped {
            match out.last_mut() {
                Some(last) if (last.0 - x).abs() < 1e-12 => {
                    if (y - y_mid).abs() < (last.1 - y_mid).abs() {
                        last.1 = y;
                    }
                }
                _ => out.push((x, y)),
            }
        }
        out
    }
}

/// Result of a butterfly SNM extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnmResult {
    /// Side of the largest square in the upper-left lobe (V).
    pub lobe_high: f64,
    /// Side of the largest square in the lower-right lobe (V).
    pub lobe_low: f64,
}

impl SnmResult {
    /// The static noise margin: the smaller lobe (V).
    pub fn snm(&self) -> f64 {
        self.lobe_high.min(self.lobe_low)
    }
}

/// Largest square inscribed between the decreasing curves
/// `upper(x)` (curve A, a plain VTC) and `lower(x)` (curve B *inverted*
/// onto the same axes), scanning anchor points over `[0, vmax]`.
fn lobe_square(upper: &Vtc, lower_pts: &[(f64, f64)], vmax: f64) -> f64 {
    let lower_eval = |x: f64| -> f64 {
        if lower_pts.is_empty() {
            return 0.0;
        }
        if x <= lower_pts[0].0 {
            return lower_pts[0].1;
        }
        if x >= lower_pts[lower_pts.len() - 1].0 {
            return lower_pts[lower_pts.len() - 1].1;
        }
        let idx = lower_pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = lower_pts[idx - 1];
        let (x1, y1) = lower_pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    };
    let grid = 400;
    let mut best = 0.0f64;
    for k in 0..=grid {
        let x0 = vmax * k as f64 / grid as f64;
        let y0 = lower_eval(x0);
        // g(s) = upper(x0 + s) − (y0 + s): decreasing in s.
        let g = |s: f64| upper.eval(x0 + s) - y0 - s;
        if g(0.0) <= 0.0 {
            continue;
        }
        let (mut lo, mut hi) = (0.0f64, vmax);
        if g(hi) > 0.0 {
            best = best.max(hi);
            continue;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if g(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        best = best.max(lo);
    }
    best
}

/// Extracts the static noise margin of a cross-coupled pair from the two
/// inverter transfer curves (the butterfly of Figure 14).
///
/// `vtc_a` maps node Q̄ → Q (the left inverter), `vtc_b` maps Q → Q̄; both
/// sampled over `[0, vmax]`.
///
/// # Errors
///
/// Propagates [`AnalysisError::InvalidInput`] for malformed curves.
pub fn butterfly_snm(vtc_a: &Vtc, vtc_b: &Vtc, vmax: f64) -> Result<SnmResult> {
    let valid = vmax > 0.0; // also rejects NaN
    if !valid {
        return Err(AnalysisError::InvalidInput(format!("bad vmax {vmax}")));
    }
    // Upper-left lobe: curve A as y(x), curve B mirrored onto the same axes.
    let lobe_high = lobe_square(vtc_a, &vtc_b.inverse_as_function_of_x(), vmax);
    // Lower-right lobe: swap the roles.
    let lobe_low = lobe_square(vtc_b, &vtc_a.inverse_as_function_of_x(), vmax);
    Ok(SnmResult {
        lobe_high,
        lobe_low,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A near-ideal inverter VTC: full rails with a steep transition at
    /// `vth`.
    fn steep_vtc(vth: f64, vdd: f64) -> Vtc {
        Vtc::new(vec![
            (0.0, vdd),
            (vth - 1e-4, vdd),
            (vth + 1e-4, 0.0),
            (vdd, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn ideal_symmetric_butterfly_snm_is_half_rail() {
        let vdd = 1.2;
        let a = steep_vtc(0.6, vdd);
        let b = steep_vtc(0.6, vdd);
        let r = butterfly_snm(&a, &b, vdd).unwrap();
        assert!((r.lobe_high - 0.6).abs() < 2e-2, "lobe {}", r.lobe_high);
        assert!((r.lobe_low - 0.6).abs() < 2e-2);
        assert!((r.snm() - 0.6).abs() < 2e-2);
    }

    #[test]
    fn skewed_thresholds_shrink_one_lobe() {
        let vdd = 1.2;
        let a = steep_vtc(0.4, vdd);
        let b = steep_vtc(0.6, vdd);
        let r = butterfly_snm(&a, &b, vdd).unwrap();
        // Lobes become 0.4/0.6-ish; SNM limited by the smaller one.
        assert!(r.snm() < 0.52);
        assert!(r.snm() > 0.3);
        assert!(
            (r.lobe_high - r.lobe_low).abs() > 0.05,
            "lobes should differ"
        );
    }

    #[test]
    fn snm_is_symmetric_under_inverter_swap() {
        let vdd = 1.2;
        let a = steep_vtc(0.45, vdd);
        let b = steep_vtc(0.7, vdd);
        let r1 = butterfly_snm(&a, &b, vdd).unwrap();
        let r2 = butterfly_snm(&b, &a, vdd).unwrap();
        assert!((r1.snm() - r2.snm()).abs() < 1e-2);
    }

    #[test]
    fn degenerate_identical_diagonal_curves_have_zero_snm() {
        // A "wire" (non-regenerative) transfer: y = vdd − x for both.
        let vdd = 1.2;
        let line = Vtc::new(vec![(0.0, vdd), (vdd, 0.0)]).unwrap();
        let r = butterfly_snm(&line, &line, vdd).unwrap();
        assert!(r.snm() < 1e-2, "snm = {}", r.snm());
    }

    #[test]
    fn weak_pullup_reduces_high_lobe() {
        let vdd = 1.2;
        // Inverter A can only pull up to 0.9 V (degraded high level).
        let a = Vtc::new(vec![(0.0, 0.9), (0.55, 0.9), (0.65, 0.0), (vdd, 0.0)]).unwrap();
        let b = steep_vtc(0.6, vdd);
        let weak = butterfly_snm(&a, &b, vdd).unwrap();
        let strong = butterfly_snm(&steep_vtc(0.6, vdd), &b, vdd).unwrap();
        assert!(weak.snm() < strong.snm());
    }

    #[test]
    fn vtc_validation() {
        assert!(Vtc::new(vec![(0.0, 1.0)]).is_err());
        assert!(Vtc::new(vec![(0.0, 1.0), (0.0, 0.5)]).is_err());
        assert!(
            Vtc::new(vec![(0.0, 0.2), (1.0, 1.0)]).is_err(),
            "rising curve rejected"
        );
    }

    #[test]
    fn eval_clamps() {
        let v = Vtc::new(vec![(0.2, 1.0), (0.8, 0.0)]).unwrap();
        assert_eq!(v.eval(0.0), 1.0);
        assert_eq!(v.eval(1.0), 0.0);
        assert!((v.eval(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn butterfly_rejects_bad_vmax() {
        let v = steep_vtc(0.6, 1.2);
        assert!(butterfly_snm(&v, &v, 0.0).is_err());
    }
}
