//! Supply energy and leakage power extraction.

use nemscmos_spice::element::SourceRef;
use nemscmos_spice::result::{OpResult, TranResult};

use crate::{AnalysisError, Result};

/// Energy delivered *by* a supply between `t0` and `t1` (joules).
///
/// The through-source current convention makes a sourcing supply negative,
/// so delivered energy is `−V_supply ∫ i dt`; a positive result means the
/// supply did net work on the circuit.
pub fn supply_energy(res: &TranResult, supply: SourceRef, v_supply: f64, t0: f64, t1: f64) -> f64 {
    let i = res.source_current(supply);
    -v_supply * i.integral_between(t0, t1)
}

/// Average power delivered by a supply over `[t0, t1]` (watts).
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidInput`] if the window is degenerate.
pub fn average_supply_power(
    res: &TranResult,
    supply: SourceRef,
    v_supply: f64,
    t0: f64,
    t1: f64,
) -> Result<f64> {
    let valid_window = t1 > t0; // also rejects NaN endpoints
    if !valid_window {
        return Err(AnalysisError::InvalidInput(format!(
            "bad power window [{t0}, {t1}]"
        )));
    }
    Ok(supply_energy(res, supply, v_supply, t0, t1) / (t1 - t0))
}

/// Static (leakage) power drawn from a supply at a DC operating point
/// (watts): `P = V · |I_source|` with a sourcing supply.
pub fn leakage_power(op: &OpResult, supply: SourceRef, v_supply: f64) -> f64 {
    v_supply * (-op.source_current(supply)).max(0.0)
}

/// Total standby current delivered by several supplies at an operating
/// point (amperes) — used for SRAM standby leakage where the cell draws
/// from both V_dd and the precharged bitlines.
pub fn total_standby_current(op: &OpResult, supplies: &[SourceRef]) -> f64 {
    supplies
        .iter()
        .map(|&s| (-op.source_current(s)).max(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_spice::analysis::op::op;
    use nemscmos_spice::analysis::tran::{transient, TranOptions};
    use nemscmos_spice::circuit::Circuit;
    use nemscmos_spice::waveform::Waveform;

    #[test]
    fn resistive_load_power_matches_v2_over_r() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let res = transient(&mut ckt, 1e-6, &TranOptions::default()).unwrap();
        let p = average_supply_power(&res, v, 2.0, 0.0, 1e-6).unwrap();
        assert!((p - 4e-3).abs() / 4e-3 < 1e-6, "P = {p}");
    }

    #[test]
    fn capacitor_charge_energy_is_cv2() {
        // Charging C through R consumes C·V² from the supply (half stored,
        // half dissipated).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v = ckt.vsource(a, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        ckt.resistor(a, b, 1e3);
        ckt.capacitor(b, Circuit::GROUND, 1e-9);
        let res = transient(&mut ckt, 20e-6, &TranOptions::default()).unwrap();
        let e = supply_energy(&res, v, 1.0, 0.0, 20e-6);
        let cv2 = 1e-9 * 1.0;
        assert!((e - cv2).abs() / cv2 < 0.02, "E = {e:.4e}, CV² = {cv2:.4e}");
    }

    #[test]
    fn dc_leakage_power() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.2));
        ckt.resistor(a, Circuit::GROUND, 1.2e6); // 1 µA leak
        let res = op(&mut ckt).unwrap();
        let p = leakage_power(&res, v, 1.2);
        assert!((p - 1.2e-6).abs() / 1.2e-6 < 1e-4);
    }

    #[test]
    fn sinking_supply_reports_zero_leakage() {
        // A 0 V source across a resistor sinks no static current.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        let vzero = ckt.vsource(b, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor(a, b, 1e3);
        let res = op(&mut ckt).unwrap();
        // The 0 V source *absorbs* current; leakage_power clamps at zero.
        assert_eq!(leakage_power(&res, vzero, 0.0), 0.0);
    }

    #[test]
    fn degenerate_window_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let res = transient(&mut ckt, 1e-6, &TranOptions::default()).unwrap();
        assert!(average_supply_power(&res, v, 1.0, 1e-6, 1e-6).is_err());
    }

    #[test]
    fn multiple_supply_standby_current_sums() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v1 = ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        let v2 = ckt.vsource(b, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e6);
        ckt.resistor(b, Circuit::GROUND, 1e6);
        let res = op(&mut ckt).unwrap();
        let i = total_standby_current(&res, &[v1, v2]);
        assert!((i - 2e-6).abs() / 2e-6 < 1e-4);
    }
}
