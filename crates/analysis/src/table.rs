//! Plain-text experiment tables for the bench binaries and EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use nemscmos_analysis::table::Table;
///
/// let mut t = Table::new(vec!["fan-out", "delay (ps)"]);
/// t.row(vec!["1".into(), "23.5".into()]);
/// t.row(vec!["3".into(), "41.0".into()]);
/// let s = t.render();
/// assert!(s.contains("fan-out"));
/// assert!(s.contains("41.0"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as column-aligned text with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit_row = |cells: &[String], out: &mut String| {
            for (c, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        emit_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit_row(row, &mut out);
        }
        out
    }
}

/// Formats a quantity in engineering notation with a unit, e.g.
/// `fmt_eng(2.3e-11, "s")` → `"23.00 ps"`.
pub fn fmt_eng(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    let prefixes: [(f64, &str); 9] = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let mag = value.abs();
    for &(scale, prefix) in &prefixes {
        if mag >= scale {
            return format!("{:.2} {}{}", value / scale, prefix, unit);
        }
    }
    format!("{:.2} f{}", value / 1e-15, unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn engineering_formatting() {
        assert_eq!(fmt_eng(0.0, "W"), "0 W");
        assert_eq!(fmt_eng(2.3e-11, "s"), "23.00 ps");
        assert_eq!(fmt_eng(1.5e-3, "A"), "1.50 mA");
        assert_eq!(fmt_eng(4.2e6, "Hz"), "4.20 MHz");
        assert_eq!(fmt_eng(-5e-9, "s"), "-5.00 ns");
        assert_eq!(fmt_eng(3e-15, "F"), "3.00 fF");
    }
}
