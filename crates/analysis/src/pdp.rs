//! The paper's Equation 1: activity-weighted power-delay product.

use nemscmos_harness::json::{Json, JsonCodec};

/// Measured operating figures of one gate implementation.
///
/// # Example
///
/// ```
/// use nemscmos_analysis::pdp::GateFigures;
///
/// let g = GateFigures { leakage_power: 1e-9, switching_power: 1e-6, delay: 40e-12 };
/// // At α = 0 only leakage matters; at α = 1 only switching power.
/// assert!(g.power_delay_product(0.0) < g.power_delay_product(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateFigures {
    /// Leakage (idle) power `P_L` (W).
    pub leakage_power: f64,
    /// Switching power `P_S` (W).
    pub switching_power: f64,
    /// Worst-case delay `D` (s).
    pub delay: f64,
}

impl GateFigures {
    /// Equation 1 of the paper:
    /// `P·D = ((1 − α)·P_L + α·P_S) · D`.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn power_delay_product(&self, activity: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity factor must be in [0, 1], got {activity}"
        );
        ((1.0 - activity) * self.leakage_power + activity * self.switching_power) * self.delay
    }

    /// Sweeps Equation 1 over `points` evenly spaced activity factors in
    /// `[0, 1]`, returning `(α, P·D)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn pdp_sweep(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two sweep points");
        (0..points)
            .map(|k| {
                let a = k as f64 / (points - 1) as f64;
                (a, self.power_delay_product(a))
            })
            .collect()
    }
}

// Makes gate characterizations cacheable by the harness. Lives here
// (not in `nemscmos-harness`) because of the orphan rule: analysis
// depends on the harness, not the other way around.
impl JsonCodec for GateFigures {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("leakage_power".into(), Json::Num(self.leakage_power)),
            ("switching_power".into(), Json::Num(self.switching_power)),
            ("delay".into(), Json::Num(self.delay)),
        ])
    }
    fn from_json(v: &Json) -> Option<GateFigures> {
        Some(GateFigures {
            leakage_power: v.get("leakage_power")?.as_f64()?,
            switching_power: v.get("switching_power")?.as_f64()?,
            delay: v.get("delay")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figures() -> GateFigures {
        GateFigures {
            leakage_power: 1e-9,
            switching_power: 1e-6,
            delay: 100e-12,
        }
    }

    #[test]
    fn endpoints_isolate_each_power_term() {
        let g = figures();
        assert!((g.power_delay_product(0.0) - 1e-9 * 100e-12).abs() < 1e-30);
        assert!((g.power_delay_product(1.0) - 1e-6 * 100e-12).abs() < 1e-27);
    }

    #[test]
    fn pdp_is_linear_in_activity() {
        let g = figures();
        let mid = g.power_delay_product(0.5);
        let expect = 0.5 * (g.power_delay_product(0.0) + g.power_delay_product(1.0));
        assert!((mid - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn sweep_covers_unit_interval() {
        let pts = figures().pdp_sweep(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 1.0);
        // Monotone increasing when switching power dominates leakage.
        for w in pts.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "activity factor")]
    fn out_of_range_activity_panics() {
        figures().power_delay_product(1.5);
    }

    #[test]
    fn figures_round_trip_through_json() {
        let g = figures();
        assert_eq!(GateFigures::from_json(&g.to_json()), Some(g));
        assert_eq!(GateFigures::from_json(&Json::Num(1.0)), None);
    }
}
