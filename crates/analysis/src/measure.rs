//! Propagation delay and edge timing.

use nemscmos_spice::result::Trace;

use crate::{AnalysisError, Result};

/// Edge direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Low-to-high transition.
    Rising,
    /// High-to-low transition.
    Falling,
}

/// Time of the first `edge`-direction crossing of `level` at or after
/// `from`.
///
/// # Errors
///
/// Returns [`AnalysisError::MissingCrossing`] if the trace never crosses.
pub fn crossing_time(trace: &Trace, level: f64, edge: Edge, from: f64) -> Result<f64> {
    let t = match edge {
        Edge::Rising => trace.crossing_rising(level, from),
        Edge::Falling => trace.crossing_falling(level, from),
    };
    t.ok_or(AnalysisError::MissingCrossing {
        what: format!("trace ({edge:?})"),
        level,
    })
}

/// Propagation delay from the `in_edge` crossing of `v_mid` on `input` to
/// the subsequent `out_edge` crossing of `v_mid` on `output`, both at or
/// after `from`.
///
/// This is the standard 50%-to-50% gate delay when `v_mid = v_dd/2`.
///
/// # Example
///
/// ```
/// use nemscmos_analysis::measure::{propagation_delay, Edge};
/// use nemscmos_spice::result::Trace;
///
/// # fn main() -> nemscmos_analysis::Result<()> {
/// let input = Trace::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0]);
/// let output = Trace::new(vec![0.0, 2.0, 3.0], vec![1.0, 1.0, 0.0]);
/// let d = propagation_delay(&input, Edge::Rising, &output, Edge::Falling, 0.5, 0.0)?;
/// assert!((d - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`AnalysisError::MissingCrossing`] if either signal never
/// crosses.
pub fn propagation_delay(
    input: &Trace,
    in_edge: Edge,
    output: &Trace,
    out_edge: Edge,
    v_mid: f64,
    from: f64,
) -> Result<f64> {
    let t_in = crossing_time(input, v_mid, in_edge, from)?;
    let t_out = crossing_time(output, v_mid, out_edge, t_in)?;
    Ok(t_out - t_in)
}

/// 10%–90% rise time of a trace (with `v_lo`/`v_hi` the signal rails),
/// measured from the first rising 10% crossing at or after `from`.
///
/// # Errors
///
/// Returns [`AnalysisError::MissingCrossing`] if the edge is incomplete,
/// and [`AnalysisError::InvalidInput`] if `v_hi <= v_lo`.
pub fn rise_time(trace: &Trace, v_lo: f64, v_hi: f64, from: f64) -> Result<f64> {
    if v_hi <= v_lo {
        return Err(AnalysisError::InvalidInput(format!(
            "bad rails [{v_lo}, {v_hi}]"
        )));
    }
    let span = v_hi - v_lo;
    let t10 = crossing_time(trace, v_lo + 0.1 * span, Edge::Rising, from)?;
    let t90 = crossing_time(trace, v_lo + 0.9 * span, Edge::Rising, t10)?;
    Ok(t90 - t10)
}

/// 90%–10% fall time of a trace.
///
/// # Errors
///
/// See [`rise_time`].
pub fn fall_time(trace: &Trace, v_lo: f64, v_hi: f64, from: f64) -> Result<f64> {
    if v_hi <= v_lo {
        return Err(AnalysisError::InvalidInput(format!(
            "bad rails [{v_lo}, {v_hi}]"
        )));
    }
    let span = v_hi - v_lo;
    let t90 = crossing_time(trace, v_lo + 0.9 * span, Edge::Falling, from)?;
    let t10 = crossing_time(trace, v_lo + 0.1 * span, Edge::Falling, t90)?;
    Ok(t10 - t90)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_pair() -> (Trace, Trace) {
        // Input rises at t = 1..2; output falls at t = 3..4.
        let input = Trace::new(vec![0.0, 1.0, 2.0, 5.0], vec![0.0, 0.0, 1.0, 1.0]);
        let output = Trace::new(vec![0.0, 3.0, 4.0, 5.0], vec![1.0, 1.0, 0.0, 0.0]);
        (input, output)
    }

    #[test]
    fn inverter_style_delay() {
        let (input, output) = edge_pair();
        let d = propagation_delay(&input, Edge::Rising, &output, Edge::Falling, 0.5, 0.0).unwrap();
        // Input crosses 0.5 at t = 1.5; output at t = 3.5.
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_output_crossing_is_reported() {
        let (input, _) = edge_pair();
        let flat = Trace::new(vec![0.0, 5.0], vec![1.0, 1.0]);
        let err =
            propagation_delay(&input, Edge::Rising, &flat, Edge::Falling, 0.5, 0.0).unwrap_err();
        assert!(matches!(err, AnalysisError::MissingCrossing { .. }));
    }

    #[test]
    fn rise_and_fall_times_of_linear_ramp() {
        let ramp_up = Trace::new(vec![0.0, 1.0], vec![0.0, 1.0]);
        let r = rise_time(&ramp_up, 0.0, 1.0, 0.0).unwrap();
        assert!((r - 0.8).abs() < 1e-12);
        let ramp_down = Trace::new(vec![0.0, 1.0], vec![1.0, 0.0]);
        let f = fall_time(&ramp_down, 0.0, 1.0, 0.0).unwrap();
        assert!((f - 0.8).abs() < 1e-12);
    }

    #[test]
    fn bad_rails_rejected() {
        let t = Trace::new(vec![0.0, 1.0], vec![0.0, 1.0]);
        assert!(rise_time(&t, 1.0, 0.0, 0.0).is_err());
        assert!(fall_time(&t, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn from_parameter_skips_earlier_edges() {
        // Two rising edges; measure from after the first.
        let t = Trace::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 1.0, 0.0, 0.0, 1.0]);
        let c = crossing_time(&t, 0.5, Edge::Rising, 2.5).unwrap();
        assert!((c - 3.5).abs() < 1e-12);
    }
}
