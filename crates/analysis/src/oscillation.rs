//! Periodic-signal measurements: frequency, period jitter, overshoot and
//! settling time — used for ring-oscillator process monitors and the
//! NEMS resonator studies.

use nemscmos_spice::result::Trace;

use crate::{AnalysisError, Result};

/// Frequency statistics of a periodic signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyMeasure {
    /// Mean frequency over the measured cycles (Hz).
    pub frequency: f64,
    /// Mean period (s).
    pub period: f64,
    /// Peak-to-peak period variation across the measured cycles (s).
    pub period_jitter: f64,
    /// Number of full cycles measured.
    pub cycles: usize,
}

/// Measures frequency from successive rising crossings of `level`,
/// ignoring everything before `from` (startup transient).
///
/// # Errors
///
/// Returns [`AnalysisError::MissingCrossing`] if fewer than two rising
/// crossings exist after `from`.
pub fn measure_frequency(trace: &Trace, level: f64, from: f64) -> Result<FrequencyMeasure> {
    let mut crossings = Vec::new();
    let mut t = from;
    // Step far enough past each crossing that floating-point addition
    // actually advances the time.
    let nudge = (trace.t_end() - trace.t_start()).abs() * 1e-9 + f64::MIN_POSITIVE;
    while let Some(tc) = trace.crossing_rising(level, t) {
        crossings.push(tc);
        t = tc + nudge;
        if crossings.len() > 100_000 {
            break;
        }
    }
    if crossings.len() < 2 {
        return Err(AnalysisError::MissingCrossing {
            what: format!(
                "periodic signal (found {} rising crossings)",
                crossings.len()
            ),
            level,
        });
    }
    let periods: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
    let period = periods.iter().sum::<f64>() / periods.len() as f64;
    let p_min = periods.iter().cloned().fold(f64::INFINITY, f64::min);
    let p_max = periods.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok(FrequencyMeasure {
        frequency: 1.0 / period,
        period,
        period_jitter: p_max - p_min,
        cycles: periods.len(),
    })
}

/// Fractional overshoot of a step response above its final value:
/// `(max − final) / |final − initial|`. Returns `0` for a monotone
/// response.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidInput`] if the trace never moves
/// (degenerate step).
pub fn overshoot(trace: &Trace) -> Result<f64> {
    let initial = trace.values()[0];
    let fin = trace.last_value();
    let span = (fin - initial).abs();
    if span < 1e-15 {
        return Err(AnalysisError::InvalidInput(
            "flat trace has no step to measure".into(),
        ));
    }
    let peak = if fin > initial {
        trace.max_value() - fin
    } else {
        fin - trace.min_value()
    };
    Ok((peak / span).max(0.0))
}

/// Time after which the signal stays within `±tolerance` of its final
/// value (settling time, measured from the trace start).
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidInput`] for a non-positive tolerance.
pub fn settling_time(trace: &Trace, tolerance: f64) -> Result<f64> {
    let valid = tolerance > 0.0; // also rejects NaN
    if !valid {
        return Err(AnalysisError::InvalidInput(format!(
            "bad settling tolerance {tolerance}"
        )));
    }
    let fin = trace.last_value();
    let mut settled_at = trace.t_start();
    for (&t, &v) in trace.times().iter().zip(trace.values()) {
        if (v - fin).abs() > tolerance {
            settled_at = t;
        }
    }
    Ok(settled_at - trace.t_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_trace(freq: f64, cycles: usize) -> Trace {
        let pts = 200 * cycles;
        let t_end = cycles as f64 / freq;
        let times: Vec<f64> = (0..pts)
            .map(|k| t_end * k as f64 / (pts - 1) as f64)
            .collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * freq * t).sin())
            .collect();
        Trace::new(times, values)
    }

    #[test]
    fn frequency_of_clean_sine() {
        let tr = sine_trace(1e6, 8);
        let m = measure_frequency(&tr, 0.0, 0.0).unwrap();
        assert!(
            (m.frequency - 1e6).abs() / 1e6 < 1e-3,
            "f = {:.4e}",
            m.frequency
        );
        assert!(m.cycles >= 6);
        assert!(m.period_jitter < 0.01 * m.period);
    }

    #[test]
    fn startup_region_is_skipped() {
        let tr = sine_trace(1e6, 8);
        let m = measure_frequency(&tr, 0.0, 3e-6).unwrap();
        assert!(m.cycles < 8);
        assert!((m.frequency - 1e6).abs() / 1e6 < 1e-3);
    }

    #[test]
    fn aperiodic_signal_is_rejected() {
        let tr = Trace::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]);
        assert!(measure_frequency(&tr, 0.5, 0.0).is_err());
    }

    #[test]
    fn overshoot_of_damped_step() {
        // Step to 1.0 with a 20% overshoot sample.
        let tr = Trace::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
            vec![0.0, 1.2, 0.9, 1.02, 1.0],
        );
        let os = overshoot(&tr).unwrap();
        assert!((os - 0.2).abs() < 1e-12, "overshoot {os}");
    }

    #[test]
    fn monotone_step_has_zero_overshoot() {
        let tr = Trace::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.7, 1.0]);
        assert_eq!(overshoot(&tr).unwrap(), 0.0);
    }

    #[test]
    fn falling_step_overshoot() {
        let tr = Trace::new(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, -0.1, 0.05, 0.0]);
        let os = overshoot(&tr).unwrap();
        assert!((os - 0.1).abs() < 1e-12);
    }

    #[test]
    fn flat_trace_rejected_for_overshoot() {
        let tr = Trace::new(vec![0.0, 1.0], vec![0.5, 0.5]);
        assert!(overshoot(&tr).is_err());
    }

    #[test]
    fn settling_time_of_ringing_step() {
        let tr = Trace::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            vec![0.0, 1.3, 0.85, 1.06, 0.99, 1.0],
        );
        let ts = settling_time(&tr, 0.05).unwrap();
        // Last excursion beyond ±0.05 is at t = 3 (1.06).
        assert!((ts - 3.0).abs() < 1e-12, "t_settle = {ts}");
        assert!(settling_time(&tr, 0.0).is_err());
    }
}
