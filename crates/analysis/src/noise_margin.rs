//! Pass/fail threshold search: the driver behind the dynamic-gate input
//! noise-margin measurement (Figure 9).
//!
//! The noise margin of a dynamic gate is the largest DC noise level on its
//! inputs that does *not* corrupt the evaluated output. Each probe of a
//! candidate level requires a full transient simulation, so the search
//! wraps an arbitrary fallible pass/fail closure with plain bisection.

use crate::{AnalysisError, Result};

/// Finds the largest `level` in `[lo, hi]` for which `passes(level)`
/// returns `Ok(true)`, to within `tol`.
///
/// Assumes monotonicity: if a level fails, all higher levels fail. The
/// endpoints are probed first: if even `lo` fails the result is `lo`; if
/// `hi` passes the result is `hi`.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidInput`] for a degenerate interval or
/// non-positive tolerance, and propagates the first error from `passes`.
pub fn max_passing_level<F>(mut passes: F, lo: f64, hi: f64, tol: f64) -> Result<f64>
where
    F: FnMut(f64) -> Result<bool>,
{
    let valid = hi > lo && tol > 0.0; // also rejects NaN inputs
    if !valid {
        return Err(AnalysisError::InvalidInput(format!(
            "bad search interval [{lo}, {hi}] / tol {tol}"
        )));
    }
    if !passes(lo)? {
        return Ok(lo);
    }
    if passes(hi)? {
        return Ok(hi);
    }
    let mut a = lo; // known passing
    let mut b = hi; // known failing
    while b - a > tol {
        let mid = 0.5 * (a + b);
        if passes(mid)? {
            a = mid;
        } else {
            b = mid;
        }
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_threshold() {
        let nm = max_passing_level(|v| Ok(v <= 0.437), 0.0, 1.2, 1e-6).unwrap();
        assert!((nm - 0.437).abs() < 1e-5);
    }

    #[test]
    fn all_failing_returns_lo() {
        let nm = max_passing_level(|_| Ok(false), 0.0, 1.0, 1e-3).unwrap();
        assert_eq!(nm, 0.0);
    }

    #[test]
    fn all_passing_returns_hi() {
        let nm = max_passing_level(|_| Ok(true), 0.0, 1.0, 1e-3).unwrap();
        assert_eq!(nm, 1.0);
    }

    #[test]
    fn probe_errors_propagate() {
        let r = max_passing_level(
            |_| Err(AnalysisError::InvalidInput("sim blew up".into())),
            0.0,
            1.0,
            1e-3,
        );
        assert!(r.is_err());
    }

    #[test]
    fn degenerate_interval_rejected() {
        assert!(max_passing_level(|_| Ok(true), 1.0, 1.0, 1e-3).is_err());
        assert!(max_passing_level(|_| Ok(true), 0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let mut count = 0;
        let _ = max_passing_level(
            |v| {
                count += 1;
                Ok(v < 0.5)
            },
            0.0,
            1.0,
            1e-3,
        )
        .unwrap();
        assert!(count < 20, "used {count} probes");
    }
}
