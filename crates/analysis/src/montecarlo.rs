//! Seeded, parallel Monte Carlo over model parameters.
//!
//! Figure 9 of the paper characterizes dynamic-gate noise margins under
//! process variation expressed as `σ_Vth / µ_Vth` percentages. Each trial
//! draws per-device threshold shifts from a normal distribution; trials
//! are deterministic in the master seed and fan out over the harness
//! work-stealing pool ([`nemscmos_harness::pool`]).
//!
//! Randomness comes from the workspace's vendored xoshiro256++ generator
//! ([`nemscmos_numeric::rng`]): trial `i` runs on the decorrelated stream
//! `Xoshiro256pp::for_stream(seed, i)`, so results are reproducible and
//! bitwise identical regardless of thread count or scheduling.

use nemscmos_harness::pool;
use nemscmos_numeric::rng::{Rand64, Xoshiro256pp};
use nemscmos_numeric::stats::Summary;

use crate::Result;

/// A normal distribution sampler (Box–Muller; avoids an extra dependency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (≥ 0).
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal sampler.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Normal {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "bad normal parameters"
        );
        Normal { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample<R: Rand64>(&self, rng: &mut R) -> f64 {
        // Box–Muller with rejection of u1 = 0.
        let mut u1 = rng.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.next_f64();
        }
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Runs `trials` independent experiments in parallel.
///
/// Each trial gets its own [`Xoshiro256pp`] stream derived
/// deterministically from `seed` and the trial index, so results are
/// reproducible regardless of thread scheduling. Errors from individual
/// trials are propagated (the first one encountered by trial order).
///
/// # Example
///
/// ```
/// use nemscmos_analysis::montecarlo::{monte_carlo, Normal};
///
/// # fn main() -> nemscmos_analysis::Result<()> {
/// let draws = monte_carlo(64, 42, |rng, _| Ok(Normal::new(0.0, 1.0).sample(rng)))?;
/// assert_eq!(draws.len(), 64);
/// # Ok(())
/// # }
/// ```
pub fn monte_carlo<T, F>(trials: usize, seed: u64, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&mut Xoshiro256pp, usize) -> Result<T> + Sync,
{
    pool::parallel_map(pool::default_threads(), trials, |idx| {
        // Distinct, deterministic stream per trial.
        let mut rng = Xoshiro256pp::for_stream(seed, idx as u64);
        f(&mut rng, idx)
    })
    .into_iter()
    .collect()
}

/// Convenience: Monte Carlo where each trial yields a scalar, summarized.
///
/// # Errors
///
/// Propagates trial errors and summary failures (empty/non-finite).
pub fn monte_carlo_summary<F>(trials: usize, seed: u64, f: F) -> Result<Summary>
where
    F: Fn(&mut Xoshiro256pp, usize) -> Result<f64> + Sync,
{
    let samples = monte_carlo(trials, seed, f)?;
    Summary::of(&samples)
        .map_err(|e| crate::AnalysisError::InvalidInput(format!("summary failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let run = || monte_carlo(32, 42, |rng, _| Ok(Normal::new(0.0, 1.0).sample(rng))).unwrap();
        assert_eq!(run(), run());
    }

    #[test]
    fn trial_indices_cover_range_in_order() {
        let idxs = monte_carlo(17, 1, |_, i| Ok(i)).unwrap();
        assert_eq!(idxs, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn normal_sampler_statistics() {
        let samples = monte_carlo(4000, 7, |rng, _| Ok(Normal::new(2.0, 0.5).sample(rng))).unwrap();
        let s = Summary::of(&samples).unwrap();
        assert!((s.mean - 2.0).abs() < 0.05, "mean = {}", s.mean);
        assert!((s.std_dev - 0.5).abs() < 0.05, "std = {}", s.std_dev);
    }

    #[test]
    fn summary_helper_works() {
        let s =
            monte_carlo_summary(100, 3, |rng, _| Ok(Normal::new(1.0, 0.1).sample(rng))).unwrap();
        assert_eq!(s.count, 100);
    }

    #[test]
    fn errors_propagate() {
        let r = monte_carlo(8, 5, |_, i| {
            if i == 3 {
                Err(crate::AnalysisError::InvalidInput("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "bad normal")]
    fn negative_std_dev_panics() {
        let _ = Normal::new(0.0, -1.0);
    }
}
