//! Measurement and experiment toolkit for the hybrid NEMS-CMOS study.
//!
//! This crate holds the *generic* experiment machinery; circuit-specific
//! glue (how to bias an SRAM cell, which node is the dynamic-gate output)
//! lives in the `nemscmos` core crate:
//!
//! * [`measure`] — propagation delay and edge timing between traces.
//! * [`power`] — supply energy/power extraction from transient results
//!   and leakage extraction from operating points.
//! * [`snm`] — static-noise-margin geometry: butterfly curves and the
//!   maximum-inscribed-square method (Figure 14).
//! * [`noise_margin`] — bisection driver for pass/fail threshold searches
//!   (dynamic-gate input noise margin, Figure 9).
//! * [`oscillation`] — frequency/jitter, overshoot, and settling-time
//!   measurement for periodic and step responses.
//! * [`montecarlo`] — seeded, parallel Monte Carlo over model parameters
//!   (process variation, Figure 9).
//! * [`pdp`] — the paper's Equation 1 power-delay-product metric
//!   (Figure 12).
//! * [`table`] — plain-text experiment tables for the bench binaries.

pub mod measure;
pub mod montecarlo;
pub mod noise_margin;
pub mod oscillation;
pub mod pdp;
pub mod power;
pub mod snm;
pub mod table;

use std::error::Error;
use std::fmt;

use nemscmos_spice::SpiceError;

/// Errors produced by measurements and experiment drivers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The underlying circuit simulation failed.
    Spice(SpiceError),
    /// A waveform never crossed the requested threshold.
    MissingCrossing {
        /// Which signal was being measured.
        what: String,
        /// The threshold level (V).
        level: f64,
    },
    /// The measurement inputs were malformed (empty curves, bad ranges).
    InvalidInput(String),
    /// The experiment harness failed (retry ladder exhausted, cache or
    /// codec error).
    Harness(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Spice(e) => write!(f, "simulation failure: {e}"),
            AnalysisError::MissingCrossing { what, level } => {
                write!(f, "{what} never crossed {level} V")
            }
            AnalysisError::InvalidInput(msg) => write!(f, "invalid measurement input: {msg}"),
            AnalysisError::Harness(msg) => write!(f, "harness failure: {msg}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Spice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for AnalysisError {
    fn from(e: SpiceError) -> Self {
        AnalysisError::Spice(e)
    }
}

// Analysis depends on the harness (for the Monte Carlo pool), so this
// conversion must live here rather than in `nemscmos-harness`. Newton
// non-convergence stays retryable through the harness escalation ladder;
// everything else is terminal.
impl From<AnalysisError> for nemscmos_harness::HarnessError {
    fn from(e: AnalysisError) -> Self {
        match e {
            AnalysisError::Spice(s) => s.into(),
            other => nemscmos_harness::HarnessError::Failed(other.to_string()),
        }
    }
}

impl From<nemscmos_harness::HarnessError> for AnalysisError {
    fn from(e: nemscmos_harness::HarnessError) -> Self {
        AnalysisError::Harness(e.to_string())
    }
}

/// Convenience alias for results of analysis routines.
pub type Result<T> = std::result::Result<T, AnalysisError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errs = [
            AnalysisError::Spice(SpiceError::InvalidCircuit("x".into())),
            AnalysisError::MissingCrossing {
                what: "out".into(),
                level: 0.6,
            },
            AnalysisError::InvalidInput("y".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
