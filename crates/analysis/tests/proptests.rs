//! Property-based tests of the measurement toolkit.

#![cfg(feature = "proptest")]
// Gated out of the default (offline) build: the external `proptest`
// crate cannot be fetched without registry access. Vendor it and
// enable the `proptest` feature to run these.

use proptest::prelude::*;

use nemscmos_analysis::measure::{crossing_time, propagation_delay, Edge};
use nemscmos_analysis::noise_margin::max_passing_level;
use nemscmos_analysis::pdp::GateFigures;
use nemscmos_analysis::snm::{butterfly_snm, Vtc};
use nemscmos_spice::result::Trace;

fn steep_vtc(vth: f64, vdd: f64) -> Vtc {
    Vtc::new(vec![
        (0.0, vdd),
        (vth - 1e-4, vdd),
        (vth + 1e-4, 0.0),
        (vdd, 0.0),
    ])
    .unwrap()
}

proptest! {
    /// The bisection threshold search recovers an arbitrary hidden
    /// threshold to within tolerance.
    #[test]
    fn threshold_search_recovers_hidden_level(th in 0.05f64..1.15) {
        let nm = max_passing_level(|v| Ok(v <= th), 0.0, 1.2, 1e-5).unwrap();
        prop_assert!((nm - th).abs() < 1e-4);
    }

    /// SNM of two ideal steep inverters equals the smaller distance from a
    /// threshold to its opposing rail segment, and never exceeds half the
    /// supply.
    #[test]
    fn snm_of_ideal_pair_is_geometric(t1 in 0.2f64..1.0, t2 in 0.2f64..1.0) {
        let vdd = 1.2;
        let a = steep_vtc(t1, vdd);
        let b = steep_vtc(t2, vdd);
        let r = butterfly_snm(&a, &b, vdd).unwrap();
        // Ideal rectangular lobes: side_high = min(t1, vdd − t2),
        // side_low = min(t2, vdd − t1).
        let expect_high = t1.min(vdd - t2);
        let expect_low = t2.min(vdd - t1);
        prop_assert!((r.lobe_high - expect_high).abs() < 0.02, "high {:.3} vs {:.3}", r.lobe_high, expect_high);
        prop_assert!((r.lobe_low - expect_low).abs() < 0.02, "low {:.3} vs {:.3}", r.lobe_low, expect_low);
        prop_assert!(r.snm() <= vdd / 2.0 + 0.02);
    }

    /// Swapping the two inverters leaves the SNM unchanged (the lobes
    /// swap).
    #[test]
    fn snm_symmetric_under_swap(t1 in 0.25f64..0.95, t2 in 0.25f64..0.95) {
        let vdd = 1.2;
        let a = steep_vtc(t1, vdd);
        let b = steep_vtc(t2, vdd);
        let r1 = butterfly_snm(&a, &b, vdd).unwrap();
        let r2 = butterfly_snm(&b, &a, vdd).unwrap();
        prop_assert!((r1.snm() - r2.snm()).abs() < 5e-3);
        prop_assert!((r1.lobe_high - r2.lobe_low).abs() < 5e-3);
    }

    /// Equation 1 is linear in the activity factor and bounded by its
    /// endpoint values.
    #[test]
    fn pdp_linear_and_bounded(
        pl in 1e-12f64..1e-6,
        ps in 1e-9f64..1e-3,
        d in 1e-12f64..1e-8,
        alpha in 0.0f64..1.0
    ) {
        let g = GateFigures { leakage_power: pl, switching_power: ps, delay: d };
        let v = g.power_delay_product(alpha);
        let lo = g.power_delay_product(0.0).min(g.power_delay_product(1.0));
        let hi = g.power_delay_product(0.0).max(g.power_delay_product(1.0));
        prop_assert!(v >= lo - 1e-30 && v <= hi + 1e-30);
        // Linearity via midpoint.
        let mid = 0.5 * (g.power_delay_product(0.0) + g.power_delay_product(1.0));
        prop_assert!((g.power_delay_product(0.5) - mid).abs() <= 1e-12 * mid.abs());
    }

    /// Delay between a rising input edge and a later falling output edge
    /// is exactly the separation of the constructed edges.
    #[test]
    fn delay_measures_edge_separation(t_in in 0.1f64..2.0, sep in 0.05f64..3.0) {
        let t_out = t_in + sep;
        let end = t_out + 1.0;
        let input = Trace::new(
            vec![0.0, t_in, t_in + 0.01, end],
            vec![0.0, 0.0, 1.0, 1.0],
        );
        let output = Trace::new(
            vec![0.0, t_out, t_out + 0.01, end],
            vec![1.0, 1.0, 0.0, 0.0],
        );
        let d = propagation_delay(&input, Edge::Rising, &output, Edge::Falling, 0.5, 0.0).unwrap();
        prop_assert!((d - sep).abs() < 1e-9);
    }

    /// A crossing time found by the measurement code evaluates to the
    /// threshold level on the trace.
    #[test]
    fn crossing_time_is_on_level(ys in proptest::collection::vec(0.0f64..1.0, 4..20), level in 0.05f64..0.95) {
        let times: Vec<f64> = (0..ys.len()).map(|k| k as f64 * 0.1).collect();
        let tr = Trace::new(times, ys);
        if let Ok(t) = crossing_time(&tr, level, Edge::Rising, 0.0) {
            prop_assert!((tr.eval(t) - level).abs() < 1e-9);
        }
    }
}
