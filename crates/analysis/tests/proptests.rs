//! Property-based tests of the measurement toolkit, running on the
//! vendored `nemscmos_numeric::check` runner.

use nemscmos_analysis::measure::{crossing_time, propagation_delay, Edge};
use nemscmos_analysis::noise_margin::max_passing_level;
use nemscmos_analysis::pdp::GateFigures;
use nemscmos_analysis::snm::{butterfly_snm, Vtc};
use nemscmos_numeric::check::{check, check_cases, Config};
use nemscmos_numeric::prop_check;
use nemscmos_spice::result::Trace;

fn steep_vtc(vth: f64, vdd: f64) -> Vtc {
    Vtc::new(vec![
        (0.0, vdd),
        (vth - 1e-4, vdd),
        (vth + 1e-4, 0.0),
        (vdd, 0.0),
    ])
    .unwrap()
}

/// The bisection threshold search recovers an arbitrary hidden threshold
/// to within tolerance.
#[test]
fn threshold_search_recovers_hidden_level() {
    check(
        "threshold search recovers hidden level",
        &Config::default(),
        |d| d.f64_in(0.05, 1.15),
        |&th| {
            let nm = max_passing_level(|v| Ok(v <= th), 0.0, 1.2, 1e-5).unwrap();
            prop_check!((nm - th).abs() < 1e-4, "found {nm} for hidden {th}");
            Ok(())
        },
    );
}

/// SNM of two ideal steep inverters equals the smaller distance from a
/// threshold to its opposing rail segment, and never exceeds half the
/// supply.
#[test]
fn snm_of_ideal_pair_is_geometric() {
    let prop = |&(t1, t2): &(f64, f64)| {
        let vdd = 1.2;
        let a = steep_vtc(t1, vdd);
        let b = steep_vtc(t2, vdd);
        let r = butterfly_snm(&a, &b, vdd).unwrap();
        // Ideal rectangular lobes: side_high = min(t1, vdd − t2),
        // side_low = min(t2, vdd − t1).
        let expect_high = t1.min(vdd - t2);
        let expect_low = t2.min(vdd - t1);
        prop_check!(
            (r.lobe_high - expect_high).abs() < 0.02,
            "high {:.3} vs {:.3}",
            r.lobe_high,
            expect_high
        );
        prop_check!(
            (r.lobe_low - expect_low).abs() < 0.02,
            "low {:.3} vs {:.3}",
            r.lobe_low,
            expect_low
        );
        prop_check!(r.snm() <= vdd / 2.0 + 0.02, "SNM above V_dd/2");
        Ok(())
    };
    // Failure seed recorded by the retired external-proptest suite
    // (proptests.proptest-regressions, cc a914e86d…): strongly skewed
    // thresholds, where one lobe collapses toward the rail.
    check_cases(
        "snm of ideal pair is geometric (pinned)",
        &[(0.941_683_094_464_160_3, 0.356_149_771_483_922_3)],
        prop,
    );
    check(
        "snm of ideal pair is geometric",
        &Config::default(),
        |d| (d.f64_in(0.2, 1.0), d.f64_in(0.2, 1.0)),
        prop,
    );
}

/// Swapping the two inverters leaves the SNM unchanged (the lobes swap).
#[test]
fn snm_symmetric_under_swap() {
    check(
        "snm symmetric under swap",
        &Config::default(),
        |d| (d.f64_in(0.25, 0.95), d.f64_in(0.25, 0.95)),
        |&(t1, t2)| {
            let vdd = 1.2;
            let a = steep_vtc(t1, vdd);
            let b = steep_vtc(t2, vdd);
            let r1 = butterfly_snm(&a, &b, vdd).unwrap();
            let r2 = butterfly_snm(&b, &a, vdd).unwrap();
            prop_check!((r1.snm() - r2.snm()).abs() < 5e-3, "SNM changed under swap");
            prop_check!(
                (r1.lobe_high - r2.lobe_low).abs() < 5e-3,
                "lobes did not swap"
            );
            Ok(())
        },
    );
}

/// Equation 1 is linear in the activity factor and bounded by its
/// endpoint values.
#[test]
fn pdp_linear_and_bounded() {
    check(
        "pdp linear and bounded",
        &Config::default(),
        |d| {
            (
                d.f64_in(1e-12, 1e-6),
                d.f64_in(1e-9, 1e-3),
                d.f64_in(1e-12, 1e-8),
                d.f64_in(0.0, 1.0),
            )
        },
        |&(pl, ps, delay, alpha)| {
            let g = GateFigures {
                leakage_power: pl,
                switching_power: ps,
                delay,
            };
            let v = g.power_delay_product(alpha);
            let lo = g.power_delay_product(0.0).min(g.power_delay_product(1.0));
            let hi = g.power_delay_product(0.0).max(g.power_delay_product(1.0));
            prop_check!(v >= lo - 1e-30 && v <= hi + 1e-30, "PDP outside endpoints");
            // Linearity via midpoint.
            let mid = 0.5 * (g.power_delay_product(0.0) + g.power_delay_product(1.0));
            prop_check!(
                (g.power_delay_product(0.5) - mid).abs() <= 1e-12 * mid.abs(),
                "PDP not linear in α"
            );
            Ok(())
        },
    );
}

/// Delay between a rising input edge and a later falling output edge is
/// exactly the separation of the constructed edges.
#[test]
fn delay_measures_edge_separation() {
    check(
        "delay measures edge separation",
        &Config::default(),
        |d| (d.f64_in(0.1, 2.0), d.f64_in(0.05, 3.0)),
        |&(t_in, sep)| {
            let t_out = t_in + sep;
            let end = t_out + 1.0;
            let input = Trace::new(vec![0.0, t_in, t_in + 0.01, end], vec![0.0, 0.0, 1.0, 1.0]);
            let output = Trace::new(
                vec![0.0, t_out, t_out + 0.01, end],
                vec![1.0, 1.0, 0.0, 0.0],
            );
            let d =
                propagation_delay(&input, Edge::Rising, &output, Edge::Falling, 0.5, 0.0).unwrap();
            prop_check!((d - sep).abs() < 1e-9, "delay {d} vs separation {sep}");
            Ok(())
        },
    );
}

/// A crossing time found by the measurement code evaluates to the
/// threshold level on the trace.
#[test]
fn crossing_time_is_on_level() {
    check(
        "crossing time is on level",
        &Config::default(),
        |d| {
            (
                d.vec_of(4, 20, |d| d.f64_in(0.0, 1.0)),
                d.f64_in(0.05, 0.95),
            )
        },
        |(ys, level)| {
            let times: Vec<f64> = (0..ys.len()).map(|k| k as f64 * 0.1).collect();
            let tr = Trace::new(times, ys.clone());
            if let Ok(t) = crossing_time(&tr, *level, Edge::Rising, 0.0) {
                prop_check!(
                    (tr.eval(t) - level).abs() < 1e-9,
                    "trace({t}) = {} off level {level}",
                    tr.eval(t)
                );
            }
            Ok(())
        },
    );
}
