//! Hand-computed fixtures for the measurement toolkit: every expected
//! value below is derived on paper from the input waveform, so a failure
//! pins the defect to the measurement code rather than to a simulation.
//!
//! Deliberately awkward inputs are included — non-monotonic traces that
//! cross a level several times, glitching outputs, and clipped edges
//! that never complete — because those are exactly the waveforms real
//! transient sweeps hand to this code.

use nemscmos_analysis::measure::{crossing_time, fall_time, propagation_delay, rise_time, Edge};
use nemscmos_analysis::noise_margin::max_passing_level;
use nemscmos_analysis::pdp::GateFigures;
use nemscmos_analysis::snm::{butterfly_snm, Vtc};
use nemscmos_analysis::AnalysisError;
use nemscmos_spice::result::Trace;

// ---------------------------------------------------------------------
// crossing_time
// ---------------------------------------------------------------------

/// A triangle wave 0→1→0→1 with vertices at t = 0, 1, 2, 3.
fn triangle() -> Trace {
    Trace::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0, 1.0])
}

#[test]
fn crossing_on_non_monotonic_trace_takes_first_match() {
    let tr = triangle();
    // Rising through 0.25: first on the 0→1 edge at t = 0.25.
    let t = crossing_time(&tr, 0.25, Edge::Rising, 0.0).unwrap();
    assert!((t - 0.25).abs() < 1e-12);
    // Falling through 0.25: on the 1→0 edge, 0.75 of the way: t = 1.75.
    let t = crossing_time(&tr, 0.25, Edge::Falling, 0.0).unwrap();
    assert!((t - 1.75).abs() < 1e-12);
    // The same rising crossing searched from t = 1 lands on the *second*
    // rising edge: v = 0.25 at t = 2.25.
    let t = crossing_time(&tr, 0.25, Edge::Rising, 1.0).unwrap();
    assert!((t - 2.25).abs() < 1e-12);
}

#[test]
fn crossing_missing_level_is_a_typed_error() {
    let tr = triangle();
    let err = crossing_time(&tr, 1.5, Edge::Rising, 0.0).unwrap_err();
    assert!(matches!(err, AnalysisError::MissingCrossing { level, .. } if level == 1.5));
    // Searching past the last rising edge also misses.
    assert!(crossing_time(&tr, 0.5, Edge::Rising, 2.9).is_err());
}

// ---------------------------------------------------------------------
// propagation_delay
// ---------------------------------------------------------------------

#[test]
fn delay_ignores_output_glitch_before_input_edge() {
    // Output dips through v_mid at t = 0.5 (a precharge glitch), then
    // does its real falling transition at t = 2.5. The input rises
    // through 0.5 V at t = 1.0, so the glitch is *before* the reference
    // edge and must not be picked up.
    let input = Trace::new(vec![0.0, 0.9, 1.1, 4.0], vec![0.0, 0.0, 1.0, 1.0]);
    let output = Trace::new(
        vec![0.0, 0.4, 0.5, 0.6, 2.0, 3.0, 4.0],
        vec![1.0, 1.0, 0.4, 1.0, 1.0, 0.0, 0.0],
    );
    // Input crosses 0.5 at t = 1.0 (midway through the 0.9→1.1 ramp).
    // Output's next falling 0.5-crossing: on the 2→3 ramp, v = 0.5 at
    // t = 2.5. Delay = 1.5.
    let d = propagation_delay(&input, Edge::Rising, &output, Edge::Falling, 0.5, 0.0).unwrap();
    assert!((d - 1.5).abs() < 1e-12, "delay {d}");
}

#[test]
fn delay_catches_output_glitch_after_input_edge() {
    // If the glitch happens *after* the input edge, the measurement
    // reports it — by the 50%-crossing definition the gate did switch.
    let input = Trace::new(vec![0.0, 0.9, 1.1, 4.0], vec![0.0, 0.0, 1.0, 1.0]);
    let output = Trace::new(
        vec![0.0, 1.4, 1.5, 1.6, 3.0, 4.0],
        vec![1.0, 1.0, 0.4, 1.0, 1.0, 0.0],
    );
    // First falling 0.5-crossing after t = 1.0: midway down the dip,
    // t = 1.45 (the 1.4→1.5 segment spans 1.0→0.4, crossing 0.5 at 5/6
    // of the segment: 1.4 + 0.05/0.6 * 0.1 — wait, by similar triangles
    // v = 0.5 when (1.0 − 0.5)/(1.0 − 0.4) = 5/6 of the way: t = 1.4833…).
    let d = propagation_delay(&input, Edge::Rising, &output, Edge::Falling, 0.5, 0.0).unwrap();
    let expect = (1.4 + 0.1 * (0.5 / 0.6)) - 1.0;
    assert!((d - expect).abs() < 1e-12, "delay {d} vs {expect}");
}

// ---------------------------------------------------------------------
// rise_time / fall_time
// ---------------------------------------------------------------------

#[test]
fn rise_time_of_linear_ramp_is_point_eight() {
    // Ramp 0→1 over [0, 1] with rails [0, 1]: t10 = 0.1, t90 = 0.9.
    let tr = Trace::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0]);
    let rt = rise_time(&tr, 0.0, 1.0, 0.0).unwrap();
    assert!((rt - 0.8).abs() < 1e-12);
}

#[test]
fn fall_time_of_linear_ramp_is_point_eight() {
    let tr = Trace::new(vec![0.0, 1.0, 2.0], vec![1.0, 1.0, 0.0]);
    let ft = fall_time(&tr, 0.0, 1.0, 0.0).unwrap();
    assert!((ft - 0.8).abs() < 1e-12);
}

#[test]
fn clipped_edge_reports_missing_crossing() {
    // The output saturates at 0.8 of the rail: the 90% level is never
    // reached, so the 10–90% rise time does not exist. This is the
    // "weak driver into a heavy load" clipping case.
    let tr = Trace::new(vec![0.0, 1.0, 5.0], vec![0.0, 0.8, 0.8]);
    let err = rise_time(&tr, 0.0, 1.0, 0.0).unwrap_err();
    assert!(matches!(err, AnalysisError::MissingCrossing { .. }));
}

#[test]
fn inverted_rails_are_rejected() {
    let tr = Trace::new(vec![0.0, 1.0], vec![0.0, 1.0]);
    assert!(matches!(
        rise_time(&tr, 1.0, 0.0, 0.0),
        Err(AnalysisError::InvalidInput(_))
    ));
    assert!(matches!(
        fall_time(&tr, 1.0, 1.0, 0.0),
        Err(AnalysisError::InvalidInput(_))
    ));
}

// ---------------------------------------------------------------------
// butterfly SNM
// ---------------------------------------------------------------------

/// An ideal steep inverter: v_out = vdd for x < vth, 0 for x > vth.
fn steep(vth: f64, vdd: f64) -> Vtc {
    Vtc::new(vec![
        (0.0, vdd),
        (vth - 1e-6, vdd),
        (vth + 1e-6, 0.0),
        (vdd, 0.0),
    ])
    .unwrap()
}

#[test]
fn symmetric_ideal_pair_has_half_vdd_lobes() {
    // Two ideal inverters switching at vdd/2: each lobe is a square of
    // side vdd/2 = 0.5.
    let a = steep(0.5, 1.0);
    let r = butterfly_snm(&a, &a, 1.0).unwrap();
    assert!(
        (r.lobe_high - 0.5).abs() < 0.01,
        "lobe_high {}",
        r.lobe_high
    );
    assert!((r.lobe_low - 0.5).abs() < 0.01, "lobe_low {}", r.lobe_low);
    assert!((r.snm() - 0.5).abs() < 0.01);
}

#[test]
fn skewed_ideal_pair_has_geometric_lobes() {
    // Thresholds 0.7 and 0.2 at vdd = 1: upper-left square side is
    // min(t1, vdd − t2) = min(0.7, 0.8) = 0.7, lower-right is
    // min(t2, vdd − t1) = min(0.2, 0.3) = 0.2; SNM = 0.2.
    let a = steep(0.7, 1.0);
    let b = steep(0.2, 1.0);
    let r = butterfly_snm(&a, &b, 1.0).unwrap();
    assert!(
        (r.lobe_high - 0.7).abs() < 0.01,
        "lobe_high {}",
        r.lobe_high
    );
    assert!((r.lobe_low - 0.2).abs() < 0.01, "lobe_low {}", r.lobe_low);
    assert!((r.snm() - 0.2).abs() < 0.01);
}

#[test]
fn degenerate_butterfly_has_zero_snm() {
    // Both inverters stuck at ground: the curves coincide, no eye opens.
    let flat = Vtc::new(vec![(0.0, 0.0), (1.0, 0.0)]).unwrap();
    let r = butterfly_snm(&flat, &flat, 1.0).unwrap();
    assert!(r.snm() < 1e-9, "snm {}", r.snm());
}

#[test]
fn rising_vtc_is_rejected() {
    assert!(Vtc::new(vec![(0.0, 0.0), (1.0, 1.0)]).is_err());
}

// ---------------------------------------------------------------------
// Equation 1 (PDP)
// ---------------------------------------------------------------------

#[test]
fn pdp_matches_hand_computation() {
    let g = GateFigures {
        leakage_power: 2e-9,
        switching_power: 10e-6,
        delay: 50e-12,
    };
    // ((1 − α) P_L + α P_S) · D at α = 0.25.
    let expect = (0.75 * 2e-9 + 0.25 * 10e-6) * 50e-12;
    assert!((g.power_delay_product(0.25) - expect).abs() <= 1e-30);
    // Endpoints collapse to the single-term products.
    assert!((g.power_delay_product(0.0) - 2e-9 * 50e-12).abs() <= 1e-30);
    assert!((g.power_delay_product(1.0) - 10e-6 * 50e-12).abs() <= 1e-30);
}

#[test]
fn pdp_sweep_covers_unit_interval() {
    let g = GateFigures {
        leakage_power: 1e-9,
        switching_power: 1e-6,
        delay: 10e-12,
    };
    let sweep = g.pdp_sweep(5);
    assert_eq!(sweep.len(), 5);
    assert_eq!(sweep[0].0, 0.0);
    assert_eq!(sweep[4].0, 1.0);
    assert!((sweep[2].0 - 0.5).abs() < 1e-15);
    for w in sweep.windows(2) {
        assert!(w[1].1 > w[0].1, "PDP must grow with activity here");
    }
}

#[test]
#[should_panic(expected = "activity factor")]
fn pdp_rejects_out_of_range_activity() {
    let g = GateFigures {
        leakage_power: 1e-9,
        switching_power: 1e-6,
        delay: 10e-12,
    };
    let _ = g.power_delay_product(1.5);
}

// ---------------------------------------------------------------------
// noise-margin threshold search
// ---------------------------------------------------------------------

#[test]
fn threshold_search_endpoints() {
    // Everything fails → lo; everything passes → hi.
    assert_eq!(
        max_passing_level(|_| Ok(false), 0.0, 1.0, 1e-6).unwrap(),
        0.0
    );
    assert_eq!(
        max_passing_level(|_| Ok(true), 0.0, 1.0, 1e-6).unwrap(),
        1.0
    );
}

#[test]
fn threshold_search_propagates_probe_errors() {
    let r = max_passing_level(
        |_| Err(AnalysisError::InvalidInput("probe blew up".into())),
        0.0,
        1.0,
        1e-6,
    );
    assert!(matches!(r, Err(AnalysisError::InvalidInput(_))));
}

#[test]
fn threshold_search_rejects_bad_interval() {
    assert!(max_passing_level(|_| Ok(true), 1.0, 0.0, 1e-6).is_err());
    assert!(max_passing_level(|_| Ok(true), 0.0, 1.0, 0.0).is_err());
}
