//! A small SRAM array: rows × cols cells on shared word lines and bit
//! lines, with a scripted write/read sequence — the system-level check
//! that a cell architecture actually works as a memory, not just as an
//! isolated latch.

use nemscmos_analysis::{AnalysisError, Result};
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::element::NodeId;
use nemscmos_spice::result::TranResult;
use nemscmos_spice::waveform::Waveform;

use super::cell::{SramCell, SramParams};
use crate::tech::Technology;

/// Edge time used by the array's control waveforms (s).
const EDGE: f64 = 50e-12;

/// An `rows × cols` SRAM array with its probe handles.
#[derive(Debug)]
pub struct SramArray {
    /// The netlist.
    pub circuit: Circuit,
    /// Word-line nodes, one per row.
    pub word_lines: Vec<NodeId>,
    /// `(bl, blb)` nodes, one pair per column.
    pub bit_lines: Vec<(NodeId, NodeId)>,
    /// `(ql, qr)` storage nodes per `[row][col]`.
    pub cells: Vec<Vec<(NodeId, NodeId)>>,
    /// Parameters the array was built with.
    pub params: SramParams,
}

/// The scripted operation sequence: one write pass over every row, then a
/// read of `read_row`.
#[derive(Debug, Clone)]
pub struct ArraySequence {
    /// Data per `[row][col]` (true = 1 stored at QL).
    pub data: Vec<Vec<bool>>,
    /// Row read (with bit lines at V_dd) after all writes.
    pub read_row: usize,
    /// Window allotted to each operation (s).
    pub op_window: f64,
}

impl ArraySequence {
    /// A checkerboard pattern over the array with a read of row 0.
    pub fn checkerboard(rows: usize, cols: usize) -> ArraySequence {
        let data = (0..rows)
            .map(|r| (0..cols).map(|c| (r + c) % 2 == 0).collect())
            .collect();
        ArraySequence {
            data,
            read_row: 0,
            op_window: 2e-9,
        }
    }

    fn rows(&self) -> usize {
        self.data.len()
    }

    /// Total simulated time for the sequence.
    pub fn duration(&self) -> f64 {
        (self.rows() as f64 + 1.5) * self.op_window
    }
}

impl SramArray {
    /// Builds the array and wires the control waveforms implementing
    /// `seq`: word line `r` pulses during window `r`; the bit lines carry
    /// each row's data during its write window and sit at V_dd otherwise
    /// (read condition); the read row's word line pulses again at the end.
    ///
    /// # Panics
    ///
    /// Panics if the data shape is inconsistent or `read_row` is out of
    /// range.
    pub fn build(tech: &Technology, params: &SramParams, seq: &ArraySequence) -> SramArray {
        let rows = seq.rows();
        assert!(rows > 0, "array needs at least one row");
        let cols = seq.data[0].len();
        assert!(cols > 0, "array needs at least one column");
        assert!(seq.data.iter().all(|r| r.len() == cols), "ragged data");
        assert!(seq.read_row < rows, "read_row out of range");

        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));

        let w = seq.op_window;
        // Word lines: pulse during the row's write window, and again for
        // the read row during the final window.
        let mut word_lines = Vec::new();
        for r in 0..rows {
            let wl = ckt.node(&format!("wl{r}"));
            let mut pts = vec![(0.0, 0.0)];
            let pulse = |t0: f64, pts: &mut Vec<(f64, f64)>| {
                pts.push((t0 + 0.2 * w, 0.0));
                pts.push((t0 + 0.2 * w + EDGE, tech.vdd));
                pts.push((t0 + 0.8 * w, tech.vdd));
                pts.push((t0 + 0.8 * w + EDGE, 0.0));
            };
            pulse(r as f64 * w, &mut pts);
            if r == seq.read_row {
                pulse(rows as f64 * w, &mut pts);
            }
            ckt.vsource(
                wl,
                Circuit::GROUND,
                Waveform::pwl(pts).expect("monotone WL points"),
            );
            word_lines.push(wl);
        }

        // Bit lines: per column, drive each row's datum during its window.
        let mut bit_lines = Vec::new();
        for c in 0..cols {
            let bl = ckt.node(&format!("bl{c}"));
            let blb = ckt.node(&format!("blb{c}"));
            let mut pts_bl = vec![(0.0, tech.vdd)];
            let mut pts_blb = vec![(0.0, tech.vdd)];
            for (r, row) in seq.data.iter().enumerate() {
                let t0 = r as f64 * w;
                let (vbl, vblb) = if row[c] {
                    (tech.vdd, 0.0)
                } else {
                    (0.0, tech.vdd)
                };
                for (pts, v) in [(&mut pts_bl, vbl), (&mut pts_blb, vblb)] {
                    pts.push((t0 + 0.05 * w, tech.vdd));
                    pts.push((t0 + 0.05 * w + EDGE, v));
                    pts.push((t0 + 0.9 * w, v));
                    pts.push((t0 + 0.9 * w + EDGE, tech.vdd));
                }
            }
            ckt.vsource(
                bl,
                Circuit::GROUND,
                Waveform::pwl(pts_bl).expect("monotone BL points"),
            );
            ckt.vsource(
                blb,
                Circuit::GROUND,
                Waveform::pwl(pts_blb).expect("monotone BLB points"),
            );
            bit_lines.push((bl, blb));
        }

        // Cells.
        let mut cells = Vec::new();
        for (r, &wl) in word_lines.iter().enumerate() {
            let mut row_cells = Vec::new();
            for (c, &(bl, blb)) in bit_lines.iter().enumerate() {
                let ql = ckt.node(&format!("q{r}_{c}"));
                let qr = ckt.node(&format!("qb{r}_{c}"));
                SramCell::stamp_cell(tech, params, &mut ckt, vdd, wl, bl, blb, ql, qr);
                // Power-on state: definite (all zeros) so the t = 0
                // operating point of a bistable sea of cells is
                // well-posed; the scripted writes then set the real data.
                ckt.set_ic(ql, 0.0);
                ckt.set_ic(qr, tech.vdd);
                row_cells.push((ql, qr));
            }
            cells.push(row_cells);
        }
        SramArray {
            circuit: ckt,
            word_lines,
            bit_lines,
            cells,
            params: params.clone(),
        }
    }

    /// Runs the sequence and verifies every cell holds its written datum
    /// at the end (true ⇒ QL high). Returns the transient result for
    /// further probing.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidInput`] naming the first cell whose
    /// final state disagrees with the written data, and propagates
    /// simulation failures.
    pub fn run_and_verify(&mut self, tech: &Technology, seq: &ArraySequence) -> Result<TranResult> {
        let opts = TranOptions {
            dt_max: Some(20e-12),
            ..Default::default()
        };
        let res = transient(&mut self.circuit, seq.duration(), &opts)?;
        for (r, row) in seq.data.iter().enumerate() {
            for (c, &bit) in row.iter().enumerate() {
                let (ql, qr) = self.cells[r][c];
                let vql = res.voltage(ql).last_value();
                let vqr = res.voltage(qr).last_value();
                let ok = if bit {
                    vql > 0.7 * tech.vdd && vqr < 0.3 * tech.vdd
                } else {
                    vql < 0.3 * tech.vdd && vqr > 0.7 * tech.vdd
                };
                if !ok {
                    return Err(AnalysisError::InvalidInput(format!(
                        "cell ({r},{c}) lost its datum: wrote {}, read ql={vql:.3} qr={vqr:.3}",
                        bit as u8
                    )));
                }
            }
        }
        Ok(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::SramKind;

    #[test]
    fn conventional_4x2_checkerboard_survives_write_and_read() {
        let tech = Technology::n90();
        let params = SramParams::new(SramKind::Conventional);
        let seq = ArraySequence::checkerboard(4, 2);
        let mut array = SramArray::build(&tech, &params, &seq);
        // 4x2 cells on shared lines: a few dozen coupled unknowns.
        assert!(array.circuit.num_unknowns() > 30);
        array.run_and_verify(&tech, &seq).expect("array sequence");
    }

    #[test]
    fn hybrid_2x2_array_works_end_to_end() {
        let tech = Technology::n90();
        let params = SramParams::new(SramKind::Hybrid);
        let seq = ArraySequence::checkerboard(2, 2);
        let mut array = SramArray::build(&tech, &params, &seq);
        array
            .run_and_verify(&tech, &seq)
            .expect("hybrid array sequence");
    }

    #[test]
    fn overwrite_flips_previous_data() {
        // Write all-ones then all-zeros into the same single-row array.
        let tech = Technology::n90();
        let params = SramParams::new(SramKind::Conventional);
        let seq = ArraySequence {
            data: vec![vec![true, true]],
            read_row: 0,
            op_window: 2e-9,
        };
        let mut a1 = SramArray::build(&tech, &params, &seq);
        a1.run_and_verify(&tech, &seq).expect("write ones");
        let seq0 = ArraySequence {
            data: vec![vec![false, false]],
            ..seq
        };
        let mut a0 = SramArray::build(&tech, &params, &seq0);
        a0.run_and_verify(&tech, &seq0).expect("write zeros");
    }

    #[test]
    #[should_panic(expected = "read_row")]
    fn bad_read_row_rejected() {
        let tech = Technology::n90();
        let params = SramParams::new(SramKind::Conventional);
        let seq = ArraySequence {
            data: vec![vec![true]],
            read_row: 3,
            op_window: 2e-9,
        };
        let _ = SramArray::build(&tech, &params, &seq);
    }
}
