//! The four SRAM cell architectures of Figure 13.

use nemscmos_devices::mosfet::MosModel;
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::element::{NodeId, SourceRef};
use nemscmos_spice::waveform::Waveform;

use crate::tech::Technology;

/// SRAM cell architecture (Figure 13 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SramKind {
    /// Conventional 6T, all low-V_t CMOS (Fig. 13(a)).
    Conventional,
    /// Dual-V_t cell after \[25\]: high-V_t storage inverters, low-V_t
    /// access devices (Fig. 13(b)).
    DualVt,
    /// Asymmetric cell after \[26\]: the devices that leak when the cell
    /// stores its *preferred* zero (at QL) are high-V_t (Fig. 13(c)).
    Asymmetric,
    /// Proposed hybrid: NEMS pull-ups and pull-downs, CMOS access
    /// transistors (Fig. 13(d)).
    Hybrid,
    /// The paper's §5.3 alternative: only the PMOS pull-ups become NEMS.
    /// PMOS devices are off during reads, so the weak NEMS drive does not
    /// touch read latency — but the leaky CMOS pull-downs remain.
    HybridPullupOnly,
}

impl SramKind {
    /// The four architectures of Figure 13 in the paper's presentation
    /// order (the §5.3 pull-up-only variant is extra and not included).
    pub fn all() -> [SramKind; 4] {
        [
            SramKind::Conventional,
            SramKind::DualVt,
            SramKind::Asymmetric,
            SramKind::Hybrid,
        ]
    }

    /// The label used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            SramKind::Conventional => "Conv.",
            SramKind::DualVt => "Dual Vt",
            SramKind::Asymmetric => "Asym.",
            SramKind::Hybrid => "Hybrid",
            SramKind::HybridPullupOnly => "Hybrid-PU",
        }
    }
}

/// Sizing and environment parameters of an SRAM cell instance.
///
/// # Example
///
/// ```
/// use nemscmos::sram::{standby_leakage, SramKind, SramParams, ZeroSide};
/// use nemscmos::tech::Technology;
///
/// # fn main() -> Result<(), nemscmos::analysis::AnalysisError> {
/// let tech = Technology::n90();
/// let leak = standby_leakage(&tech, &SramParams::new(SramKind::Hybrid), ZeroSide::Right)?;
/// assert!(leak < 100e-9, "hybrid cell leaks tens of nA at most");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SramParams {
    /// Architecture.
    pub kind: SramKind,
    /// Pull-down NMOS width (µm).
    pub pd_width: f64,
    /// Pull-up PMOS width (µm).
    pub pu_width: f64,
    /// Access NMOS width (µm).
    pub acc_width: f64,
    /// Width multiplier applied to the NEMS pull-ups/pull-downs of the
    /// hybrid cell, partially offsetting the 330 vs 1110 µA/µm drive gap.
    pub hybrid_upsize: f64,
    /// Bitline capacitance (F).
    pub bitline_cap: f64,
    /// Cells sharing each bitline (their OFF access transistors leak onto
    /// it — the effect Section 5.1 calls out for read delay).
    pub column_cells: usize,
    /// Per-device V_th mismatch shifts in the order
    /// `[PL, NL, PR, NR, AL, AR]` (V). For NEMS roles the shift perturbs
    /// both the contact-channel threshold and the beam pull-in voltage
    /// (geometry variation moves the actuation point). Zero = nominal.
    pub vth_shifts: [f64; 6],
}

impl SramParams {
    /// Default 90 nm sizing (β ≈ 4 read stability for the conventional
    /// cell).
    pub fn new(kind: SramKind) -> SramParams {
        SramParams {
            kind,
            pd_width: 2.0,
            pu_width: 1.2,
            acc_width: 0.5,
            hybrid_upsize: 1.2,
            bitline_cap: 100e-15,
            column_cells: 256,
            vth_shifts: [0.0; 6],
        }
    }

    /// Returns a copy with per-device mismatch shifts
    /// (`[PL, NL, PR, NR, AL, AR]`, volts).
    pub fn with_vth_shifts(&self, shifts: [f64; 6]) -> SramParams {
        SramParams {
            vth_shifts: shifts,
            ..self.clone()
        }
    }
}

/// Which storage node holds the logic zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroSide {
    /// QL = 0, QR = 1 (the asymmetric cell's preferred state).
    Left,
    /// QR = 0, QL = 1.
    Right,
}

/// A constructed SRAM cell with its biasing sources.
#[derive(Debug)]
pub struct SramCell {
    /// The netlist.
    pub circuit: Circuit,
    /// Cell supply.
    pub vdd_src: SourceRef,
    /// Word line driver.
    pub wl_src: SourceRef,
    /// Bit line driver (left / QL side).
    pub bl_src: SourceRef,
    /// Complementary bit line driver (right / QR side).
    pub blb_src: SourceRef,
    /// Left storage node.
    pub ql: NodeId,
    /// Right storage node.
    pub qr: NodeId,
    /// Left bit line node.
    pub bl: NodeId,
    /// Right bit line node.
    pub blb: NodeId,
    /// The instance parameters.
    pub params: SramParams,
}

/// Per-role device choices of one architecture.
struct CellDevices {
    pl_nems: bool,
    pr_nems: bool,
    nl_nems: bool,
    nr_nems: bool,
    pl: MosModel,
    pr: MosModel,
    nl: MosModel,
    nr: MosModel,
    al: MosModel,
    ar: MosModel,
}

fn devices_for(kind: SramKind, tech: &Technology) -> CellDevices {
    let lv_n = tech.nmos.clone();
    let lv_p = tech.pmos.clone();
    let hv_n = tech.nmos_hvt.clone();
    let hv_p = tech.pmos_hvt.clone();
    match kind {
        SramKind::Conventional => CellDevices {
            pl_nems: false,
            pr_nems: false,
            nl_nems: false,
            nr_nems: false,
            pl: lv_p.clone(),
            pr: lv_p,
            nl: lv_n.clone(),
            nr: lv_n.clone(),
            al: lv_n.clone(),
            ar: lv_n,
        },
        SramKind::DualVt => CellDevices {
            pl_nems: false,
            pr_nems: false,
            nl_nems: false,
            nr_nems: false,
            // High-V_t pull-ups and access devices cut the V_dd and
            // bit-line leakage paths; low-V_t pull-downs keep the read
            // discharge path strong (the [25] trade-off: cell leakage
            // for noise margin and access speed).
            pl: hv_p.clone(),
            pr: hv_p,
            nl: lv_n.clone(),
            nr: lv_n,
            al: hv_n.clone(),
            ar: hv_n,
        },
        SramKind::Asymmetric => CellDevices {
            pl_nems: false,
            pr_nems: false,
            nl_nems: false,
            nr_nems: false,
            // Preferred state QL = 0: PL, NR and AL leak then → high-V_t.
            pl: hv_p,
            pr: lv_p,
            nl: lv_n.clone(),
            nr: hv_n.clone(),
            al: hv_n,
            ar: lv_n,
        },
        SramKind::HybridPullupOnly => CellDevices {
            pl_nems: true,
            pr_nems: true,
            nl_nems: false,
            nr_nems: false,
            pl: lv_p.clone(),
            pr: lv_p.clone(),
            nl: lv_n.clone(),
            nr: lv_n.clone(),
            al: lv_n.clone(),
            ar: lv_n.clone(),
        },
        SramKind::Hybrid => CellDevices {
            pl_nems: true,
            pr_nems: true,
            nl_nems: true,
            nr_nems: true,
            // MOS cards unused for the NEMS roles; access stays low-V_t.
            pl: lv_p.clone(),
            pr: lv_p,
            nl: lv_n.clone(),
            nr: lv_n.clone(),
            al: lv_n.clone(),
            ar: lv_n,
        },
    }
}

/// Applies the per-device mismatch shifts to a device set.
fn apply_shifts(mut dev: CellDevices, shifts: &[f64; 6]) -> CellDevices {
    dev.pl = dev.pl.with_vth_shift(shifts[0]);
    dev.nl = dev.nl.with_vth_shift(shifts[1]);
    dev.pr = dev.pr.with_vth_shift(shifts[2]);
    dev.nr = dev.nr.with_vth_shift(shifts[3]);
    dev.al = dev.al.with_vth_shift(shifts[4]);
    dev.ar = dev.ar.with_vth_shift(shifts[5]);
    dev
}

impl SramCell {
    /// Builds a full 6T cell with the word line and bit lines driven by
    /// the given waveforms (bit lines are driven stiffly; use
    /// [`SramCell::build_read_column`] for a releasable precharged
    /// bitline).
    pub fn build(
        tech: &Technology,
        params: &SramParams,
        wl_wave: Waveform,
        bl_wave: Waveform,
        blb_wave: Waveform,
    ) -> SramCell {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let wl = ckt.node("wl");
        let bl = ckt.node("bl");
        let blb = ckt.node("blb");
        let ql = ckt.node("ql");
        let qr = ckt.node("qr");
        let vdd_src = ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
        let wl_src = ckt.vsource(wl, Circuit::GROUND, wl_wave);
        let bl_src = ckt.vsource(bl, Circuit::GROUND, bl_wave);
        let blb_src = ckt.vsource(blb, Circuit::GROUND, blb_wave);
        Self::stamp_cell(tech, params, &mut ckt, vdd, wl, bl, blb, ql, qr);
        SramCell {
            circuit: ckt,
            vdd_src,
            wl_src,
            bl_src,
            blb_src,
            ql,
            qr,
            bl,
            blb,
            params: params.clone(),
        }
    }

    /// Builds a cell inside a read column: bit lines carry the column
    /// capacitance and the aggregated leakage of the other
    /// `column_cells − 1` cells, and are precharged through PMOS devices
    /// that release before the word line rises.
    ///
    /// Timeline: precharge ends at `t_prech_off`, word line rises at
    /// `t_wl_rise`.
    pub fn build_read_column(
        tech: &Technology,
        params: &SramParams,
        t_prech_off: f64,
        t_wl_rise: f64,
    ) -> SramCell {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let wl = ckt.node("wl");
        let bl = ckt.node("bl");
        let blb = ckt.node("blb");
        let ql = ckt.node("ql");
        let qr = ckt.node("qr");
        let prech = ckt.node("prech");
        let edge = 30e-12;
        let vdd_src = ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
        let wl_src = ckt.vsource(
            wl,
            Circuit::GROUND,
            Waveform::step(0.0, tech.vdd, t_wl_rise, edge),
        );
        // Bitline drivers exist only as precharge PMOS gates; the lines
        // themselves float after precharge. A pair of stiff 0 V sources in
        // series with nothing would be artificial — instead the bit lines
        // get their caps and leak loads here, and `bl_src`/`blb_src`
        // probe the *precharge* rail so standby-style probing still works.
        ckt.vsource(
            prech,
            Circuit::GROUND,
            Waveform::step(0.0, tech.vdd, t_prech_off, edge),
        );
        let bl_rail = ckt.node("bl_rail");
        let bl_src = ckt.vsource(bl_rail, Circuit::GROUND, Waveform::dc(tech.vdd));
        let blb_rail = ckt.node("blb_rail");
        let blb_src = ckt.vsource(blb_rail, Circuit::GROUND, Waveform::dc(tech.vdd));
        tech.add_pmos(&mut ckt, "mprech_bl", bl, prech, bl_rail, 4.0);
        tech.add_pmos(&mut ckt, "mprech_blb", blb, prech, blb_rail, 4.0);
        ckt.capacitor(bl, Circuit::GROUND, params.bitline_cap);
        ckt.capacitor(blb, Circuit::GROUND, params.bitline_cap);
        // Aggregate leakage of the unaccessed cells on each bitline.
        let (i_acc_off, ..) = tech.nmos.ids(0.0, tech.vdd, 0.0, params.acc_width);
        let column_leak = (params.column_cells.saturating_sub(1)) as f64 * i_acc_off;
        if column_leak > 0.0 {
            let r = tech.vdd / column_leak;
            ckt.resistor(bl, Circuit::GROUND, r);
            ckt.resistor(blb, Circuit::GROUND, r);
        }
        Self::stamp_cell(tech, params, &mut ckt, vdd, wl, bl, blb, ql, qr);
        SramCell {
            circuit: ckt,
            vdd_src,
            wl_src,
            bl_src,
            blb_src,
            ql,
            qr,
            bl,
            blb,
            params: params.clone(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn stamp_cell(
        tech: &Technology,
        params: &SramParams,
        ckt: &mut Circuit,
        vdd: NodeId,
        wl: NodeId,
        bl: NodeId,
        blb: NodeId,
        ql: NodeId,
        qr: NodeId,
    ) {
        let dev = apply_shifts(devices_for(params.kind, tech), &params.vth_shifts);
        // NEMS geometry variation: shift the pull-in/pull-out window of
        // each NEMS role by its device's mismatch draw.
        let nems_n_for = |shift: f64| {
            let mut card = tech.nems_n.clone();
            card.v_pull_in = (card.v_pull_in + shift).max(card.v_pull_out + 0.05);
            card
        };
        let nems_p_for = |shift: f64| {
            let mut card = tech.nems_p.clone();
            card.v_pull_in = (card.v_pull_in + shift).max(card.v_pull_out + 0.05);
            card
        };
        let up = params.hybrid_upsize;
        // Left inverter: input QR, output QL.
        let add_nems = |ckt: &mut Circuit,
                        name: &str,
                        card: nemscmos_devices::nemfet::NemsModel,
                        d: NodeId,
                        g: NodeId,
                        s: NodeId,
                        w: f64| {
            ckt.capacitor(g, Circuit::GROUND, card.c_gate_per_um * w);
            ckt.capacitor(d, Circuit::GROUND, 1.0e-15 * w);
            ckt.add_device(nemscmos_devices::nemfet::Nemfet::new(
                name, card, d, g, s, w,
            ));
        };
        if dev.pl_nems {
            add_nems(
                ckt,
                "xpl",
                nems_p_for(params.vth_shifts[0]),
                ql,
                qr,
                vdd,
                params.pu_width * up,
            );
        } else {
            tech.add_mos(ckt, "mpl", &dev.pl, ql, qr, vdd, params.pu_width);
        }
        if dev.nl_nems {
            add_nems(
                ckt,
                "xnl",
                nems_n_for(params.vth_shifts[1]),
                ql,
                qr,
                Circuit::GROUND,
                params.pd_width * up,
            );
        } else {
            tech.add_mos(
                ckt,
                "mnl",
                &dev.nl,
                ql,
                qr,
                Circuit::GROUND,
                params.pd_width,
            );
        }
        // Right inverter: input QL, output QR.
        if dev.pr_nems {
            add_nems(
                ckt,
                "xpr",
                nems_p_for(params.vth_shifts[2]),
                qr,
                ql,
                vdd,
                params.pu_width * up,
            );
        } else {
            tech.add_mos(ckt, "mpr", &dev.pr, qr, ql, vdd, params.pu_width);
        }
        if dev.nr_nems {
            add_nems(
                ckt,
                "xnr",
                nems_n_for(params.vth_shifts[3]),
                qr,
                ql,
                Circuit::GROUND,
                params.pd_width * up,
            );
        } else {
            tech.add_mos(
                ckt,
                "mnr",
                &dev.nr,
                qr,
                ql,
                Circuit::GROUND,
                params.pd_width,
            );
        }
        // Access transistors.
        tech.add_mos(ckt, "mal", &dev.al, bl, wl, ql, params.acc_width);
        tech.add_mos(ckt, "mar", &dev.ar, blb, wl, qr, params.acc_width);
    }

    /// Seeds for biasing the cell into the given stored state. The rails
    /// and bit lines are seeded at their driven levels too, so hysteretic
    /// pull-ups commit to the correct contact state before the first
    /// solve (a zero-volt V_dd guess would release every NEMS device).
    pub fn state_seeds(&self, tech: &Technology, zero: ZeroSide) -> Vec<(NodeId, f64)> {
        let (vql, vqr) = match zero {
            ZeroSide::Left => (0.0, tech.vdd),
            ZeroSide::Right => (tech.vdd, 0.0),
        };
        let mut seeds = vec![
            (self.ql, vql),
            (self.qr, vqr),
            (self.bl, tech.vdd),
            (self.blb, tech.vdd),
        ];
        if let Some(vdd) = self.circuit.find_node("vdd") {
            seeds.push((vdd, tech.vdd));
        }
        seeds
    }

    /// Registers initial conditions that bias the cell into the given
    /// state at the start of a transient analysis.
    pub fn set_state_ics(&mut self, tech: &Technology, zero: ZeroSide) {
        let (vql, vqr) = match zero {
            ZeroSide::Left => (0.0, tech.vdd),
            ZeroSide::Right => (tech.vdd, 0.0),
        };
        self.circuit.set_ic(self.ql, vql);
        self.circuit.set_ic(self.qr, vqr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_spice::analysis::op::{op_seeded, OpOptions};
    use nemscmos_spice::analysis::tran::{transient, TranOptions};

    fn hold_cell(kind: SramKind) -> (Technology, SramCell) {
        let tech = Technology::n90();
        let params = SramParams::new(kind);
        let cell = SramCell::build(
            &tech,
            &params,
            Waveform::dc(0.0),
            Waveform::dc(tech.vdd),
            Waveform::dc(tech.vdd),
        );
        (tech, cell)
    }

    #[test]
    fn every_kind_holds_both_states() {
        for kind in SramKind::all() {
            for zero in [ZeroSide::Left, ZeroSide::Right] {
                let (tech, mut cell) = hold_cell(kind);
                let seeds = cell.state_seeds(&tech, zero);
                let res = op_seeded(&mut cell.circuit, &seeds, &OpOptions::default()).unwrap();
                let (vql, vqr) = (res.voltage(cell.ql), res.voltage(cell.qr));
                match zero {
                    ZeroSide::Left => {
                        assert!(
                            vql < 0.1 && vqr > 1.1,
                            "{kind:?}/{zero:?}: ql={vql:.3} qr={vqr:.3}"
                        );
                    }
                    ZeroSide::Right => {
                        assert!(
                            vqr < 0.1 && vql > 1.1,
                            "{kind:?}/{zero:?}: ql={vql:.3} qr={vqr:.3}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hybrid_cell_retains_state_over_time() {
        let tech = Technology::n90();
        let params = SramParams::new(SramKind::Hybrid);
        let mut cell = SramCell::build(
            &tech,
            &params,
            Waveform::dc(0.0),
            Waveform::dc(tech.vdd),
            Waveform::dc(tech.vdd),
        );
        cell.set_state_ics(&tech, ZeroSide::Right);
        let res = transient(&mut cell.circuit, 5e-9, &TranOptions::default()).unwrap();
        assert!(res.voltage(cell.qr).last_value() < 0.1);
        assert!(res.voltage(cell.ql).last_value() > 1.1);
    }

    #[test]
    fn read_column_precharges_bitlines() {
        let tech = Technology::n90();
        let params = SramParams::new(SramKind::Conventional);
        let mut cell = SramCell::build_read_column(&tech, &params, 2e-9, 10e-9);
        cell.set_state_ics(&tech, ZeroSide::Left);
        // Stop before the WL rises: both bitlines should sit near vdd.
        let res = transient(&mut cell.circuit, 1.5e-9, &TranOptions::default()).unwrap();
        assert!(res.voltage(cell.bl).last_value() > 1.1);
        assert!(res.voltage(cell.blb).last_value() > 1.1);
    }

    #[test]
    fn labels_are_the_papers() {
        assert_eq!(SramKind::Conventional.label(), "Conv.");
        assert_eq!(SramKind::Hybrid.label(), "Hybrid");
        assert_eq!(SramKind::all().len(), 4);
    }
}
