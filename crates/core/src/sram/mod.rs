//! SRAM cell architectures and experiments (Section 5 of the paper).

mod array;
mod cell;
mod experiments;

pub use array::{ArraySequence, SramArray};
pub use cell::{SramCell, SramKind, SramParams, ZeroSide};
pub use experiments::{
    butterfly_curves, data_retention_voltage, read_latency, standby_leakage, write_latency,
    write_trip_voltage, ButterflyData, ReadMode,
};
