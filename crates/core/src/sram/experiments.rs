//! SRAM experiments: standby leakage, butterfly/SNM, and read latency
//! (Figures 14 and 15).

use nemscmos_analysis::snm::{butterfly_snm, SnmResult, Vtc};
use nemscmos_analysis::{AnalysisError, Result};
use nemscmos_spice::analysis::dc_sweep::dc_sweep;
use nemscmos_spice::analysis::op::{op_seeded, OpOptions};
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::waveform::Waveform;

#[cfg(test)]
use super::cell::SramKind;
use super::cell::{SramCell, SramParams, ZeroSide};
use crate::tech::Technology;

/// Whether the butterfly is traced in hold (word line low) or read
/// (word line high, bit lines at V_dd) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Hold-state butterfly.
    Hold,
    /// Read-disturb butterfly (the paper's stability context, §5.1).
    Read,
}

/// Total standby current drawn by the cell from V_dd and the precharged
/// bit lines, with the word line off (amperes).
///
/// # Errors
///
/// Propagates operating-point failures.
pub fn standby_leakage(tech: &Technology, params: &SramParams, zero: ZeroSide) -> Result<f64> {
    let mut cell = SramCell::build(
        tech,
        params,
        Waveform::dc(0.0),
        Waveform::dc(tech.vdd),
        Waveform::dc(tech.vdd),
    );
    let seeds = cell.state_seeds(tech, zero);
    let res = op_seeded(&mut cell.circuit, &seeds, &OpOptions::default())?;
    Ok(nemscmos_analysis::power::total_standby_current(
        &res,
        &[cell.vdd_src, cell.bl_src, cell.blb_src],
    ))
}

/// The two transfer curves and extracted SNM of one cell architecture.
#[derive(Debug, Clone)]
pub struct ButterflyData {
    /// VTC of the left inverter (input QR → output QL), with access
    /// loading per the mode.
    pub vtc_left: Vtc,
    /// VTC of the right inverter (input QL → output QR).
    pub vtc_right: Vtc,
    /// The extracted noise margins.
    pub snm: SnmResult,
}

/// Traces the butterfly curves of a cell by breaking the feedback loop:
/// each inverter (with its access-transistor load in `Read` mode) is
/// driven by a swept source while the other is disconnected.
///
/// # Errors
///
/// Propagates sweep failures and malformed-curve errors.
pub fn butterfly_curves(
    tech: &Technology,
    params: &SramParams,
    mode: ReadMode,
) -> Result<ButterflyData> {
    let vtc_left = half_cell_vtc(tech, params, mode, ZeroSide::Left)?;
    let vtc_right = half_cell_vtc(tech, params, mode, ZeroSide::Right)?;
    let snm = butterfly_snm(&vtc_left, &vtc_right, tech.vdd)?;
    Ok(ButterflyData {
        vtc_left,
        vtc_right,
        snm,
    })
}

/// VTC of one half cell. `side` selects which inverter: `Left` = input
/// QR → output QL (devices PL/NL with access AL), `Right` = input QL →
/// output QR (PR/NR with AR).
fn half_cell_vtc(
    tech: &Technology,
    params: &SramParams,
    mode: ReadMode,
    side: ZeroSide,
) -> Result<Vtc> {
    // Build a full cell, then overdrive the input storage node with a
    // swept source: the overdriven inverter's devices see exactly the
    // in-situ loading (including the access transistor and bit line).
    let wl = match mode {
        ReadMode::Hold => Waveform::dc(0.0),
        ReadMode::Read => Waveform::dc(tech.vdd),
    };
    let mut cell = SramCell::build(
        tech,
        params,
        wl,
        Waveform::dc(tech.vdd),
        Waveform::dc(tech.vdd),
    );
    // Rebuilding with a sweep source attached to the input node requires
    // the node before topology freeze — recreate the cell with an extra
    // source driving the input storage node.
    let (input_node, output_node) = match side {
        ZeroSide::Left => (cell.qr, cell.ql),
        ZeroSide::Right => (cell.ql, cell.qr),
    };
    let sweep_src = cell
        .circuit
        .vsource(input_node, Circuit::GROUND, Waveform::dc(0.0));
    let steps = 121;
    let values: Vec<f64> = (0..steps)
        .map(|k| tech.vdd * k as f64 / (steps - 1) as f64)
        .collect();
    let results = dc_sweep(&mut cell.circuit, sweep_src, &values, &OpOptions::default())?;
    let pts: Vec<(f64, f64)> = values
        .iter()
        .zip(results.iter())
        .map(|(&vin, r)| (vin, r.voltage(output_node)))
        .collect();
    // Sanitize tiny non-monotonicities from solver noise before the VTC
    // validation (clamp to a running minimum).
    let mut cleaned = Vec::with_capacity(pts.len());
    let mut running = f64::INFINITY;
    for (x, y) in pts {
        running = running.min(y.max(0.0));
        cleaned.push((x, running));
    }
    Vtc::new(cleaned).map_err(|e| {
        AnalysisError::InvalidInput(format!("{:?} half-cell VTC invalid: {e}", params.kind))
    })
}

/// Read latency: the time from the word-line 50% rise until the sense
/// amplifier sees a 100 mV *differential* between the bit lines, in a
/// precharged column carrying the aggregate leakage of the unaccessed
/// cells. The differential criterion is what makes column leakage hurt:
/// it sags the reference bit line along with the discharging one
/// (Section 5.1's read-delay argument).
///
/// `zero` selects which side stores the zero (and therefore which bit
/// line discharges) — the asymmetric cell reads its two states at
/// different speeds.
///
/// # Errors
///
/// Propagates simulation failures; returns
/// [`AnalysisError::MissingCrossing`] if the bit lines never develop the
/// sense margin.
pub fn read_latency(tech: &Technology, params: &SramParams, zero: ZeroSide) -> Result<f64> {
    let t_prech_off = 1.0e-9;
    let t_wl_rise = 1.3e-9;
    let t_stop = 8e-9;
    let mut cell = SramCell::build_read_column(tech, params, t_prech_off, t_wl_rise);
    cell.set_state_ics(tech, zero);
    let opts = TranOptions {
        dt_max: Some(10e-12),
        ..Default::default()
    };
    let res = transient(&mut cell.circuit, t_stop, &opts)?;
    let (discharging, reference) = match zero {
        ZeroSide::Left => (cell.bl, cell.blb),
        ZeroSide::Right => (cell.blb, cell.bl),
    };
    let v_dis = res.voltage(discharging);
    let v_ref = res.voltage(reference);
    let sense_margin = 0.1;
    let values: Vec<f64> = v_dis
        .times()
        .iter()
        .zip(v_dis.values())
        .map(|(&t, &vd)| v_ref.eval(t) - vd)
        .collect();
    let differential = nemscmos_spice::result::Trace::new(v_dis.times().to_vec(), values);
    let t_sense = differential
        .crossing_rising(sense_margin, t_wl_rise)
        .ok_or(AnalysisError::MissingCrossing {
            what: "bit-line differential".into(),
            level: sense_margin,
        })?;
    Ok(t_sense - t_wl_rise)
}

/// Write latency: time from the word-line 50% rise until the flipped
/// storage node crosses half-supply, for a full write-0-into-QL operation
/// starting from the opposite stored state.
///
/// # Errors
///
/// Propagates simulation failures; returns
/// [`AnalysisError::MissingCrossing`] if the cell never flips within the
/// window (a write failure).
pub fn write_latency(tech: &Technology, params: &SramParams) -> Result<f64> {
    let t_wl_rise = 1.0e-9;
    let edge = 50e-12;
    let mut cell = SramCell::build(
        tech,
        params,
        Waveform::step(0.0, tech.vdd, t_wl_rise, edge),
        Waveform::dc(0.0),      // BL low: write 0 into QL
        Waveform::dc(tech.vdd), // BLB high
    );
    cell.set_state_ics(tech, ZeroSide::Right); // starts storing QL = 1
    let opts = TranOptions {
        dt_max: Some(10e-12),
        ..Default::default()
    };
    let res = transient(&mut cell.circuit, 6e-9, &opts)?;
    let vql = res.voltage(cell.ql);
    let t_flip =
        vql.crossing_falling(tech.vdd / 2.0, t_wl_rise)
            .ok_or(AnalysisError::MissingCrossing {
                what: "write flip (QL)".into(),
                level: tech.vdd / 2.0,
            })?;
    Ok(t_flip - t_wl_rise)
}

/// Write trip voltage: with the word line asserted and BLB held at V_dd,
/// the bit line is swept downward from V_dd; the trip is the highest BL
/// level at which the stored one at QL flips to zero. A *higher* trip
/// voltage means an easier write (more margin for the write driver).
///
/// # Errors
///
/// Propagates sweep failures; returns
/// [`AnalysisError::MissingCrossing`] if the cell never flips (write
/// failure), which is itself a meaningful experimental outcome.
pub fn write_trip_voltage(tech: &Technology, params: &SramParams) -> Result<f64> {
    let mut cell = SramCell::build(
        tech,
        params,
        Waveform::dc(tech.vdd), // word line on
        Waveform::dc(tech.vdd), // BL (swept below)
        Waveform::dc(tech.vdd), // BLB held high
    );
    let seeds = cell.state_seeds(tech, ZeroSide::Right); // QL = 1 initially
    let steps = 121;
    let values: Vec<f64> = (0..steps)
        .map(|k| tech.vdd * (1.0 - k as f64 / (steps - 1) as f64))
        .collect();
    let bl_src = cell.bl_src;
    let results = nemscmos_spice::analysis::dc_sweep::dc_sweep_seeded(
        &mut cell.circuit,
        bl_src,
        &values,
        &seeds,
        &OpOptions::default(),
    )?;
    for (bl, r) in values.iter().zip(results.iter()) {
        if r.voltage(cell.ql) < tech.vdd / 2.0 {
            return Ok(*bl);
        }
    }
    Err(AnalysisError::MissingCrossing {
        what: "write trip (QL)".into(),
        level: tech.vdd / 2.0,
    })
}

/// Data-retention voltage: the lowest supply at which the cell is still
/// bistable — both seeded states settle with the storage nodes at their
/// rails (high node ≥ 70 % of the supply, low node ≤ 30 %). Found by
/// bisection over the supply. NEMS cells cannot scale below the pull-in
/// voltage of their beams (the contacts release and the cell loses its
/// restoring drive), so the hybrid cell has a markedly *higher* DRV than
/// CMOS — a real cost of the technology our harness surfaces honestly.
///
/// # Errors
///
/// Propagates simulation failures from the probing operating points.
pub fn data_retention_voltage(
    tech: &Technology,
    params: &SramParams,
    _min_snm: f64,
) -> Result<f64> {
    let retained = |vdd: f64| -> Result<bool> {
        let mut scaled = tech.clone();
        scaled.vdd = vdd;
        for zero in [ZeroSide::Left, ZeroSide::Right] {
            let mut cell = SramCell::build(
                &scaled,
                params,
                Waveform::dc(0.0),
                Waveform::dc(vdd),
                Waveform::dc(vdd),
            );
            let seeds = cell.state_seeds(&scaled, zero);
            let res = match op_seeded(&mut cell.circuit, &seeds, &OpOptions::default()) {
                Ok(r) => r,
                Err(_) => return Ok(false), // no stable point at this supply
            };
            let (lo_node, hi_node) = match zero {
                ZeroSide::Left => (cell.ql, cell.qr),
                ZeroSide::Right => (cell.qr, cell.ql),
            };
            if res.voltage(lo_node) > 0.3 * vdd || res.voltage(hi_node) < 0.7 * vdd {
                return Ok(false);
            }
        }
        Ok(true)
    };
    // max_passing_level finds the highest passing value of a predicate
    // that fails above a threshold; retention *improves* with vdd, so
    // search on the negated axis: passing = retained(-neg_v), and the
    // largest passing neg_v is -DRV.
    let neg_drv = nemscmos_analysis::noise_margin::max_passing_level(
        |neg_v| retained(-neg_v),
        -tech.vdd,
        -0.05,
        2e-3,
    )?;
    Ok(-neg_drv)
}

#[cfg(test)]
mod margin_tests {
    use super::*;

    #[test]
    fn write_latency_is_fast_and_hybrid_writes_faster() {
        let t = Technology::n90();
        let conv = write_latency(&t, &SramParams::new(SramKind::Conventional)).unwrap();
        let hybrid = write_latency(&t, &SramParams::new(SramKind::Hybrid)).unwrap();
        assert!(conv > 1e-12 && conv < 1e-9, "conv write latency {conv:.3e}");
        // The weak NEMS pull-up fights the write less: hybrid writes are
        // no slower than conventional (typically faster).
        assert!(
            hybrid < 1.5 * conv,
            "hybrid {hybrid:.3e} vs conv {conv:.3e}"
        );
    }

    #[test]
    fn write_trip_exists_for_all_kinds() {
        let t = Technology::n90();
        for kind in SramKind::all() {
            let trip = write_trip_voltage(&t, &SramParams::new(kind)).unwrap();
            assert!(
                trip > 0.0 && trip < t.vdd,
                "{kind:?}: trip {trip:.3} outside (0, vdd)"
            );
        }
    }

    #[test]
    fn hybrid_drv_is_limited_by_pull_in() {
        let t = Technology::n90();
        let conv =
            data_retention_voltage(&t, &SramParams::new(SramKind::Conventional), 0.05).unwrap();
        let hybrid = data_retention_voltage(&t, &SramParams::new(SramKind::Hybrid), 0.05).unwrap();
        assert!(conv < 0.7, "CMOS cell retains well below vdd: {conv:.3}");
        assert!(
            hybrid > conv,
            "hybrid DRV {hybrid:.3} should exceed CMOS {conv:.3} (beams release)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::n90()
    }

    #[test]
    fn hybrid_standby_leakage_is_lowest() {
        let t = tech();
        let mut leaks = std::collections::HashMap::new();
        for kind in SramKind::all() {
            // Average both stored states (the asymmetric cell is
            // state-dependent; the paper averages its figures).
            let a = standby_leakage(&t, &SramParams::new(kind), ZeroSide::Right).unwrap();
            let b = standby_leakage(&t, &SramParams::new(kind), ZeroSide::Left).unwrap();
            leaks.insert(kind, 0.5 * (a + b));
        }
        let conv = leaks[&SramKind::Conventional];
        let hybrid = leaks[&SramKind::Hybrid];
        assert!(hybrid < conv, "hybrid {hybrid:.3e} vs conv {conv:.3e}");
        assert!(
            conv / hybrid > 3.0,
            "expect several-fold reduction, got {:.2}",
            conv / hybrid
        );
        for kind in [SramKind::DualVt, SramKind::Asymmetric] {
            assert!(
                leaks[&kind] < conv,
                "{kind:?} should leak less than conventional"
            );
        }
    }

    #[test]
    fn asymmetric_cell_leakage_is_state_dependent() {
        let t = tech();
        let params = SramParams::new(SramKind::Asymmetric);
        let favored = standby_leakage(&t, &params, ZeroSide::Left).unwrap();
        let unfavored = standby_leakage(&t, &params, ZeroSide::Right).unwrap();
        assert!(
            favored < unfavored,
            "favored {favored:.3e} vs unfavored {unfavored:.3e}"
        );
    }

    #[test]
    fn conventional_read_snm_is_positive_and_below_hold() {
        let t = tech();
        let params = SramParams::new(SramKind::Conventional);
        let read = butterfly_curves(&t, &params, ReadMode::Read).unwrap();
        let hold = butterfly_curves(&t, &params, ReadMode::Hold).unwrap();
        assert!(read.snm.snm() > 0.05, "read SNM = {}", read.snm.snm());
        assert!(
            read.snm.snm() < hold.snm.snm(),
            "read disturb must shrink the SNM"
        );
    }

    #[test]
    fn hybrid_read_snm_is_moderately_below_conventional() {
        let t = tech();
        let conv = butterfly_curves(&t, &SramParams::new(SramKind::Conventional), ReadMode::Read)
            .unwrap()
            .snm
            .snm();
        let hybrid = butterfly_curves(&t, &SramParams::new(SramKind::Hybrid), ReadMode::Read)
            .unwrap()
            .snm
            .snm();
        assert!(hybrid < conv, "hybrid {hybrid:.3} vs conv {conv:.3}");
        assert!(
            hybrid > 0.4 * conv,
            "hybrid SNM should remain usable, got {hybrid:.3}"
        );
    }

    #[test]
    fn read_latency_ordering_matches_paper() {
        let t = tech();
        let conv = read_latency(
            &t,
            &SramParams::new(SramKind::Conventional),
            ZeroSide::Right,
        )
        .unwrap();
        let hybrid = read_latency(&t, &SramParams::new(SramKind::Hybrid), ZeroSide::Right).unwrap();
        assert!(conv > 0.0);
        assert!(
            hybrid > conv,
            "hybrid {hybrid:.3e} must be slower than conv {conv:.3e}"
        );
        assert!(
            hybrid < 2.0 * conv,
            "but not catastrophically ({:.2}x)",
            hybrid / conv
        );
    }

    #[test]
    fn asymmetric_read_latency_differs_by_state() {
        let t = tech();
        let params = SramParams::new(SramKind::Asymmetric);
        let left = read_latency(&t, &params, ZeroSide::Left).unwrap();
        let right = read_latency(&t, &params, ZeroSide::Right).unwrap();
        assert!(
            (left - right).abs() / right > 0.02,
            "latencies {left:.3e} vs {right:.3e}"
        );
    }
}

#[cfg(test)]
mod pullup_only_tests {
    use super::*;

    /// The §5.3 trade-off: replacing only the pull-ups keeps the read
    /// path all-CMOS (latency ≈ conventional) but leaves the NMOS
    /// leakage, so the saving is smaller than the full hybrid's.
    #[test]
    fn pullup_only_variant_tradeoffs() {
        let t = Technology::n90();
        let conv = SramParams::new(SramKind::Conventional);
        let full = SramParams::new(SramKind::Hybrid);
        let pu = SramParams::new(SramKind::HybridPullupOnly);
        let leak = |p: &SramParams| {
            0.5 * (standby_leakage(&t, p, ZeroSide::Left).unwrap()
                + standby_leakage(&t, p, ZeroSide::Right).unwrap())
        };
        let l_conv = leak(&conv);
        let l_full = leak(&full);
        let l_pu = leak(&pu);
        assert!(l_pu < l_conv, "pull-up-only must still save leakage");
        assert!(l_pu > l_full, "but less than the full hybrid");
        // Read latency stays essentially conventional (PMOS is off in reads).
        let lat_conv = read_latency(&t, &conv, ZeroSide::Right).unwrap();
        let lat_pu = read_latency(&t, &pu, ZeroSide::Right).unwrap();
        assert!(
            (lat_pu / lat_conv - 1.0).abs() < 0.05,
            "pull-up-only latency {lat_pu:.3e} vs conv {lat_conv:.3e}"
        );
    }
}
