//! The 90 nm technology bundle: calibrated model cards plus netlist
//! construction helpers that attach parasitic capacitances consistently.

use nemscmos_devices::mosfet::{MosModel, Mosfet};
use nemscmos_devices::nemfet::{Nemfet, NemsModel};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::device::DeviceId;
use nemscmos_spice::element::NodeId;

/// A process technology: supply voltage and the full set of calibrated
/// device cards.
///
/// Construction helpers ([`Technology::add_nmos`] etc.) stamp the device
/// *and* its gate / drain-junction capacitances, so gate loading and
/// self-loading are consistent across every circuit in the study.
///
/// # Example
///
/// ```
/// use nemscmos::tech::Technology;
///
/// let tech = Technology::n90();
/// assert_eq!(tech.vdd, 1.2);
/// // Corner and temperature variants derive from the same bundle.
/// let hot = tech.at_temperature(373.0);
/// assert!(hot.nmos.swing() > tech.nmos.swing());
/// ```
#[derive(Debug, Clone)]
pub struct Technology {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Low-V_t NMOS card (Table 1 calibrated).
    pub nmos: MosModel,
    /// Low-V_t PMOS card.
    pub pmos: MosModel,
    /// High-V_t NMOS (dual-V_t / asymmetric SRAM baselines).
    pub nmos_hvt: MosModel,
    /// High-V_t PMOS.
    pub pmos_hvt: MosModel,
    /// N-type NEMS switch card (Table 1 calibrated).
    pub nems_n: NemsModel,
    /// P-type NEMS switch card.
    pub nems_p: NemsModel,
    /// Minimum drawable device width (µm).
    pub w_min: f64,
}

impl Technology {
    /// The 90 nm node used throughout the paper (V_dd = 1.2 V).
    pub fn n90() -> Technology {
        use nemscmos_devices::mosfet::Polarity;
        Technology {
            vdd: 1.2,
            nmos: MosModel::nmos_90nm(),
            pmos: MosModel::pmos_90nm(),
            nmos_hvt: MosModel::nmos_90nm_hvt(),
            pmos_hvt: MosModel::pmos_90nm_hvt(),
            nems_n: NemsModel::nems_90nm(Polarity::Nmos),
            nems_p: NemsModel::nems_90nm(Polarity::Pmos),
            w_min: 0.2,
        }
    }

    /// Returns this technology with every CMOS card evaluated at `kelvin`
    /// (thermal voltage and V_th temperature shift). The NEMS beam-up
    /// leakage is a mechanical-gap property and stays
    /// temperature-independent — the asymmetry behind the thermal study in
    /// `nemscmos-bench`'s `thermal` experiment.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is not strictly positive and finite.
    pub fn at_temperature(&self, kelvin: f64) -> Technology {
        let mut t = self.clone();
        t.nmos = t.nmos.at_temperature(kelvin);
        t.pmos = t.pmos.at_temperature(kelvin);
        t.nmos_hvt = t.nmos_hvt.at_temperature(kelvin);
        t.pmos_hvt = t.pmos_hvt.at_temperature(kelvin);
        // The NEMS contact channel is a MOS channel and heats like one;
        // the beam-up g_off does not.
        t.nems_n.contact = t.nems_n.contact.at_temperature(kelvin);
        t.nems_p.contact = t.nems_p.contact.at_temperature(kelvin);
        t
    }

    /// Returns this technology at a process corner (global fast/slow
    /// shifts on the CMOS cards; the NEMS contact channel follows its
    /// MOS-like nature, the mechanical pull-in voltages do not move).
    pub fn at_corner(&self, corner: nemscmos_devices::corners::Corner) -> Technology {
        let mut t = self.clone();
        t.nmos = corner.apply_nmos(&t.nmos);
        t.pmos = corner.apply_pmos(&t.pmos);
        t.nmos_hvt = corner.apply_nmos(&t.nmos_hvt);
        t.pmos_hvt = corner.apply_pmos(&t.pmos_hvt);
        t.nems_n.contact = corner.apply_nmos(&t.nems_n.contact);
        t.nems_p.contact = corner.apply_pmos(&t.nems_p.contact);
        t
    }

    /// Adds a MOSFET with gate and drain-junction capacitance to ground.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mos(
        &self,
        ckt: &mut Circuit,
        name: &str,
        model: &MosModel,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        width_um: f64,
    ) -> DeviceId {
        ckt.capacitor(g, Circuit::GROUND, model.gate_cap(width_um));
        ckt.capacitor(d, Circuit::GROUND, model.junction_cap(width_um));
        ckt.add_device(Mosfet::new(name, model.clone(), d, g, s, width_um))
    }

    /// Adds a low-V_t NMOS (with parasitics).
    pub fn add_nmos(
        &self,
        ckt: &mut Circuit,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
    ) -> DeviceId {
        let model = self.nmos.clone();
        self.add_mos(ckt, name, &model, d, g, s, w)
    }

    /// Adds a low-V_t PMOS (with parasitics).
    pub fn add_pmos(
        &self,
        ckt: &mut Circuit,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
    ) -> DeviceId {
        let model = self.pmos.clone();
        self.add_mos(ckt, name, &model, d, g, s, w)
    }

    /// Adds an N-type NEMS switch with gate and drain-junction capacitance.
    pub fn add_nems_n(
        &self,
        ckt: &mut Circuit,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
    ) -> DeviceId {
        ckt.capacitor(g, Circuit::GROUND, self.nems_n.c_gate_per_um * w);
        ckt.capacitor(d, Circuit::GROUND, 1.0e-15 * w);
        ckt.add_device(Nemfet::new(name, self.nems_n.clone(), d, g, s, w))
    }

    /// Adds a P-type NEMS switch with gate and drain-junction capacitance.
    pub fn add_nems_p(
        &self,
        ckt: &mut Circuit,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
    ) -> DeviceId {
        ckt.capacitor(g, Circuit::GROUND, self.nems_p.c_gate_per_um * w);
        ckt.capacitor(d, Circuit::GROUND, 1.0e-15 * w);
        ckt.add_device(Nemfet::new(name, self.nems_p.clone(), d, g, s, w))
    }

    /// Adds a static CMOS inverter between `input` and `output`, powered
    /// from `vdd_node`. Returns nothing; parasitics are attached by the
    /// underlying device helpers.
    #[allow(clippy::too_many_arguments)]
    pub fn add_inverter(
        &self,
        ckt: &mut Circuit,
        name: &str,
        vdd_node: NodeId,
        input: NodeId,
        output: NodeId,
        wp: f64,
        wn: f64,
    ) {
        self.add_pmos(ckt, &format!("{name}.p"), output, input, vdd_node, wp);
        self.add_nmos(
            ckt,
            &format!("{name}.n"),
            output,
            input,
            Circuit::GROUND,
            wn,
        );
    }

    /// A standard fan-out-of-1 inverter load: `wn = 1 µm`, `wp = 2 µm`
    /// (balancing the ~2× NMOS/PMOS drive ratio). Returns the load's
    /// output node so further stages can be chained.
    pub fn add_inverter_load(
        &self,
        ckt: &mut Circuit,
        name: &str,
        vdd_node: NodeId,
        input: NodeId,
    ) -> NodeId {
        let out = ckt.node(&format!("{name}.out"));
        self.add_inverter(ckt, name, vdd_node, input, out, 2.0, 1.0);
        // A wire-load capacitance keeps the stage realistic.
        ckt.capacitor(out, Circuit::GROUND, 0.5e-15);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_spice::analysis::op::op;
    use nemscmos_spice::analysis::tran::{transient, TranOptions};
    use nemscmos_spice::waveform::Waveform;

    #[test]
    fn inverter_dc_levels() {
        let tech = Technology::n90();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
        let sin = ckt.vsource(vin, Circuit::GROUND, Waveform::dc(0.0));
        tech.add_inverter(&mut ckt, "inv", vdd, vin, out, 2.0, 1.0);
        let res = op(&mut ckt).unwrap();
        assert!(res.voltage(out) > 1.15);
        ckt.set_vsource_dc(sin, tech.vdd).unwrap();
        let res = op(&mut ckt).unwrap();
        assert!(res.voltage(out) < 0.05);
    }

    #[test]
    fn inverter_transient_delay_is_picoseconds() {
        let tech = Technology::n90();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, tech.vdd, 100e-12, 20e-12),
        );
        tech.add_inverter(&mut ckt, "inv", vdd, vin, out, 2.0, 1.0);
        // Load it with another inverter.
        tech.add_inverter_load(&mut ckt, "load", vdd, out);
        let res = transient(&mut ckt, 1e-9, &TranOptions::default()).unwrap();
        let vin_t = res.voltage(vin);
        let vout_t = res.voltage(out);
        let d = nemscmos_analysis::measure::propagation_delay(
            &vin_t,
            nemscmos_analysis::measure::Edge::Rising,
            &vout_t,
            nemscmos_analysis::measure::Edge::Falling,
            tech.vdd / 2.0,
            0.0,
        )
        .unwrap();
        assert!(d > 0.1e-12 && d < 100e-12, "inverter delay = {d:.3e} s");
    }

    #[test]
    fn chained_loads_create_new_nodes() {
        let tech = Technology::n90();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let o1 = tech.add_inverter_load(&mut ckt, "l1", vdd, a);
        let o2 = tech.add_inverter_load(&mut ckt, "l2", vdd, a);
        assert_ne!(o1, o2);
    }
}
