//! The standard device factory: makes the calibrated 90 nm model cards
//! available to SPICE netlists parsed by `nemscmos_spice::netlist`.

use std::collections::HashMap;

use nemscmos_devices::mosfet::Mosfet;
use nemscmos_devices::nemfet::Nemfet;
use nemscmos_spice::device::Device;
use nemscmos_spice::element::NodeId;
use nemscmos_spice::netlist::DeviceFactory;

use crate::tech::Technology;

/// Resolves netlist device models against a [`Technology`].
///
/// Recognized model names (case-insensitive):
///
/// | Model | Device |
/// |---|---|
/// | `nmos90` / `pmos90` | low-V_t 90 nm MOSFETs |
/// | `nmos90hvt` / `pmos90hvt` | high-V_t variants |
/// | `nems90n` / `nems90p` | NEMS switches |
///
/// Cards use three terminals (`drain gate source`) and accept `W=<width>`
/// in metres (SPICE convention: `W=2u` is 2 µm). Unlike the
/// [`Technology::add_nmos`]-style helpers, the factory does **not** attach
/// implicit parasitic capacitors — netlists state their parasitics
/// explicitly, as SPICE decks do.
///
/// # Example
///
/// ```
/// use nemscmos::factory::StandardFactory;
/// use nemscmos::spice::netlist::parse_deck;
///
/// # fn main() -> Result<(), nemscmos::spice::SpiceError> {
/// let deck = "\
/// VDD vdd 0 DC 1.2
/// VIN g 0 DC 1.2
/// M1 d g 0 nmos90 W=2u
/// R1 vdd d 10k
/// C1 d 0 1f
/// .op
/// ";
/// let parsed = parse_deck(deck, &StandardFactory::n90())?;
/// assert_eq!(parsed.directives.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StandardFactory {
    tech: Technology,
}

impl StandardFactory {
    /// A factory over the given technology.
    pub fn new(tech: Technology) -> StandardFactory {
        StandardFactory { tech }
    }

    /// A factory over the default 90 nm technology.
    pub fn n90() -> StandardFactory {
        StandardFactory::new(Technology::n90())
    }

    /// The underlying technology.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }
}

impl DeviceFactory for StandardFactory {
    fn make(
        &self,
        name: &str,
        model: &str,
        nodes: &[NodeId],
        params: &HashMap<String, f64>,
    ) -> Option<Box<dyn Device>> {
        if nodes.len() != 3 {
            return None;
        }
        let (d, g, s) = (nodes[0], nodes[1], nodes[2]);
        // SPICE widths are metres; the models take µm.
        let width_um = params.get("W").map_or(1.0, |w| w * 1e6);
        if !(width_um.is_finite() && width_um > 0.0) {
            return None;
        }
        match model.to_ascii_lowercase().as_str() {
            "nmos90" => Some(Box::new(Mosfet::new(
                name,
                self.tech.nmos.clone(),
                d,
                g,
                s,
                width_um,
            ))),
            "pmos90" => Some(Box::new(Mosfet::new(
                name,
                self.tech.pmos.clone(),
                d,
                g,
                s,
                width_um,
            ))),
            "nmos90hvt" => Some(Box::new(Mosfet::new(
                name,
                self.tech.nmos_hvt.clone(),
                d,
                g,
                s,
                width_um,
            ))),
            "pmos90hvt" => Some(Box::new(Mosfet::new(
                name,
                self.tech.pmos_hvt.clone(),
                d,
                g,
                s,
                width_um,
            ))),
            "nems90n" => Some(Box::new(Nemfet::new(
                name,
                self.tech.nems_n.clone(),
                d,
                g,
                s,
                width_um,
            ))),
            "nems90p" => Some(Box::new(Nemfet::new(
                name,
                self.tech.nems_p.clone(),
                d,
                g,
                s,
                width_um,
            ))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_spice::analysis::op::op;
    use nemscmos_spice::netlist::parse_deck;

    #[test]
    fn cmos_inverter_deck_runs() {
        let deck = "\
VDD vdd 0 DC 1.2
VIN in 0 DC 0
M1 out in vdd pmos90 W=2u
M2 out in 0 nmos90 W=1u
C1 out 0 1f
.op
";
        let parsed = parse_deck(deck, &StandardFactory::n90()).unwrap();
        let mut ckt = parsed.circuit;
        let res = op(&mut ckt).unwrap();
        assert!(res.voltage(parsed.nodes["out"]) > 1.15);
    }

    #[test]
    fn nems_switch_deck_runs() {
        let deck = "\
VDD vdd 0 DC 1.2
VG g 0 DC 1.2
X1 d g 0 nems90n W=2u
R1 vdd d 10k
C1 d 0 1f
.op
";
        let parsed = parse_deck(deck, &StandardFactory::n90()).unwrap();
        let mut ckt = parsed.circuit;
        let res = op(&mut ckt).unwrap();
        // Pulled in and conducting: drain near ground.
        assert!(res.voltage(parsed.nodes["d"]) < 0.15);
    }

    #[test]
    fn default_width_is_one_micron() {
        let f = StandardFactory::n90();
        let dev = f.make(
            "M1",
            "nmos90",
            &[NodeId::GROUND, NodeId::GROUND, NodeId::GROUND],
            &HashMap::new(),
        );
        assert!(dev.is_some());
    }

    #[test]
    fn unknown_model_and_bad_terminals_rejected() {
        let f = StandardFactory::n90();
        assert!(f
            .make("M1", "bsim4", &[NodeId::GROUND; 3], &HashMap::new())
            .is_none());
        assert!(f
            .make("M1", "nmos90", &[NodeId::GROUND; 4], &HashMap::new())
            .is_none());
    }
}
