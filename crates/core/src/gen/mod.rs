//! `nemscmos-gen`: parameterized circuit generators.
//!
//! Everything else in this crate builds *one* instance of a paper
//! circuit; this module builds *families* of them — m×n hybrid SRAM
//! arrays with realistic precharge/write-driver periphery and
//! logical-effort-sized domino fanout trees — so the sparse-solver
//! scaling study (`perfbase --scaling`) can sweep unknown counts from
//! tens to thousands on circuits that are structurally honest: supply
//! and data rails are genuine high-degree hubs, bit lines couple whole
//! columns, and the word-line drivers are transistors, not ideal
//! sources.
//!
//! The generators emit a [`GenDeck`]: a closed netlist with stimulus and
//! initial conditions already applied, a recommended transient window,
//! and named probe nodes. A deck can be simulated directly or handed to
//! [`dc_jacobian`] to extract the system matrix for
//! ordering/factorization measurements.
//!
//! [`dc_jacobian`]: nemscmos_spice::analysis::probe::dc_jacobian

mod domino;
mod sram;

pub use domino::DominoTreeGen;
pub use sram::SramArrayGen;

use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::element::NodeId;

/// A generated, self-contained simulation deck.
#[derive(Debug)]
pub struct GenDeck {
    /// Generator-assigned name, e.g. `sram-16x16` or `domino-or32`.
    pub name: String,
    /// The netlist, with stimulus sources and initial conditions set.
    pub circuit: Circuit,
    /// Recommended transient stop time (s).
    pub tstop: f64,
    /// Recommended maximum step (s).
    pub dt_max: f64,
    /// Named nodes worth watching, outermost first.
    pub probes: Vec<(String, NodeId)>,
}

impl GenDeck {
    /// Number of MNA unknowns in the generated system.
    pub fn num_unknowns(&mut self) -> usize {
        self.circuit.num_unknowns()
    }
}
