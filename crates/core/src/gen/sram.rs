//! m×n SRAM array generator with transistor-level periphery.
//!
//! Unlike [`SramArray`](crate::sram::SramArray) — whose word and bit
//! lines are ideal PWL sources, fine for functional checks but
//! structurally flattering to the solver — this generator drives every
//! line through devices:
//!
//! - word lines are outputs of row-driver inverters (only the small
//!   row-select inputs are ideal sources),
//! - bit lines float behind a clocked precharge PMOS pair and carry a
//!   rows-proportional wire capacitance,
//! - writes go through pass-NMOS write drivers hanging off two shared
//!   data rails, which (like the V_dd rail) become genuine high-degree
//!   hub columns in the system matrix.
//!
//! The scripted stimulus is one precharge phase followed by one write of
//! a checkerboard pattern into row 0 — short enough that the 64×64 array
//! (thousands of unknowns) finishes a transient in reasonable time, rich
//! enough that the matrix is the real coupled array, not a block
//! diagonal of isolated cells.

use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::waveform::Waveform;

use super::GenDeck;
use crate::sram::{SramCell, SramKind, SramParams};
use crate::tech::Technology;

/// Edge time for the generated control waveforms (s).
const EDGE: f64 = 50e-12;
/// Duration of each of the two phases: precharge, then write (s).
const WINDOW: f64 = 1e-9;

/// Generator for an `rows × cols` SRAM array deck.
#[derive(Debug, Clone)]
pub struct SramArrayGen {
    /// Number of word lines.
    pub rows: usize,
    /// Number of bit-line pairs.
    pub cols: usize,
    /// Cell architecture for every cell in the array.
    pub kind: SramKind,
}

impl SramArrayGen {
    /// A conventional-6T array of the given shape.
    pub fn new(rows: usize, cols: usize) -> SramArrayGen {
        SramArrayGen {
            rows,
            cols,
            kind: SramKind::Conventional,
        }
    }

    /// Same shape, different cell architecture.
    pub fn with_kind(mut self, kind: SramKind) -> SramArrayGen {
        self.kind = kind;
        self
    }

    /// Builds the array deck: netlist, stimulus, initial conditions,
    /// probes.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn build(&self, tech: &Technology) -> GenDeck {
        assert!(
            self.rows > 0 && self.cols > 0,
            "array shape must be nonzero"
        );
        let (rows, cols) = (self.rows, self.cols);
        let params = SramParams::new(self.kind);
        let w = WINDOW;

        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));

        // Precharge clock: active-low through phase 0, released shortly
        // before the write window opens.
        let pch = ckt.node("pch");
        ckt.vsource(
            pch,
            Circuit::GROUND,
            Waveform::step(0.0, tech.vdd, 0.85 * w, EDGE),
        );

        // Write enable: rises once the bit lines are released.
        let we = ckt.node("we");
        ckt.vsource(
            we,
            Circuit::GROUND,
            Waveform::step(0.0, tech.vdd, 1.00 * w, EDGE),
        );

        // Shared data rails: every even column writes 1, every odd
        // column writes 0, so each rail fans out to `cols` pass devices.
        let rail1 = ckt.node("rail1");
        ckt.vsource(rail1, Circuit::GROUND, Waveform::dc(tech.vdd));
        let rail0 = ckt.node("rail0");
        ckt.vsource(rail0, Circuit::GROUND, Waveform::dc(0.0));

        // Row drivers: word line = inverter output, sized up with the
        // row load. Row 0's select drops during the write window; every
        // other row stays deselected (but its driver still loads the
        // supply, as in the real array).
        let wp = (cols as f64 * 0.25).max(2.0);
        let mut word_lines = Vec::with_capacity(rows);
        for r in 0..rows {
            let sel_b = ckt.node(&format!("selb{r}"));
            let wave = if r == 0 {
                Waveform::step(tech.vdd, 0.0, 1.10 * w, EDGE)
            } else {
                Waveform::dc(tech.vdd)
            };
            ckt.vsource(sel_b, Circuit::GROUND, wave);
            let wl = ckt.node(&format!("wl{r}"));
            tech.add_inverter(&mut ckt, &format!("rdrv{r}"), vdd, sel_b, wl, wp, wp / 2.0);
            ckt.capacitor(wl, Circuit::GROUND, cols as f64 * 0.2e-15);
            ckt.set_ic(wl, 0.0);
            word_lines.push(wl);
        }

        // Columns: floating bit-line pair behind precharge PMOS, plus a
        // write driver into the checkerboard data rail.
        let mut bit_lines = Vec::with_capacity(cols);
        for c in 0..cols {
            let bl = ckt.node(&format!("bl{c}"));
            let blb = ckt.node(&format!("blb{c}"));
            for (line, tag) in [(bl, "t"), (blb, "c")] {
                tech.add_pmos(&mut ckt, &format!("pch{c}{tag}"), line, pch, vdd, 2.0);
                ckt.capacitor(line, Circuit::GROUND, rows as f64 * 0.3e-15);
                ckt.set_ic(line, tech.vdd);
            }
            let (d_bl, d_blb) = if c % 2 == 0 {
                (rail1, rail0)
            } else {
                (rail0, rail1)
            };
            tech.add_nmos(&mut ckt, &format!("wr{c}t"), bl, we, d_bl, 2.0);
            tech.add_nmos(&mut ckt, &format!("wr{c}c"), blb, we, d_blb, 2.0);
            bit_lines.push((bl, blb));
        }

        // The cell sea, powered on holding all zeros.
        let mut q00 = None;
        for (r, &wl) in word_lines.iter().enumerate() {
            for (c, &(bl, blb)) in bit_lines.iter().enumerate() {
                let ql = ckt.node(&format!("q{r}_{c}"));
                let qr = ckt.node(&format!("qb{r}_{c}"));
                SramCell::stamp_cell(tech, &params, &mut ckt, vdd, wl, bl, blb, ql, qr);
                ckt.set_ic(ql, 0.0);
                ckt.set_ic(qr, tech.vdd);
                if r == 0 && c == 0 {
                    q00 = Some((ql, qr));
                }
            }
        }
        let (ql00, qr00) = q00.expect("at least one cell");

        let kind_tag = match self.kind {
            SramKind::Conventional => "",
            SramKind::DualVt => "-dualvt",
            SramKind::Asymmetric => "-asym",
            SramKind::Hybrid => "-hybrid",
            SramKind::HybridPullupOnly => "-hybrid-pu",
        };
        GenDeck {
            name: format!("sram-{rows}x{cols}{kind_tag}"),
            circuit: ckt,
            tstop: 2.0 * w,
            dt_max: 25e-12,
            probes: vec![
                ("wl0".into(), word_lines[0]),
                ("bl0".into(), bit_lines[0].0),
                ("q00".into(), ql00),
                ("qb00".into(), qr00),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_spice::analysis::tran::{transient, TranOptions};

    #[test]
    fn write_phase_flips_row_zero_checkerboard() {
        let tech = Technology::n90();
        let mut deck = SramArrayGen::new(4, 4).build(&tech);
        let opts = TranOptions {
            dt_max: Some(deck.dt_max),
            ..Default::default()
        };
        let res = transient(&mut deck.circuit, deck.tstop, &opts).expect("array transient");
        // Row 0 got the checkerboard: even columns now hold 1 (flipped
        // from the all-zero power-on state), odd columns still hold 0.
        let find = |name: &str| deck.circuit.find_node(name).expect(name);
        let v = |n| res.voltage(n).last_value();
        assert!(v(find("q0_0")) > 0.7 * tech.vdd, "cell (0,0) should flip");
        assert!(v(find("q0_1")) < 0.3 * tech.vdd, "cell (0,1) should hold");
        // Row 1 was never selected and keeps its power-on zero.
        assert!(v(find("q1_0")) < 0.3 * tech.vdd, "row 1 must be untouched");
        assert!(v(find("qb1_0")) > 0.7 * tech.vdd);
    }

    #[test]
    fn unknown_count_scales_with_array_area() {
        let tech = Technology::n90();
        let mut small = SramArrayGen::new(4, 4).build(&tech);
        let mut big = SramArrayGen::new(16, 16).build(&tech);
        let (ns, nb) = (small.num_unknowns(), big.num_unknowns());
        // Cells dominate: 2 unknowns per cell plus per-row/per-col
        // periphery, so a 16× area increase lands near 16× unknowns.
        assert!(ns > 2 * 4 * 4, "small array too small: {ns}");
        assert!(nb > 2 * 16 * 16, "big array too small: {nb}");
        assert!(nb > 8 * ns, "scaling off: {ns} -> {nb}");
    }

    #[test]
    fn hybrid_kind_builds_and_names_itself() {
        let tech = Technology::n90();
        let mut deck = SramArrayGen::new(2, 2)
            .with_kind(SramKind::Hybrid)
            .build(&tech);
        assert!(deck.name.contains("hybrid"), "{}", deck.name);
        assert!(deck.num_unknowns() > 8);
    }
}
