//! Wide domino-OR fanout-tree generator.
//!
//! A wide dynamic OR gate (the paper's Fig. 8 structure) whose buffered
//! output drives a logical-effort-sized inverter chain into a bank of
//! unit loads. The dynamic node is a genuine hub — it couples to every
//! pull-down branch, the precharge device, and the keeper — so even at a
//! few hundred unknowns this family stresses the ordering differently
//! from the SRAM sea: one catastrophic natural-order pivot instead of
//! many medium ones.

use super::GenDeck;
use crate::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use crate::tech::Technology;

/// Generator for a domino OR + fanout-tree deck.
#[derive(Debug, Clone)]
pub struct DominoTreeGen {
    /// OR fan-in (number of parallel pull-down branches).
    pub fan_in: usize,
    /// Unit inverter loads hanging off the tree's tip.
    pub load_units: usize,
    /// Pull-down style for the dynamic gate.
    pub style: PdnStyle,
}

impl DominoTreeGen {
    /// A CMOS-pull-down tree of the given shape.
    pub fn new(fan_in: usize, load_units: usize) -> DominoTreeGen {
        DominoTreeGen {
            fan_in,
            load_units,
            style: PdnStyle::Cmos,
        }
    }

    /// Number of chain stages logical effort picks for `load_units`
    /// (stage effort capped near 4).
    pub fn chain_stages(&self) -> usize {
        let h = (self.load_units as f64).max(1.0);
        (h.ln() / 4.0f64.ln()).ceil().max(1.0) as usize
    }

    /// Builds the deck: the dynamic gate with its worst-case evaluation
    /// stimulus, plus the sized chain and load bank on a new `tip` node.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` or `load_units` is zero.
    pub fn build(&self, tech: &Technology) -> GenDeck {
        assert!(self.fan_in > 0, "fan-in must be nonzero");
        assert!(self.load_units > 0, "load bank must be nonzero");
        let params = DynamicOrParams::new(self.fan_in, 2, self.style);
        let built = DynamicOrGate::build(tech, &params);
        let mut ckt = built.circuit;
        let vdd_buf = ckt.find_node("vdd_buf").expect("buffer rail");

        // Logical-effort chain: total electrical effort H ≈ load_units
        // (unit loads on a unit first stage), split over N stages so each
        // stage's effort is at most ~4.
        let n_stages = self.chain_stages();
        let f = (self.load_units as f64)
            .max(1.0)
            .powf(1.0 / n_stages as f64);
        let mut prev = built.out_node;
        for s in 0..n_stages {
            let out = ckt.node(&format!("chain{s}"));
            let wn = f.powi(s as i32 + 1);
            tech.add_inverter(
                &mut ckt,
                &format!("ch{s}"),
                vdd_buf,
                prev,
                out,
                2.0 * wn,
                wn,
            );
            prev = out;
        }
        let tip = prev;
        for k in 0..self.load_units {
            tech.add_inverter_load(&mut ckt, &format!("bank{k}"), vdd_buf, tip);
        }

        let style_tag = match self.style {
            PdnStyle::Cmos => "",
            PdnStyle::HybridNems => "-hybrid",
        };
        GenDeck {
            name: format!("domino-or{}{}", self.fan_in, style_tag),
            circuit: ckt,
            tstop: built.period,
            dt_max: built.period / 400.0,
            probes: vec![
                ("dyn".into(), built.dyn_node),
                ("out".into(), built.out_node),
                ("tip".into(), tip),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_spice::analysis::tran::{transient, TranOptions};

    #[test]
    fn evaluation_propagates_to_the_tree_tip() {
        let tech = Technology::n90();
        let gen = DominoTreeGen::new(8, 16);
        let mut deck = gen.build(&tech);
        let opts = TranOptions {
            dt_max: Some(deck.dt_max),
            ..Default::default()
        };
        let res = transient(&mut deck.circuit, deck.tstop, &opts).expect("domino transient");
        // One input fires during evaluation: dyn discharges, the buffer
        // drives high, and the chain has even parity relative to `out`.
        let node = |tag: &str| deck.probes.iter().find(|(n, _)| n == tag).unwrap().1;
        let t_eval = 0.6 * deck.tstop;
        let v_out = res.voltage(node("out")).eval(t_eval);
        assert!(v_out > 0.7 * tech.vdd, "gate must evaluate: out={v_out:.3}");
        let v_tip = res.voltage(node("tip")).eval(t_eval);
        let expect_high = gen.chain_stages().is_multiple_of(2);
        if expect_high {
            assert!(v_tip > 0.7 * tech.vdd, "tip={v_tip:.3}");
        } else {
            assert!(v_tip < 0.3 * tech.vdd, "tip={v_tip:.3}");
        }
    }

    #[test]
    fn chain_stage_count_follows_logical_effort() {
        assert_eq!(DominoTreeGen::new(4, 1).chain_stages(), 1);
        assert_eq!(DominoTreeGen::new(4, 4).chain_stages(), 1);
        assert_eq!(DominoTreeGen::new(4, 16).chain_stages(), 2);
        assert_eq!(DominoTreeGen::new(4, 17).chain_stages(), 3);
        assert_eq!(DominoTreeGen::new(4, 64).chain_stages(), 3);
    }

    #[test]
    fn wide_fan_in_grows_the_system() {
        let tech = Technology::n90();
        let mut small = DominoTreeGen::new(8, 4).build(&tech);
        let mut wide = DominoTreeGen::new(48, 4).build(&tech);
        assert!(wide.num_unknowns() > small.num_unknowns() + 40);
        assert!(wide.name.contains("or48"), "{}", wide.name);
    }
}
