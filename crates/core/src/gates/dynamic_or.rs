//! Wide fan-in dynamic OR gates (Figure 8) and their characterization.
//!
//! The conventional gate (Fig. 8(a)) is a domino OR: clocked PMOS
//! precharge, parallel NMOS pull-down network (PDN), clocked NMOS foot,
//! PMOS keeper cross-coupled from the output inverter. The hybrid gate
//! (Fig. 8(b)) inserts an N-type NEMS switch in series with each pull-down
//! branch: the PDN's subthreshold leakage collapses to the NEMS
//! beam-up leakage (pA), so the keeper can shrink to minimum size and the
//! keeper-contention power disappears.

use nemscmos_analysis::measure::{propagation_delay, Edge};
use nemscmos_analysis::noise_margin::max_passing_level;
use nemscmos_analysis::pdp::GateFigures;
use nemscmos_analysis::power::{leakage_power, supply_energy};
use nemscmos_analysis::Result;
use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::element::{NodeId, SourceRef};
use nemscmos_spice::waveform::Waveform;

use crate::tech::Technology;

/// Pull-down network style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdnStyle {
    /// Conventional all-CMOS pull-down (Fig. 8(a)).
    Cmos,
    /// NEMS switch in series with each pull-down branch (Fig. 8(b)).
    HybridNems,
}

/// How the keeper PMOS is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeeperStyle {
    /// Gate tied to ground: the keeper is always on and fights the
    /// pull-down for the whole evaluation (the conventional weak keeper
    /// whose contention the paper attributes the CMOS gate's switching
    /// power to).
    AlwaysOn,
    /// Gate driven by the output inverter: contention stops once the gate
    /// evaluates (the conditional-keeper ablation).
    Feedback,
}

/// Parameters of a dynamic OR gate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicOrParams {
    /// Number of OR inputs.
    pub fan_in: usize,
    /// Number of inverter loads on the output.
    pub fan_out: usize,
    /// Pull-down style.
    pub style: PdnStyle,
    /// Width of each input NMOS (µm).
    pub input_width: f64,
    /// Width of each series NEMS switch (µm, hybrid only). Upsized 1.5×
    /// to partially offset the 330 vs 1110 µA/µm drive gap.
    pub nems_width: f64,
    /// Width of the clocked foot NMOS (µm).
    pub foot_width: f64,
    /// Width of the precharge PMOS (µm).
    pub precharge_width: f64,
    /// Keeper PMOS width (µm); `None` auto-sizes via [`keeper_width_for`].
    pub keeper_width: Option<f64>,
    /// Keeper drive style.
    pub keeper_style: KeeperStyle,
    /// Process-variation level `σ_Vth/µ_Vth` assumed when auto-sizing the
    /// keeper (the paper's Figure 9 parameter).
    pub sigma_vth_frac: f64,
    /// Clock period (s); precharge occupies the first quarter, evaluation
    /// the middle half.
    pub period: f64,
    /// Per-branch V_th shifts applied to the PDN NMOS devices (process
    /// variation draws); empty = nominal.
    pub pdn_vth_shifts: Vec<f64>,
}

impl DynamicOrParams {
    /// Defaults for an OR gate of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is zero.
    pub fn new(fan_in: usize, fan_out: usize, style: PdnStyle) -> DynamicOrParams {
        assert!(fan_in > 0, "fan-in must be at least 1");
        DynamicOrParams {
            fan_in,
            fan_out,
            style,
            input_width: 2.0,
            nems_width: 3.0,
            foot_width: 4.0,
            precharge_width: 3.0,
            keeper_width: None,
            keeper_style: KeeperStyle::AlwaysOn,
            sigma_vth_frac: 0.10,
            period: 4e-9,
            pdn_vth_shifts: Vec::new(),
        }
    }

    /// The keeper width this instance will use (explicit or auto-sized).
    pub fn resolved_keeper_width(&self, tech: &Technology) -> f64 {
        self.keeper_width.unwrap_or_else(|| {
            keeper_width_for(
                tech,
                self.style,
                self.fan_in,
                self.input_width,
                self.nems_width,
                self.sigma_vth_frac,
            )
        })
    }
}

/// Sizes the keeper so it can hold the dynamic node against the
/// worst-case pull-down leakage at an input noise level of `0.215 V_dd`
/// (allowing only a `0.1 V_dd` droop) with every PDN threshold skewed low
/// by `3σ` — the aggressive wide-fan-in criterion of the paper's keeper
/// study \[24\].
///
/// For the CMOS PDN the leakage is subthreshold conduction at the noise
/// level; for the hybrid PDN it is the NEMS beam-up leakage (the noise
/// level is far below pull-in), which is orders of magnitude smaller —
/// the keeper collapses to minimum width, eliminating contention.
pub fn keeper_width_for(
    tech: &Technology,
    style: PdnStyle,
    fan_in: usize,
    input_width: f64,
    nems_width: f64,
    sigma_vth_frac: f64,
) -> f64 {
    let vn = 0.215 * tech.vdd;
    let droop = 0.1 * tech.vdd;
    let i_pdn = match style {
        PdnStyle::Cmos => {
            let worst = tech
                .nmos
                .with_vth_shift(-3.0 * sigma_vth_frac * tech.nmos.vth);
            let (i, ..) = worst.ids(vn, tech.vdd, 0.0, input_width);
            fan_in as f64 * i
        }
        PdnStyle::HybridNems => {
            // Below pull-in the branch current is the beam-up leakage.
            fan_in as f64 * nems_width * tech.nems_n.g_off_per_um * tech.vdd
        }
    };
    // Keeper current per µm at the allowed droop (gate at 0: fully on).
    let (ik, ..) = tech.pmos.ids(0.0, tech.vdd - droop, tech.vdd, 1.0);
    // Evaluability cap: the keeper's saturated fight current must stay
    // below ~72% of the (stack-degraded) single-path pull-down strength,
    // or the gate can never discharge its dynamic node. Wide fan-in CMOS
    // gates hit this wall — exactly the limitation motivating the hybrid.
    let (ion_n, ..) = tech.nmos.ids(tech.vdd, tech.vdd, 0.0, input_width);
    let (ion_p_per_um, ..) = tech.pmos.ids(0.0, 0.0, tech.vdd, 1.0);
    let w_cap = 0.9 * 0.8 * ion_n / ion_p_per_um.abs();
    (i_pdn / ik.abs()).min(w_cap).max(tech.w_min)
}

/// A constructed dynamic OR gate ready for simulation.
#[derive(Debug)]
pub struct BuiltGate {
    /// The netlist.
    pub circuit: Circuit,
    /// Core supply (precharge, keeper, pull-down network). Leakage is
    /// measured on this rail alone — the paper's "almost zero leakage"
    /// claim concerns the dynamic gate, not its static buffer.
    pub vdd_src: SourceRef,
    /// Buffer/load supply (output inverter and fan-out loads).
    pub vdd_buf_src: SourceRef,
    /// Clock source.
    pub clk_src: SourceRef,
    /// The dynamic (precharged) node.
    pub dyn_node: NodeId,
    /// The buffered output node.
    pub out_node: NodeId,
    /// The switching input node (worst-case single path).
    pub in_node: NodeId,
    /// Time at which the evaluated input rises (s).
    pub t_input_rise: f64,
    /// Full clock period (s).
    pub period: f64,
}

/// Builder entry points for the two gate styles.
#[derive(Debug, Clone, Copy)]
pub struct DynamicOrGate;

impl DynamicOrGate {
    /// Builds the gate with the worst-case evaluation stimulus: clock
    /// rises at `period/4`, exactly one input rises shortly after, the
    /// rest stay low.
    pub fn build(tech: &Technology, params: &DynamicOrParams) -> BuiltGate {
        Self::build_with_inputs(tech, params, InputStimulus::WorstCaseEvaluate)
    }

    /// Builds the gate with all inputs tied to a DC noise level
    /// (noise-margin probing: the gate must *not* evaluate).
    ///
    /// The clock is parked high and the dynamic node is released from a
    /// precharged initial condition — probing the evaluation phase
    /// directly avoids the precharge-phase DC ambiguity of hysteretic
    /// switches with floating sources (a genuine relaxation-oscillator
    /// configuration with no DC solution).
    pub fn build_noise_probe(tech: &Technology, params: &DynamicOrParams, vn: f64) -> BuiltGate {
        let mut built = Self::build_with_inputs(tech, params, InputStimulus::DcNoise(vn));
        built.circuit.set_ic(built.dyn_node, tech.vdd);
        // Rails and clock start at their driven levels (the probe runs
        // `use_ic_only`, so every node needs a sensible t = 0 value).
        for rail in ["vdd", "vdd_buf", "clk"] {
            if let Some(n) = built.circuit.find_node(rail) {
                built.circuit.set_ic(n, tech.vdd);
            }
        }
        built
    }

    fn build_with_inputs(
        tech: &Technology,
        params: &DynamicOrParams,
        stimulus: InputStimulus,
    ) -> BuiltGate {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vdd_buf = ckt.node("vdd_buf");
        let clk = ckt.node("clk");
        let dyn_node = ckt.node("dyn");
        let out = ckt.node("out");
        let foot = ckt.node("foot");

        let vdd_src = ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
        let vdd_buf_src = ckt.vsource(vdd_buf, Circuit::GROUND, Waveform::dc(tech.vdd));
        let t_clk_rise = params.period / 4.0;
        let t_eval_end = 3.0 * params.period / 4.0;
        let edge = 30e-12;
        let clk_wave = match stimulus {
            InputStimulus::WorstCaseEvaluate => Waveform::pulse(
                0.0,
                tech.vdd,
                t_clk_rise,
                edge,
                edge,
                t_eval_end - t_clk_rise - edge,
                10.0 * params.period, // single evaluation per run
            ),
            // Noise probing evaluates continuously.
            InputStimulus::DcNoise(_) => Waveform::dc(tech.vdd),
        };
        let clk_src = ckt.vsource(clk, Circuit::GROUND, clk_wave);
        let t_input_rise = t_clk_rise + 100e-12;

        // Precharge PMOS and keeper.
        tech.add_pmos(
            &mut ckt,
            "mprech",
            dyn_node,
            clk,
            vdd,
            params.precharge_width,
        );
        let wk = params.resolved_keeper_width(tech);
        let keeper_gate = match params.keeper_style {
            KeeperStyle::AlwaysOn => Circuit::GROUND,
            KeeperStyle::Feedback => out,
        };
        tech.add_pmos(&mut ckt, "mkeep", dyn_node, keeper_gate, vdd, wk);

        // Output inverter (the domino buffer) and loads, on their own rail.
        tech.add_inverter(&mut ckt, "buf", vdd_buf, dyn_node, out, 2.0, 1.0);
        for k in 0..params.fan_out {
            tech.add_inverter_load(&mut ckt, &format!("load{k}"), vdd_buf, out);
        }

        // Pull-down network.
        let mut in_node = Circuit::GROUND;
        for i in 0..params.fan_in {
            let input = ckt.node(&format!("in{i}"));
            if i == 0 {
                in_node = input;
            }
            let wave = match stimulus {
                InputStimulus::WorstCaseEvaluate => {
                    if i == 0 {
                        Waveform::step(0.0, tech.vdd, t_input_rise, edge)
                    } else {
                        Waveform::dc(0.0)
                    }
                }
                InputStimulus::DcNoise(vn) => Waveform::dc(vn),
            };
            ckt.vsource(input, Circuit::GROUND, wave);
            let shift = params.pdn_vth_shifts.get(i).copied().unwrap_or(0.0);
            let nmodel = if shift == 0.0 {
                tech.nmos.clone()
            } else {
                tech.nmos.with_vth_shift(shift)
            };
            match params.style {
                PdnStyle::Cmos => {
                    tech.add_mos(
                        &mut ckt,
                        &format!("mn{i}"),
                        &nmodel,
                        dyn_node,
                        input,
                        foot,
                        params.input_width,
                    );
                }
                PdnStyle::HybridNems => {
                    let mid = ckt.node(&format!("mid{i}"));
                    tech.add_mos(
                        &mut ckt,
                        &format!("mn{i}"),
                        &nmodel,
                        dyn_node,
                        input,
                        mid,
                        params.input_width,
                    );
                    tech.add_nems_n(
                        &mut ckt,
                        &format!("xn{i}"),
                        mid,
                        input,
                        foot,
                        params.nems_width,
                    );
                }
            }
        }
        // Clocked foot.
        tech.add_nmos(
            &mut ckt,
            "mfoot",
            foot,
            clk,
            Circuit::GROUND,
            params.foot_width,
        );

        BuiltGate {
            circuit: ckt,
            vdd_src,
            vdd_buf_src,
            clk_src,
            dyn_node,
            out_node: out,
            in_node,
            t_input_rise,
            period: params.period,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum InputStimulus {
    WorstCaseEvaluate,
    DcNoise(f64),
}

impl BuiltGate {
    /// Runs one evaluation cycle and extracts the paper's three figures of
    /// merit: worst-case delay (switching input 50% → output 50%),
    /// switching power (supply energy over the cycle divided by the
    /// period), and leakage power (DC, parked in precharge).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures and missing output transitions
    /// (e.g. a keeper so strong the gate cannot evaluate).
    pub fn characterize(&mut self, tech: &Technology) -> Result<GateFigures> {
        let opts = TranOptions {
            dt_max: Some(self.period / 400.0),
            ..Default::default()
        };
        let res = transient(&mut self.circuit, self.period, &opts)?;
        let vin = res.voltage(self.in_node);
        let vout = res.voltage(self.out_node);
        let delay = propagation_delay(
            &vin,
            Edge::Rising,
            &vout,
            Edge::Rising,
            tech.vdd / 2.0,
            self.t_input_rise - 50e-12,
        )?;
        let energy = supply_energy(&res, self.vdd_src, tech.vdd, 0.0, self.period)
            + supply_energy(&res, self.vdd_buf_src, tech.vdd, 0.0, self.period);
        let switching_power = energy / self.period;
        // Leakage: DC with the clock at its t = 0 (precharge) level, on
        // the dynamic core rail only (the buffer is common to both styles).
        let op_res = op(&mut self.circuit)?;
        let leak = leakage_power(&op_res, self.vdd_src, tech.vdd);
        Ok(GateFigures {
            leakage_power: leak,
            switching_power,
            delay,
        })
    }

    /// Returns `true` if the gate held its output low (did not falsely
    /// evaluate) through one clock period of continuous evaluation — the
    /// pass criterion of the noise-margin search. Starts from the
    /// registered initial conditions (precharged dynamic node).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn holds_output_low(&mut self, tech: &Technology) -> Result<bool> {
        let opts = TranOptions {
            dt_max: Some(self.period / 400.0),
            use_ic_only: true,
            ..Default::default()
        };
        let res = transient(&mut self.circuit, self.period, &opts)?;
        let vout = res.voltage(self.out_node);
        Ok(vout.max_value() < tech.vdd / 2.0)
    }
}

/// Measures the input noise margin of a gate configuration: the largest
/// DC level applied to *all* inputs that does not flip the evaluated
/// output (Figure 9's X axis).
///
/// # Errors
///
/// Propagates simulation failures from the probing transients.
pub fn input_noise_margin(tech: &Technology, params: &DynamicOrParams) -> Result<f64> {
    max_passing_level(
        |vn| DynamicOrGate::build_noise_probe(tech, params, vn).holds_output_low(tech),
        0.0,
        tech.vdd,
        2e-3,
    )
}

/// Worst-case (3σ-low V_th on every PDN branch) variant of the parameters,
/// used for the deterministic corner of Figure 9.
pub fn with_worst_case_vth(params: &DynamicOrParams, tech: &Technology) -> DynamicOrParams {
    let shift = -3.0 * params.sigma_vth_frac * tech.nmos.vth;
    DynamicOrParams {
        pdn_vth_shifts: vec![shift; params.fan_in],
        ..params.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::n90()
    }

    #[test]
    fn cmos_gate_evaluates_and_has_ps_delay() {
        let t = tech();
        let params = DynamicOrParams::new(8, 1, PdnStyle::Cmos);
        let fig = DynamicOrGate::build(&t, &params).characterize(&t).unwrap();
        assert!(
            fig.delay > 1e-12 && fig.delay < 1e-9,
            "delay = {:.3e}",
            fig.delay
        );
        assert!(fig.switching_power > 0.0);
        assert!(fig.leakage_power > 0.0);
    }

    #[test]
    fn hybrid_gate_evaluates() {
        let t = tech();
        let params = DynamicOrParams::new(8, 1, PdnStyle::HybridNems);
        let fig = DynamicOrGate::build(&t, &params).characterize(&t).unwrap();
        assert!(
            fig.delay > 1e-12 && fig.delay < 1e-9,
            "delay = {:.3e}",
            fig.delay
        );
    }

    #[test]
    fn hybrid_keeper_collapses_to_minimum() {
        let t = tech();
        let wk_cmos = keeper_width_for(&t, PdnStyle::Cmos, 8, 1.0, 2.0, 0.10);
        let wk_hybrid = keeper_width_for(&t, PdnStyle::HybridNems, 8, 1.0, 2.0, 0.10);
        assert_eq!(wk_hybrid, t.w_min);
        assert!(
            wk_cmos > 2.0 * wk_hybrid,
            "CMOS keeper {wk_cmos:.3} vs hybrid {wk_hybrid:.3}"
        );
    }

    #[test]
    fn keeper_grows_with_fan_in_and_variation() {
        let t = tech();
        let w8 = keeper_width_for(&t, PdnStyle::Cmos, 8, 1.0, 2.0, 0.10);
        let w16 = keeper_width_for(&t, PdnStyle::Cmos, 16, 1.0, 2.0, 0.10);
        let w8hi = keeper_width_for(&t, PdnStyle::Cmos, 8, 1.0, 2.0, 0.15);
        assert!(w16 > w8);
        assert!(w8hi > w8);
    }

    #[test]
    fn hybrid_leaks_orders_of_magnitude_less() {
        let t = tech();
        let cmos = DynamicOrGate::build(&t, &DynamicOrParams::new(8, 1, PdnStyle::Cmos))
            .characterize(&t)
            .unwrap();
        let hybrid = DynamicOrGate::build(&t, &DynamicOrParams::new(8, 1, PdnStyle::HybridNems))
            .characterize(&t)
            .unwrap();
        assert!(
            hybrid.leakage_power < cmos.leakage_power / 10.0,
            "hybrid {:.3e} vs cmos {:.3e}",
            hybrid.leakage_power,
            cmos.leakage_power
        );
    }

    #[test]
    fn hybrid_switching_power_is_lower() {
        let t = tech();
        let cmos = DynamicOrGate::build(&t, &DynamicOrParams::new(8, 3, PdnStyle::Cmos))
            .characterize(&t)
            .unwrap();
        let hybrid = DynamicOrGate::build(&t, &DynamicOrParams::new(8, 3, PdnStyle::HybridNems))
            .characterize(&t)
            .unwrap();
        assert!(
            hybrid.switching_power < cmos.switching_power,
            "hybrid {:.3e} vs cmos {:.3e}",
            hybrid.switching_power,
            cmos.switching_power
        );
    }

    #[test]
    fn hybrid_noise_margin_exceeds_cmos() {
        let t = tech();
        let nm_cmos = input_noise_margin(&t, &DynamicOrParams::new(4, 1, PdnStyle::Cmos)).unwrap();
        let nm_hybrid =
            input_noise_margin(&t, &DynamicOrParams::new(4, 1, PdnStyle::HybridNems)).unwrap();
        assert!(
            nm_hybrid > nm_cmos,
            "hybrid NM {nm_hybrid:.3} should beat CMOS NM {nm_cmos:.3}"
        );
        // The hybrid gate is protected up to roughly the pull-in voltage.
        assert!(nm_hybrid > 0.4, "NM = {nm_hybrid:.3}");
    }

    #[test]
    fn worst_case_vth_reduces_noise_margin() {
        let t = tech();
        let nominal = DynamicOrParams::new(4, 1, PdnStyle::Cmos);
        let worst = with_worst_case_vth(&nominal, &t);
        let nm_nom = input_noise_margin(&t, &nominal).unwrap();
        let nm_worst = input_noise_margin(&t, &worst).unwrap();
        assert!(
            nm_worst < nm_nom,
            "worst {nm_worst:.3} vs nominal {nm_nom:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "fan-in")]
    fn zero_fan_in_rejected() {
        let _ = DynamicOrParams::new(0, 1, PdnStyle::Cmos);
    }
}
