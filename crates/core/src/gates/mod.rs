//! Dynamic (domino) gate architectures: conventional CMOS and the
//! proposed hybrid NEMS-CMOS style (Section 4 of the paper).

mod dynamic_or;
mod static_gates;

pub use static_gates::{add_nand2, add_nor2, ring_oscillator_frequency};

pub use dynamic_or::{
    input_noise_margin, keeper_width_for, with_worst_case_vth, BuiltGate, DynamicOrGate,
    DynamicOrParams, KeeperStyle, PdnStyle,
};
