//! Static CMOS gates (NAND2/NOR2) and the ring-oscillator process
//! monitor built from them.

use nemscmos_analysis::oscillation::{measure_frequency, FrequencyMeasure};
use nemscmos_analysis::Result;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::element::NodeId;
use nemscmos_spice::waveform::Waveform;

use crate::tech::Technology;

/// Adds a 2-input static NAND between `a`, `b` and `out`.
///
/// Series NMOS pull-down (b-input device at the bottom), parallel PMOS
/// pull-up; widths follow the usual series-stack upsizing.
pub fn add_nand2(
    tech: &Technology,
    ckt: &mut Circuit,
    name: &str,
    vdd: NodeId,
    a: NodeId,
    b: NodeId,
    out: NodeId,
) {
    let mid = ckt.node(&format!("{name}.mid"));
    tech.add_pmos(ckt, &format!("{name}.pa"), out, a, vdd, 2.0);
    tech.add_pmos(ckt, &format!("{name}.pb"), out, b, vdd, 2.0);
    tech.add_nmos(ckt, &format!("{name}.na"), out, a, mid, 2.0);
    tech.add_nmos(ckt, &format!("{name}.nb"), mid, b, Circuit::GROUND, 2.0);
}

/// Adds a 2-input static NOR between `a`, `b` and `out`.
pub fn add_nor2(
    tech: &Technology,
    ckt: &mut Circuit,
    name: &str,
    vdd: NodeId,
    a: NodeId,
    b: NodeId,
    out: NodeId,
) {
    let mid = ckt.node(&format!("{name}.mid"));
    tech.add_pmos(ckt, &format!("{name}.pa"), mid, a, vdd, 4.0);
    tech.add_pmos(ckt, &format!("{name}.pb"), out, b, mid, 4.0);
    tech.add_nmos(ckt, &format!("{name}.na"), out, a, Circuit::GROUND, 1.0);
    tech.add_nmos(ckt, &format!("{name}.nb"), out, b, Circuit::GROUND, 1.0);
}

/// Builds and runs an N-stage inverter ring oscillator, returning its
/// measured frequency statistics — the classic silicon process monitor.
///
/// # Errors
///
/// Propagates simulation failures and
/// [`nemscmos_analysis::AnalysisError::MissingCrossing`] if the ring does
/// not oscillate.
///
/// # Panics
///
/// Panics if `stages` is even or below 3 (an even ring latches).
pub fn ring_oscillator_frequency(tech: &Technology, stages: usize) -> Result<FrequencyMeasure> {
    assert!(
        stages >= 3 && stages % 2 == 1,
        "ring needs an odd stage count >= 3"
    );
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
    let nodes: Vec<_> = (0..stages).map(|k| ckt.node(&format!("n{k}"))).collect();
    for k in 0..stages {
        tech.add_inverter(
            &mut ckt,
            &format!("inv{k}"),
            vdd,
            nodes[k],
            nodes[(k + 1) % stages],
            2.0,
            1.0,
        );
    }
    // Kick the ring off its metastable point.
    ckt.set_ic(nodes[0], tech.vdd);
    ckt.set_ic(nodes[1], 0.0);
    let opts = TranOptions {
        dt_max: Some(5e-12),
        ..Default::default()
    };
    let res = transient(&mut ckt, 4e-9, &opts)?;
    // Skip the first nanosecond of startup.
    measure_frequency(&res.voltage(nodes[0]), tech.vdd / 2.0, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemscmos_devices::corners::Corner;
    use nemscmos_spice::analysis::op::op;

    fn truth_table(
        build: impl Fn(&Technology, &mut Circuit, NodeId, NodeId, NodeId, NodeId),
    ) -> Vec<(u8, u8, bool)> {
        let tech = Technology::n90();
        let mut rows = Vec::new();
        for (va, vb) in [(0u8, 0u8), (0, 1), (1, 0), (1, 1)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let a = ckt.node("a");
            let b = ckt.node("b");
            let out = ckt.node("out");
            ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
            ckt.vsource(a, Circuit::GROUND, Waveform::dc(va as f64 * tech.vdd));
            ckt.vsource(b, Circuit::GROUND, Waveform::dc(vb as f64 * tech.vdd));
            build(&tech, &mut ckt, vdd, a, b, out);
            let res = op(&mut ckt).unwrap();
            rows.push((va, vb, res.voltage(out) > tech.vdd / 2.0));
        }
        rows
    }

    #[test]
    fn nand2_truth_table() {
        let rows = truth_table(|t, c, vdd, a, b, out| add_nand2(t, c, "g", vdd, a, b, out));
        for (a, b, q) in rows {
            assert_eq!(q, !(a == 1 && b == 1), "NAND({a},{b}) = {q}");
        }
    }

    #[test]
    fn nor2_truth_table() {
        let rows = truth_table(|t, c, vdd, a, b, out| add_nor2(t, c, "g", vdd, a, b, out));
        for (a, b, q) in rows {
            assert_eq!(q, a == 0 && b == 0, "NOR({a},{b}) = {q}");
        }
    }

    #[test]
    fn ring_oscillator_runs_in_the_gigahertz() {
        let tech = Technology::n90();
        let m = ring_oscillator_frequency(&tech, 5).unwrap();
        assert!(
            m.frequency > 1e9 && m.frequency < 100e9,
            "f = {:.3e}",
            m.frequency
        );
        assert!(m.cycles >= 3);
        assert!(
            m.period_jitter < 0.1 * m.period,
            "steady-state ring should be clean"
        );
    }

    #[test]
    fn corner_ordering_shows_in_ring_frequency() {
        let tech = Technology::n90();
        let f = |c: Corner| {
            ring_oscillator_frequency(&tech.at_corner(c), 5)
                .unwrap()
                .frequency
        };
        let tt = f(Corner::Tt);
        let ff = f(Corner::Ff);
        let ss = f(Corner::Ss);
        assert!(ff > tt, "FF {ff:.3e} should beat TT {tt:.3e}");
        assert!(ss < tt, "SS {ss:.3e} should trail TT {tt:.3e}");
    }

    #[test]
    fn longer_ring_is_slower() {
        let tech = Technology::n90();
        let f5 = ring_oscillator_frequency(&tech, 5).unwrap().frequency;
        let f9 = ring_oscillator_frequency(&tech, 9).unwrap().frequency;
        assert!(f9 < f5);
        // Roughly inversely proportional to stage count.
        let ratio = f5 / f9;
        assert!((1.2..2.8).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_ring_rejected() {
        let _ = ring_oscillator_frequency(&Technology::n90(), 4);
    }
}
