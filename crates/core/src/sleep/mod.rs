//! Sleep-transistor (power-gating) structures and experiments
//! (Section 6 of the paper).

mod device_study;
mod gated_block;

pub use device_study::{sleep_device_figures, SleepDeviceFigures, SleepStyle};
pub use gated_block::{characterize_block, GatedBlock, GatedBlockFigures, GrainStyle, RailStyle};
