//! Power-gated logic blocks: fine- and coarse-grain sleep transistors
//! over an inverter chain (Figure 16), with delay-degradation and
//! sleep-leakage measurement.

use nemscmos_analysis::measure::{propagation_delay, Edge};
use nemscmos_analysis::power::leakage_power;
use nemscmos_analysis::Result;
use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::element::{NodeId, SourceRef};
use nemscmos_spice::waveform::Waveform;

use crate::tech::Technology;

/// Which rail the sleep switch gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RailStyle {
    /// NMOS/N-NEMS between the virtual ground and real ground.
    Footer,
    /// PMOS/P-NEMS between V_dd and the virtual supply.
    Header,
}

/// Sleep-switch granularity (Fig. 16(c)/(d)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrainStyle {
    /// One sleep device per gate.
    Fine,
    /// One shared sleep device for the whole block.
    Coarse,
}

/// Parameters of a power-gated inverter-chain block.
#[derive(Debug, Clone, PartialEq)]
pub struct GatedBlock {
    /// Number of inverter stages (even, so input and output edges align).
    pub stages: usize,
    /// Gated rail.
    pub rail: RailStyle,
    /// Granularity.
    pub grain: GrainStyle,
    /// True for a NEMS sleep switch, false for CMOS.
    pub nems: bool,
    /// Total sleep-switch width (µm); fine-grain splits it evenly.
    pub sleep_width: f64,
}

impl GatedBlock {
    /// A coarse-grain footer block — the common microprocessor
    /// configuration.
    pub fn coarse_footer(stages: usize, nems: bool, sleep_width: f64) -> GatedBlock {
        assert!(
            stages >= 2 && stages.is_multiple_of(2),
            "need an even number of stages"
        );
        assert!(sleep_width > 0.0, "sleep width must be positive");
        GatedBlock {
            stages,
            rail: RailStyle::Footer,
            grain: GrainStyle::Fine,
            nems,
            sleep_width,
        }
        .with_grain(GrainStyle::Coarse)
    }

    /// Returns a copy with a different granularity.
    pub fn with_grain(mut self, grain: GrainStyle) -> GatedBlock {
        self.grain = grain;
        self
    }
}

/// Measured figures of one gated-block configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatedBlockFigures {
    /// Input-to-output delay with the block active (s).
    pub active_delay: f64,
    /// Delay of the identical chain without any sleep device (s).
    pub ungated_delay: f64,
    /// Supply leakage with the block asleep (W).
    pub sleep_leakage: f64,
    /// Supply leakage of the ungated chain (W).
    pub ungated_leakage: f64,
}

impl GatedBlockFigures {
    /// Fractional delay penalty of the sleep switch.
    pub fn delay_penalty(&self) -> f64 {
        self.active_delay / self.ungated_delay - 1.0
    }

    /// Leakage reduction factor in sleep mode.
    pub fn leakage_reduction(&self) -> f64 {
        self.ungated_leakage / self.sleep_leakage
    }
}

struct BuiltBlock {
    circuit: Circuit,
    vdd_src: SourceRef,
    in_node: NodeId,
    out_node: NodeId,
    t_in_rise: f64,
}

/// `sleeping` drives the sleep input to the off state; `gated = false`
/// builds the ungated reference chain.
fn build_block(tech: &Technology, block: &GatedBlock, gated: bool, sleeping: bool) -> BuiltBlock {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let vdd_src = ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
    let t_in_rise = 0.5e-9;
    ckt.vsource(
        vin,
        Circuit::GROUND,
        if sleeping {
            Waveform::dc(0.0)
        } else {
            Waveform::step(0.0, tech.vdd, t_in_rise, 30e-12)
        },
    );
    // Sleep control: ON level keeps the block connected.
    let sleep_ctl = ckt.node("sleep_ctl");
    let (on_level, off_level) = match block.rail {
        RailStyle::Footer => (tech.vdd, 0.0),
        RailStyle::Header => (0.0, tech.vdd),
    };
    ckt.vsource(
        sleep_ctl,
        Circuit::GROUND,
        Waveform::dc(if sleeping { off_level } else { on_level }),
    );

    // Shared virtual rail for the coarse style.
    let coarse_rail = ckt.node("vrail");
    let num_devices = match block.grain {
        GrainStyle::Fine => block.stages,
        GrainStyle::Coarse => 1,
    };
    let per_device_width = block.sleep_width / num_devices as f64;

    let add_sleep_device =
        |ckt: &mut Circuit, name: &str, rail_node: NodeId| match (block.rail, block.nems) {
            (RailStyle::Footer, false) => {
                tech.add_nmos(
                    ckt,
                    name,
                    rail_node,
                    sleep_ctl,
                    Circuit::GROUND,
                    per_device_width,
                );
            }
            (RailStyle::Footer, true) => {
                tech.add_nems_n(
                    ckt,
                    name,
                    rail_node,
                    sleep_ctl,
                    Circuit::GROUND,
                    per_device_width,
                );
            }
            (RailStyle::Header, false) => {
                tech.add_pmos(ckt, name, rail_node, sleep_ctl, vdd, per_device_width);
            }
            (RailStyle::Header, true) => {
                tech.add_nems_p(ckt, name, rail_node, sleep_ctl, vdd, per_device_width);
            }
        };

    if gated {
        match block.grain {
            GrainStyle::Coarse => add_sleep_device(&mut ckt, "msleep", coarse_rail),
            GrainStyle::Fine => {
                for k in 0..block.stages {
                    let rail = ckt.node(&format!("vrail{k}"));
                    add_sleep_device(&mut ckt, &format!("msleep{k}"), rail);
                }
            }
        }
    }

    // The inverter chain, each stage tied to its (virtual) rails.
    let mut prev = vin;
    let mut out_node = vin;
    for k in 0..block.stages {
        let out = ckt.node(&format!("n{k}"));
        let (pos_rail, neg_rail) = if !gated {
            (vdd, Circuit::GROUND)
        } else {
            let rail = match block.grain {
                GrainStyle::Coarse => coarse_rail,
                GrainStyle::Fine => ckt.find_node(&format!("vrail{k}")).expect("rail exists"),
            };
            match block.rail {
                RailStyle::Footer => (vdd, rail),
                RailStyle::Header => (rail, Circuit::GROUND),
            }
        };
        tech.add_pmos(&mut ckt, &format!("inv{k}.p"), out, prev, pos_rail, 2.0);
        tech.add_mos(
            &mut ckt,
            &format!("inv{k}.n"),
            &tech.nmos.clone(),
            out,
            prev,
            neg_rail,
            1.0,
        );
        ckt.capacitor(out, Circuit::GROUND, 1e-15);
        prev = out;
        out_node = out;
    }

    BuiltBlock {
        circuit: ckt,
        vdd_src,
        in_node: vin,
        out_node,
        t_in_rise,
    }
}

/// Characterizes a gated block: active-mode delay versus the ungated
/// chain, and sleep-mode leakage versus the ungated chain's leakage.
///
/// # Errors
///
/// Propagates simulation failures and missing output transitions (a
/// starved virtual rail that cannot propagate the edge).
pub fn characterize_block(tech: &Technology, block: &GatedBlock) -> Result<GatedBlockFigures> {
    let opts = TranOptions {
        dt_max: Some(10e-12),
        ..Default::default()
    };
    let t_stop = 5e-9;

    let measure_delay = |built: &mut BuiltBlock| -> Result<f64> {
        let res = transient(&mut built.circuit, t_stop, &opts)?;
        let vin = res.voltage(built.in_node);
        let vout = res.voltage(built.out_node);
        propagation_delay(
            &vin,
            Edge::Rising,
            &vout,
            Edge::Rising,
            tech.vdd / 2.0,
            built.t_in_rise - 0.1e-9,
        )
    };

    let mut gated_active = build_block(tech, block, true, false);
    let active_delay = measure_delay(&mut gated_active)?;
    let mut ungated = build_block(tech, block, false, false);
    let ungated_delay = measure_delay(&mut ungated)?;

    let mut gated_asleep = build_block(tech, block, true, true);
    let op_res = op(&mut gated_asleep.circuit)?;
    let sleep_leakage = leakage_power(&op_res, gated_asleep.vdd_src, tech.vdd);
    let mut ungated_idle = build_block(tech, block, false, true);
    let op_res = op(&mut ungated_idle.circuit)?;
    let ungated_leakage = leakage_power(&op_res, ungated_idle.vdd_src, tech.vdd);

    Ok(GatedBlockFigures {
        active_delay,
        ungated_delay,
        sleep_leakage,
        ungated_leakage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::n90()
    }

    #[test]
    fn cmos_footer_gates_leakage_with_small_delay_cost() {
        let t = tech();
        let block = GatedBlock::coarse_footer(4, false, 2.0);
        let fig = characterize_block(&t, &block).unwrap();
        assert!(
            fig.delay_penalty() >= 0.0,
            "penalty = {}",
            fig.delay_penalty()
        );
        assert!(fig.delay_penalty() < 0.5);
        assert!(
            fig.leakage_reduction() > 2.0,
            "reduction = {:.1}",
            fig.leakage_reduction()
        );
    }

    #[test]
    fn nems_footer_cuts_leakage_orders_of_magnitude_more() {
        let t = tech();
        let cmos = characterize_block(&t, &GatedBlock::coarse_footer(4, false, 2.0)).unwrap();
        let nems = characterize_block(&t, &GatedBlock::coarse_footer(4, true, 2.0)).unwrap();
        assert!(
            nems.sleep_leakage < cmos.sleep_leakage / 50.0,
            "NEMS {:.3e} vs CMOS {:.3e}",
            nems.sleep_leakage,
            cmos.sleep_leakage
        );
    }

    #[test]
    fn sized_up_nems_has_negligible_delay_penalty() {
        let t = tech();
        let fig = characterize_block(&t, &GatedBlock::coarse_footer(4, true, 8.0)).unwrap();
        assert!(
            fig.delay_penalty() < 0.10,
            "sized-up NEMS penalty = {:.3}",
            fig.delay_penalty()
        );
    }

    #[test]
    fn header_style_works_too() {
        let t = tech();
        let block = GatedBlock {
            stages: 4,
            rail: RailStyle::Header,
            grain: GrainStyle::Coarse,
            nems: false,
            sleep_width: 3.0,
        };
        let fig = characterize_block(&t, &block).unwrap();
        assert!(fig.leakage_reduction() > 2.0);
    }

    #[test]
    fn fine_grain_splits_the_width() {
        let t = tech();
        let coarse = GatedBlock::coarse_footer(4, false, 2.0);
        let fine = coarse.clone().with_grain(GrainStyle::Fine);
        let fig_c = characterize_block(&t, &coarse).unwrap();
        let fig_f = characterize_block(&t, &fine).unwrap();
        // Fine grain with the same total width is somewhat slower (each
        // gate sees only its slice of the switch) but still functional.
        assert!(fig_f.active_delay >= fig_c.active_delay * 0.9);
        assert!(fig_f.sleep_leakage > 0.0);
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_stage_count_rejected() {
        let _ = GatedBlock::coarse_footer(3, false, 1.0);
    }
}
