//! Device-level sleep-transistor comparison (Figure 17): ON resistance
//! and OFF current versus device area for CMOS and NEMS switches.

use crate::tech::Technology;

/// Sleep-switch implementation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepStyle {
    /// NMOS footer between the circuit and real ground (Fig. 16(b)).
    CmosFooter,
    /// PMOS header between V_dd and the circuit (Fig. 16(a)).
    CmosHeader,
    /// N-type NEMS footer.
    NemsFooter,
    /// P-type NEMS header.
    NemsHeader,
}

impl SleepStyle {
    /// The label used in the Figure 17 table.
    pub fn label(self) -> &'static str {
        match self {
            SleepStyle::CmosFooter => "CMOS footer",
            SleepStyle::CmosHeader => "CMOS header",
            SleepStyle::NemsFooter => "NEMS footer",
            SleepStyle::NemsHeader => "NEMS header",
        }
    }
}

/// Figure-of-merit pair of one sized sleep device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepDeviceFigures {
    /// Device width (µm).
    pub width_um: f64,
    /// Area normalized to a W/L = 5 CMOS device at 90 nm (the paper's
    /// Figure 17 normalization).
    pub area_norm: f64,
    /// ON resistance at a 5% V_dd drop (Ω).
    pub r_on_ohms: f64,
    /// OFF-state leakage at full V_dd across the switch (A).
    pub i_off: f64,
}

/// Width of the W/L = 5 reference device at L = 90 nm (µm).
const REFERENCE_WIDTH_UM: f64 = 5.0 * 0.09;

/// Evaluates the ON resistance and OFF current of a sleep device directly
/// from the calibrated model cards.
///
/// # Example
///
/// ```
/// use nemscmos::sleep::{sleep_device_figures, SleepStyle};
/// use nemscmos::tech::Technology;
///
/// let tech = Technology::n90();
/// let cmos = sleep_device_figures(&tech, SleepStyle::CmosFooter, 2.0);
/// let nems = sleep_device_figures(&tech, SleepStyle::NemsFooter, 2.0);
/// assert!(nems.i_off < cmos.i_off / 100.0); // the Figure 17 story
/// ```
///
/// # Panics
///
/// Panics if `width_um` is not strictly positive.
pub fn sleep_device_figures(
    tech: &Technology,
    style: SleepStyle,
    width_um: f64,
) -> SleepDeviceFigures {
    assert!(width_um > 0.0, "width must be positive");
    let vds = 0.05 * tech.vdd;
    let (i_on, i_off) = match style {
        SleepStyle::CmosFooter => {
            let (on, ..) = tech.nmos.ids(tech.vdd, vds, 0.0, width_um);
            let (off, ..) = tech.nmos.ids(0.0, tech.vdd, 0.0, width_um);
            (on.abs(), off.abs())
        }
        SleepStyle::CmosHeader => {
            let (on, ..) = tech.pmos.ids(0.0, tech.vdd - vds, tech.vdd, width_um);
            let (off, ..) = tech.pmos.ids(tech.vdd, 0.0, tech.vdd, width_um);
            (on.abs(), off.abs())
        }
        SleepStyle::NemsFooter => {
            let (on, ..) = tech.nems_n.contact.ids(tech.vdd, vds, 0.0, width_um);
            (on.abs(), tech.nems_n.g_off_per_um * width_um * tech.vdd)
        }
        SleepStyle::NemsHeader => {
            let (on, ..) = tech
                .nems_p
                .contact
                .ids(0.0, tech.vdd - vds, tech.vdd, width_um);
            (on.abs(), tech.nems_p.g_off_per_um * width_um * tech.vdd)
        }
    };
    SleepDeviceFigures {
        width_um,
        area_norm: width_um / REFERENCE_WIDTH_UM,
        r_on_ohms: vds / i_on,
        i_off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::n90()
    }

    #[test]
    fn nems_leaks_about_three_decades_less() {
        let t = tech();
        let w = 1.0;
        let cmos = sleep_device_figures(&t, SleepStyle::CmosFooter, w);
        let nems = sleep_device_figures(&t, SleepStyle::NemsFooter, w);
        let ratio = cmos.i_off / nems.i_off;
        assert!(
            (100.0..100_000.0).contains(&ratio),
            "expected ~3 decades, got {ratio:.1}x"
        );
    }

    #[test]
    fn nems_has_higher_on_resistance_at_equal_area() {
        let t = tech();
        let cmos = sleep_device_figures(&t, SleepStyle::CmosFooter, 1.0);
        let nems = sleep_device_figures(&t, SleepStyle::NemsFooter, 1.0);
        assert!(nems.r_on_ohms > cmos.r_on_ohms);
    }

    #[test]
    fn upsizing_nems_matches_cmos_on_resistance() {
        // The Figure 17 argument: a wider NEMS device reaches the ON
        // resistance of a reference CMOS switch while leaking far less.
        let t = tech();
        let cmos = sleep_device_figures(&t, SleepStyle::CmosFooter, 1.0);
        let nems_big = sleep_device_figures(&t, SleepStyle::NemsFooter, 4.0);
        assert!(nems_big.r_on_ohms <= cmos.r_on_ohms * 1.1);
        assert!(nems_big.i_off < cmos.i_off / 100.0);
    }

    #[test]
    fn ron_scales_inversely_with_width() {
        let t = tech();
        let a = sleep_device_figures(&t, SleepStyle::NemsFooter, 1.0);
        let b = sleep_device_figures(&t, SleepStyle::NemsFooter, 2.0);
        assert!((a.r_on_ohms / b.r_on_ohms - 2.0).abs() < 1e-6);
        assert!((b.i_off / a.i_off - 2.0).abs() < 1e-6);
    }

    #[test]
    fn header_styles_mirror_footers() {
        let t = tech();
        let f = sleep_device_figures(&t, SleepStyle::NemsFooter, 1.0);
        let h = sleep_device_figures(&t, SleepStyle::NemsHeader, 1.0);
        assert!((f.i_off - h.i_off).abs() < 1e-18);
        assert!(h.r_on_ohms > 0.0);
    }

    #[test]
    fn area_normalization_reference() {
        let t = tech();
        let f = sleep_device_figures(&t, SleepStyle::CmosFooter, REFERENCE_WIDTH_UM);
        assert!((f.area_norm - 1.0).abs() < 1e-12);
    }
}
