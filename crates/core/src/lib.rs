//! Hybrid NEMS-CMOS circuit library — a reproduction of
//! *"Design and Analysis of Hybrid NEMS-CMOS Circuits for Ultra Low-Power
//! Applications"* (Dadgour & Banerjee, DAC 2007).
//!
//! The paper proposes integrating near-zero-leakage nano-electro-mechanical
//! switches (suspended-gate NEMFETs) with 90 nm CMOS, and evaluates three
//! circuit applications. This crate implements all three on top of the
//! workspace's from-scratch SPICE engine and calibrated device models:
//!
//! * [`gates`] — wide fan-in **dynamic (domino) OR gates**, conventional
//!   CMOS-keeper style and the proposed hybrid style with NEMS devices in
//!   series with the pull-down network (Figures 8–12).
//! * [`sram`] — the four **SRAM cells** of Figure 13 (conventional 6T,
//!   dual-V_t, asymmetric, hybrid NEMS-CMOS) with standby-leakage,
//!   butterfly/SNM and read-latency experiments (Figures 14–15).
//! * [`sleep`] — **sleep transistors** (header/footer, CMOS vs NEMS) and
//!   power-gated logic blocks (Figures 16–17).
//! * [`tech`] — the 90 nm [`Technology`](tech::Technology) bundle tying
//!   the calibrated model cards to circuit construction.
//!
//! Re-exports make the whole stack reachable from this one crate.
//!
//! # Quickstart
//!
//! ```
//! use nemscmos::tech::Technology;
//! use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
//!
//! # fn main() -> Result<(), nemscmos::analysis::AnalysisError> {
//! let tech = Technology::n90();
//! // An 8-input hybrid NEMS-CMOS domino OR gate with fan-out 1.
//! let params = DynamicOrParams::new(8, 1, PdnStyle::HybridNems);
//! let figures = DynamicOrGate::build(&tech, &params).characterize(&tech)?;
//! assert!(figures.delay > 0.0);
//! assert!(figures.leakage_power < 1e-9); // near-zero leakage pull-down
//! # Ok(())
//! # }
//! ```

pub mod factory;
pub mod gates;
pub mod gen;
pub mod prelude;
pub mod sleep;
pub mod sram;
pub mod tech;

pub use nemscmos_analysis as analysis;
pub use nemscmos_devices as devices;
pub use nemscmos_mems as mems;
pub use nemscmos_numeric as numeric;
pub use nemscmos_spice as spice;
