//! One-stop imports for the common workflow:
//!
//! ```
//! use nemscmos::prelude::*;
//!
//! # fn main() -> Result<(), nemscmos::analysis::AnalysisError> {
//! let tech = Technology::n90();
//! let gate = DynamicOrParams::new(4, 1, PdnStyle::HybridNems);
//! let figures = DynamicOrGate::build(&tech, &gate).characterize(&tech)?;
//! assert!(figures.delay > 0.0);
//! # Ok(())
//! # }
//! ```

pub use crate::factory::StandardFactory;
pub use crate::gates::{DynamicOrGate, DynamicOrParams, KeeperStyle, PdnStyle};
pub use crate::sleep::{GatedBlock, SleepStyle};
pub use crate::sram::{SramCell, SramKind, SramParams, ZeroSide};
pub use crate::tech::Technology;
pub use nemscmos_analysis::pdp::GateFigures;
pub use nemscmos_spice::analysis::{op, transient, TranOptions};
pub use nemscmos_spice::circuit::Circuit;
pub use nemscmos_spice::waveform::Waveform;
