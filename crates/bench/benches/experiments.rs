//! Benchmarks of the paper's experiment workloads (scaled-down variants
//! so a full run finishes in minutes, one group per figure). Runs on the
//! offline [`nemscmos_bench::timing`] driver.
//!
//! The experiment entry points route through the harness result cache;
//! the cache is disabled here (`NEMSCMOS_HARNESS_CACHE=off`) so every
//! iteration times the real simulation work.

use nemscmos::gates::PdnStyle;
use nemscmos::sram::{
    butterfly_curves, read_latency, standby_leakage, ReadMode, SramKind, SramParams, ZeroSide,
};
use nemscmos::tech::Technology;
use nemscmos_bench::experiments::device_tables::{render_fig01, render_fig02, render_table1};
use nemscmos_bench::experiments::dynamic_or::{fig09_with, measure_gate};
use nemscmos_bench::experiments::sleep::fig17;
use nemscmos_bench::timing::{bench, group, BenchOptions};

fn bench_device_tables() {
    group("device_tables");
    bench(
        "table1_fig01_fig02",
        BenchOptions {
            warmup: 2,
            iters: 20,
        },
        || {
            let t1 = render_table1();
            let f1 = render_fig01();
            let f2 = render_fig02();
            t1.len() + f1.len() + f2.len()
        },
    );
}

fn bench_fig09() {
    let tech = Technology::n90();
    group("fig09");
    bench(
        "one_keeper_point",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || fig09_with(&tech, &[0.10], &[1.0]).expect("fig09 point"),
    );
}

fn bench_fig10_fig11() {
    let tech = Technology::n90();
    group("fig10_fig11");
    bench(
        "gate_point_cmos_8in_fo1",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || measure_gate(&tech, 8, 1, PdnStyle::Cmos).expect("point"),
    );
    bench(
        "gate_point_hybrid_8in_fo1",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || measure_gate(&tech, 8, 1, PdnStyle::HybridNems).expect("point"),
    );
    bench(
        "gate_point_hybrid_16in_fo3",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || measure_gate(&tech, 16, 3, PdnStyle::HybridNems).expect("point"),
    );
}

fn bench_fig12() {
    let tech = Technology::n90();
    group("fig12");
    bench(
        "pdp_sweep_from_measurement",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || {
            let p = measure_gate(&tech, 8, 1, PdnStyle::HybridNems).expect("point");
            p.figures.pdp_sweep(11)
        },
    );
}

fn bench_fig14_fig15() {
    let tech = Technology::n90();
    group("fig14_fig15");
    bench(
        "butterfly_conventional",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || {
            butterfly_curves(
                &tech,
                &SramParams::new(SramKind::Conventional),
                ReadMode::Read,
            )
            .expect("butterfly")
        },
    );
    bench(
        "butterfly_hybrid",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || {
            butterfly_curves(&tech, &SramParams::new(SramKind::Hybrid), ReadMode::Read)
                .expect("butterfly")
        },
    );
    bench(
        "read_latency_conventional",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || {
            read_latency(
                &tech,
                &SramParams::new(SramKind::Conventional),
                ZeroSide::Right,
            )
            .expect("latency")
        },
    );
    bench(
        "standby_leakage_hybrid",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || {
            standby_leakage(&tech, &SramParams::new(SramKind::Hybrid), ZeroSide::Right)
                .expect("leak")
        },
    );
}

fn bench_fig17() {
    let tech = Technology::n90();
    group("fig17");
    bench(
        "fig17_model_sweep",
        BenchOptions {
            warmup: 2,
            iters: 20,
        },
        || fig17(&tech),
    );
}

fn main() {
    // Time the real solves, not cache reads (must be set before the
    // global Runner is first used).
    std::env::set_var("NEMSCMOS_HARNESS_CACHE", "off");
    println!("experiment benchmarks (offline timing driver)");
    bench_device_tables();
    bench_fig09();
    bench_fig10_fig11();
    bench_fig12();
    bench_fig14_fig15();
    bench_fig17();
}
