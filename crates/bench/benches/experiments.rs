//! Criterion benchmarks of the paper's experiment workloads (scaled-down
//! variants so `cargo bench` finishes in minutes, one group per figure).

use criterion::{criterion_group, criterion_main, Criterion};

use nemscmos::gates::PdnStyle;
use nemscmos::sram::{
    butterfly_curves, read_latency, standby_leakage, ReadMode, SramKind, SramParams, ZeroSide,
};
use nemscmos::tech::Technology;
use nemscmos_bench::experiments::device_tables::{render_fig01, render_fig02, render_table1};
use nemscmos_bench::experiments::dynamic_or::{fig09_with, measure_gate};
use nemscmos_bench::experiments::sleep::fig17;

fn bench_device_tables(c: &mut Criterion) {
    c.bench_function("table1_fig01_fig02", |b| {
        b.iter(|| {
            let t1 = render_table1();
            let f1 = render_fig01();
            let f2 = render_fig02();
            t1.len() + f1.len() + f2.len()
        })
    });
}

fn bench_fig09(c: &mut Criterion) {
    let tech = Technology::n90();
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("one_keeper_point", |b| {
        b.iter(|| fig09_with(&tech, &[0.10], &[1.0]).expect("fig09 point"))
    });
    g.finish();
}

fn bench_fig10_fig11(c: &mut Criterion) {
    let tech = Technology::n90();
    let mut g = c.benchmark_group("fig10_fig11");
    g.sample_size(10);
    g.bench_function("gate_point_cmos_8in_fo1", |b| {
        b.iter(|| measure_gate(&tech, 8, 1, PdnStyle::Cmos).expect("point"))
    });
    g.bench_function("gate_point_hybrid_8in_fo1", |b| {
        b.iter(|| measure_gate(&tech, 8, 1, PdnStyle::HybridNems).expect("point"))
    });
    g.bench_function("gate_point_hybrid_16in_fo3", |b| {
        b.iter(|| measure_gate(&tech, 16, 3, PdnStyle::HybridNems).expect("point"))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let tech = Technology::n90();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("pdp_sweep_from_measurement", |b| {
        b.iter(|| {
            let p = measure_gate(&tech, 8, 1, PdnStyle::HybridNems).expect("point");
            p.figures.pdp_sweep(11)
        })
    });
    g.finish();
}

fn bench_fig14_fig15(c: &mut Criterion) {
    let tech = Technology::n90();
    let mut g = c.benchmark_group("fig14_fig15");
    g.sample_size(10);
    g.bench_function("butterfly_conventional", |b| {
        b.iter(|| {
            butterfly_curves(&tech, &SramParams::new(SramKind::Conventional), ReadMode::Read)
                .expect("butterfly")
        })
    });
    g.bench_function("butterfly_hybrid", |b| {
        b.iter(|| {
            butterfly_curves(&tech, &SramParams::new(SramKind::Hybrid), ReadMode::Read)
                .expect("butterfly")
        })
    });
    g.bench_function("read_latency_conventional", |b| {
        b.iter(|| {
            read_latency(&tech, &SramParams::new(SramKind::Conventional), ZeroSide::Right)
                .expect("latency")
        })
    });
    g.bench_function("standby_leakage_hybrid", |b| {
        b.iter(|| {
            standby_leakage(&tech, &SramParams::new(SramKind::Hybrid), ZeroSide::Right)
                .expect("leak")
        })
    });
    g.finish();
}

fn bench_fig17(c: &mut Criterion) {
    let tech = Technology::n90();
    c.bench_function("fig17_model_sweep", |b| b.iter(|| fig17(&tech)));
}

criterion_group!(
    experiments,
    bench_device_tables,
    bench_fig09,
    bench_fig10_fig11,
    bench_fig12,
    bench_fig14_fig15,
    bench_fig17
);
criterion_main!(experiments);
