//! Benchmarks of the simulator kernels: sparse/dense LU, transient
//! integration, device model evaluation. Runs on the offline
//! [`nemscmos_bench::timing`] driver (no Criterion; see the workspace
//! no-external-deps policy).

use nemscmos::devices::mosfet::MosModel;
use nemscmos::numeric::dense::{DenseLu, DenseMatrix};
use nemscmos::numeric::sparse::{CscMatrix, SparseLu};
use nemscmos::spice::analysis::tran::{transient, TranOptions};
use nemscmos::spice::circuit::Circuit;
use nemscmos::spice::waveform::Waveform;
use nemscmos::tech::Technology;
use nemscmos_bench::timing::{bench, group, BenchOptions};

fn poisson_csc(n: usize) -> CscMatrix {
    let mut tr = Vec::with_capacity(3 * n);
    for i in 0..n {
        tr.push((i, i, 4.0));
        if i + 1 < n {
            tr.push((i, i + 1, -1.0));
            tr.push((i + 1, i, -1.0));
        }
        if i + 16 < n {
            tr.push((i, i + 16, -0.5));
            tr.push((i + 16, i, -0.5));
        }
    }
    CscMatrix::from_triplets(n, n, &tr)
}

fn bench_lu() {
    group("lu");
    let a_sparse = poisson_csc(512);
    let b = vec![1.0; 512];
    bench(
        "sparse_512_factor_solve",
        BenchOptions {
            warmup: 2,
            iters: 20,
        },
        || {
            let lu = SparseLu::factor(&a_sparse).expect("factor");
            lu.solve(&b).expect("solve")
        },
    );
    let mut dense = DenseMatrix::zeros(64, 64);
    for i in 0..64 {
        dense.set(i, i, 4.0);
        if i + 1 < 64 {
            dense.set(i, i + 1, -1.0);
            dense.set(i + 1, i, -1.0);
        }
    }
    let bd = vec![1.0; 64];
    bench(
        "dense_64_factor_solve",
        BenchOptions {
            warmup: 2,
            iters: 20,
        },
        || {
            let lu = DenseLu::factor(dense.clone()).expect("factor");
            lu.solve(&bd).expect("solve")
        },
    );
}

fn bench_device_eval() {
    group("devices");
    let nmos = MosModel::nmos_90nm();
    bench(
        "mosfet_ids_eval_100",
        BenchOptions {
            warmup: 2,
            iters: 50,
        },
        || {
            let mut acc = 0.0;
            for k in 0..100 {
                let vg = 1.2 * (k as f64) / 100.0;
                let (i, ..) = nmos.ids(vg, 1.2, 0.0, 1.0);
                acc += i;
            }
            acc
        },
    );
}

fn inverter_chain(tech: &Technology) -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
    ckt.vsource(
        vin,
        Circuit::GROUND,
        Waveform::pulse(0.0, 1.2, 0.2e-9, 30e-12, 30e-12, 1e-9, 2.5e-9),
    );
    let mut prev = vin;
    for k in 0..8 {
        let out = ckt.node(&format!("n{k}"));
        tech.add_inverter(&mut ckt, &format!("i{k}"), vdd, prev, out, 2.0, 1.0);
        prev = out;
    }
    ckt
}

fn bench_transient() {
    group("transient");
    let tech = Technology::n90();
    bench(
        "inverter_chain_8",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || {
            let mut ckt = inverter_chain(&tech);
            transient(&mut ckt, 2.5e-9, &TranOptions::default()).expect("tran")
        },
    );
}

fn bench_ac() {
    use nemscmos::spice::analysis::ac::{ac, log_sweep};
    group("ac");
    bench(
        "rc_ladder_60pts",
        BenchOptions {
            warmup: 2,
            iters: 20,
        },
        || {
            let mut ckt = Circuit::new();
            let mut prev = ckt.node("in");
            let src = ckt.vsource(prev, Circuit::GROUND, Waveform::dc(0.0));
            for k in 0..10 {
                let n = ckt.node(&format!("n{k}"));
                ckt.resistor(prev, n, 1e3);
                ckt.capacitor(n, Circuit::GROUND, 1e-12);
                prev = n;
            }
            let freqs = log_sweep(1e3, 1e9, 10);
            ac(&mut ckt, src, &freqs, &Default::default()).expect("ac")
        },
    );
}

fn bench_netlist_parse() {
    use nemscmos::factory::StandardFactory;
    use nemscmos::spice::netlist::parse_deck;
    group("netlist");
    // A ~200-card deck.
    let mut deck = String::from("VDD vdd 0 DC 1.2\n");
    for k in 0..100 {
        deck.push_str(&format!("R{k} n{k} n{} 1k\n", k + 1));
        deck.push_str(&format!("C{k} n{k} 0 1f\n"));
    }
    deck.push_str("R_last n100 0 1k\n.op\n");
    let factory = StandardFactory::n90();
    bench(
        "netlist_parse_200_cards",
        BenchOptions {
            warmup: 2,
            iters: 50,
        },
        || parse_deck(&deck, &factory).expect("parse"),
    );
}

fn bench_sram_array() {
    use nemscmos::sram::{ArraySequence, SramArray, SramKind, SramParams};
    group("sram_array");
    let tech = Technology::n90();
    let params = SramParams::new(SramKind::Conventional);
    let seq = ArraySequence::checkerboard(2, 2);
    bench(
        "2x2_write_read_sequence",
        BenchOptions {
            warmup: 1,
            iters: 10,
        },
        || {
            let mut array = SramArray::build(&tech, &params, &seq);
            array.run_and_verify(&tech, &seq).expect("sequence")
        },
    );
}

fn main() {
    println!("kernel benchmarks (offline timing driver)");
    bench_lu();
    bench_device_eval();
    bench_transient();
    bench_ac();
    bench_netlist_parse();
    bench_sram_array();
}
