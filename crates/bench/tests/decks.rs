//! Validates every SPICE deck shipped under `examples/decks/`: each must
//! parse and its full directive sequence must run.

use nemscmos::factory::StandardFactory;
use nemscmos::spice::analysis::dc_sweep::dc_sweep;
use nemscmos::spice::analysis::op::{op, OpOptions};
use nemscmos::spice::analysis::tran::{transient, TranOptions};
use nemscmos::spice::netlist::{parse_deck, Directive};

fn decks_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/decks")
}

fn run_deck(text: &str) {
    let factory = StandardFactory::n90();
    let deck = parse_deck(text, &factory).expect("deck parses");
    assert!(
        !deck.directives.is_empty(),
        "deck has no analysis directives"
    );
    for directive in deck.directives.clone() {
        let mut fresh = parse_deck(text, &factory).expect("reparse");
        match directive {
            Directive::Op => {
                op(&mut fresh.circuit).expect(".op converges");
            }
            Directive::Tran { tstop } => {
                let res = transient(&mut fresh.circuit, tstop, &TranOptions::default())
                    .expect(".tran completes");
                assert!(res.num_points() > 10);
            }
            Directive::Dc {
                source,
                start,
                stop,
                step,
            } => {
                let src = fresh.sources[&source];
                let n = ((stop - start) / step).abs().round() as usize + 1;
                let values: Vec<f64> = (0..n).map(|k| start + step * k as f64).collect();
                dc_sweep(&mut fresh.circuit, src, &values, &OpOptions::default())
                    .expect(".dc completes");
            }
            Directive::Ac {
                points_per_decade,
                f_start,
                f_stop,
            } => {
                let (_, src) = fresh
                    .sources
                    .iter()
                    .next()
                    .map(|(k, v)| (k.clone(), *v))
                    .expect("a source");
                let freqs =
                    nemscmos::spice::analysis::ac::log_sweep(f_start, f_stop, points_per_decade);
                nemscmos::spice::analysis::ac::ac(
                    &mut fresh.circuit,
                    src,
                    &freqs,
                    &OpOptions::default(),
                )
                .expect(".ac completes");
            }
        }
    }
}

#[test]
fn every_shipped_deck_runs() {
    let dir = decks_dir();
    let mut found = 0;
    for entry in std::fs::read_dir(&dir).expect("decks directory") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("cir") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).expect("readable deck");
        run_deck(&text);
    }
    assert!(found >= 3, "expected the shipped decks, found {found}");
}

#[test]
fn hybrid_cell_deck_write_works() {
    let text = std::fs::read_to_string(decks_dir().join("sram_hybrid_cell.cir")).unwrap();
    let factory = StandardFactory::n90();
    let deck = parse_deck(&text, &factory).unwrap();
    let mut ckt = deck.circuit;
    let res = transient(&mut ckt, 8e-9, &TranOptions::default()).unwrap();
    // The deck writes a 0 into QL (starting from QL = 1).
    assert!(res.voltage(deck.nodes["ql"]).last_value() < 0.15);
    assert!(res.voltage(deck.nodes["qr"]).last_value() > 1.0);
}
