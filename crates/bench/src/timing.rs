//! Minimal wall-clock micro-benchmark driver.
//!
//! The workspace builds fully offline, so the `benches/` targets use
//! this driver instead of Criterion: warm up, run a fixed number of
//! timed iterations, and print min/median/mean per-iteration times. The
//! numbers are indicative, not statistically rigorous — good enough to
//! catch order-of-magnitude regressions in the simulation kernels.

use std::time::{Duration, Instant};

/// Settings for one timed function.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Untimed warm-up iterations.
    pub warmup: usize,
    /// Timed iterations.
    pub iters: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            warmup: 2,
            iters: 10,
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Times `f` and prints one aligned result line.
///
/// The closure's return value is passed through `std::hint::black_box`
/// so the work cannot be optimized away.
pub fn bench<T>(name: &str, opts: BenchOptions, mut f: impl FnMut() -> T) {
    for _ in 0..opts.warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(opts.iters.max(1));
    for _ in 0..opts.iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} min {:>10}  median {:>10}  mean {:>10}  ({} iters)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len(),
    );
}

/// Prints a group header, mirroring Criterion's group organization.
pub fn group(title: &str) {
    println!("\n-- {title} --");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_requested_iterations() {
        let count = std::cell::Cell::new(0usize);
        bench(
            "counter",
            BenchOptions {
                warmup: 1,
                iters: 3,
            },
            || count.set(count.get() + 1),
        );
        assert_eq!(count.get(), 4);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
