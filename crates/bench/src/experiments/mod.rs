//! Experiment drivers, one module per paper section.

pub mod ablations;
pub mod device_tables;
pub mod dynamic_or;
pub mod sleep;
pub mod sram;
pub mod thermal;
pub mod variation;
