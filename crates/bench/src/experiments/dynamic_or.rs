//! Dynamic OR gate experiments: Figures 9, 10, 11 and 12.

use nemscmos::gates::{
    input_noise_margin, with_worst_case_vth, DynamicOrGate, DynamicOrParams, PdnStyle,
};
use nemscmos::tech::Technology;
use nemscmos_analysis::montecarlo::{monte_carlo_summary, Normal};
use nemscmos_analysis::pdp::GateFigures;
use nemscmos_analysis::table::{fmt_eng, Table};
use nemscmos_analysis::{AnalysisError, Result};
use nemscmos_harness::{HarnessError, JobSpec, Runner};
use nemscmos_numeric::stats::Summary;

/// One point of the Figure 9 trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig09Point {
    /// Keeper width (µm).
    pub keeper_width: f64,
    /// Worst-case (3σ) input noise margin (V).
    pub noise_margin: f64,
    /// Worst-case delay normalized to the smallest-keeper delay.
    pub delay_norm: f64,
}

/// One σ-level curve of Figure 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09Curve {
    /// `σ_Vth/µ_Vth` of this curve.
    pub sigma_frac: f64,
    /// Sweep points (increasing keeper width).
    pub points: Vec<Fig09Point>,
}

/// Figure 9: delay vs noise margin of an 8-input CMOS dynamic OR under
/// increasing keeper width, for several process-variation levels.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig09(tech: &Technology) -> Result<Vec<Fig09Curve>> {
    fig09_with(tech, &[0.05, 0.10, 0.15], &[0.2, 0.5, 1.0, 1.5, 2.0, 2.6])
}

/// Figure 9 with explicit σ levels and keeper widths (scaled-down variants
/// for the Criterion benches).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig09_with(tech: &Technology, sigmas: &[f64], keepers: &[f64]) -> Result<Vec<Fig09Curve>> {
    // One harness job per (σ, keeper) grid point, each returning the raw
    // (delay, noise margin) pair; normalization to the smallest-keeper
    // delay happens after collection so jobs stay independent (and
    // cacheable) regardless of grid shape.
    let grid: Vec<(f64, f64)> = sigmas
        .iter()
        .flat_map(|&s| keepers.iter().map(move |&wk| (s, wk)))
        .collect();
    let jobs: Vec<JobSpec> = grid
        .iter()
        .map(|&(sigma, wk)| {
            JobSpec::new(
                format!("s{:.0}%-wk{wk:.2}", sigma * 100.0),
                format!("fig09 v1 sigma={sigma} keeper={wk} tech={tech:?}"),
            )
        })
        .collect();
    let measured: Vec<(f64, f64)> = Runner::global()
        .run("fig09: keeper trade-off", &jobs, |i, _| {
            let (sigma, wk) = grid[i];
            let mut params = DynamicOrParams::new(8, 1, PdnStyle::Cmos);
            params.keeper_width = Some(wk);
            params.sigma_vth_frac = sigma;
            // Delay at nominal process; noise margin at the 3σ-leaky corner.
            let figures = DynamicOrGate::build(tech, &params)
                .characterize(tech)
                .map_err(HarnessError::from)?;
            let nm = input_noise_margin(tech, &with_worst_case_vth(&params, tech))
                .map_err(HarnessError::from)?;
            Ok((figures.delay, nm))
        })
        .map_err(AnalysisError::from)?;
    let mut curves = Vec::new();
    for (si, &sigma) in sigmas.iter().enumerate() {
        let row = &measured[si * keepers.len()..(si + 1) * keepers.len()];
        let base = row.first().map_or(1.0, |&(d, _)| d);
        let points = keepers
            .iter()
            .zip(row)
            .map(|(&wk, &(delay, nm))| Fig09Point {
                keeper_width: wk,
                noise_margin: nm,
                delay_norm: delay / base,
            })
            .collect();
        curves.push(Fig09Curve {
            sigma_frac: sigma,
            points,
        });
    }
    Ok(curves)
}

/// Renders Figure 9.
pub fn render_fig09(curves: &[Fig09Curve]) -> String {
    let mut t = Table::new(vec![
        "sigma/mu",
        "W_keeper (µm)",
        "noise margin (V)",
        "delay (norm)",
    ]);
    for c in curves {
        for p in &c.points {
            t.row(vec![
                format!("{:.0}%", c.sigma_frac * 100.0),
                format!("{:.2}", p.keeper_width),
                format!("{:.3}", p.noise_margin),
                format!("{:.3}", p.delay_norm),
            ]);
        }
    }
    t.render()
}

/// True Monte Carlo version of one Figure 9 point: per-branch V_th draws
/// from `N(0, σ·V_th)` for an 8-input CMOS gate with a fixed keeper, each
/// trial measuring the input noise margin. Trials fan out over the
/// harness work-stealing pool and are deterministic in `seed`.
///
/// # Errors
///
/// Propagates simulation failures from any trial.
pub fn fig09_monte_carlo(
    tech: &Technology,
    keeper_width: f64,
    sigma_frac: f64,
    trials: usize,
    seed: u64,
) -> Result<Summary> {
    let sigma_volts = sigma_frac * tech.nmos.vth;
    monte_carlo_summary(trials, seed, |rng, _| {
        let dist = Normal::new(0.0, sigma_volts);
        let mut params = DynamicOrParams::new(8, 1, PdnStyle::Cmos);
        params.keeper_width = Some(keeper_width);
        params.pdn_vth_shifts = (0..8).map(|_| dist.sample(rng)).collect();
        input_noise_margin(tech, &params)
    })
}

/// One gate measurement of Figures 10–12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatePoint {
    /// Fan-in.
    pub fan_in: usize,
    /// Fan-out.
    pub fan_out: usize,
    /// Style.
    pub style: PdnStyle,
    /// Measured figures.
    pub figures: GateFigures,
}

/// Measures one gate configuration (keeper auto-sized per style).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn measure_gate(
    tech: &Technology,
    fan_in: usize,
    fan_out: usize,
    style: PdnStyle,
) -> Result<GatePoint> {
    let mut points = measure_gates(tech, &[(fan_in, fan_out, style)], "gate measurement")?;
    Ok(points.remove(0))
}

/// Measures a batch of `(fan_in, fan_out, style)` gate configurations
/// through the harness: jobs run on the work-stealing pool, results come
/// from the content-addressed cache when available, non-convergent
/// solves escalate through the retry ladder, and a telemetry report is
/// published under `title`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn measure_gates(
    tech: &Technology,
    configs: &[(usize, usize, PdnStyle)],
    title: &str,
) -> Result<Vec<GatePoint>> {
    let jobs: Vec<JobSpec> = configs
        .iter()
        .map(|&(fan_in, fan_out, style)| {
            JobSpec::new(
                format!("or{fan_in}-fo{fan_out}-{}", style_label(style)),
                format!(
                    "dynamic-or v1 fan_in={fan_in} fan_out={fan_out} style={style:?} tech={tech:?}"
                ),
            )
        })
        .collect();
    let figures: Vec<GateFigures> = Runner::global()
        .run(title, &jobs, |i, _| {
            let (fan_in, fan_out, style) = configs[i];
            let params = DynamicOrParams::new(fan_in, fan_out, style);
            DynamicOrGate::build(tech, &params)
                .characterize(tech)
                .map_err(HarnessError::from)
        })
        .map_err(AnalysisError::from)?;
    Ok(configs
        .iter()
        .zip(figures)
        .map(|(&(fan_in, fan_out, style), figures)| GatePoint {
            fan_in,
            fan_out,
            style,
            figures,
        })
        .collect())
}

/// Figure 10: 8-input OR, fan-out 1–5, both styles.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig10(tech: &Technology) -> Result<Vec<GatePoint>> {
    let mut configs = Vec::new();
    for fan_out in 1..=5 {
        for style in [PdnStyle::Cmos, PdnStyle::HybridNems] {
            configs.push((8, fan_out, style));
        }
    }
    measure_gates(tech, &configs, "fig10: OR8 fan-out sweep")
}

/// Renders Figure 10 with the paper's normalization: power to the hybrid
/// FO1 power, delay to the CMOS FO1 delay.
pub fn render_fig10(points: &[GatePoint]) -> String {
    let p_ref = points
        .iter()
        .find(|p| p.style == PdnStyle::HybridNems && p.fan_out == 1)
        .map(|p| p.figures.switching_power)
        .unwrap_or(1.0);
    let d_ref = points
        .iter()
        .find(|p| p.style == PdnStyle::Cmos && p.fan_out == 1)
        .map(|p| p.figures.delay)
        .unwrap_or(1.0);
    let mut t = Table::new(vec![
        "fan-out",
        "style",
        "P_switch (norm)",
        "delay (norm)",
        "P_leak",
    ]);
    for p in points {
        t.row(vec![
            p.fan_out.to_string(),
            style_label(p.style).to_string(),
            format!("{:.3}", p.figures.switching_power / p_ref),
            format!("{:.3}", p.figures.delay / d_ref),
            fmt_eng(p.figures.leakage_power, "W"),
        ]);
    }
    t.render()
}

/// Figure 11: fan-in 4–16 at fan-out 3, both styles.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig11(tech: &Technology) -> Result<Vec<GatePoint>> {
    let mut configs = Vec::new();
    for fan_in in [4usize, 8, 12, 16] {
        for style in [PdnStyle::Cmos, PdnStyle::HybridNems] {
            configs.push((fan_in, 3, style));
        }
    }
    measure_gates(tech, &configs, "fig11: OR fan-in sweep")
}

/// Renders Figure 11, normalized to the hybrid fan-in-4 point.
pub fn render_fig11(points: &[GatePoint]) -> String {
    let reference = points
        .iter()
        .find(|p| p.style == PdnStyle::HybridNems && p.fan_in == 4)
        .map(|p| p.figures)
        .expect("hybrid fan-in-4 point present");
    let mut t = Table::new(vec!["fan-in", "style", "P_switch (norm)", "delay (norm)"]);
    for p in points {
        t.row(vec![
            p.fan_in.to_string(),
            style_label(p.style).to_string(),
            format!(
                "{:.3}",
                p.figures.switching_power / reference.switching_power
            ),
            format!("{:.3}", p.figures.delay / reference.delay),
        ]);
    }
    t.render()
}

/// One Figure 12 series: the measured gate point and its `(α, P·D)` sweep.
pub type PdpSeries = (GatePoint, Vec<(f64, f64)>);

/// Figure 12: power-delay product (Equation 1) versus activity factor for
/// output loads C_L = 1 and C_L = 3 (fan-outs 1 and 3).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig12(tech: &Technology) -> Result<Vec<PdpSeries>> {
    let mut configs = Vec::new();
    for fan_out in [1usize, 3] {
        for style in [PdnStyle::Cmos, PdnStyle::HybridNems] {
            configs.push((8, fan_out, style));
        }
    }
    let points = measure_gates(tech, &configs, "fig12: PDP vs activity")?;
    Ok(points
        .into_iter()
        .map(|point| (point, point.figures.pdp_sweep(11)))
        .collect())
}

/// Renders Figure 12.
pub fn render_fig12(data: &[PdpSeries]) -> String {
    let mut t = Table::new(vec!["C_L", "style", "alpha", "P·D (J)"]);
    for (p, sweep) in data {
        for &(alpha, pd) in sweep {
            t.row(vec![
                p.fan_out.to_string(),
                style_label(p.style).to_string(),
                format!("{alpha:.1}"),
                format!("{pd:.3e}"),
            ]);
        }
    }
    t.render()
}

/// Short display label of a PDN style.
pub fn style_label(style: PdnStyle) -> &'static str {
    match style {
        PdnStyle::Cmos => "CMOS",
        PdnStyle::HybridNems => "Hybrid",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gate_measurement_is_sane() {
        let tech = Technology::n90();
        let p = measure_gate(&tech, 4, 1, PdnStyle::Cmos).unwrap();
        assert!(p.figures.delay > 0.0);
        assert!(p.figures.switching_power > p.figures.leakage_power);
    }

    #[test]
    fn fig09_monte_carlo_statistics_are_sane() {
        let tech = Technology::n90();
        let s = fig09_monte_carlo(&tech, 1.0, 0.10, 12, 42).unwrap();
        assert_eq!(s.count, 12);
        // The mean MC noise margin sits near the nominal value and the
        // worst draw is below the mean (variation only hurts).
        assert!(s.mean > 0.15 && s.mean < 0.6, "mean NM = {}", s.mean);
        assert!(s.min < s.mean);
        assert!(s.std_dev > 0.0, "per-device draws must spread the NM");
        // Determinism.
        let s2 = fig09_monte_carlo(&tech, 1.0, 0.10, 12, 42).unwrap();
        assert_eq!(s.mean, s2.mean);
    }

    #[test]
    fn fig09_scaled_down_runs() {
        let tech = Technology::n90();
        let curves = fig09_with(&tech, &[0.10], &[0.5, 2.0]).unwrap();
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].points.len(), 2);
        // Bigger keeper → better noise margin, more delay.
        let (a, b) = (curves[0].points[0], curves[0].points[1]);
        assert!(b.noise_margin >= a.noise_margin);
        assert!(b.delay_norm >= a.delay_norm);
        assert!(!render_fig09(&curves).is_empty());
    }
}
