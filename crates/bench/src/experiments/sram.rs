//! SRAM experiments: Figures 14 and 15.

use nemscmos::sram::{
    butterfly_curves, read_latency, standby_leakage, ReadMode, SramKind, SramParams, ZeroSide,
};
use nemscmos::tech::Technology;
use nemscmos_analysis::table::{fmt_eng, Table};
use nemscmos_analysis::{AnalysisError, Result};
use nemscmos_harness::json::{Json, JsonCodec};
use nemscmos_harness::{HarnessError, JobSpec, Runner};

/// A sampled VTC as `(v_in, v_out)` points.
pub type CurvePoints = Vec<(f64, f64)>;

/// Figure 14 data for one cell architecture.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Architecture.
    pub kind: SramKind,
    /// Read static noise margin (V).
    pub snm: f64,
    /// The two lobes (V).
    pub lobes: (f64, f64),
    /// The traced butterfly curves (for plotting): left and right VTC
    /// sample points.
    pub curves: (CurvePoints, CurvePoints),
}

/// Cacheable payload of one Figure 14 job (everything but the kind,
/// which the job grid already knows).
#[derive(Debug, Clone, PartialEq)]
struct Fig14Payload {
    snm: f64,
    lobes: (f64, f64),
    curves: (CurvePoints, CurvePoints),
}

impl JsonCodec for Fig14Payload {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("snm".into(), Json::Num(self.snm)),
            ("lobes".into(), self.lobes.to_json()),
            ("left".into(), self.curves.0.to_json()),
            ("right".into(), self.curves.1.to_json()),
        ])
    }
    fn from_json(v: &Json) -> Option<Fig14Payload> {
        Some(Fig14Payload {
            snm: v.get("snm")?.as_f64()?,
            lobes: JsonCodec::from_json(v.get("lobes")?)?,
            curves: (
                JsonCodec::from_json(v.get("left")?)?,
                JsonCodec::from_json(v.get("right")?)?,
            ),
        })
    }
}

/// Figure 14: butterfly curves and read SNM of all four architectures,
/// one harness job per cell.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig14(tech: &Technology) -> Result<Vec<Fig14Row>> {
    let kinds = SramKind::all();
    let jobs: Vec<JobSpec> = kinds
        .iter()
        .map(|kind| {
            JobSpec::new(
                format!("snm-{}", kind.label()),
                format!("sram-fig14 v1 kind={kind:?} tech={tech:?}"),
            )
        })
        .collect();
    let payloads: Vec<Fig14Payload> = Runner::global()
        .run("fig14: SRAM butterfly curves", &jobs, |i, _| {
            let params = SramParams::new(kinds[i]);
            let b = butterfly_curves(tech, &params, ReadMode::Read).map_err(HarnessError::from)?;
            Ok(Fig14Payload {
                snm: b.snm.snm(),
                lobes: (b.snm.lobe_high, b.snm.lobe_low),
                curves: (b.vtc_left.points().to_vec(), b.vtc_right.points().to_vec()),
            })
        })
        .map_err(AnalysisError::from)?;
    Ok(kinds
        .into_iter()
        .zip(payloads)
        .map(|(kind, p)| Fig14Row {
            kind,
            snm: p.snm,
            lobes: p.lobes,
            curves: p.curves,
        })
        .collect())
}

/// Renders Figure 14 (SNM summary; the curves are available in the data).
pub fn render_fig14(rows: &[Fig14Row]) -> String {
    let conv = rows
        .iter()
        .find(|r| r.kind == SramKind::Conventional)
        .map(|r| r.snm)
        .unwrap_or(1.0);
    let mut t = Table::new(vec![
        "cell",
        "SNM (mV)",
        "lobe hi (mV)",
        "lobe lo (mV)",
        "vs Conv.",
    ]);
    for r in rows {
        t.row(vec![
            r.kind.label().to_string(),
            format!("{:.1}", r.snm * 1e3),
            format!("{:.1}", r.lobes.0 * 1e3),
            format!("{:.1}", r.lobes.1 * 1e3),
            format!("{:+.1}%", (r.snm / conv - 1.0) * 100.0),
        ]);
    }
    t.render()
}

/// Figure 15 data for one cell architecture.
#[derive(Debug, Clone, Copy)]
pub struct Fig15Row {
    /// Architecture.
    pub kind: SramKind,
    /// Read latency, averaged over both stored states (s).
    pub read_latency: f64,
    /// Standby leakage current, averaged over both stored states (A).
    pub standby_current: f64,
}

/// Figure 15: read latency and standby leakage of all four architectures
/// (state-averaged, as the paper does for the asymmetric cell), one
/// harness job per cell.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig15(tech: &Technology) -> Result<Vec<Fig15Row>> {
    let kinds = SramKind::all();
    let jobs: Vec<JobSpec> = kinds
        .iter()
        .map(|kind| {
            JobSpec::new(
                format!("latency-{}", kind.label()),
                format!("sram-fig15 v1 kind={kind:?} tech={tech:?}"),
            )
        })
        .collect();
    let measured: Vec<(f64, f64)> = Runner::global()
        .run("fig15: SRAM latency/leakage", &jobs, |i, _| {
            let params = SramParams::new(kinds[i]);
            let lat_l = read_latency(tech, &params, ZeroSide::Left).map_err(HarnessError::from)?;
            let lat_r = read_latency(tech, &params, ZeroSide::Right).map_err(HarnessError::from)?;
            let leak_l =
                standby_leakage(tech, &params, ZeroSide::Left).map_err(HarnessError::from)?;
            let leak_r =
                standby_leakage(tech, &params, ZeroSide::Right).map_err(HarnessError::from)?;
            Ok((0.5 * (lat_l + lat_r), 0.5 * (leak_l + leak_r)))
        })
        .map_err(AnalysisError::from)?;
    Ok(kinds
        .into_iter()
        .zip(measured)
        .map(|(kind, (read_latency, standby_current))| Fig15Row {
            kind,
            read_latency,
            standby_current,
        })
        .collect())
}

/// Renders Figure 15 normalized to the conventional cell (paper style).
pub fn render_fig15(rows: &[Fig15Row]) -> String {
    let conv = rows
        .iter()
        .find(|r| r.kind == SramKind::Conventional)
        .copied()
        .expect("conventional row present");
    let mut t = Table::new(vec![
        "cell",
        "read latency",
        "latency (norm)",
        "standby leak",
        "leak (norm)",
    ]);
    for r in rows {
        t.row(vec![
            r.kind.label().to_string(),
            fmt_eng(r.read_latency, "s"),
            format!("{:.3}", r.read_latency / conv.read_latency),
            fmt_eng(r.standby_current, "A"),
            format!("{:.3}", r.standby_current / conv.standby_current),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_shapes_match_paper() {
        let tech = Technology::n90();
        let rows = fig15(&tech).unwrap();
        let get = |k: SramKind| rows.iter().find(|r| r.kind == k).copied().unwrap();
        let conv = get(SramKind::Conventional);
        let hybrid = get(SramKind::Hybrid);
        // Hybrid: markedly lower leakage, moderately higher latency.
        assert!(hybrid.standby_current < conv.standby_current / 3.0);
        assert!(hybrid.read_latency > conv.read_latency);
        assert!(hybrid.read_latency < 2.0 * conv.read_latency);
        // Every low-leakage cell pays some latency.
        for r in &rows {
            if r.kind != SramKind::Conventional {
                assert!(r.read_latency >= conv.read_latency * 0.99, "{:?}", r.kind);
            }
        }
        assert!(render_fig15(&rows).contains("Hybrid"));
    }
}
