//! Sleep-transistor experiments: Figure 17 plus the gated-block study.

use nemscmos::sleep::{
    characterize_block, sleep_device_figures, GatedBlock, SleepDeviceFigures, SleepStyle,
};
use nemscmos::tech::Technology;
use nemscmos_analysis::table::{fmt_eng, Table};
use nemscmos_analysis::Result;

/// Figure 17: R_ON and I_OFF of CMOS and NEMS sleep devices over a width
/// sweep (areas normalized to the W/L = 5 reference).
pub fn fig17(tech: &Technology) -> Vec<(SleepDeviceFigures, SleepDeviceFigures)> {
    let widths = [0.45, 0.9, 1.8, 3.6, 7.2, 14.4];
    widths
        .iter()
        .map(|&w| {
            (
                sleep_device_figures(tech, SleepStyle::CmosFooter, w),
                sleep_device_figures(tech, SleepStyle::NemsFooter, w),
            )
        })
        .collect()
}

/// Renders Figure 17.
pub fn render_fig17(rows: &[(SleepDeviceFigures, SleepDeviceFigures)]) -> String {
    let mut t = Table::new(vec![
        "area (norm)",
        "R_on CMOS",
        "R_on NEMS",
        "I_off CMOS",
        "I_off NEMS",
        "I_off ratio",
    ]);
    for (cmos, nems) in rows {
        t.row(vec![
            format!("{:.1}", cmos.area_norm),
            fmt_eng(cmos.r_on_ohms, "Ω"),
            fmt_eng(nems.r_on_ohms, "Ω"),
            fmt_eng(cmos.i_off, "A"),
            fmt_eng(nems.i_off, "A"),
            format!("{:.0}x", cmos.i_off / nems.i_off),
        ]);
    }
    t.render()
}

/// The circuit-level companion experiment: a power-gated inverter chain
/// with CMOS vs (sized-up) NEMS footers.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn gated_block_study(tech: &Technology) -> Result<String> {
    let mut t = Table::new(vec![
        "sleep switch",
        "W (µm)",
        "delay penalty",
        "sleep leak",
        "leak reduction",
    ]);
    for (label, nems, width) in [
        ("CMOS footer", false, 2.0),
        ("NEMS footer", true, 2.0),
        ("NEMS footer (sized up)", true, 8.0),
    ] {
        let fig = characterize_block(tech, &GatedBlock::coarse_footer(4, nems, width))?;
        t.row(vec![
            label.to_string(),
            format!("{width:.1}"),
            format!("{:+.1}%", fig.delay_penalty() * 100.0),
            fmt_eng(fig.sleep_leakage, "W"),
            format!("{:.0}x", fig.leakage_reduction()),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_ron_gap_closes_with_area() {
        let tech = Technology::n90();
        let rows = fig17(&tech);
        // The paper's observation: the NEMS I_OFF advantage holds at every
        // size (≈3 decades), while the absolute R_on difference shrinks as
        // the devices get wider.
        let first = &rows[0];
        let last = rows.last().unwrap();
        let gap_first = first.1.r_on_ohms - first.0.r_on_ohms;
        let gap_last = last.1.r_on_ohms - last.0.r_on_ohms;
        assert!(gap_last < gap_first / 10.0, "absolute R_on gap must shrink");
        for (cmos, nems) in &rows {
            assert!(cmos.i_off / nems.i_off > 100.0);
        }
        assert!(render_fig17(&rows).contains("ratio"));
    }
}
