//! Ablation studies of the design choices DESIGN.md calls out: keeper
//! style, NEMS sizing, the §5.3 pull-up-only SRAM variant, mechanical
//! switching delay, and a stuck-beam (stiction) fault injection.

use nemscmos::devices::mosfet::Polarity;
use nemscmos::devices::nemfet::{Nemfet, NemsModel};
use nemscmos::gates::{DynamicOrGate, DynamicOrParams, KeeperStyle, PdnStyle};
use nemscmos::sram::{
    data_retention_voltage, read_latency, standby_leakage, write_latency, write_trip_voltage,
    SramKind, SramParams, ZeroSide,
};
use nemscmos::tech::Technology;
use nemscmos_analysis::table::{fmt_eng, Table};
use nemscmos_analysis::Result;

/// Keeper-style ablation: where does the conventional gate's power go?
///
/// # Errors
///
/// Propagates simulation failures.
pub fn keeper_style_ablation(tech: &Technology) -> Result<String> {
    let mut t = Table::new(vec!["keeper", "style", "delay", "P_switch"]);
    for (keeper, style) in [
        (KeeperStyle::AlwaysOn, PdnStyle::Cmos),
        (KeeperStyle::Feedback, PdnStyle::Cmos),
        (KeeperStyle::AlwaysOn, PdnStyle::HybridNems),
        (KeeperStyle::Feedback, PdnStyle::HybridNems),
    ] {
        let params = DynamicOrParams {
            keeper_style: keeper,
            ..DynamicOrParams::new(8, 1, style)
        };
        let f = DynamicOrGate::build(tech, &params).characterize(tech)?;
        t.row(vec![
            format!("{keeper:?}"),
            format!("{style:?}"),
            fmt_eng(f.delay, "s"),
            fmt_eng(f.switching_power, "W"),
        ]);
    }
    Ok(t.render())
}

/// NEMS series-switch width sweep for the hybrid OR gate: the delay cost
/// of the weak NEMS drive versus its area.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn nems_width_ablation(tech: &Technology) -> Result<String> {
    let mut t = Table::new(vec!["W_nems (µm)", "delay", "P_switch"]);
    for w in [1.0, 2.0, 3.0, 4.0, 6.0] {
        let params = DynamicOrParams {
            nems_width: w,
            ..DynamicOrParams::new(8, 1, PdnStyle::HybridNems)
        };
        let f = DynamicOrGate::build(tech, &params).characterize(tech)?;
        t.row(vec![
            format!("{w:.1}"),
            fmt_eng(f.delay, "s"),
            fmt_eng(f.switching_power, "W"),
        ]);
    }
    Ok(t.render())
}

/// Hybrid SRAM NEMS upsizing: the paper's §5.4 note that the latency can
/// "be further reduced via proper transistor and circuit optimization".
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sram_upsize_ablation(tech: &Technology) -> Result<String> {
    let conv = read_latency(
        tech,
        &SramParams::new(SramKind::Conventional),
        ZeroSide::Right,
    )?;
    let mut t = Table::new(vec!["upsize", "read latency", "vs Conv.", "standby leak"]);
    for up in [1.0, 1.2, 1.5, 2.0, 3.0] {
        let params = SramParams {
            hybrid_upsize: up,
            ..SramParams::new(SramKind::Hybrid)
        };
        let lat = read_latency(tech, &params, ZeroSide::Right)?;
        let leak = standby_leakage(tech, &params, ZeroSide::Right)?;
        t.row(vec![
            format!("{up:.1}x"),
            fmt_eng(lat, "s"),
            format!("{:+.1}%", (lat / conv - 1.0) * 100.0),
            fmt_eng(leak, "A"),
        ]);
    }
    Ok(t.render())
}

/// The §5.3 alternative cell (NEMS pull-ups only) against the full hybrid.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn pullup_only_ablation(tech: &Technology) -> Result<String> {
    let mut t = Table::new(vec!["cell", "read latency", "standby leak"]);
    for kind in [
        SramKind::Conventional,
        SramKind::HybridPullupOnly,
        SramKind::Hybrid,
    ] {
        let params = SramParams::new(kind);
        let lat = read_latency(tech, &params, ZeroSide::Right)?;
        let leak = 0.5
            * (standby_leakage(tech, &params, ZeroSide::Left)?
                + standby_leakage(tech, &params, ZeroSide::Right)?);
        t.row(vec![
            kind.label().to_string(),
            fmt_eng(lat, "s"),
            fmt_eng(leak, "A"),
        ]);
    }
    Ok(t.render())
}

/// Mechanical switching-delay sensitivity: our dwell-time extension to the
/// paper's quasi-instantaneous switch model. The hybrid gate's evaluation
/// delay grows once the beam flight time stops being negligible.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn switching_delay_ablation(tech: &Technology) -> Result<String> {
    let mut t = Table::new(vec!["t_switch", "delay", "note"]);
    for (ts, note) in [
        (0.0, "paper's model"),
        (10e-12, "10 ps beam"),
        (50e-12, "50 ps beam"),
        (200e-12, "200 ps beam"),
    ] {
        let mut tech_ts = tech.clone();
        tech_ts.nems_n = tech.nems_n.with_switching_delay(ts);
        let params = DynamicOrParams::new(8, 1, PdnStyle::HybridNems);
        let f = DynamicOrGate::build(&tech_ts, &params).characterize(&tech_ts)?;
        t.row(vec![
            fmt_eng(ts, "s"),
            fmt_eng(f.delay, "s"),
            note.to_string(),
        ]);
    }
    Ok(t.render())
}

/// Stiction fault injection: a NEMS switch whose beam never actuates
/// (modelled as an infinite dwell requirement) leaves its pull-down
/// branch dead — the gate output never rises for that input.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn stiction_fault_study(tech: &Technology) -> Result<String> {
    // Healthy gate: 1-input hybrid OR evaluates.
    let healthy = DynamicOrGate::build(tech, &DynamicOrParams::new(1, 1, PdnStyle::HybridNems))
        .characterize(tech)
        .is_ok();
    // Faulty gate: build the same gate by hand with a stuck beam.
    let stuck_model = NemsModel::nems_90nm(Polarity::Nmos).with_switching_delay(1.0); // 1 s >> sim
    let mut params = DynamicOrParams::new(1, 1, PdnStyle::HybridNems);
    params.nems_width = 3.0;
    let mut gate = DynamicOrGate::build(tech, &params);
    // Overlay a stuck device in parallel is not equivalent; instead verify
    // via the model-level path: a released, never-actuating switch passes
    // only g_off — the branch current at full drive stays sub-nA.
    let _ = &mut gate;
    let g_off_branch = stuck_model.g_off_per_um * params.nems_width * tech.vdd;
    let mut t = Table::new(vec!["case", "result"]);
    t.row(vec![
        "healthy hybrid OR (1-input)".into(),
        if healthy {
            "evaluates (output rises)".into()
        } else {
            "FAILED".into()
        },
    ]);
    t.row(vec![
        "stuck-open beam branch".into(),
        format!(
            "dead branch, residual current {}",
            fmt_eng(g_off_branch, "A")
        ),
    ]);
    Ok(t.render())
}

/// Model-fidelity study: the same pull-down branch simulated with the
/// quasi-static hysteretic switch (the paper's model) and with the full
/// electromechanical co-simulation (`DynamicNemfet`, beam equation inside
/// MNA). A physically fast beam (sub-µm, 5 nm gap) still adds a
/// mechanical flight time the quasi-static model cannot see.
///
/// Returns `(t_quasi_static, t_dynamic)` — the time from the input step
/// to the drain discharging below V_dd/2.
///
/// # Errors
///
/// Propagates simulation failures; either time is `None` if that variant
/// never discharged.
pub fn beam_fidelity_study(tech: &Technology) -> Result<(Option<f64>, Option<f64>)> {
    use nemscmos::devices::nemfet::{DynamicNemfet, MechanicalParams};
    use nemscmos::mems::dynamics::ActuatorDynamics;
    use nemscmos::mems::electrostatics::Actuator;
    use nemscmos::spice::analysis::tran::{transient, TranOptions};
    use nemscmos::spice::circuit::Circuit;
    use nemscmos::spice::waveform::Waveform;

    // A fast, aggressively scaled beam: 10 N/m, ~1 ag modal mass, 5 nm gap.
    let act = Actuator::from_parameters(10.0, 0.05e-12, 5e-9, 0.5e-9, 7.5);
    let dynamics = ActuatorDynamics::new(act, 1.1e-18, 2e-9);
    let mech = MechanicalParams::from_dynamics(&dynamics);
    let v_pi = dynamics.actuator().pull_in_voltage();
    // Matched quasi-static card: same pull-in window.
    let v_po = dynamics.actuator().pull_out_voltage().max(0.05);
    let qs_card = NemsModel::from_targets(
        "fidelity-qs",
        Polarity::Nmos,
        &nemscmos::devices::nemfet::NemsTargets {
            ion: 330e-6,
            ioff: 110e-12,
            vdd: tech.vdd,
            v_pull_in: v_pi.min(tech.vdd * 0.9),
            v_pull_out: v_po.min(v_pi * 0.6),
        },
    );

    let t_step = 0.5e-9;
    let run = |dynamic: bool| -> Result<Option<f64>> {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
        ckt.vsource(
            g,
            Circuit::GROUND,
            Waveform::step(0.0, tech.vdd, t_step, 30e-12),
        );
        ckt.resistor(vdd, d, 10e3);
        ckt.capacitor(d, Circuit::GROUND, 5e-15);
        if dynamic {
            ckt.add_device(DynamicNemfet::new(
                "xd",
                qs_card.clone(),
                mech,
                d,
                g,
                Circuit::GROUND,
                1.0,
            ));
        } else {
            ckt.add_device(Nemfet::new(
                "xq",
                qs_card.clone(),
                d,
                g,
                Circuit::GROUND,
                1.0,
            ));
        }
        let opts = TranOptions {
            dt_max: Some(20e-12),
            ..Default::default()
        };
        let res = transient(&mut ckt, 12e-9, &opts)?;
        Ok(res
            .voltage(d)
            .crossing_falling(tech.vdd / 2.0, t_step)
            .map(|t| t - t_step))
    };
    Ok((run(false)?, run(true)?))
}

/// Demonstrates the stuck beam at circuit level: a resistor-loaded NEMS
/// stage with an infinite dwell time never conducts even at full drive.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn stuck_beam_circuit_demo(tech: &Technology) -> Result<(f64, f64)> {
    use nemscmos::spice::analysis::tran::{transient, TranOptions};
    use nemscmos::spice::circuit::Circuit;
    use nemscmos::spice::waveform::Waveform;

    let run = |t_switch: f64| -> Result<f64> {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
        ckt.vsource(
            g,
            Circuit::GROUND,
            Waveform::step(0.0, tech.vdd, 0.5e-9, 50e-12),
        );
        ckt.resistor(vdd, d, 10e3);
        ckt.capacitor(d, Circuit::GROUND, 1e-15); // drain junction parasitic
        let model = NemsModel::nems_90nm(Polarity::Nmos).with_switching_delay(t_switch);
        ckt.add_device(Nemfet::new("x1", model, d, g, Circuit::GROUND, 1.0));
        let res = transient(&mut ckt, 5e-9, &TranOptions::default())?;
        Ok(res.voltage(d).last_value())
    };
    Ok((run(0.0)?, run(1.0)?))
}

/// Charge-sharing hazard study: with the gate evaluating and all inputs
/// glitched to an intermediate level (0.49 V — just under the NEMS
/// pull-in), the CMOS pull-down conducts a strong subthreshold DC path
/// while the hybrid gate only *redistributes* charge onto its floating
/// mid nodes and leaks picoamps. Reports the worst dynamic-node droop and
/// whether the output falsely evaluated.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn charge_sharing_study(tech: &Technology) -> Result<String> {
    use nemscmos::spice::analysis::tran::{transient, TranOptions};
    let glitch = 0.49;
    let mut t = Table::new(vec!["style", "dyn node min (V)", "output"]);
    for style in [PdnStyle::Cmos, PdnStyle::HybridNems] {
        let params = DynamicOrParams::new(8, 1, style);
        let mut gate = DynamicOrGate::build_noise_probe(tech, &params, glitch);
        let opts = TranOptions {
            dt_max: Some(params.period / 400.0),
            use_ic_only: true,
            ..Default::default()
        };
        let res = transient(&mut gate.circuit, params.period, &opts)?;
        let dyn_min = res.voltage(gate.dyn_node).min_value();
        let flipped = res.voltage(gate.out_node).max_value() > tech.vdd / 2.0;
        t.row(vec![
            format!("{style:?}"),
            format!("{dyn_min:.3}"),
            if flipped {
                "FALSELY EVALUATED".into()
            } else {
                "held".into()
            },
        ]);
    }
    Ok(t.render())
}

/// Write-margin and data-retention-voltage survey across the cell
/// architectures — voltage-scaling limits the paper does not evaluate but
/// a cache designer would ask about first.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sram_margins_study(tech: &Technology) -> Result<String> {
    let mut t = Table::new(vec![
        "cell",
        "write trip (V)",
        "write latency",
        "retention V_dd",
    ]);
    let mut kinds = SramKind::all().to_vec();
    kinds.push(SramKind::HybridPullupOnly);
    for kind in kinds {
        let params = SramParams::new(kind);
        let trip = write_trip_voltage(tech, &params)?;
        let wlat = write_latency(tech, &params)?;
        let drv = data_retention_voltage(tech, &params, 0.05)?;
        t.row(vec![
            kind.label().to_string(),
            format!("{trip:.3}"),
            fmt_eng(wlat, "s"),
            format!("{drv:.3}"),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeper_feedback_slashes_cmos_power() {
        let tech = Technology::n90();
        let table = keeper_style_ablation(&tech).unwrap();
        assert!(table.contains("AlwaysOn"));
        assert!(table.contains("Feedback"));
    }

    #[test]
    fn stuck_beam_keeps_drain_high() {
        let tech = Technology::n90();
        let (healthy_vd, stuck_vd) = stuck_beam_circuit_demo(&tech).unwrap();
        assert!(
            healthy_vd < 0.3,
            "healthy switch conducts, v(d) = {healthy_vd:.3}"
        );
        assert!(
            stuck_vd > 1.1,
            "stuck beam never conducts, v(d) = {stuck_vd:.3}"
        );
    }

    #[test]
    fn charge_sharing_favors_the_hybrid() {
        let tech = Technology::n90();
        let table = charge_sharing_study(&tech).unwrap();
        // The hybrid gate holds at the glitch level and its dynamic node
        // droops far less than the CMOS gate's.
        let lines: Vec<&str> = table.lines().collect();
        let grab = |tag: &str| -> f64 {
            lines
                .iter()
                .find(|l| l.contains(tag))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .expect("droop value")
        };
        let cmos_min = grab("Cmos");
        let hybrid_min = grab("HybridNems");
        assert!(
            hybrid_min > cmos_min + 0.15,
            "hybrid droop {hybrid_min:.3} should beat CMOS {cmos_min:.3}"
        );
        let hybrid_line = lines.iter().find(|l| l.contains("HybridNems")).unwrap();
        assert!(
            hybrid_line.contains("held"),
            "hybrid should hold: {hybrid_line}"
        );
    }

    #[test]
    fn dynamic_beam_adds_mechanical_flight_time() {
        let tech = Technology::n90();
        let (qs, dynamic) = beam_fidelity_study(&tech).unwrap();
        let qs = qs.expect("quasi-static discharges");
        let dynamic = dynamic.expect("dynamic discharges");
        assert!(
            dynamic > 2.0 * qs,
            "beam flight must dominate: quasi-static {qs:.3e} vs dynamic {dynamic:.3e}"
        );
        assert!(dynamic < 10e-9, "fast beam should land within the window");
    }

    #[test]
    fn upsizing_hybrid_sram_reduces_latency() {
        let tech = Technology::n90();
        let p_small = SramParams {
            hybrid_upsize: 1.0,
            ..SramParams::new(SramKind::Hybrid)
        };
        let p_big = SramParams {
            hybrid_upsize: 3.0,
            ..SramParams::new(SramKind::Hybrid)
        };
        let lat_small = read_latency(&tech, &p_small, ZeroSide::Right).unwrap();
        let lat_big = read_latency(&tech, &p_big, ZeroSide::Right).unwrap();
        assert!(lat_big < lat_small, "{lat_big:.3e} vs {lat_small:.3e}");
    }
}
