//! Leakage–temperature coupling study.
//!
//! The paper's introduction (citing its ref. \[5\]) motivates NEMS precisely
//! because "most leakage mechanisms are strongly temperature dependent.
//! This strong coupling between temperature and leakage can cause further
//! increase in total power dissipation." This experiment quantifies the
//! coupling on our circuits and runs the self-consistent
//! junction-temperature iteration of \[5\]: `T = T_amb + R_th · P(T)` —
//! CMOS leakage feeds back into temperature and can run away; the hybrid
//! gate's mechanical leakage floor does not.

use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::tech::Technology;
use nemscmos_analysis::table::{fmt_eng, Table};
use nemscmos_analysis::Result;

/// Leakage of one 8-input OR core (W) for both styles at `kelvin`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn gate_leakage_at(tech: &Technology, kelvin: f64, style: PdnStyle) -> Result<f64> {
    let hot = tech.at_temperature(kelvin);
    let params = DynamicOrParams::new(8, 1, style);
    Ok(DynamicOrGate::build(&hot, &params)
        .characterize(&hot)?
        .leakage_power)
}

/// Renders the leakage-vs-temperature table for the two gate styles.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn leakage_vs_temperature(tech: &Technology) -> Result<String> {
    let mut t = Table::new(vec!["T (K)", "CMOS P_leak", "hybrid P_leak", "ratio"]);
    for kelvin in [300.0, 325.0, 350.0, 375.0, 400.0] {
        let cmos = gate_leakage_at(tech, kelvin, PdnStyle::Cmos)?;
        let hybrid = gate_leakage_at(tech, kelvin, PdnStyle::HybridNems)?;
        t.row(vec![
            format!("{kelvin:.0}"),
            fmt_eng(cmos, "W"),
            fmt_eng(hybrid, "W"),
            format!("{:.0}x", cmos / hybrid),
        ]);
    }
    Ok(t.render())
}

/// Outcome of the self-consistent junction-temperature iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThermalOutcome {
    /// Converged to a stable junction temperature (K).
    Stable(f64),
    /// Thermal runaway: temperature exceeded the ceiling before converging.
    Runaway,
}

/// Self-consistent junction temperature of a block of `gates` OR gates
/// dissipating `p_dynamic` watts of activity power behind a thermal
/// resistance `r_th` (K/W): iterates `T ← T_amb + R_th·(P_dyn +
/// gates·P_leak(T))` until it converges or passes 500 K.
///
/// # Errors
///
/// Propagates simulation failures from the per-temperature leakage
/// evaluations.
pub fn junction_temperature(
    tech: &Technology,
    style: PdnStyle,
    gates: f64,
    p_dynamic: f64,
    r_th: f64,
    t_amb: f64,
) -> Result<ThermalOutcome> {
    let mut t = t_amb;
    for _ in 0..60 {
        let p_leak = gates * gate_leakage_at(tech, t, style)?;
        let t_new = t_amb + r_th * (p_dynamic + p_leak);
        if t_new > 500.0 {
            return Ok(ThermalOutcome::Runaway);
        }
        if (t_new - t).abs() < 0.05 {
            return Ok(ThermalOutcome::Stable(t_new));
        }
        // Damped update keeps the iteration stable near the knee.
        t = 0.5 * t + 0.5 * t_new;
    }
    Ok(ThermalOutcome::Stable(t))
}

/// Renders the runaway comparison: the same thermal environment where the
/// CMOS block's leakage feedback diverges and the hybrid block settles.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn runaway_study(tech: &Technology) -> Result<String> {
    let mut t = Table::new(vec!["R_th·gates", "CMOS", "hybrid"]);
    let gates = 50_000.0;
    let p_dynamic = 0.4; // W of activity power shared by the block
    for r_th in [50.0, 100.0, 150.0, 200.0] {
        let fmt = |o: ThermalOutcome| match o {
            ThermalOutcome::Stable(tj) => format!("stable at {tj:.0} K"),
            ThermalOutcome::Runaway => "RUNAWAY".to_string(),
        };
        let cmos = junction_temperature(tech, PdnStyle::Cmos, gates, p_dynamic, r_th, 300.0)?;
        let hybrid =
            junction_temperature(tech, PdnStyle::HybridNems, gates, p_dynamic, r_th, 300.0)?;
        t.row(vec![format!("{r_th:.0} K/W"), fmt(cmos), fmt(hybrid)]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos_leakage_grows_steeply_with_temperature() {
        let tech = Technology::n90();
        let cold = gate_leakage_at(&tech, 300.0, PdnStyle::Cmos).unwrap();
        let hot = gate_leakage_at(&tech, 400.0, PdnStyle::Cmos).unwrap();
        assert!(
            hot > 10.0 * cold,
            "100 K should cost >10x leakage: {cold:.3e} -> {hot:.3e}"
        );
    }

    #[test]
    fn hybrid_leakage_is_nearly_flat() {
        let tech = Technology::n90();
        let cold = gate_leakage_at(&tech, 300.0, PdnStyle::HybridNems).unwrap();
        let hot = gate_leakage_at(&tech, 400.0, PdnStyle::HybridNems).unwrap();
        // The beam-up floor dominates; only the (tiny) channel terms heat.
        assert!(
            hot < 5.0 * cold,
            "hybrid should stay near its mechanical floor"
        );
    }

    #[test]
    fn hybrid_survives_where_cmos_runs_away() {
        let tech = Technology::n90();
        // Find an R_th where CMOS diverges.
        let mut found = false;
        for r_th in [100.0, 200.0, 400.0, 800.0] {
            let cmos =
                junction_temperature(&tech, PdnStyle::Cmos, 50_000.0, 0.4, r_th, 300.0).unwrap();
            if cmos == ThermalOutcome::Runaway {
                let hybrid =
                    junction_temperature(&tech, PdnStyle::HybridNems, 50_000.0, 0.4, r_th, 300.0)
                        .unwrap();
                assert!(
                    matches!(hybrid, ThermalOutcome::Stable(_)),
                    "hybrid must stay stable at R_th = {r_th}"
                );
                found = true;
                break;
            }
        }
        assert!(
            found,
            "expected a runaway corner for CMOS in the swept range"
        );
    }
}
