//! Table 1 (device currents), Figure 1 (scaling trend) and Figure 2
//! (subthreshold-swing survey).

use nemscmos::devices::characterize::{figure2_survey, ioff, ion};
use nemscmos::devices::mosfet::{MosModel, Polarity};
use nemscmos::devices::nemfet::NemsModel;
use nemscmos::devices::scaling::itrs_trend;
use nemscmos_analysis::table::{fmt_eng, Table};

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Device label.
    pub device: &'static str,
    /// On current (A/µm).
    pub ion: f64,
    /// Off current (A/µm).
    pub ioff: f64,
    /// The paper's value for I_ON (A/µm).
    pub paper_ion: f64,
    /// The paper's value for I_OFF (A/µm).
    pub paper_ioff: f64,
}

/// Regenerates Table 1 from the calibrated model cards.
pub fn table1() -> Vec<Table1Row> {
    let vdd = 1.2;
    let nmos = MosModel::nmos_90nm();
    let nems = NemsModel::nems_90nm(Polarity::Nmos);
    let (nems_ion, ..) = nems.contact.ids(vdd, vdd, 0.0, 1.0);
    vec![
        Table1Row {
            device: "CMOS [4]",
            ion: ion(&nmos, vdd),
            ioff: ioff(&nmos, vdd),
            paper_ion: 1110e-6,
            paper_ioff: 50e-9,
        },
        Table1Row {
            device: "NEMS [13]",
            ion: nems_ion,
            ioff: nems.g_off_per_um * vdd,
            paper_ion: 330e-6,
            paper_ioff: 110e-12,
        },
    ]
}

/// Renders Table 1 with paper-vs-measured columns.
pub fn render_table1() -> String {
    let mut t = Table::new(vec![
        "Device",
        "I_ON (meas)",
        "I_ON (paper)",
        "I_OFF (meas)",
        "I_OFF (paper)",
    ]);
    for r in table1() {
        t.row(vec![
            r.device.to_string(),
            fmt_eng(r.ion, "A/µm"),
            fmt_eng(r.paper_ion, "A/µm"),
            fmt_eng(r.ioff, "A/µm"),
            fmt_eng(r.paper_ioff, "A/µm"),
        ]);
    }
    t.render()
}

/// Renders the Figure 1 scaling trend.
pub fn render_fig01() -> String {
    let mut t = Table::new(vec!["Node (nm)", "V_dd (V)", "V_th (V)", "I_OFF", "I_ON"]);
    for p in itrs_trend() {
        t.row(vec![
            format!("{:.0}", p.node_nm),
            format!("{:.2}", p.vdd),
            format!("{:.2}", p.vth),
            fmt_eng(p.ioff, "A/µm"),
            fmt_eng(p.ion, "A/µm"),
        ]);
    }
    t.render()
}

/// Renders the Figure 2 swing survey.
pub fn render_fig02() -> String {
    let mut t = Table::new(vec!["Device", "S (mV/dec)", "Source"]);
    for r in figure2_survey() {
        t.row(vec![
            r.device.to_string(),
            format!("{:.2}", r.swing_mv_per_dec),
            if r.measured_here {
                "measured from our model".into()
            } else {
                "literature [7]-[12]".into()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_within_one_percent() {
        for r in table1() {
            assert!(
                (r.ion - r.paper_ion).abs() / r.paper_ion < 0.01,
                "{}: ion",
                r.device
            );
            assert!(
                (r.ioff - r.paper_ioff).abs() / r.paper_ioff < 0.01,
                "{}: ioff",
                r.device
            );
        }
    }

    #[test]
    fn renders_are_nonempty() {
        assert!(render_table1().contains("NEMS"));
        assert!(render_fig01().contains("90"));
        assert!(render_fig02().contains("IMOS"));
    }
}
