//! Statistical variation studies: SRAM SNM distributions / yield under
//! per-device mismatch, and five-corner sweeps of the headline circuits.
//!
//! The paper treats variation through the keeper study (Figure 9); these
//! experiments extend the same σ_Vth machinery to the SRAM cells — the
//! question a memory designer asks first — and to systematic corners.

use nemscmos::devices::corners::Corner;
use nemscmos::gates::{ring_oscillator_frequency, DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::sram::{butterfly_curves, ReadMode, SramKind, SramParams};
use nemscmos::tech::Technology;
use nemscmos_analysis::montecarlo::{monte_carlo, Normal};
use nemscmos_analysis::pdp::GateFigures;
use nemscmos_analysis::table::{fmt_eng, Table};
use nemscmos_analysis::{AnalysisError, Result};
use nemscmos_harness::{HarnessError, JobSpec, Runner};
use nemscmos_numeric::stats::{quantile, Summary};

/// Monte Carlo read-SNM distribution of one cell architecture.
#[derive(Debug, Clone)]
pub struct SnmDistribution {
    /// Architecture.
    pub kind: SramKind,
    /// Summary statistics of the sampled SNMs (V).
    pub summary: Summary,
    /// 1st-percentile SNM (V) — the yield-setting tail.
    pub p1: f64,
    /// Fraction of samples below `fail_threshold`.
    pub fail_fraction: f64,
}

/// Samples the read SNM of `kind` under per-device `N(0, σ_vth)` mismatch
/// (six independent draws per cell; NEMS roles also move their pull-in
/// voltage by the draw). Deterministic in `seed`; trials run in parallel.
///
/// The whole Monte Carlo is one harness job: the sampled distribution is
/// cached under a spec covering the technology, cell, σ, threshold,
/// trial count, and seed, and the nested per-trial solver work is folded
/// into the job's telemetry.
///
/// # Errors
///
/// Propagates simulation failures from any trial.
pub fn sram_snm_distribution(
    tech: &Technology,
    kind: SramKind,
    sigma_vth: f64,
    fail_threshold: f64,
    trials: usize,
    seed: u64,
) -> Result<SnmDistribution> {
    let jobs = [JobSpec::new(
        format!("snm-mc-{}", kind.label()),
        format!(
            "sram-snm-mc v1 kind={kind:?} sigma={sigma_vth} fail={fail_threshold}              trials={trials} seed={seed} tech={tech:?}"
        ),
    )];
    let mut results: Vec<(Summary, (f64, f64))> = Runner::global()
        .run("variation: SRAM SNM Monte Carlo", &jobs, |_, _| {
            let samples = monte_carlo(trials, seed, |rng, _| {
                let dist = Normal::new(0.0, sigma_vth);
                let mut shifts = [0.0; 6];
                for s in &mut shifts {
                    *s = dist.sample(rng);
                }
                let params = SramParams::new(kind).with_vth_shifts(shifts);
                Ok(butterfly_curves(tech, &params, ReadMode::Read)?.snm.snm())
            })
            .map_err(HarnessError::from)?;
            let summary = Summary::of(&samples)
                .map_err(|e| HarnessError::Failed(format!("summary failed: {e}")))?;
            let p1 = quantile(&samples, 0.01)
                .map_err(|e| HarnessError::Failed(format!("quantile failed: {e}")))?;
            let fails = samples.iter().filter(|&&s| s < fail_threshold).count();
            Ok((summary, (p1, fails as f64 / samples.len() as f64)))
        })
        .map_err(AnalysisError::from)?;
    let (summary, (p1, fail_fraction)) = results.remove(0);
    Ok(SnmDistribution {
        kind,
        summary,
        p1,
        fail_fraction,
    })
}

/// Pelgrom-law variant of [`sram_snm_distribution`]: each of the six
/// devices draws from `N(0, A_vt/√(W·L))` with its own width, so wide
/// pull-downs match better than the minimum-size access transistors.
///
/// # Errors
///
/// Propagates simulation failures from any trial.
pub fn sram_snm_distribution_pelgrom(
    tech: &Technology,
    kind: SramKind,
    fail_threshold: f64,
    trials: usize,
    seed: u64,
) -> Result<SnmDistribution> {
    use nemscmos::devices::mismatch::sigma_vth_90nm;
    let base = SramParams::new(kind);
    // Role order: [PL, NL, PR, NR, AL, AR].
    let widths = [
        base.pu_width,
        base.pd_width,
        base.pu_width,
        base.pd_width,
        base.acc_width,
        base.acc_width,
    ];
    let samples = monte_carlo(trials, seed, |rng, _| {
        let mut shifts = [0.0; 6];
        for (s, &w) in shifts.iter_mut().zip(widths.iter()) {
            *s = Normal::new(0.0, sigma_vth_90nm(w)).sample(rng);
        }
        let params = base.with_vth_shifts(shifts);
        Ok(butterfly_curves(tech, &params, ReadMode::Read)?.snm.snm())
    })?;
    let summary = Summary::of(&samples)
        .map_err(|e| nemscmos_analysis::AnalysisError::InvalidInput(e.to_string()))?;
    let p1 = quantile(&samples, 0.01)
        .map_err(|e| nemscmos_analysis::AnalysisError::InvalidInput(e.to_string()))?;
    let fails = samples.iter().filter(|&&s| s < fail_threshold).count();
    Ok(SnmDistribution {
        kind,
        summary,
        p1,
        fail_fraction: fails as f64 / samples.len() as f64,
    })
}

/// Renders the SNM-distribution comparison across architectures.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn render_sram_mc(tech: &Technology, sigma_vth: f64, trials: usize) -> Result<String> {
    use nemscmos_numeric::stats::gaussian_yield_above;
    let mut t = Table::new(vec![
        "cell",
        "SNM mean",
        "SNM sigma",
        "p1",
        "fails <100mV",
        "1Mb yield @150mV*",
    ]);
    for kind in SramKind::all() {
        let d = sram_snm_distribution(tech, kind, sigma_vth, 0.1, trials, 90_07)?;
        // Gaussian projection of per-cell pass probability (SNM >= 150 mV)
        // to a 1 Mb array (all cells must pass) — the standard tail
        // extrapolation.
        let cell_pass = gaussian_yield_above(d.summary.mean, d.summary.std_dev.max(1e-6), 0.15);
        let array_yield = cell_pass.powf(1_048_576.0);
        t.row(vec![
            kind.label().to_string(),
            format!("{:.1} mV", d.summary.mean * 1e3),
            format!("{:.1} mV", d.summary.std_dev * 1e3),
            format!("{:.1} mV", d.p1 * 1e3),
            format!("{:.1}%", d.fail_fraction * 100.0),
            format!("{:.1}%", array_yield * 100.0),
        ]);
    }
    Ok(t.render())
}

/// Five-corner sweep of the 8-input OR gates and the ring-oscillator
/// monitor, one harness job per corner.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn render_corner_sweep(tech: &Technology) -> Result<String> {
    let corners = Corner::all();
    let jobs: Vec<JobSpec> = corners
        .iter()
        .map(|corner| {
            JobSpec::new(
                format!("corner-{}", corner.label()),
                format!("variation-corner v1 corner={corner:?} tech={tech:?}"),
            )
        })
        .collect();
    let measured: Vec<(f64, (GateFigures, GateFigures))> = Runner::global()
        .run("variation: five-corner sweep", &jobs, |i, _| {
            let tc = tech.at_corner(corners[i]);
            let ring = ring_oscillator_frequency(&tc, 5).map_err(HarnessError::from)?;
            let cmos = DynamicOrGate::build(&tc, &DynamicOrParams::new(8, 1, PdnStyle::Cmos))
                .characterize(&tc)
                .map_err(HarnessError::from)?;
            let hybrid =
                DynamicOrGate::build(&tc, &DynamicOrParams::new(8, 1, PdnStyle::HybridNems))
                    .characterize(&tc)
                    .map_err(HarnessError::from)?;
            Ok((ring.frequency, (cmos, hybrid)))
        })
        .map_err(AnalysisError::from)?;
    let mut t = Table::new(vec![
        "corner",
        "ring f0",
        "CMOS OR delay",
        "CMOS OR leak",
        "hybrid OR delay",
        "hybrid OR leak",
    ]);
    for (corner, (freq, (cmos, hybrid))) in corners.iter().zip(measured) {
        t.row(vec![
            corner.label().to_string(),
            format!("{:.2} GHz", freq / 1e9),
            fmt_eng(cmos.delay, "s"),
            fmt_eng(cmos.leakage_power, "W"),
            fmt_eng(hybrid.delay, "s"),
            fmt_eng(hybrid.leakage_power, "W"),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatch_spreads_the_snm() {
        let tech = Technology::n90();
        let d = sram_snm_distribution(&tech, SramKind::Conventional, 0.03, 0.1, 16, 7).unwrap();
        assert_eq!(d.summary.count, 16);
        assert!(d.summary.std_dev > 1e-3, "σ_SNM = {:.4}", d.summary.std_dev);
        assert!(d.p1 <= d.summary.mean);
        // Nominal-ish mean.
        assert!(
            (d.summary.mean - 0.285).abs() < 0.08,
            "mean = {:.3}",
            d.summary.mean
        );
    }

    #[test]
    fn mc_is_deterministic_in_seed() {
        let tech = Technology::n90();
        let a = sram_snm_distribution(&tech, SramKind::Hybrid, 0.03, 0.1, 8, 3).unwrap();
        let b = sram_snm_distribution(&tech, SramKind::Hybrid, 0.03, 0.1, 8, 3).unwrap();
        assert_eq!(a.summary.mean, b.summary.mean);
    }

    #[test]
    fn pelgrom_mc_runs_and_access_mismatch_dominates() {
        let tech = Technology::n90();
        let d = sram_snm_distribution_pelgrom(&tech, SramKind::Conventional, 0.1, 16, 11).unwrap();
        assert_eq!(d.summary.count, 16);
        assert!(d.summary.std_dev > 1e-3);
    }

    #[test]
    fn corner_sweep_renders_all_five() {
        let tech = Technology::n90();
        let table = render_corner_sweep(&tech).unwrap();
        for c in ["TT", "FF", "SS", "FS", "SF"] {
            assert!(table.contains(c), "missing corner {c}");
        }
    }
}
