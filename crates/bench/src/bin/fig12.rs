//! Regenerates Figure 12: power-delay product vs activity factor.

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::dynamic_or::{fig12, render_fig12};

fn main() {
    Cli::new(
        "fig12",
        "regenerates Figure 12 (power-delay product vs activity factor)",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    println!("Figure 12 — power-delay product (Eq. 1) vs activity factor\n");
    match fig12(&tech) {
        Ok(data) => println!("{}", render_fig12(&data)),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
