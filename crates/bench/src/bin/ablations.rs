//! Runs the ablation suite: keeper style, NEMS sizing, pull-up-only SRAM,
//! mechanical switching delay, and stiction fault injection.

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::ablations::*;

fn main() {
    Cli::new(
        "ablations",
        "runs the ablation suite (keeper style, NEMS sizing, SRAM variants, stiction)",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    let sections: Vec<(&str, nemscmos_analysis::Result<String>)> = vec![
        (
            "Keeper style (always-on vs feedback)",
            keeper_style_ablation(&tech),
        ),
        (
            "NEMS series-switch width (hybrid OR)",
            nems_width_ablation(&tech),
        ),
        ("Hybrid SRAM NEMS upsizing", sram_upsize_ablation(&tech)),
        (
            "SRAM: pull-up-only vs full hybrid (§5.3)",
            pullup_only_ablation(&tech),
        ),
        (
            "Mechanical switching delay sensitivity",
            switching_delay_ablation(&tech),
        ),
        (
            "Stiction (stuck-open beam) fault",
            stiction_fault_study(&tech),
        ),
        (
            "SRAM write margin & retention voltage",
            sram_margins_study(&tech),
        ),
        (
            "Charge sharing at a 0.49 V input glitch",
            charge_sharing_study(&tech),
        ),
    ];
    let mut failures = 0;
    for (title, result) in sections {
        match result {
            Ok(table) => println!("=== {title} ===\n{table}"),
            Err(e) => {
                eprintln!("{title}: FAILED: {e}");
                failures += 1;
            }
        }
    }
    match beam_fidelity_study(&tech) {
        Ok((qs, dynamic)) => println!(
            "beam fidelity: quasi-static discharge {} vs co-simulated beam {} after the step",
            qs.map_or("never".into(), |t| format!("{:.0} ps", t * 1e12)),
            dynamic.map_or("never".into(), |t| format!("{:.0} ps", t * 1e12)),
        ),
        Err(e) => {
            eprintln!("beam fidelity study failed: {e}");
            failures += 1;
        }
    }
    match stuck_beam_circuit_demo(&tech) {
        Ok((healthy, stuck)) => println!(
            "stuck-beam circuit demo: healthy v(d) = {healthy:.3} V, stuck v(d) = {stuck:.3} V"
        ),
        Err(e) => {
            eprintln!("stuck-beam demo failed: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
