//! Regenerates Figure 15: SRAM read latency and standby leakage.

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::sram::{fig15, render_fig15};

fn main() {
    Cli::new(
        "fig15",
        "regenerates Figure 15 (SRAM read latency and standby leakage)",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    println!("Figure 15 — SRAM read latency and standby leakage (normalized)\n");
    match fig15(&tech) {
        Ok(rows) => println!("{}", render_fig15(&rows)),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
