//! Regenerates Figure 14: SRAM butterfly curves and SNM.

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::sram::{fig14, render_fig14};

fn main() {
    Cli::new(
        "fig14",
        "regenerates Figure 14 (SRAM butterfly curves and SNM)",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    println!("Figure 14 — SRAM read butterfly / static noise margin\n");
    match fig14(&tech) {
        Ok(rows) => println!("{}", render_fig14(&rows)),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
